//! Integration: the full stack — file systems over MobiCeal volumes over
//! thin provisioning over dm-crypt over the simulated eMMC.

use mobiceal::{MobiCeal, MobiCealConfig};
use mobiceal_blockdev::{BlockDevice, MemDisk, SharedDevice};
use mobiceal_fs::{FatFs, FileSystem, SimFs};
use mobiceal_sim::SimClock;
use mobiceal_workloads::{build_stack, StackConfig};
use std::sync::Arc;

fn fast_config() -> MobiCealConfig {
    MobiCealConfig {
        num_volumes: 6,
        pbkdf2_iterations: 4,
        metadata_blocks: 64,
        ..Default::default()
    }
}

fn fresh(seed: u64) -> (Arc<MemDisk>, SimClock, MobiCeal) {
    let clock = SimClock::new();
    let disk = Arc::new(MemDisk::new(8192, 4096, clock.clone()));
    let mc = MobiCeal::initialize(
        disk.clone() as SharedDevice,
        clock.clone(),
        fast_config(),
        "decoy",
        &["hidden"],
        seed,
    )
    .unwrap();
    (disk, clock, mc)
}

#[test]
fn simfs_on_public_volume_survives_reboot() {
    let (disk, clock, mc) = fresh(1);
    {
        let public = mc.unlock_public("decoy").unwrap();
        let mut fs = SimFs::format(Arc::new(public) as SharedDevice).unwrap();
        fs.create("persistent.bin").unwrap();
        fs.write("persistent.bin", 0, &vec![0x3C; 100_000]).unwrap();
        fs.sync().unwrap();
        mc.commit().unwrap();
    }
    drop(mc);
    // Reboot: reopen from disk.
    let mc2 = MobiCeal::open(disk as SharedDevice, clock, fast_config(), 999).unwrap();
    let public = mc2.unlock_public("decoy").unwrap();
    let mut fs = SimFs::mount(Arc::new(public) as SharedDevice).unwrap();
    assert_eq!(fs.read("persistent.bin", 0, 100_000).unwrap(), vec![0x3C; 100_000]);
}

#[test]
fn separate_file_systems_on_public_and_hidden() {
    let (_disk, _clock, mc) = fresh(2);
    let public = mc.unlock_public("decoy").unwrap();
    let hidden = mc.unlock_hidden("hidden").unwrap();
    let mut pub_fs = SimFs::format(Arc::new(public) as SharedDevice).unwrap();
    let mut hid_fs = SimFs::format(Arc::new(hidden) as SharedDevice).unwrap();
    pub_fs.create("public.txt").unwrap();
    pub_fs.write("public.txt", 0, b"cat pictures").unwrap();
    hid_fs.create("secret.txt").unwrap();
    hid_fs.write("secret.txt", 0, b"sources").unwrap();
    pub_fs.sync().unwrap();
    hid_fs.sync().unwrap();
    // The two namespaces never bleed into each other.
    assert_eq!(pub_fs.list(), vec!["public.txt".to_string()]);
    assert_eq!(hid_fs.list(), vec!["secret.txt".to_string()]);
    assert_eq!(pub_fs.read("public.txt", 0, 12).unwrap(), b"cat pictures");
    assert_eq!(hid_fs.read("secret.txt", 0, 7).unwrap(), b"sources");
}

#[test]
fn fatfs_works_on_mobiceal_too() {
    // "Any block-based file system can be deployed on top of it" (§I).
    let (_disk, _clock, mc) = fresh(3);
    let hidden = mc.unlock_hidden("hidden").unwrap();
    let mut fs = FatFs::format(Arc::new(hidden) as SharedDevice).unwrap();
    fs.create("fat-file.dat").unwrap();
    fs.write("fat-file.dat", 0, &vec![0xFA; 50_000]).unwrap();
    fs.sync().unwrap();
    assert_eq!(fs.read("fat-file.dat", 0, 50_000).unwrap(), vec![0xFA; 50_000]);
}

#[test]
fn file_systems_mount_on_all_figure4_stacks() {
    for config in StackConfig::all() {
        let stack = build_stack(config, 8192, 17).unwrap();
        let mut fs = SimFs::format(stack.device.clone()).unwrap();
        fs.create("probe").unwrap();
        fs.write("probe", 0, &vec![0x11; 20_000]).unwrap();
        fs.sync().unwrap();
        assert_eq!(
            fs.read("probe", 0, 20_000).unwrap(),
            vec![0x11; 20_000],
            "stack {}",
            config.label()
        );
    }
}

#[test]
fn heavy_mixed_usage_with_commit_cycles() {
    let (disk, clock, mc) = fresh(4);
    let public = mc.unlock_public("decoy").unwrap();
    let hidden = mc.unlock_hidden("hidden").unwrap();
    for round in 0..5u8 {
        for i in 0..80u64 {
            public.write_block(round as u64 * 80 + i, &vec![round; 4096]).unwrap();
        }
        for i in 0..20u64 {
            hidden.write_block(round as u64 * 20 + i, &vec![round ^ 0xFF; 4096]).unwrap();
        }
        mc.commit().unwrap();
    }
    drop((public, hidden, mc));
    let mc2 = MobiCeal::open(disk as SharedDevice, clock, fast_config(), 1234).unwrap();
    let public = mc2.unlock_public("decoy").unwrap();
    let hidden = mc2.unlock_hidden("hidden").unwrap();
    for round in 0..5u8 {
        assert_eq!(public.read_block(round as u64 * 80).unwrap(), vec![round; 4096]);
        assert_eq!(hidden.read_block(round as u64 * 20).unwrap(), vec![round ^ 0xFF; 4096]);
    }
}

#[test]
fn dummy_traffic_appears_on_disk_as_ciphertextlike_noise() {
    let (disk, _clock, mc) = fresh(5);
    let public = mc.unlock_public("decoy").unwrap();
    for i in 0..600 {
        public.write_block(i, &vec![0u8; 4096]).unwrap();
    }
    let stats = mc.dummy_stats();
    assert!(stats.blocks_written > 0, "this seed's regime should fire: {stats:?}");
    // Every written block in the data region is indistinguishable from
    // randomness, whether it is encrypted zeros or dummy noise.
    let snap = disk.snapshot();
    let layout = mc.layout();
    let mut nonzero = 0;
    for b in layout.metadata_blocks..layout.metadata_blocks + layout.data_blocks {
        if !snap.is_zero_block(b) {
            assert!(snap.block_entropy(b) > 7.0, "block {b}");
            nonzero += 1;
        }
    }
    assert!(nonzero as u64 > 600);
}

#[test]
fn batched_stack_writes_amortize_simulated_device_time_end_to_end() {
    // The acceptance check for the amortized multi-command cost model: a
    // 64×4 KiB batch through the full unlocked stack (UnlockedVolume →
    // dm-crypt → thin volume → dm-linear → MemDisk) must charge strictly
    // less simulated time than the same 64 blocks written one by one,
    // because the batch reaches the device as one vectored call whose
    // command setup is paid once. A batch of one must charge exactly the
    // single-block time. The hidden volume isolates the device effect
    // (no probabilistic dummy traffic differing between the two runs).
    let measure = |batched: bool| {
        let (_disk, clock, mc) = fresh(42);
        let hidden = mc.unlock_hidden("hidden").unwrap();
        let data = vec![0xA5u8; 4096];
        let blocks: Vec<(u64, &[u8])> = (0..64u64).map(|b| (b, data.as_slice())).collect();
        let t0 = clock.now();
        if batched {
            hidden.write_blocks(&blocks).unwrap();
        } else {
            for &(b, d) in &blocks {
                hidden.write_block(b, d).unwrap();
            }
        }
        let write_time = clock.now() - t0;
        let t1 = clock.now();
        let indices: Vec<u64> = (0..64u64).collect();
        if batched {
            hidden.read_blocks(&indices).unwrap();
        } else {
            for &i in &indices {
                hidden.read_block(i).unwrap();
            }
        }
        (write_time, clock.now() - t1)
    };
    let (w_batched, r_batched) = measure(true);
    let (w_sequential, r_sequential) = measure(false);
    assert!(
        w_batched < w_sequential,
        "batched write {w_batched} must be strictly below sequential {w_sequential}"
    );
    assert!(
        r_batched < r_sequential,
        "batched read {r_batched} must be strictly below sequential {r_sequential}"
    );

    // Depth 1: the batched pipeline collapses to the single-block cost.
    let (_d1, clock_a, mc_a) = fresh(43);
    let (_d2, clock_b, mc_b) = fresh(43);
    let va = mc_a.unlock_hidden("hidden").unwrap();
    let vb = mc_b.unlock_hidden("hidden").unwrap();
    let data = vec![0x5Au8; 4096];
    let (t_a, t_b) = (clock_a.now(), clock_b.now());
    assert_eq!(t_a, t_b, "twin devices start aligned");
    va.write_blocks(&[(7, data.as_slice())]).unwrap();
    vb.write_block(7, &data).unwrap();
    assert_eq!(clock_a.now() - t_a, clock_b.now() - t_b, "batch of one ≡ single block");
}

#[test]
fn pool_exhaustion_surfaces_cleanly_through_the_whole_stack() {
    let clock = SimClock::new();
    let disk = Arc::new(MemDisk::new(512, 4096, clock.clone()));
    let mc = MobiCeal::initialize(
        disk as SharedDevice,
        clock,
        MobiCealConfig {
            num_volumes: 3,
            pbkdf2_iterations: 4,
            metadata_blocks: 32,
            ..Default::default()
        },
        "decoy",
        &[],
        6,
    )
    .unwrap();
    let public = mc.unlock_public("decoy").unwrap();
    let mut fs = SimFs::format(Arc::new(public) as SharedDevice).unwrap();
    fs.create("filler").unwrap();
    let mut off = 0u64;
    let err = loop {
        match fs.write("filler", off, &vec![1u8; 4096]) {
            Ok(()) => off += 4096,
            Err(e) => break e,
        }
    };
    assert!(matches!(err, mobiceal_fs::FsError::NoSpace | mobiceal_fs::FsError::Device(_)));
    // Previously written data is still intact.
    assert_eq!(fs.read("filler", 0, 16).unwrap(), vec![1u8; 16]);
}
