//! Property-based integration tests: random operation sequences against
//! reference models, across the whole stack.

use mobiceal::{MobiCeal, MobiCealConfig};
use mobiceal_blockdev::{BlockDevice, MemDisk, SharedDevice};
use mobiceal_fs::{FileSystem, SimFs};
use mobiceal_sim::SimClock;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn fast_config() -> MobiCealConfig {
    MobiCealConfig {
        num_volumes: 5,
        pbkdf2_iterations: 2,
        metadata_blocks: 64,
        ..Default::default()
    }
}

fn fresh(seed: u64) -> MobiCeal {
    let clock = SimClock::new();
    let disk = Arc::new(MemDisk::new(4096, 4096, clock.clone()));
    MobiCeal::initialize(disk as SharedDevice, clock, fast_config(), "decoy", &["hidden"], seed)
        .unwrap()
}

/// One step of the random workload.
#[derive(Debug, Clone)]
enum Op {
    PublicWrite { block: u64, fill: u8 },
    HiddenWrite { block: u64, fill: u8 },
    PublicRead { block: u64 },
    HiddenRead { block: u64 },
    Commit,
    Gc { seed: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..256, any::<u8>()).prop_map(|(block, fill)| Op::PublicWrite { block, fill }),
        (0u64..256, any::<u8>()).prop_map(|(block, fill)| Op::HiddenWrite { block, fill }),
        (0u64..256).prop_map(|block| Op::PublicRead { block }),
        (0u64..256).prop_map(|block| Op::HiddenRead { block }),
        Just(Op::Commit),
        (0u64..1000).prop_map(|seed| Op::Gc { seed }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Whatever interleaving of public writes, hidden writes, commits and
    /// GC passes runs, both volumes always read back exactly what a plain
    /// HashMap model predicts — i.e. dummy writes, random allocation and
    /// GC never corrupt user data.
    #[test]
    fn mixed_operations_match_reference_model(
        ops in prop::collection::vec(op_strategy(), 1..60),
        seed in 0u64..1000,
    ) {
        let mc = fresh(seed);
        let public = mc.unlock_public("decoy").unwrap();
        let hidden = mc.unlock_hidden("hidden").unwrap();
        let mut pub_model: HashMap<u64, u8> = HashMap::new();
        let mut hid_model: HashMap<u64, u8> = HashMap::new();
        for op in &ops {
            match *op {
                Op::PublicWrite { block, fill } => {
                    public.write_block(block, &vec![fill; 4096]).unwrap();
                    pub_model.insert(block, fill);
                }
                Op::HiddenWrite { block, fill } => {
                    hidden.write_block(block, &vec![fill; 4096]).unwrap();
                    hid_model.insert(block, fill);
                }
                Op::PublicRead { block } => {
                    let got = public.read_block(block).unwrap();
                    match pub_model.get(&block) {
                        Some(&fill) => prop_assert_eq!(got, vec![fill; 4096]),
                        // Unwritten blocks read as dm-crypt-decrypted zeros:
                        // deterministic garbage, never a model value.
                        None => prop_assert_eq!(got, public.read_block(block).unwrap()),
                    }
                }
                Op::HiddenRead { block } => {
                    let got = hidden.read_block(block).unwrap();
                    match hid_model.get(&block) {
                        Some(&fill) => prop_assert_eq!(got, vec![fill; 4096]),
                        None => prop_assert_eq!(got, hidden.read_block(block).unwrap()),
                    }
                }
                Op::Commit => mc.commit().unwrap(),
                Op::Gc { seed } => {
                    let _ = mc.garbage_collect(&["hidden"], seed).unwrap();
                }
            }
        }
        // Final full check.
        for (&block, &fill) in &pub_model {
            prop_assert_eq!(public.read_block(block).unwrap(), vec![fill; 4096]);
        }
        for (&block, &fill) in &hid_model {
            prop_assert_eq!(hidden.read_block(block).unwrap(), vec![fill; 4096]);
        }
    }

    /// Files written through SimFs on a MobiCeal volume always read back,
    /// regardless of write order and sizes.
    #[test]
    fn simfs_on_mobiceal_roundtrips(
        files in prop::collection::vec((0usize..20_000, any::<u8>()), 1..8),
        seed in 0u64..1000,
    ) {
        let mc = fresh(seed);
        let public = mc.unlock_public("decoy").unwrap();
        let mut fs = SimFs::format(Arc::new(public) as SharedDevice).unwrap();
        for (i, &(len, fill)) in files.iter().enumerate() {
            let name = format!("f{i}");
            fs.create(&name).unwrap();
            fs.write(&name, 0, &vec![fill; len]).unwrap();
        }
        fs.sync().unwrap();
        for (i, &(len, fill)) in files.iter().enumerate() {
            let name = format!("f{i}");
            prop_assert_eq!(fs.read(&name, 0, len).unwrap(), vec![fill; len]);
        }
    }

    /// The number of physically allocated blocks is always at least the
    /// number of distinct logical blocks written (no aliasing), and the
    /// free-space accounting never goes negative or inconsistent.
    #[test]
    fn space_accounting_invariants(
        pub_blocks in prop::collection::hash_set(0u64..200, 0..50),
        hid_blocks in prop::collection::hash_set(0u64..200, 0..50),
        seed in 0u64..1000,
    ) {
        let mc = fresh(seed);
        let public = mc.unlock_public("decoy").unwrap();
        let hidden = mc.unlock_hidden("hidden").unwrap();
        for &b in &pub_blocks {
            public.write_block(b, &vec![1u8; 4096]).unwrap();
        }
        for &b in &hid_blocks {
            hidden.write_block(b, &vec![2u8; 4096]).unwrap();
        }
        let view = mc.metadata_view();
        let total_mapped: u64 = (1..=5).map(|v| view.mapped_blocks(v)).sum();
        // Every distinct write is backed by a distinct physical block, plus
        // the 5 header blocks, plus any dummy blocks.
        let min_expected = pub_blocks.len() as u64 + hid_blocks.len() as u64 + 5;
        prop_assert!(total_mapped >= min_expected,
            "mapped {} < expected {}", total_mapped, min_expected);
        prop_assert_eq!(view.bitmap.allocated(), total_mapped);
    }

    /// Passwords other than the configured ones never unlock anything,
    /// whatever they are.
    #[test]
    fn arbitrary_wrong_passwords_rejected(guess in "[a-z0-9]{1,12}", seed in 0u64..200) {
        let mc = fresh(seed);
        prop_assume!(guess != "decoy" && guess != "hidden");
        prop_assert!(mc.unlock_public(&guess).is_err());
        prop_assert!(mc.unlock_hidden(&guess).is_err());
    }
}
