//! Integration: failure injection — crashes, torn commits, device faults,
//! wrong passwords at every stage, plus the systematic crash-point sweep:
//! a power cut at *every* metadata write boundary (clean and torn) must
//! recover exactly the last committed transaction.

use mobiceal::{MobiCeal, MobiCealConfig, MobiCealError};
use mobiceal_blockdev::{
    BlockDevice, BlockDeviceError, CrashDisk, DiskSnapshot, FaultInjection, MemDisk, SharedDevice,
};
use mobiceal_sim::SimClock;
use mobiceal_thinp::{AllocStrategy, MetadataView, PoolConfig, ThinPool};
use std::sync::Arc;

const META_BLOCKS: u64 = 64;
const DATA_BLOCKS: u64 = 512;
const BS: usize = 4096;

/// Runs a deterministic multi-transaction workload against a pool whose
/// metadata device records every write boundary. Returns the crash log
/// plus, for each committed transaction, the number of metadata writes
/// that had fully landed when its commit returned and the exact metadata
/// view it left behind.
fn crashable_workload(seed: u64) -> (Arc<CrashDisk>, Vec<(usize, MetadataView)>) {
    let clock = SimClock::new();
    let data = Arc::new(MemDisk::new(DATA_BLOCKS, BS, clock.clone()));
    let meta = Arc::new(CrashDisk::new(MemDisk::new(META_BLOCKS, BS, clock.clone())));
    let pool = ThinPool::create_seeded(
        data.clone() as SharedDevice,
        meta.clone() as SharedDevice,
        PoolConfig::new(2),
        AllocStrategy::Sequential,
        seed,
    )
    .unwrap();
    let mut commits = vec![(meta.write_points(), pool.metadata_view())];

    pool.create_volume(1, 128).unwrap();
    pool.create_volume(2, 128).unwrap();
    pool.commit().unwrap();
    commits.push((meta.write_points(), pool.metadata_view()));

    let v1 = pool.open_volume(1).unwrap();
    let v2 = pool.open_volume(2).unwrap();
    // A sequential burst, a commit, scattered single writes with commits
    // between them, a discard, and a final burst: single-record and
    // multi-op transactions alike.
    for b in 0..16u64 {
        v1.write_block(b, &vec![b as u8; BS]).unwrap();
    }
    pool.commit().unwrap();
    commits.push((meta.write_points(), pool.metadata_view()));

    for (i, b) in [3u64, 40, 7, 99].into_iter().enumerate() {
        v2.write_block(b, &vec![i as u8; BS]).unwrap();
        pool.commit().unwrap();
        commits.push((meta.write_points(), pool.metadata_view()));
    }

    pool.discard(1, 4).unwrap();
    for b in 16..40u64 {
        v1.write_block(b, &vec![0xCC; BS]).unwrap();
    }
    pool.commit().unwrap();
    commits.push((meta.write_points(), pool.metadata_view()));

    (meta, commits)
}

/// Boots a fresh metadata device from `image` and opens the pool on it.
fn reopen_from(image: &DiskSnapshot, seed: u64) -> Result<MetadataView, BlockDeviceError> {
    let clock = SimClock::new();
    let data = Arc::new(MemDisk::new(DATA_BLOCKS, BS, clock.clone()));
    let meta = Arc::new(MemDisk::new(META_BLOCKS, BS, clock.clone()));
    meta.load_image(image);
    let pool = ThinPool::open(
        data as SharedDevice,
        meta as SharedDevice,
        PoolConfig::new(2),
        AllocStrategy::Sequential,
        seed,
    )?;
    Ok(pool.metadata_view())
}

/// The last transaction whose commit had fully landed after `k` complete
/// metadata writes.
fn expected_after(commits: &[(usize, MetadataView)], k: usize) -> Option<&MetadataView> {
    commits.iter().rev().find(|(boundary, _)| *boundary <= k).map(|(_, view)| view)
}

#[test]
fn power_cut_at_every_write_boundary_recovers_last_committed_transaction() {
    let (meta, commits) = crashable_workload(21);
    let total = meta.write_points();
    assert!(total > 10, "workload must generate a real write stream, got {total}");
    assert!(commits.len() >= 7, "workload must span several transactions");
    for k in 0..=total {
        let image = meta.image_at(k);
        match expected_after(&commits, k) {
            // Before the format's first commit landed there is no valid
            // metadata; open must fail cleanly, never invent state.
            None => assert!(
                reopen_from(&image, 50).is_err(),
                "open before first commit (k={k}) must fail"
            ),
            Some(view) => {
                let recovered = reopen_from(&image, 50)
                    .unwrap_or_else(|e| panic!("open at write boundary {k}: {e:?}"));
                assert_eq!(
                    &recovered, view,
                    "crash after {k} writes must recover txid {}",
                    view.transaction_id
                );
            }
        }
    }
}

#[test]
fn torn_write_at_every_boundary_recovers_or_detects_never_invents() {
    let (meta, commits) = crashable_workload(22);
    let total = meta.write_points();
    for k in 0..total {
        for keep in [37usize, BS / 2] {
            let image = meta.image_at_torn(k, keep);
            let result = reopen_from(&image, 60);
            if meta.write_target(k) == 0 {
                // The torn write is the commit point itself (superblock).
                // Acceptable outcomes: the previous transaction, the new
                // one (the tear preserved the whole 77-byte superblock),
                // or a clean corruption error — never a third state.
                match result {
                    Err(_) => {}
                    Ok(recovered) => {
                        let prev = expected_after(&commits, k);
                        let next = expected_after(&commits, k + 1);
                        let matches_adjacent = prev.is_some_and(|v| v == &recovered)
                            || next.is_some_and(|v| v == &recovered);
                        assert!(
                            matches_adjacent,
                            "torn superblock at k={k} keep={keep} recovered txid {} \
                             which is neither adjacent transaction",
                            recovered.transaction_id
                        );
                    }
                }
            } else {
                // A torn journal append or checkpoint-payload write sits
                // outside the extent the (old) superblock names: recovery
                // must land exactly on the last committed transaction.
                match expected_after(&commits, k) {
                    None => assert!(result.is_err(), "k={k} keep={keep}"),
                    Some(view) => {
                        let recovered = result.unwrap_or_else(|e| {
                            panic!("torn non-superblock write k={k} keep={keep}: {e:?}")
                        });
                        assert_eq!(&recovered, view, "k={k} keep={keep}");
                    }
                }
            }
        }
    }
}

/// Like [`crashable_workload`], but with enough single-write transactions
/// that the journal region (7 blocks at this geometry) overflows and
/// `commit()` falls back to the checkpoint path — shadow-half payload
/// writes plus the superblock flip — several times mid-stream.
fn overflowing_workload(seed: u64) -> (Arc<CrashDisk>, Vec<(usize, MetadataView)>) {
    let clock = SimClock::new();
    let data = Arc::new(MemDisk::new(DATA_BLOCKS, BS, clock.clone()));
    let meta = Arc::new(CrashDisk::new(MemDisk::new(META_BLOCKS, BS, clock.clone())));
    let pool = ThinPool::create_seeded(
        data.clone() as SharedDevice,
        meta.clone() as SharedDevice,
        PoolConfig::new(2),
        AllocStrategy::Sequential,
        seed,
    )
    .unwrap();
    let mut commits = vec![(meta.write_points(), pool.metadata_view())];

    pool.create_volume(1, 128).unwrap();
    pool.commit().unwrap();
    commits.push((meta.write_points(), pool.metadata_view()));

    let v1 = pool.open_volume(1).unwrap();
    // 30 one-op transactions: journal appends with periodic discards, so
    // the overflow fallback captures Free ops mid-flight too.
    for i in 0..30u64 {
        if i % 7 == 6 {
            pool.discard(1, i - 3).unwrap();
        } else {
            v1.write_block(i, &vec![i as u8; BS]).unwrap();
        }
        pool.commit().unwrap();
        commits.push((meta.write_points(), pool.metadata_view()));
    }
    (meta, commits)
}

/// First block of the checkpoint shadow halves for the sweep geometry
/// (block 0 superblock, 7 journal blocks, then the halves).
const HALF_FIRST: u64 = 8;

#[test]
fn journal_overflow_checkpoint_survives_crash_at_every_boundary() {
    let (meta, commits) = overflowing_workload(23);
    let total = meta.write_points();
    // The fallback must actually have fired: after the format, only a
    // checkpoint writes into the shadow halves.
    let format_end = commits[0].0;
    assert!(
        (format_end..total).any(|k| meta.write_target(k) >= HALF_FIRST),
        "workload never overflowed into the checkpoint fallback"
    );
    for k in 0..=total {
        let image = meta.image_at(k);
        match expected_after(&commits, k) {
            None => assert!(reopen_from(&image, 70).is_err(), "k={k}"),
            Some(view) => {
                let recovered = reopen_from(&image, 70)
                    .unwrap_or_else(|e| panic!("open at overflow boundary {k}: {e:?}"));
                assert_eq!(
                    &recovered, view,
                    "crash after {k} writes must recover txid {}",
                    view.transaction_id
                );
            }
        }
    }
}

#[test]
fn journal_overflow_checkpoint_survives_torn_write_at_every_boundary() {
    let (meta, commits) = overflowing_workload(24);
    let total = meta.write_points();
    for k in 0..total {
        let image = meta.image_at_torn(k, BS / 2);
        let result = reopen_from(&image, 80);
        if meta.write_target(k) == 0 {
            // Torn superblock (journaled commit or checkpoint flip):
            // previous transaction, next transaction, or a clean error.
            if let Ok(recovered) = result {
                let prev = expected_after(&commits, k);
                let next = expected_after(&commits, k + 1);
                assert!(
                    prev.is_some_and(|v| v == &recovered) || next.is_some_and(|v| v == &recovered),
                    "torn superblock at k={k} recovered txid {}",
                    recovered.transaction_id
                );
            }
        } else {
            // Torn journal append or shadow-half payload write: the old
            // superblock never references it (the payload digest guards
            // the half), so recovery lands exactly on the last commit.
            match expected_after(&commits, k) {
                None => assert!(result.is_err(), "k={k}"),
                Some(view) => {
                    let recovered =
                        result.unwrap_or_else(|e| panic!("torn non-superblock write k={k}: {e:?}"));
                    assert_eq!(&recovered, view, "k={k}");
                }
            }
        }
    }
}

#[test]
fn freed_blocks_are_not_reused_before_the_free_commits() {
    // The crash-window bug the sweep work surfaced: `discard` cleared the
    // committed bitmap immediately, so the allocator could hand the freed
    // physical block to a new write before the free was durable. A crash
    // then replayed the old mapping against clobbered data. The freed
    // block must stay held out until the commit.
    let clock = SimClock::new();
    let data = Arc::new(MemDisk::new(32, BS, clock.clone()));
    let meta = Arc::new(MemDisk::new(META_BLOCKS, BS, clock.clone()));
    let pool = ThinPool::create_seeded(
        data.clone() as SharedDevice,
        meta.clone() as SharedDevice,
        PoolConfig::new(2),
        AllocStrategy::Sequential,
        25,
    )
    .unwrap();
    pool.create_volume(1, 64).unwrap();
    let v1 = pool.open_volume(1).unwrap();
    // Fill the whole data device with committed, distinct plaintext.
    for b in 0..32u64 {
        v1.write_block(b, &vec![b as u8 + 1; BS]).unwrap();
    }
    pool.commit().unwrap();

    // Free a few committed blocks, then try to write fresh vblocks. The
    // pool is otherwise full, so any successful write could only come
    // from reusing a not-yet-durably-freed block.
    pool.discard(1, 5).unwrap();
    pool.discard(1, 11).unwrap();
    pool.discard(1, 23).unwrap();
    for (i, v) in (40u64..48).enumerate() {
        let r = v1.write_block(v, &vec![0xEE + i as u8; BS]);
        assert!(
            matches!(r, Err(BlockDeviceError::NoSpace)),
            "write to vblock {v} must not steal an uncommitted free"
        );
    }

    // Crash before the discard commits; reopen on the same media.
    drop((v1, pool));
    let pool = ThinPool::open(
        data as SharedDevice,
        meta as SharedDevice,
        PoolConfig::new(2),
        AllocStrategy::Sequential,
        26,
    )
    .unwrap();
    let v1 = pool.open_volume(1).unwrap();
    for b in 0..32u64 {
        assert_eq!(
            v1.read_block(b).unwrap(),
            vec![b as u8 + 1; BS],
            "committed vblock {b} must replay with its committed contents"
        );
    }
}

fn fast_config() -> MobiCealConfig {
    MobiCealConfig {
        num_volumes: 5,
        pbkdf2_iterations: 4,
        metadata_blocks: 64,
        ..Default::default()
    }
}

#[test]
fn cached_stack_recovers_committed_data_at_every_crash_boundary() {
    // The flush-ordering contract through the write-back cache: dirty data
    // blocks (and the thin mappings their write-back allocates) land
    // before the metadata commit that references them. Sweep a power cut
    // across every write boundary of the WHOLE disk — data, journal,
    // checkpoint and superblock writes alike — and require that every
    // vblock committed by then reads back its committed plaintext.
    let clock = SimClock::new();
    let crash = Arc::new(CrashDisk::new(MemDisk::new(1024, 4096, clock.clone())));
    let config =
        MobiCealConfig { cache_blocks: 128, cache_shards: 4, copier_depth: 4, ..fast_config() };
    let mc = MobiCeal::initialize(
        crash.clone() as SharedDevice,
        clock.clone(),
        config.clone(),
        "decoy",
        &["hidden"],
        31,
    )
    .unwrap();
    let public = mc.unlock_public("decoy").unwrap();

    // (boundary, committed vblock contents) per commit. Fresh vblocks
    // only: thin overwrites are in place, so only never-rewritten blocks
    // have a single committed value to check.
    let mut committed: Vec<(u64, u8)> = Vec::new();
    let mut commits: Vec<(usize, Vec<(u64, u8)>)> = vec![(crash.write_points(), committed.clone())];
    let mut pat = 1u8;
    for round in 0..3u64 {
        for i in 0..16u64 {
            let v = round * 16 + i;
            public.write_block(v, &vec![pat; 4096]).unwrap();
            committed.push((v, pat));
            pat = pat.wrapping_add(3);
        }
        assert!(public.cache_dirty_blocks() > 0, "writes must be absorbed, not forwarded");
        mc.commit().unwrap();
        commits.push((crash.write_points(), committed.clone()));
    }

    let total = crash.write_points();
    for k in 0..=total {
        let disk = Arc::new(MemDisk::new(1024, 4096, clock.clone()));
        disk.load_image(&crash.image_at(k));
        let expected = commits.iter().rev().find(|(b, _)| *b <= k).map(|(_, d)| d);
        match MobiCeal::open(disk as SharedDevice, clock.clone(), config.clone(), 32) {
            Err(_) => {
                assert!(
                    expected.is_none(),
                    "open failed at k={k} after the device was initialized"
                );
            }
            Ok(rec) => {
                let Some(expected) = expected else {
                    // Mid-initialization image that happens to open; it
                    // carries no committed user data to check.
                    continue;
                };
                let vol = rec.unlock_public("decoy").unwrap();
                for &(v, p) in expected {
                    assert_eq!(
                        vol.read_block(v).unwrap(),
                        vec![p; 4096],
                        "crash after {k} writes lost committed vblock {v}"
                    );
                }
            }
        }
    }
}

#[test]
fn crash_without_commit_rolls_back_to_last_transaction() {
    let clock = SimClock::new();
    let disk = Arc::new(MemDisk::new(4096, 4096, clock.clone()));
    let mc = MobiCeal::initialize(
        disk.clone() as SharedDevice,
        clock.clone(),
        fast_config(),
        "decoy",
        &["hidden"],
        1,
    )
    .unwrap();
    let public = mc.unlock_public("decoy").unwrap();
    public.write_block(0, &vec![0xAA; 4096]).unwrap();
    mc.commit().unwrap();
    public.write_block(1, &vec![0xBB; 4096]).unwrap();
    // Crash: no commit.
    drop((public, mc));

    let mc2 = MobiCeal::open(disk as SharedDevice, clock, fast_config(), 2).unwrap();
    let public = mc2.unlock_public("decoy").unwrap();
    assert_eq!(public.read_block(0).unwrap(), vec![0xAA; 4096], "committed data survives");
    // The uncommitted mapping is gone: the thin layer reads zeros, which
    // dm-crypt "decrypts" into garbage — exactly like reading unwritten
    // space on a real dm-crypt device. The written value must NOT survive.
    let rolled_back = public.read_block(1).unwrap();
    assert_ne!(rolled_back, vec![0xBB; 4096], "uncommitted write must not survive a crash");
}

#[test]
fn footer_corruption_is_detected_at_open() {
    let clock = SimClock::new();
    let disk = Arc::new(MemDisk::new(4096, 4096, clock.clone()));
    let mc = MobiCeal::initialize(
        disk.clone() as SharedDevice,
        clock.clone(),
        fast_config(),
        "decoy",
        &[],
        3,
    )
    .unwrap();
    mc.commit().unwrap();
    drop(mc);
    // Wipe the footer region (last 4 blocks of a 16 KiB footer at 4 KiB).
    for b in (4096 - 4)..4096 {
        disk.write_block(b, &vec![0u8; 4096]).unwrap();
    }
    assert!(matches!(
        MobiCeal::open(disk as SharedDevice, clock, fast_config(), 4),
        Err(MobiCealError::NotInitialized { .. })
    ));
}

#[test]
fn metadata_region_corruption_is_detected_at_open() {
    let clock = SimClock::new();
    let disk = Arc::new(MemDisk::new(4096, 4096, clock.clone()));
    let mc = MobiCeal::initialize(
        disk.clone() as SharedDevice,
        clock.clone(),
        fast_config(),
        "decoy",
        &[],
        5,
    )
    .unwrap();
    mc.commit().unwrap();
    drop(mc);
    // Zero the pool superblock (block 0 of the metadata region).
    disk.write_block(0, &vec![0u8; 4096]).unwrap();
    assert!(matches!(
        MobiCeal::open(disk as SharedDevice, clock, fast_config(), 6),
        Err(MobiCealError::NotInitialized { .. })
    ));
}

#[test]
fn device_write_faults_surface_as_errors_not_corruption() {
    let clock = SimClock::new();
    let disk = Arc::new(MemDisk::new(4096, 4096, clock.clone()));
    let mc = MobiCeal::initialize(
        disk.clone() as SharedDevice,
        clock,
        fast_config(),
        "decoy",
        &["hidden"],
        7,
    )
    .unwrap();
    let public = mc.unlock_public("decoy").unwrap();
    public.write_block(0, &vec![0x11; 4096]).unwrap();

    // Make a specific physical block fail on write; retries on other
    // blocks keep working.
    let mut faults = FaultInjection::default();
    for b in 100..4096 {
        faults.failing_writes.insert(b);
    }
    disk.set_faults(faults);
    let mut failures = 0;
    for i in 1..50 {
        if public.write_block(i, &vec![0x22; 4096]).is_err() {
            failures += 1;
        }
    }
    assert!(failures > 0, "with nearly all blocks failing, some writes must error");
    disk.set_faults(FaultInjection::default());
    // Previously written data still reads back.
    assert_eq!(public.read_block(0).unwrap(), vec![0x11; 4096]);
}

#[test]
fn device_death_mid_session() {
    let clock = SimClock::new();
    let disk = Arc::new(MemDisk::new(4096, 4096, clock.clone()));
    let mc =
        MobiCeal::initialize(disk.clone() as SharedDevice, clock, fast_config(), "decoy", &[], 8)
            .unwrap();
    let public = mc.unlock_public("decoy").unwrap();
    public.write_block(0, &vec![1u8; 4096]).unwrap();
    disk.set_faults(FaultInjection { die_after_ops: Some(0), ..Default::default() });
    assert!(public.write_block(1, &vec![2u8; 4096]).is_err());
    assert!(public.read_block(0).is_err());
    assert!(mc.commit().is_err(), "commit must not pretend to succeed on a dead device");
}

#[test]
fn wrong_password_attempts_do_not_perturb_state() {
    let clock = SimClock::new();
    let disk = Arc::new(MemDisk::new(4096, 4096, clock.clone()));
    let mc = MobiCeal::initialize(
        disk.clone() as SharedDevice,
        clock,
        fast_config(),
        "decoy",
        &["hidden"],
        9,
    )
    .unwrap();
    let before = disk.snapshot();
    for guess in ["a", "b", "decoyx", "hidden1", ""] {
        assert!(mc.unlock_public(guess).is_err());
        assert!(mc.unlock_hidden(guess).is_err());
    }
    let after = disk.snapshot();
    assert!(before.changed_blocks(&after).is_empty(), "failed unlocks must not write anything");
}

#[test]
fn reopen_with_wrong_volume_count_is_rejected() {
    let clock = SimClock::new();
    let disk = Arc::new(MemDisk::new(4096, 4096, clock.clone()));
    let mc = MobiCeal::initialize(
        disk.clone() as SharedDevice,
        clock.clone(),
        fast_config(),
        "decoy",
        &[],
        10,
    )
    .unwrap();
    mc.commit().unwrap();
    drop(mc);
    let wrong = MobiCealConfig { num_volumes: 9, ..fast_config() };
    assert!(matches!(
        MobiCeal::open(disk as SharedDevice, clock, wrong, 11),
        Err(MobiCealError::NotInitialized { .. })
    ));
}
