//! Integration: failure injection — crashes, torn commits, device faults,
//! wrong passwords at every stage.

use mobiceal::{MobiCeal, MobiCealConfig, MobiCealError};
use mobiceal_blockdev::{BlockDevice, FaultInjection, MemDisk, SharedDevice};
use mobiceal_sim::SimClock;
use std::sync::Arc;

fn fast_config() -> MobiCealConfig {
    MobiCealConfig {
        num_volumes: 5,
        pbkdf2_iterations: 4,
        metadata_blocks: 64,
        ..Default::default()
    }
}

#[test]
fn crash_without_commit_rolls_back_to_last_transaction() {
    let clock = SimClock::new();
    let disk = Arc::new(MemDisk::new(4096, 4096, clock.clone()));
    let mc = MobiCeal::initialize(
        disk.clone() as SharedDevice,
        clock.clone(),
        fast_config(),
        "decoy",
        &["hidden"],
        1,
    )
    .unwrap();
    let public = mc.unlock_public("decoy").unwrap();
    public.write_block(0, &vec![0xAA; 4096]).unwrap();
    mc.commit().unwrap();
    public.write_block(1, &vec![0xBB; 4096]).unwrap();
    // Crash: no commit.
    drop((public, mc));

    let mc2 = MobiCeal::open(disk as SharedDevice, clock, fast_config(), 2).unwrap();
    let public = mc2.unlock_public("decoy").unwrap();
    assert_eq!(public.read_block(0).unwrap(), vec![0xAA; 4096], "committed data survives");
    // The uncommitted mapping is gone: the thin layer reads zeros, which
    // dm-crypt "decrypts" into garbage — exactly like reading unwritten
    // space on a real dm-crypt device. The written value must NOT survive.
    let rolled_back = public.read_block(1).unwrap();
    assert_ne!(rolled_back, vec![0xBB; 4096], "uncommitted write must not survive a crash");
}

#[test]
fn footer_corruption_is_detected_at_open() {
    let clock = SimClock::new();
    let disk = Arc::new(MemDisk::new(4096, 4096, clock.clone()));
    let mc = MobiCeal::initialize(
        disk.clone() as SharedDevice,
        clock.clone(),
        fast_config(),
        "decoy",
        &[],
        3,
    )
    .unwrap();
    mc.commit().unwrap();
    drop(mc);
    // Wipe the footer region (last 4 blocks of a 16 KiB footer at 4 KiB).
    for b in (4096 - 4)..4096 {
        disk.write_block(b, &vec![0u8; 4096]).unwrap();
    }
    assert!(matches!(
        MobiCeal::open(disk as SharedDevice, clock, fast_config(), 4),
        Err(MobiCealError::NotInitialized { .. })
    ));
}

#[test]
fn metadata_region_corruption_is_detected_at_open() {
    let clock = SimClock::new();
    let disk = Arc::new(MemDisk::new(4096, 4096, clock.clone()));
    let mc = MobiCeal::initialize(
        disk.clone() as SharedDevice,
        clock.clone(),
        fast_config(),
        "decoy",
        &[],
        5,
    )
    .unwrap();
    mc.commit().unwrap();
    drop(mc);
    // Zero the pool superblock (block 0 of the metadata region).
    disk.write_block(0, &vec![0u8; 4096]).unwrap();
    assert!(matches!(
        MobiCeal::open(disk as SharedDevice, clock, fast_config(), 6),
        Err(MobiCealError::NotInitialized { .. })
    ));
}

#[test]
fn device_write_faults_surface_as_errors_not_corruption() {
    let clock = SimClock::new();
    let disk = Arc::new(MemDisk::new(4096, 4096, clock.clone()));
    let mc = MobiCeal::initialize(
        disk.clone() as SharedDevice,
        clock,
        fast_config(),
        "decoy",
        &["hidden"],
        7,
    )
    .unwrap();
    let public = mc.unlock_public("decoy").unwrap();
    public.write_block(0, &vec![0x11; 4096]).unwrap();

    // Make a specific physical block fail on write; retries on other
    // blocks keep working.
    let mut faults = FaultInjection::default();
    for b in 100..4096 {
        faults.failing_writes.insert(b);
    }
    disk.set_faults(faults);
    let mut failures = 0;
    for i in 1..50 {
        if public.write_block(i, &vec![0x22; 4096]).is_err() {
            failures += 1;
        }
    }
    assert!(failures > 0, "with nearly all blocks failing, some writes must error");
    disk.set_faults(FaultInjection::default());
    // Previously written data still reads back.
    assert_eq!(public.read_block(0).unwrap(), vec![0x11; 4096]);
}

#[test]
fn device_death_mid_session() {
    let clock = SimClock::new();
    let disk = Arc::new(MemDisk::new(4096, 4096, clock.clone()));
    let mc =
        MobiCeal::initialize(disk.clone() as SharedDevice, clock, fast_config(), "decoy", &[], 8)
            .unwrap();
    let public = mc.unlock_public("decoy").unwrap();
    public.write_block(0, &vec![1u8; 4096]).unwrap();
    disk.set_faults(FaultInjection { die_after_ops: Some(0), ..Default::default() });
    assert!(public.write_block(1, &vec![2u8; 4096]).is_err());
    assert!(public.read_block(0).is_err());
    assert!(mc.commit().is_err(), "commit must not pretend to succeed on a dead device");
}

#[test]
fn wrong_password_attempts_do_not_perturb_state() {
    let clock = SimClock::new();
    let disk = Arc::new(MemDisk::new(4096, 4096, clock.clone()));
    let mc = MobiCeal::initialize(
        disk.clone() as SharedDevice,
        clock,
        fast_config(),
        "decoy",
        &["hidden"],
        9,
    )
    .unwrap();
    let before = disk.snapshot();
    for guess in ["a", "b", "decoyx", "hidden1", ""] {
        assert!(mc.unlock_public(guess).is_err());
        assert!(mc.unlock_hidden(guess).is_err());
    }
    let after = disk.snapshot();
    assert!(before.changed_blocks(&after).is_empty(), "failed unlocks must not write anything");
}

#[test]
fn reopen_with_wrong_volume_count_is_rejected() {
    let clock = SimClock::new();
    let disk = Arc::new(MemDisk::new(4096, 4096, clock.clone()));
    let mc = MobiCeal::initialize(
        disk.clone() as SharedDevice,
        clock.clone(),
        fast_config(),
        "decoy",
        &[],
        10,
    )
    .unwrap();
    mc.commit().unwrap();
    drop(mc);
    let wrong = MobiCealConfig { num_volumes: 9, ..fast_config() };
    assert!(matches!(
        MobiCeal::open(disk as SharedDevice, clock, wrong, 11),
        Err(MobiCealError::NotInitialized { .. })
    ));
}
