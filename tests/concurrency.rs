//! Integration: concurrent access. The kernel block layer is inherently
//! concurrent — Vold, the file system, and the dummy-write path all touch
//! the pool at once — so the MobiCeal stack must be `Send + Sync` and keep
//! its invariants under parallel load.

use mobiceal::{MobiCeal, MobiCealConfig, UnlockedVolume};
use mobiceal_blockdev::{BlockDevice, MemDisk, SharedDevice};
use mobiceal_sim::SimClock;
use std::sync::Arc;
use std::thread;

fn fast_config() -> MobiCealConfig {
    MobiCealConfig {
        num_volumes: 6,
        pbkdf2_iterations: 4,
        metadata_blocks: 64,
        ..Default::default()
    }
}

fn fresh(seed: u64, blocks: u64) -> MobiCeal {
    let clock = SimClock::new();
    let disk = Arc::new(MemDisk::new(blocks, 4096, clock.clone()));
    MobiCeal::initialize(disk as SharedDevice, clock, fast_config(), "decoy", &["hidden"], seed)
        .unwrap()
}

#[test]
fn types_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MobiCeal>();
    assert_send_sync::<UnlockedVolume>();
    assert_send_sync::<mobiceal_blockdev::MemDisk>();
    assert_send_sync::<mobiceal_thinp::ThinPool>();
    assert_send_sync::<mobiceal_thinp::ThinVolume>();
}

#[test]
fn parallel_public_and_hidden_writers() {
    let mc = Arc::new(fresh(1, 16384));
    let public = mc.unlock_public("decoy").unwrap();
    let hidden = mc.unlock_hidden("hidden").unwrap();

    let pub_handle = {
        let public = public.clone();
        thread::spawn(move || {
            for i in 0..300u64 {
                public.write_block(i, &vec![0xAA; 4096]).unwrap();
            }
        })
    };
    let hid_handle = {
        let hidden = hidden.clone();
        thread::spawn(move || {
            for i in 0..300u64 {
                hidden.write_block(i, &vec![0xBB; 4096]).unwrap();
            }
        })
    };
    pub_handle.join().unwrap();
    hid_handle.join().unwrap();

    for i in 0..300u64 {
        assert_eq!(public.read_block(i).unwrap(), vec![0xAA; 4096], "public {i}");
        assert_eq!(hidden.read_block(i).unwrap(), vec![0xBB; 4096], "hidden {i}");
    }
    // No aliasing despite interleaved allocation.
    let view = mc.metadata_view();
    let mut seen = std::collections::HashSet::new();
    for vol in view.volumes.values() {
        for p in vol.mappings.values() {
            assert!(seen.insert(p), "physical block {p} double-mapped");
        }
    }
}

#[test]
fn many_threads_hammer_one_volume() {
    let mc = Arc::new(fresh(2, 16384));
    let public = mc.unlock_public("decoy").unwrap();
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let vol = public.clone();
        handles.push(thread::spawn(move || {
            // Disjoint block ranges per thread.
            for i in 0..150u64 {
                let block = t * 150 + i;
                vol.write_block(block, &vec![t as u8 + 1; 4096]).unwrap();
                assert_eq!(vol.read_block(block).unwrap(), vec![t as u8 + 1; 4096]);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    for t in 0..4u64 {
        for i in 0..150u64 {
            assert_eq!(public.read_block(t * 150 + i).unwrap(), vec![t as u8 + 1; 4096]);
        }
    }
}

#[test]
fn parallel_batched_volumes_match_sequential_execution() {
    // The sharded-lock acceptance pin: two volumes pushing *batched*
    // writes concurrently through the full stack (dm-crypt → PDE → thin
    // pool → sharded MemDisk) land exactly the plaintext a sequential
    // execution of the same batches lands, with no physical aliasing and
    // with the same write volume reaching the medium.
    let clock = SimClock::new();
    let disk = Arc::new(MemDisk::new(16384, 4096, clock.clone()));
    let mc = Arc::new(
        MobiCeal::initialize(
            disk.clone() as SharedDevice,
            clock.clone(),
            fast_config(),
            "decoy",
            &["hidden"],
            21,
        )
        .unwrap(),
    );
    let public = mc.unlock_public("decoy").unwrap();
    let hidden = mc.unlock_hidden("hidden").unwrap();

    let drive = |vol: UnlockedVolume, fill: u8| {
        move || {
            let data = vec![fill; 4096];
            for round in 0..10u64 {
                let batch: Vec<(u64, &[u8])> =
                    (0..32).map(|i| (round * 32 + i, data.as_slice())).collect();
                vol.write_blocks(&batch).unwrap();
            }
        }
    };
    let handles = vec![
        thread::spawn(drive(public.clone(), 0xAA)),
        thread::spawn(drive(hidden.clone(), 0xBB)),
    ];
    for h in handles {
        h.join().unwrap();
    }

    // Sequential twin with the same seed and batches.
    let seq_clock = SimClock::new();
    let seq_disk = Arc::new(MemDisk::new(16384, 4096, seq_clock.clone()));
    let seq_mc = MobiCeal::initialize(
        seq_disk.clone() as SharedDevice,
        seq_clock.clone(),
        fast_config(),
        "decoy",
        &["hidden"],
        21,
    )
    .unwrap();
    let seq_public = seq_mc.unlock_public("decoy").unwrap();
    let seq_hidden = seq_mc.unlock_hidden("hidden").unwrap();
    drive(seq_public.clone(), 0xAA)();
    drive(seq_hidden.clone(), 0xBB)();

    // Identical plaintext on both executions.
    let indices: Vec<u64> = (0..320u64).collect();
    assert_eq!(
        public.read_blocks(&indices).unwrap(),
        seq_public.read_blocks(&indices).unwrap(),
        "public plaintext is schedule-independent"
    );
    assert_eq!(
        hidden.read_blocks(&indices).unwrap(),
        seq_hidden.read_blocks(&indices).unwrap(),
        "hidden plaintext is schedule-independent"
    );
    // Same write volume reached the medium, and the sharded disk's stats
    // account for every charged nanosecond.
    assert_eq!(disk.stats().bytes_written(), seq_disk.stats().bytes_written());
    // No physical block serves two volumes, whatever the interleaving.
    let view = mc.metadata_view();
    let mut seen = std::collections::HashSet::new();
    for vol in view.volumes.values() {
        for p in vol.mappings.values() {
            assert!(seen.insert(p), "physical block {p} double-mapped");
        }
    }
    mc.commit().unwrap();
}

#[test]
fn commits_race_with_writers_safely() {
    let mc = Arc::new(fresh(3, 16384));
    let public = mc.unlock_public("decoy").unwrap();
    let committer = {
        let mc = Arc::clone(&mc);
        thread::spawn(move || {
            for _ in 0..20 {
                mc.commit().unwrap();
            }
        })
    };
    let writer = {
        let public = public.clone();
        thread::spawn(move || {
            for i in 0..400u64 {
                public.write_block(i, &vec![0x5C; 4096]).unwrap();
            }
        })
    };
    committer.join().unwrap();
    writer.join().unwrap();
    mc.commit().unwrap();
    for i in 0..400u64 {
        assert_eq!(public.read_block(i).unwrap(), vec![0x5C; 4096]);
    }
}
