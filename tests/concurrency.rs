//! Integration: concurrent access. The kernel block layer is inherently
//! concurrent — Vold, the file system, and the dummy-write path all touch
//! the pool at once — so the MobiCeal stack must be `Send + Sync` and keep
//! its invariants under parallel load.

use mobiceal::{MobiCeal, MobiCealConfig, UnlockedVolume};
use mobiceal_blockdev::{BlockDevice, MemDisk, SharedDevice};
use mobiceal_sim::SimClock;
use std::sync::Arc;
use std::thread;

fn fast_config() -> MobiCealConfig {
    MobiCealConfig {
        num_volumes: 6,
        pbkdf2_iterations: 4,
        metadata_blocks: 64,
        ..Default::default()
    }
}

fn fresh(seed: u64, blocks: u64) -> MobiCeal {
    let clock = SimClock::new();
    let disk = Arc::new(MemDisk::new(blocks, 4096, clock.clone()));
    MobiCeal::initialize(disk as SharedDevice, clock, fast_config(), "decoy", &["hidden"], seed)
        .unwrap()
}

#[test]
fn types_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MobiCeal>();
    assert_send_sync::<UnlockedVolume>();
    assert_send_sync::<mobiceal_blockdev::MemDisk>();
    assert_send_sync::<mobiceal_thinp::ThinPool>();
    assert_send_sync::<mobiceal_thinp::ThinVolume>();
}

#[test]
fn parallel_public_and_hidden_writers() {
    let mc = Arc::new(fresh(1, 16384));
    let public = mc.unlock_public("decoy").unwrap();
    let hidden = mc.unlock_hidden("hidden").unwrap();

    let pub_handle = {
        let public = public.clone();
        thread::spawn(move || {
            for i in 0..300u64 {
                public.write_block(i, &vec![0xAA; 4096]).unwrap();
            }
        })
    };
    let hid_handle = {
        let hidden = hidden.clone();
        thread::spawn(move || {
            for i in 0..300u64 {
                hidden.write_block(i, &vec![0xBB; 4096]).unwrap();
            }
        })
    };
    pub_handle.join().unwrap();
    hid_handle.join().unwrap();

    for i in 0..300u64 {
        assert_eq!(public.read_block(i).unwrap(), vec![0xAA; 4096], "public {i}");
        assert_eq!(hidden.read_block(i).unwrap(), vec![0xBB; 4096], "hidden {i}");
    }
    // No aliasing despite interleaved allocation.
    let view = mc.metadata_view();
    let mut seen = std::collections::HashSet::new();
    for vol in view.volumes.values() {
        for &p in vol.mappings.values() {
            assert!(seen.insert(p), "physical block {p} double-mapped");
        }
    }
}

#[test]
fn many_threads_hammer_one_volume() {
    let mc = Arc::new(fresh(2, 16384));
    let public = mc.unlock_public("decoy").unwrap();
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let vol = public.clone();
        handles.push(thread::spawn(move || {
            // Disjoint block ranges per thread.
            for i in 0..150u64 {
                let block = t * 150 + i;
                vol.write_block(block, &vec![t as u8 + 1; 4096]).unwrap();
                assert_eq!(vol.read_block(block).unwrap(), vec![t as u8 + 1; 4096]);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    for t in 0..4u64 {
        for i in 0..150u64 {
            assert_eq!(public.read_block(t * 150 + i).unwrap(), vec![t as u8 + 1; 4096]);
        }
    }
}

#[test]
fn commits_race_with_writers_safely() {
    let mc = Arc::new(fresh(3, 16384));
    let public = mc.unlock_public("decoy").unwrap();
    let committer = {
        let mc = Arc::clone(&mc);
        thread::spawn(move || {
            for _ in 0..20 {
                mc.commit().unwrap();
            }
        })
    };
    let writer = {
        let public = public.clone();
        thread::spawn(move || {
            for i in 0..400u64 {
                public.write_block(i, &vec![0x5C; 4096]).unwrap();
            }
        })
    };
    committer.join().unwrap();
    writer.join().unwrap();
    mc.commit().unwrap();
    for i in 0..400u64 {
        assert_eq!(public.read_block(i).unwrap(), vec![0x5C; 4096]);
    }
}
