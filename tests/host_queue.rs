//! Host-queue forwarding audit. `host_queue_enter`/`host_queue_leave`
//! register a queued-but-unexecuted command slot with the device so the CQE
//! cost model charges concurrent work at the real queue depth. Every
//! wrapper in the tree must forward the pair untouched to its backing
//! device — a wrapper that swallows it silently flattens the charged depth
//! to 1 and the queue-depth experiments stop measuring anything.
//!
//! MemDisk exposes no public in-flight getter, so the audit is
//! charge-based: under `EmmcCostModel::emmc51_cqe`, holding two queue slots
//! while a batch executes discounts the charge (occupancy 3 instead of 1).
//! For each wrapper we run the identical batch twice on identically
//! constructed stacks — once holding the slots *through the wrapper*, once
//! holding them *directly on the MemDisk* — and require bit-identical
//! simulated time. A wrapper that drops the calls would charge the unheld
//! (more expensive) time instead and fail the equality.

use mobiceal_baselines::{AndroidFde, DefyLite, HiveWoOram};
use mobiceal_blockdev::{
    BlockDevice, CacheConfig, CrashDisk, EngineDevice, IoEngine, MemDisk, SharedDevice,
    WriteBackCache,
};
use mobiceal_dm::{DmCrypt, DmLinear};
use mobiceal_sim::{EmmcCostModel, SimClock};
use mobiceal_thinp::{AllocStrategy, PoolConfig, ThinPool};
use std::sync::Arc;

const BS: usize = 4096;

fn cqe_disk(blocks: u64, clock: &SimClock) -> Arc<MemDisk> {
    Arc::new(MemDisk::with_cost_model(
        blocks,
        BS,
        clock.clone(),
        Arc::new(EmmcCostModel::emmc51_cqe()),
    ))
}

/// Runs a 16-block batched write through `dev` while two host-queue slots
/// are held on `hold_on`, returning the simulated nanoseconds charged.
fn charged_while_held(
    dev: &dyn BlockDevice,
    hold_on: &dyn BlockDevice,
    clock: &SimClock,
    holds: usize,
) -> u64 {
    let data = vec![0xA7u8; BS];
    let writes: Vec<(u64, &[u8])> = (0..16u64).map(|b| (b, data.as_slice())).collect();
    for _ in 0..holds {
        hold_on.host_queue_enter();
    }
    let t0 = clock.now();
    dev.write_blocks(&writes).unwrap();
    let elapsed = (clock.now() - t0).as_nanos();
    for _ in 0..holds {
        hold_on.host_queue_leave();
    }
    elapsed
}

/// The audit itself: `build` constructs a fresh stack over a fresh CQE
/// MemDisk and returns `(wrapper, disk, clock)`. The wrapper-held charge
/// must equal the disk-held charge, and both must be cheaper than the
/// unheld run (proving the held runs actually reached the depth counter —
/// if the discount never fired, the equality would be vacuous).
fn audit_forwarding<F>(name: &str, build: F)
where
    F: Fn() -> (Box<dyn BlockDevice>, Arc<MemDisk>, SimClock),
{
    let (dev, disk, clock) = build();
    let via_wrapper = charged_while_held(dev.as_ref(), dev.as_ref(), &clock, 2);
    let (dev, disk2, clock) = build();
    let via_disk = charged_while_held(dev.as_ref(), disk2.as_ref(), &clock, 2);
    let (dev, _, clock) = build();
    let unheld = charged_while_held(dev.as_ref(), disk.as_ref(), &clock, 0);
    assert_eq!(
        via_wrapper, via_disk,
        "{name}: holding through the wrapper must charge exactly like holding on the MemDisk"
    );
    assert!(
        via_wrapper < unheld,
        "{name}: held queue slots must discount the batch ({via_wrapper} !< {unheld} ns)"
    );
}

#[test]
fn dm_linear_forwards_host_queue_holds() {
    audit_forwarding("DmLinear", || {
        let clock = SimClock::new();
        let disk = cqe_disk(128, &clock);
        let lin = DmLinear::new(disk.clone() as SharedDevice, 16, 64).unwrap();
        (Box::new(lin), disk, clock)
    });
}

#[test]
fn dm_crypt_forwards_host_queue_holds() {
    audit_forwarding("DmCrypt", || {
        let clock = SimClock::new();
        let disk = cqe_disk(128, &clock);
        let crypt = DmCrypt::new_essiv(disk.clone() as SharedDevice, &[9u8; 32]);
        (Box::new(crypt), disk, clock)
    });
}

#[test]
fn thin_volume_forwards_host_queue_holds() {
    audit_forwarding("ThinVolume", || {
        let clock = SimClock::new();
        let disk = cqe_disk(256, &clock);
        let meta = Arc::new(MemDisk::new(64, BS, clock.clone()));
        let pool = ThinPool::create(
            disk.clone() as SharedDevice,
            meta as SharedDevice,
            PoolConfig::new(4),
            AllocStrategy::Sequential,
        )
        .unwrap();
        let vol = pool.create_volume(1, 128).unwrap();
        // Leak the pool so the volume handle stays live for the audit.
        std::mem::forget(pool);
        (Box::new(vol), disk, clock)
    });
}

#[test]
fn crash_disk_forwards_host_queue_holds() {
    // CrashDisk owns its MemDisk by value, so this audit holds the control
    // leg via `inner()` instead of an external Arc handle.
    let build = || {
        let clock = SimClock::new();
        let inner =
            MemDisk::with_cost_model(128, BS, clock.clone(), Arc::new(EmmcCostModel::emmc51_cqe()));
        (CrashDisk::new(inner), clock)
    };
    let (crash, clock) = build();
    let via_wrapper = charged_while_held(&crash, &crash, &clock, 2);
    let (crash, clock) = build();
    let via_disk = charged_while_held(&crash, crash.inner(), &clock, 2);
    let (crash, clock) = build();
    let unheld = charged_while_held(&crash, crash.inner(), &clock, 0);
    assert_eq!(via_wrapper, via_disk, "CrashDisk must forward host-queue holds");
    assert!(via_wrapper < unheld, "held slots must discount ({via_wrapper} !< {unheld} ns)");
}

#[test]
fn engine_device_forwards_host_queue_holds() {
    audit_forwarding("EngineDevice", || {
        let clock = SimClock::new();
        let disk = cqe_disk(128, &clock);
        let engine = Arc::new(IoEngine::new(disk.clone() as SharedDevice, 1));
        (Box::new(EngineDevice(engine)), disk, clock)
    });
}

#[test]
fn write_back_cache_forwards_host_queue_holds() {
    // A tiny cache so the 16-block batch immediately evicts 12 dirty
    // victims: the write-back happens inside the audited window and must
    // see the held depth.
    audit_forwarding("WriteBackCache", || {
        let clock = SimClock::new();
        let disk = cqe_disk(128, &clock);
        let cache = WriteBackCache::new(
            disk.clone() as SharedDevice,
            CacheConfig { capacity_blocks: 4, shards: 2 },
        );
        (Box::new(cache), disk, clock)
    });
}

#[test]
fn fde_offset_device_forwards_host_queue_holds() {
    audit_forwarding("AndroidFde/OffsetDevice", || {
        let clock = SimClock::new();
        let disk = cqe_disk(256, &clock);
        let fde =
            AndroidFde::initialize(disk.clone() as SharedDevice, clock.clone(), "pwd", 3).unwrap();
        let vol = fde.unlock("pwd").unwrap();
        (Box::new(vol), disk, clock)
    });
}

#[test]
fn hive_forwards_host_queue_holds() {
    audit_forwarding("HiveWoOram", || {
        let clock = SimClock::new();
        let disk = cqe_disk(600, &clock);
        let oram = HiveWoOram::new(disk.clone() as SharedDevice, clock.clone(), 256, [7u8; 64], 21)
            .unwrap();
        (Box::new(oram), disk, clock)
    });
}

#[test]
fn defy_forwards_host_queue_holds() {
    audit_forwarding("DefyLite", || {
        let clock = SimClock::new();
        let disk = cqe_disk(512, &clock);
        let defy =
            DefyLite::new(disk.clone() as SharedDevice, clock.clone(), 128, [3u8; 32]).unwrap();
        (Box::new(defy), disk, clock)
    });
}

#[test]
fn full_mobiceal_stack_forwards_host_queue_holds() {
    // The deepest path: UnlockedVolume → [WriteBackCache] → DmCrypt →
    // PdeVolume → ThinVolume → ThinPool → DmLinear → MemDisk. A hold taken
    // at the very top must reach the bottom counter, cached or not.
    // The cached variant uses a 4-block cache so the audited 16-block batch
    // forces a 12-victim write-back inside the measured window (a big cache
    // would absorb the whole batch and charge nothing either way).
    use mobiceal::{MobiCeal, MobiCealConfig};
    for cache_blocks in [0usize, 4] {
        audit_forwarding(
            if cache_blocks == 0 { "MobiCeal (uncached)" } else { "MobiCeal (cached)" },
            || {
                let clock = SimClock::new();
                let disk = cqe_disk(8192, &clock);
                let mc = MobiCeal::initialize(
                    disk.clone() as SharedDevice,
                    clock.clone(),
                    MobiCealConfig {
                        num_volumes: 5,
                        pbkdf2_iterations: 4,
                        metadata_blocks: 64,
                        x: 1, // deterministic: the dummy trigger never fires
                        cache_blocks,
                        cache_shards: 4,
                        ..Default::default()
                    },
                    "decoy",
                    &["hidden"],
                    7,
                )
                .unwrap();
                let vol = mc.unlock_public("decoy").unwrap();
                std::mem::forget(mc);
                (Box::new(vol), disk, clock)
            },
        );
    }
}
