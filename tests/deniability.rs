//! Integration: deniability end-to-end — the coercion story, the empirical
//! security game, and the side channel.

use mobiceal_adversary::{
    run_distinguisher_game, ChangedFreeSpaceDistinguisher, Distinguisher, DummyBudgetDistinguisher,
    GameConfig, SequentialRunDistinguisher, SideChannelDistinguisher,
};
use mobiceal_baselines::worlds::{MobiCealWorld, MobiPlutoWorld, WORLD_DISK_BLOCKS};

fn quick_game() -> GameConfig {
    GameConfig {
        rounds: 24,
        events_per_round: 8,
        public_blocks: (4, 16),
        hidden_blocks: (2, 10),
        hidden_event_prob: 0.5,
    }
}

#[test]
fn mobiceal_blinds_all_standard_distinguishers() {
    let cfg = quick_game();
    let distinguishers: Vec<Box<dyn Distinguisher>> = vec![
        Box::new(ChangedFreeSpaceDistinguisher {
            public_volume: 1,
            data_region_start: MobiCealWorld::data_region_start(),
            data_region_blocks: MobiCealWorld::data_region_blocks(),
        }),
        Box::new(DummyBudgetDistinguisher {
            public_volume: 1,
            lambda: MobiCealWorld::lambda(),
            safety_sigmas: 4.0,
        }),
        Box::new(SequentialRunDistinguisher {
            public_volume: 1,
            data_region_start: MobiCealWorld::data_region_start(),
            min_run: 8,
        }),
    ];
    for d in &distinguishers {
        let result = run_distinguisher_game(MobiCealWorld::build, d.as_ref(), &cfg, 7);
        assert!(result.advantage < 0.25, "{} should be blind against MobiCeal: {result}", d.name());
    }
}

#[test]
fn snapshot_differencing_breaks_the_legacy_baseline() {
    let cfg = quick_game();
    let d = ChangedFreeSpaceDistinguisher {
        public_volume: 1,
        data_region_start: 64,
        data_region_blocks: WORLD_DISK_BLOCKS - 64 - 4,
    };
    let result = run_distinguisher_game(MobiPlutoWorld::build, &d, &cfg, 7);
    assert!(result.accuracy > 0.85, "MobiPluto must be broken: {result}");
    assert!(!result.is_blind());
}

#[test]
fn coerced_disclosure_reveals_only_the_public_volume() {
    let mut world = MobiCealWorld::build(42, true);
    use mobiceal_adversary::GameWorld;
    world.public_write(50);
    world.hidden_write(30);
    let obs = world.observe();
    // The adversary knows the decoy password was disclosed -> can account
    // for the public volume. All remaining volumes look alike: each is
    // non-empty (headers + dummy/hidden data), none is decryptable.
    let ids = obs.volume_ids();
    assert_eq!(ids.len(), 6);
    for id in ids {
        assert!(obs.mapped_blocks(id) >= 1, "volume {id} has a footprint");
    }
}

#[test]
fn side_channel_grep_finds_nothing_after_protected_session() {
    use mobiceal::MobiCealConfig;
    use mobiceal_android::AndroidPhone;
    use mobiceal_sim::SimClock;

    let cfg = MobiCealConfig { pbkdf2_iterations: 4, metadata_blocks: 64, ..Default::default() };
    let mut phone = AndroidPhone::new(SimClock::new(), 4096, 4096, cfg);
    phone.initialize_mobiceal("decoy", &["hidden"], 8).unwrap();
    phone.enter_boot_password("decoy").unwrap();
    phone.switch_to_hidden("hidden").unwrap();
    phone.record_activity("hidden document edited");
    phone.exit_hidden_mode();

    let grep = SideChannelDistinguisher::default();
    let obs = mobiceal_adversary::Observation {
        snapshot: phone.snapshot(),
        metadata: None,
        logs: phone.logs().persistent().to_vec(),
    };
    assert!(!grep.decide(&[obs]));
}

#[test]
fn hidden_volume_headers_and_dummy_headers_are_indistinguishable_noise() {
    // Compare header blocks across non-public volumes at the raw-disk
    // level: all are high-entropy, none carries a recognizable marker.
    let world = MobiCealWorld::build(99, true);
    use mobiceal_adversary::GameWorld;
    let obs = world.observe();
    let meta = obs.metadata.as_ref().unwrap();
    let offset = MobiCealWorld::data_region_start();
    for (&id, vol) in &meta.volumes {
        if id == 1 {
            continue;
        }
        let phys = vol.mappings.get(&0).unwrap() + offset;
        let entropy = obs.snapshot.block_entropy(phys);
        assert!(entropy > 7.0, "volume {id} header entropy {entropy}");
        let block = obs.snapshot.block(phys);
        assert!(
            !block.windows(8).any(|w| w == b"MCVOLHDR"),
            "header magic must never appear in plaintext on disk"
        );
    }
}

#[test]
fn dummy_budget_distinguisher_catches_reckless_hidden_bulk_writes() {
    // The paper's own caveat (§IV-B): a very large hidden file with no
    // public cover traffic IS detectable by budget accounting. Verify the
    // reproduction preserves this documented limitation.
    let cfg = GameConfig {
        rounds: 24,
        events_per_round: 6,
        public_blocks: (1, 2),   // almost no public traffic
        hidden_blocks: (64, 96), // huge hidden writes
        hidden_event_prob: 1.0,
    };
    let d = DummyBudgetDistinguisher {
        public_volume: 1,
        lambda: MobiCealWorld::lambda(),
        safety_sigmas: 4.0,
    };
    let result = run_distinguisher_game(MobiCealWorld::build, &d, &cfg, 11);
    assert!(
        result.accuracy > 0.85,
        "reckless hidden usage must be detectable, as the paper admits: {result}"
    );
}

#[test]
fn cover_discipline_restores_deniability_for_bulk_hidden_writes() {
    // Same reckless pattern as above, but following the paper's §IV-B
    // advice (equal-sized public cover after each hidden write): the
    // budget distinguisher goes blind again.
    use mobiceal_baselines::worlds::CoveredMobiCealWorld;
    let cfg = GameConfig {
        rounds: 24,
        events_per_round: 6,
        public_blocks: (1, 2),
        hidden_blocks: (64, 96),
        hidden_event_prob: 1.0,
    };
    let d = DummyBudgetDistinguisher {
        public_volume: 1,
        lambda: MobiCealWorld::lambda(),
        safety_sigmas: 4.0,
    };
    let result = run_distinguisher_game(CoveredMobiCealWorld::build, &d, &cfg, 11);
    assert!(result.advantage < 0.25, "cover writes must blind the budget distinguisher: {result}");
}

/// The batch shapes a file system typically emits: singles, small bursts
/// and deep dd-style chunks, at stride so every write allocates fresh.
const TRACE_SHAPES: [usize; 5] = [1, 4, 16, 32, 2];

/// Writes one batch per shape through `vol` and returns the simulated time
/// the whole trace charged.
fn run_write_trace(
    vol: &dyn mobiceal_blockdev::BlockDevice,
    clock: &mobiceal_sim::SimClock,
) -> mobiceal_sim::SimDuration {
    let data = vec![0xC3u8; 4096];
    let t0 = clock.now();
    let mut base = 0u64;
    for &shape in &TRACE_SHAPES {
        let batch: Vec<(u64, &[u8])> =
            (0..shape as u64).map(|i| (base + i, data.as_slice())).collect();
        vol.write_blocks(&batch).unwrap();
        base += shape as u64;
    }
    clock.now() - t0
}

#[test]
fn batch_amortization_opens_no_timing_channel() {
    // The amortized multi-command cost model charges time from batch
    // shapes, op classification and the (volume-independent) allocation
    // stream only — never from which volume received a batch. An adversary
    // who can time the device therefore cannot distinguish worlds whose
    // write traces have identical block counts and batch shapes.
    use mobiceal::{MobiCeal, MobiCealConfig};
    use mobiceal_blockdev::{MemDisk, SharedDevice};
    use mobiceal_sim::SimClock;
    use std::sync::Arc;

    let config = || MobiCealConfig {
        num_volumes: 6,
        pbkdf2_iterations: 4,
        metadata_blocks: 64,
        ..Default::default()
    };
    let fresh = |seed: u64| {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(8192, 4096, clock.clone()));
        let mc = MobiCeal::initialize(
            disk as SharedDevice,
            clock.clone(),
            config(),
            "decoy",
            &["hidden-a", "hidden-b"],
            seed,
        )
        .unwrap();
        (clock, mc)
    };

    // (1) Two hidden volumes with different passwords land on different
    // thin-volume indices, yet an identically-shaped trace charges exactly
    // the same time: volume identity leaves no timing trace.
    let (clock_a, mc_a) = fresh(9);
    let (clock_b, mc_b) = fresh(9);
    let va = mc_a.unlock_hidden("hidden-a").unwrap();
    let vb = mc_b.unlock_hidden("hidden-b").unwrap();
    assert_ne!(va.volume_id(), vb.volume_id(), "distinct volumes by construction");
    assert_eq!(run_write_trace(&va, &clock_a), run_write_trace(&vb, &clock_b));

    // (2) Public world vs hidden world. The dummy-write trigger is part of
    // the public path, so quiesce it deterministically with x = 1 (the
    // threshold `stored_rand mod 1` is always 0, and `rand >= 1` never
    // fires): with the deniability mechanism silent, any residual
    // public/hidden timing difference would be a channel opened by the
    // cost model itself.
    let fresh_quiet = |seed: u64| {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(8192, 4096, clock.clone()));
        let mc = MobiCeal::initialize(
            disk as SharedDevice,
            clock.clone(),
            MobiCealConfig { x: 1, ..config() },
            "decoy",
            &["hidden-a", "hidden-b"],
            seed,
        )
        .unwrap();
        (clock, mc)
    };
    for seed in [3u64, 27, 91] {
        let (clock_p, mc_p) = fresh_quiet(seed);
        let public = mc_p.unlock_public("decoy").unwrap();
        let public_time = run_write_trace(&public, &clock_p);
        let stats = mc_p.dummy_stats();
        assert_eq!(
            stats.trigger_checks,
            TRACE_SHAPES.iter().sum::<usize>() as u64,
            "every fresh public block consults the trigger"
        );
        assert_eq!(stats.bursts, 0, "x = 1 must never fire");
        let (clock_h, mc_h) = fresh_quiet(seed);
        let hidden = mc_h.unlock_hidden("hidden-a").unwrap();
        let hidden_time = run_write_trace(&hidden, &clock_h);
        assert_eq!(
            public_time, hidden_time,
            "identical shapes must charge identical time (seed {seed})"
        );
    }
}

#[test]
fn pipelined_crypto_charges_are_world_independent() {
    // PR 10 rebuilt the crypto hot path around pipelined AES lanes and a
    // precomputed carry-less tweak ladder — all *real-time* machinery. The
    // virtual clock must not notice: `DmCrypt` charges `aes_cost(bytes)`
    // from byte counts alone, before any real crypto runs. Two traces with
    // identical batch shapes but disjoint physical placements — a hidden
    // volume's sectors sit at different indices, so every XTS tweak
    // sequence and ESSIV IV the ladder precomputes is a different value —
    // must charge identical simulated time and leave identical device op
    // mixes, for both cipher modes, across batch depths that fill the
    // 8-wide, 4-wide and single-block lanes differently.
    use mobiceal_blockdev::{BlockDevice, DeviceStats, MemDisk};
    use mobiceal_dm::DmCrypt;
    use mobiceal_sim::{CpuCostModel, SimClock};
    use std::sync::Arc;

    let run_trace = |base: u64, xts: bool| -> (u64, DeviceStats) {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(4096, 4096, clock.clone()));
        let crypt = if xts {
            DmCrypt::new_xts(disk.clone(), &[0x42; 64])
        } else {
            DmCrypt::new_essiv(disk.clone(), &[0x42; 32])
        }
        .with_timing(clock.clone(), CpuCostModel::nexus4());
        let data = vec![0xC3u8; 4096];
        let t0 = clock.now();
        let mut cursor = base;
        for &shape in &TRACE_SHAPES {
            let batch: Vec<(u64, &[u8])> =
                (0..shape as u64).map(|i| (cursor + i, data.as_slice())).collect();
            crypt.write_blocks(&batch).unwrap();
            cursor += shape as u64;
        }
        // Read the trace back so the decrypt ladders (the pipelined
        // CBC-ESSIV path and the XTS decrypt lanes) are in the window too.
        let indices: Vec<u64> = (base..cursor).collect();
        crypt.read_blocks(&indices).unwrap();
        ((clock.now() - t0).as_nanos(), disk.stats())
    };

    for xts in [false, true] {
        let (public_time, public_stats) = run_trace(0, xts);
        let (hidden_time, hidden_stats) = run_trace(2048, xts);
        assert_eq!(
            public_time, hidden_time,
            "identical shapes must charge identical time wherever the sectors live (xts={xts})"
        );
        assert_eq!(
            public_stats, hidden_stats,
            "identical shapes must leave identical op mixes wherever the sectors live (xts={xts})"
        );
    }
}

#[test]
fn sharded_queue_depth_charging_is_world_independent() {
    // PR 5's new machinery — shard locks and CQE queue-depth charging —
    // must open no timing channel: identical batch shapes driven at an
    // identical queue depth charge identical time and op mix whether the
    // trace targets the public world or a hidden world. The depth floor
    // pins the queue deterministically (the in-flight counter depends on
    // scheduling, the charge rule does not); the trigger is quiesced with
    // x = 1 exactly as in batch_amortization_opens_no_timing_channel.
    use mobiceal::{MobiCeal, MobiCealConfig};
    use mobiceal_blockdev::{DeviceStats, MemDisk, SharedDevice};
    use mobiceal_sim::{EmmcCostModel, SimClock};
    use std::sync::Arc;

    let run_world = |hidden_world: bool, depth_floor: usize, seed: u64| -> (u64, DeviceStats) {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::with_cost_model(
            8192,
            4096,
            clock.clone(),
            Arc::new(EmmcCostModel::emmc51_cqe()),
        ));
        disk.set_queue_depth_floor(depth_floor);
        let mc = MobiCeal::initialize(
            disk.clone() as SharedDevice,
            clock.clone(),
            MobiCealConfig {
                num_volumes: 6,
                pbkdf2_iterations: 4,
                metadata_blocks: 64,
                x: 1, // quiesce the dummy trigger deterministically
                ..Default::default()
            },
            "decoy",
            &["hidden-a", "hidden-b"],
            seed,
        )
        .unwrap();
        let vol: Box<dyn mobiceal_blockdev::BlockDevice> = if hidden_world {
            Box::new(mc.unlock_hidden("hidden-a").unwrap())
        } else {
            Box::new(mc.unlock_public("decoy").unwrap())
        };
        disk.reset_stats();
        let elapsed = run_write_trace(vol.as_ref(), &clock);
        (elapsed.as_nanos(), disk.stats())
    };

    for depth_floor in [1usize, 4, 32] {
        for seed in [5u64, 41] {
            let (public_time, public_stats) = run_world(false, depth_floor, seed);
            let (hidden_time, hidden_stats) = run_world(true, depth_floor, seed);
            assert_eq!(
                public_time, hidden_time,
                "identical shapes at depth {depth_floor} must charge identical time (seed {seed})"
            );
            assert_eq!(
                public_stats, hidden_stats,
                "identical shapes at depth {depth_floor} must leave identical op mixes"
            );
        }
    }
    // And the depth dimension itself only discounts — deeper queues never
    // make a world's trace dearer (no inverse channel either).
    let (shallow, _) = run_world(false, 1, 5);
    let (deep, _) = run_world(false, 32, 5);
    assert!(deep < shallow, "CQE overlap must discount the batched trace");
}

#[test]
fn engine_completion_and_reordering_are_world_independent() {
    // The submission/completion engine adds new timing machinery — slot
    // occupancy drives the charged queue depth, and execution is deferred
    // until completions are reaped. None of it may depend on which world a
    // ring serves: identical batch shapes pushed through identically sized
    // rings charge identical simulated time and leave identical op mixes
    // whether the volume is public or hidden, at every ring depth. The
    // trigger is quiesced with x = 1 exactly as in
    // batch_amortization_opens_no_timing_channel.
    use mobiceal::{MobiCeal, MobiCealConfig};
    use mobiceal_blockdev::{DeviceStats, IoEngine, MemDisk, SharedDevice};
    use mobiceal_sim::{EmmcCostModel, SimClock};
    use std::sync::Arc;

    let run_world = |hidden_world: bool, ring_depth: usize, seed: u64| -> (u64, DeviceStats) {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::with_cost_model(
            8192,
            4096,
            clock.clone(),
            Arc::new(EmmcCostModel::emmc51_cqe()),
        ));
        let mc = MobiCeal::initialize(
            disk.clone() as SharedDevice,
            clock.clone(),
            MobiCealConfig {
                num_volumes: 6,
                pbkdf2_iterations: 4,
                metadata_blocks: 64,
                x: 1, // quiesce the dummy trigger deterministically
                ..Default::default()
            },
            "decoy",
            &["hidden-a", "hidden-b"],
            seed,
        )
        .unwrap();
        let vol = if hidden_world {
            mc.unlock_hidden("hidden-a").unwrap()
        } else {
            mc.unlock_public("decoy").unwrap()
        };
        disk.reset_stats();
        let engine = IoEngine::new(vol, ring_depth);
        let data = vec![0xC3u8; 4096];
        let t0 = clock.now();
        // Submit the whole trace before reaping anything: the ring holds
        // up to `ring_depth` batches in flight (a full ring self-serves
        // the oldest slot), then `drain` retires the rest out of order
        // with respect to the submissions still queued.
        let mut base = 0u64;
        for &shape in &TRACE_SHAPES {
            let batch: Vec<(u64, &[u8])> =
                (0..shape as u64).map(|i| (base + i, data.as_slice())).collect();
            engine.submit_write_blocks(&batch);
            base += shape as u64;
        }
        for (_, result) in engine.drain() {
            result.unwrap();
        }
        ((clock.now() - t0).as_nanos(), disk.stats())
    };

    for ring_depth in [1usize, 8, 32] {
        for seed in [5u64, 41] {
            let (public_time, public_stats) = run_world(false, ring_depth, seed);
            let (hidden_time, hidden_stats) = run_world(true, ring_depth, seed);
            assert_eq!(
                public_time, hidden_time,
                "identical shapes through a depth-{ring_depth} ring must charge identical time (seed {seed})"
            );
            assert_eq!(
                public_stats, hidden_stats,
                "identical shapes through a depth-{ring_depth} ring must leave identical op mixes"
            );
        }
    }
    // Ring occupancy is genuine queueing: the deep ring discounts the
    // trace relative to the synchronous ring, in both worlds equally.
    let (shallow, _) = run_world(false, 1, 5);
    let (deep, _) = run_world(false, 32, 5);
    assert!(deep < shallow, "ring overlap must discount the batched trace");
}

#[test]
fn baseline_batch_shapes_are_world_independent() {
    // Batching must not open a *new* timing channel in the baselines: the
    // device-visible shape of a batched HIVE shuffle or DEFY append run —
    // op mix, byte counts and charged time — depends only on the trace
    // shape plus, for HIVE, the set of position-map blocks the trace
    // touches (one 512-entry map block covers the whole logical space
    // here). It never depends on the payload data, and not on *which*
    // logical blocks were addressed within a map block's span. The
    // map-block granularity itself is a pre-existing exposure of this
    // HIVE model, not something batching added: the per-entry write-
    // through already revealed which map block each pass rewrote (real
    // HIVE hides it by recursing the position map into the ORAM); the
    // companion test below pins that known residual leak explicitly.
    use mobiceal_baselines::{DefyLite, HiveWoOram};
    use mobiceal_blockdev::{BlockDevice, DeviceStats, MemDisk};
    use mobiceal_sim::SimClock;
    use std::sync::Arc;

    let hive_trace = |base: u64, fill: u8| -> (mobiceal_sim::SimInstant, DeviceStats) {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(600, 4096, clock.clone()));
        let oram = HiveWoOram::new(disk.clone(), clock.clone(), 256, [7u8; 64], 21).unwrap();
        let data = vec![fill; 4096];
        let mut cursor = base;
        for &shape in &TRACE_SHAPES {
            let batch: Vec<(u64, &[u8])> =
                (0..shape as u64).map(|i| (cursor + i, data.as_slice())).collect();
            oram.write_blocks(&batch).unwrap();
            cursor += shape as u64;
        }
        (clock.now(), disk.stats())
    };
    // Same shapes, different data: identical — the payload leaves no trace.
    let (time_a, stats_a) = hive_trace(0, 0xAA);
    let (time_b, stats_b) = hive_trace(0, 0x55);
    assert_eq!(time_a, time_b, "HIVE batch timing must be data-independent");
    assert_eq!(stats_a, stats_b, "HIVE op mix must be data-independent");
    // Same shapes, disjoint logical ranges within one map block's span:
    // identical — the addresses leave no trace at sub-map-block
    // granularity.
    let (time_b, stats_b) = hive_trace(100, 0x55);
    assert_eq!(time_a, time_b, "HIVE batch shapes must charge world-independent time");
    assert_eq!(stats_a, stats_b, "HIVE batch shapes must leave a world-independent op mix");

    let defy_trace = |base: u64, fill: u8| -> (mobiceal_sim::SimInstant, DeviceStats) {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(512, 4096, clock.clone()));
        let defy = DefyLite::new(disk.clone(), clock.clone(), 256, [3u8; 32]).unwrap();
        let data = vec![fill; 4096];
        let mut cursor = base;
        for &shape in &TRACE_SHAPES {
            let batch: Vec<(u64, &[u8])> =
                (0..shape as u64).map(|i| (cursor + i, data.as_slice())).collect();
            defy.write_blocks(&batch).unwrap();
            cursor += shape as u64;
        }
        (clock.now(), disk.stats())
    };
    let (time_a, stats_a) = defy_trace(0, 0xAA);
    let (time_b, stats_b) = defy_trace(100, 0x55);
    assert_eq!(time_a, time_b, "DEFY batch shapes must charge world-independent time");
    assert_eq!(stats_a, stats_b, "DEFY batch shapes must leave a world-independent op mix");
}

#[test]
fn hive_map_block_granularity_is_the_documented_residual_leak() {
    // The flip side of the test above, pinned so the limitation stays
    // documented rather than rediscovered: this HIVE model persists its
    // position map as plain write-through blocks, so a trace's device
    // shape reveals *how many* (and which) 512-entry map blocks it
    // touched — with coalescing, a batch spanning a map-block boundary
    // charges one extra read-modify-write compared to an identically
    // shaped batch inside one block. Real HIVE closes this by recursing
    // the map into the ORAM itself; the per-entry write-through this
    // repo had before batching leaked the same granularity through which
    // block each pass rewrote. MobiCeal is unaffected (its thin-pool
    // metadata commits are volume-independent, see
    // batch_amortization_opens_no_timing_channel).
    use mobiceal_baselines::HiveWoOram;
    use mobiceal_blockdev::{BlockDevice, MemDisk};
    use mobiceal_sim::SimClock;
    use std::sync::Arc;

    let trace = |base: u64| {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(8300, 4096, clock.clone()));
        let oram = HiveWoOram::new(disk, clock.clone(), 4096, [7u8; 64], 33).unwrap();
        let data = vec![1u8; 4096];
        let batch: Vec<(u64, &[u8])> = (0..16u64).map(|i| (base + i, data.as_slice())).collect();
        oram.write_blocks(&batch).unwrap();
        clock.now()
    };
    let inside_one_map_block = trace(0); // logicals 0..16, map block 0
    let across_a_boundary = trace(504); // logicals 504..520, map blocks 0 and 1
    assert!(
        across_a_boundary > inside_one_map_block,
        "crossing a map-block boundary must cost exactly the extra map RMW ({} vs {} ns)",
        across_a_boundary.as_nanos(),
        inside_one_map_block.as_nanos()
    );
}

#[test]
fn journal_replay_is_world_independent() {
    // PR 7's journaled metadata adds a recovery path, and recovery runs
    // while the adversary may be watching (a coerced reboot): replaying
    // the metadata journal must not reveal which world produced it. Two
    // worlds whose traces have identical batch shapes and block counts —
    // one writing the public volume, one a hidden volume — leave journals
    // of identical shape (volume ids differ only in value, never in
    // encoded size), so remounting must charge identical simulated time
    // and an identical device op mix. The dummy trigger is quiesced with
    // x = 1 exactly as in batch_amortization_opens_no_timing_channel.
    use mobiceal::{MobiCeal, MobiCealConfig};
    use mobiceal_blockdev::{BlockDevice, DeviceStats, MemDisk, SharedDevice};
    use mobiceal_sim::SimClock;
    use std::sync::Arc;

    let config = || MobiCealConfig {
        num_volumes: 6,
        pbkdf2_iterations: 4,
        metadata_blocks: 64,
        x: 1,
        ..Default::default()
    };
    let run_world = |hidden_world: bool, seed: u64| -> (u64, DeviceStats) {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(8192, 4096, clock.clone()));
        let mc = MobiCeal::initialize(
            disk.clone() as SharedDevice,
            clock.clone(),
            config(),
            "decoy",
            &["hidden-a", "hidden-b"],
            seed,
        )
        .unwrap();
        let vol: Box<dyn BlockDevice> = if hidden_world {
            Box::new(mc.unlock_hidden("hidden-a").unwrap())
        } else {
            Box::new(mc.unlock_public("decoy").unwrap())
        };
        // Two committed transactions so the remount replays a multi-record
        // journal, not just the checkpoint.
        run_write_trace(vol.as_ref(), &clock);
        mc.commit().unwrap();
        let data = vec![0x5A; 4096];
        let batch: Vec<(u64, &[u8])> = (64..80u64).map(|i| (i, data.as_slice())).collect();
        vol.write_blocks(&batch).unwrap();
        mc.commit().unwrap();
        drop((vol, mc));

        // The measured window is the remount itself: superblock read,
        // checkpoint load, journal replay.
        disk.reset_stats();
        let t0 = clock.now();
        let reopened =
            MobiCeal::open(disk.clone() as SharedDevice, clock.clone(), config(), seed + 1)
                .unwrap();
        let elapsed = (clock.now() - t0).as_nanos();
        drop(reopened);
        (elapsed, disk.stats())
    };

    for seed in [13u64, 77] {
        let (public_time, public_stats) = run_world(false, seed);
        let (hidden_time, hidden_stats) = run_world(true, seed);
        assert_eq!(
            public_time, hidden_time,
            "journal replay must charge world-independent time (seed {seed})"
        );
        assert_eq!(
            public_stats, hidden_stats,
            "journal replay must leave a world-independent op mix (seed {seed})"
        );
    }
}

#[test]
fn write_back_cache_is_world_independent() {
    // PR 8's write-back cache sits between the volume and DmCrypt, so its
    // behavior — what hits, what misses, when eviction writes back, and
    // what the flush-on-commit batch looks like on the device — must
    // depend only on the trace shape, never on which world the volume
    // belongs to. Identical shapes through identically configured caches
    // must charge identical simulated time, leave identical device op
    // mixes, and produce identical cache-stats vectors in the public and
    // hidden worlds. A tiny cache keeps eviction pressure constant so the
    // write-back path itself is exercised, not just absorption. The dummy
    // trigger is quiesced with x = 1 exactly as in
    // batch_amortization_opens_no_timing_channel.
    use mobiceal::{MobiCeal, MobiCealConfig};
    use mobiceal_blockdev::{BlockDevice, CacheStats, DeviceStats, MemDisk, SharedDevice};
    use mobiceal_sim::SimClock;
    use std::sync::Arc;

    let run_world =
        |hidden_world: bool, cache_blocks: usize, seed: u64| -> (u64, DeviceStats, CacheStats) {
            let clock = SimClock::new();
            let disk = Arc::new(MemDisk::new(8192, 4096, clock.clone()));
            let mc = MobiCeal::initialize(
                disk.clone() as SharedDevice,
                clock.clone(),
                MobiCealConfig {
                    num_volumes: 6,
                    pbkdf2_iterations: 4,
                    metadata_blocks: 64,
                    x: 1, // quiesce the dummy trigger deterministically
                    cache_blocks,
                    cache_shards: 4,
                    ..Default::default()
                },
                "decoy",
                &["hidden-a", "hidden-b"],
                seed,
            )
            .unwrap();
            let vol = if hidden_world {
                mc.unlock_hidden("hidden-a").unwrap()
            } else {
                mc.unlock_public("decoy").unwrap()
            };
            assert!(vol.is_cached(), "the cache knob must reach the volume");
            disk.reset_stats();
            let t0 = clock.now();
            run_write_trace(&vol, &clock);
            // Read the trace back (mix of hits and, for small caches, misses
            // against evicted blocks), then commit: the flush-on-commit batch
            // is part of the observable shape.
            for b in 0..TRACE_SHAPES.iter().sum::<usize>() as u64 {
                vol.read_block(b).unwrap();
            }
            mc.commit().unwrap();
            let elapsed = (clock.now() - t0).as_nanos();
            (elapsed, disk.stats(), vol.cache_stats().unwrap())
        };

    for cache_blocks in [8usize, 128] {
        for seed in [5u64, 41] {
            let (public_time, public_stats, public_cache) = run_world(false, cache_blocks, seed);
            let (hidden_time, hidden_stats, hidden_cache) = run_world(true, cache_blocks, seed);
            assert_eq!(
                public_time, hidden_time,
                "identical shapes through a {cache_blocks}-block cache must charge identical time (seed {seed})"
            );
            assert_eq!(
                public_stats, hidden_stats,
                "identical shapes through a {cache_blocks}-block cache must leave identical op mixes"
            );
            assert_eq!(
                public_cache, hidden_cache,
                "hit/miss/eviction behavior must be world-independent"
            );
        }
    }
    // The cache genuinely absorbs: a trace through a big cache charges
    // strictly less foreground time than the same trace uncached — in both
    // worlds, equally.
    let uncached = |hidden_world: bool| -> u64 {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(8192, 4096, clock.clone()));
        let mc = MobiCeal::initialize(
            disk as SharedDevice,
            clock.clone(),
            MobiCealConfig {
                num_volumes: 6,
                pbkdf2_iterations: 4,
                metadata_blocks: 64,
                x: 1,
                ..Default::default()
            },
            "decoy",
            &["hidden-a", "hidden-b"],
            5,
        )
        .unwrap();
        let vol = if hidden_world {
            mc.unlock_hidden("hidden-a").unwrap()
        } else {
            mc.unlock_public("decoy").unwrap()
        };
        let t0 = clock.now();
        run_write_trace(&vol, &clock);
        clock.now().as_nanos() - t0.as_nanos()
    };
    let cached_foreground = |hidden_world: bool| -> u64 {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(8192, 4096, clock.clone()));
        let mc = MobiCeal::initialize(
            disk as SharedDevice,
            clock.clone(),
            MobiCealConfig {
                num_volumes: 6,
                pbkdf2_iterations: 4,
                metadata_blocks: 64,
                x: 1,
                cache_blocks: 256,
                cache_shards: 4,
                ..Default::default()
            },
            "decoy",
            &["hidden-a", "hidden-b"],
            5,
        )
        .unwrap();
        let vol = if hidden_world {
            mc.unlock_hidden("hidden-a").unwrap()
        } else {
            mc.unlock_public("decoy").unwrap()
        };
        let t0 = clock.now();
        run_write_trace(&vol, &clock);
        clock.now().as_nanos() - t0.as_nanos()
    };
    for world in [false, true] {
        assert!(
            cached_foreground(world) < uncached(world),
            "a big cache must absorb foreground write time (hidden={world})"
        );
    }
}

#[test]
fn raw_device_is_uniformly_ciphertextlike() {
    let mut world = MobiCealWorld::build(3, true);
    use mobiceal_adversary::GameWorld;
    world.public_write(100);
    world.hidden_write(40);
    let obs = world.observe();
    let start = MobiCealWorld::data_region_start();
    let mut written = 0u64;
    for b in start..start + MobiCealWorld::data_region_blocks() {
        if !obs.snapshot.is_zero_block(b) {
            assert!(obs.snapshot.block_entropy(b) > 7.0, "block {b}");
            written += 1;
        }
    }
    assert!(written > 140, "public + hidden + dummy blocks present");
}
