//! The paper's headline claims, encoded as CI-checkable assertions.
//!
//! Each test corresponds to a sentence in the paper; if a refactor breaks a
//! claim, this suite says which one. (The full measurement tables live in
//! the benches; these are the pass/fail versions.)

use mobiceal::MobiCealConfig;
use mobiceal_android::AndroidPhone;
use mobiceal_sim::SimClock;
use mobiceal_workloads::{build_stack, DdWorkload, StackConfig};

fn fast_config() -> MobiCealConfig {
    MobiCealConfig {
        num_volumes: 6,
        pbkdf2_iterations: 4,
        metadata_blocks: 64,
        ..Default::default()
    }
}

fn dd_write_mbps(config: StackConfig, seed: u64) -> f64 {
    let stack = build_stack(config, 16384, seed).unwrap();
    let wl = DdWorkload { file_bytes: 8 * 1024 * 1024, chunk_bytes: 256 * 1024 };
    wl.run(stack.device.clone(), &stack.clock).unwrap().write_mbps()
}

fn dd_read_mbps(config: StackConfig, seed: u64) -> f64 {
    let stack = build_stack(config, 16384, seed).unwrap();
    let wl = DdWorkload { file_bytes: 8 * 1024 * 1024, chunk_bytes: 256 * 1024 };
    wl.run(stack.device.clone(), &stack.clock).unwrap().read_mbps()
}

/// "The switching time in MobiCeal is less than 10 seconds" (§I).
#[test]
fn claim_fast_switch_under_ten_seconds() {
    let mut phone = AndroidPhone::new(SimClock::new(), 4096, 4096, fast_config());
    phone.initialize_mobiceal("decoy", &["hidden"], 1).unwrap();
    phone.enter_boot_password("decoy").unwrap();
    let t = phone.switch_to_hidden("hidden").unwrap();
    assert!(t.as_secs_f64() < 10.0, "switch took {t}");
}

/// Prior systems "require users to reboot ... which may take more than one
/// minute in practice" (§I) — our MobiPluto-style flow must indeed exceed
/// a minute, and MobiCeal's switch-in must beat it by >5×.
#[test]
fn claim_reboot_based_switching_is_much_slower() {
    let mut phone = AndroidPhone::new(SimClock::new(), 4096, 4096, fast_config());
    phone.initialize_mobiceal("decoy", &["hidden"], 2).unwrap();
    phone.enter_boot_password("decoy").unwrap();
    let fast = phone.switch_to_hidden("hidden").unwrap();
    let reboot = phone.exit_hidden_mode();
    assert!(reboot.as_secs_f64() > 55.0);
    assert!(reboot.as_secs_f64() / fast.as_secs_f64() > 5.0);
}

/// "The initialization of MobiCeal takes about 2 minutes, which is much
/// shorter than MobiPluto" (§VI-B): no full-disk randomness fill needed.
#[test]
fn claim_initialization_avoids_the_full_disk_fill() {
    let mut phone = AndroidPhone::new(SimClock::new(), 4096, 4096, fast_config());
    let init = phone.initialize_mobiceal("decoy", &["hidden"], 3).unwrap();
    assert!(
        init.as_secs_f64() < 240.0,
        "MobiCeal init must be minutes, not tens of minutes: {init}"
    );
    let mobipluto_fill =
        mobiceal_android::AndroidTimingModel::nexus4().full_random_fill().as_secs_f64();
    assert!(
        mobipluto_fill / init.as_secs_f64() > 10.0,
        "the avoided fill alone is >10x MobiCeal's whole init"
    );
}

/// "MobiCeal introduces approximately 18% overhead [on writes] which is
/// much smaller than that of typical prior PDE systems secure against
/// multi-snapshot adversaries" (§I) — we pin the calibrated ~24 % slice of
/// the paper's 15-35 % band and check the "much smaller than HIVE/DEFY"
/// part strictly against the *measured* batched baselines, not a constant.
///
/// Recalibrated twice: once for the amortized multi-command eMMC model
/// (PR 3), and once after the baselines gained batched I/O paths — the
/// HIVE/DEFY overheads here are computed with the same 64-block vectored
/// driving MobiCeal gets, so the comparison no longer flatters MobiCeal by
/// an amortization axis the baselines never got to use.
#[test]
fn claim_write_overhead_band() {
    let android: f64 =
        (0..4).map(|i| dd_write_mbps(StackConfig::Android, 100 + i)).sum::<f64>() / 4.0;
    let mcp: f64 =
        (0..4).map(|i| dd_write_mbps(StackConfig::MobiCealPublic, 100 + i)).sum::<f64>() / 4.0;
    let overhead = 1.0 - mcp / android;
    assert!(
        (0.18..0.30).contains(&overhead),
        "MobiCeal write overhead {:.1}% out of the calibrated band",
        overhead * 100.0
    );
    let hive = mobiceal_workloads::hive_row().overhead();
    let defy = mobiceal_workloads::defy_row().overhead();
    assert!(
        overhead < hive - 0.5 && overhead < defy - 0.5,
        "MobiCeal ({overhead:.2}) must stay far below batched HIVE ({hive:.2}) / DEFY ({defy:.2})"
    );
}

/// "Thin provisioning adds a layer between file system and disk, so the
/// additional operations reduce the read performance" by ~18 % while
/// writes are barely affected (§VI-B).
#[test]
fn claim_thin_layer_is_read_side() {
    let android_w = dd_write_mbps(StackConfig::Android, 7);
    let atp_w = dd_write_mbps(StackConfig::AndroidThinPublic, 7);
    let android_r = dd_read_mbps(StackConfig::Android, 7);
    let atp_r = dd_read_mbps(StackConfig::AndroidThinPublic, 7);
    assert!(atp_w / android_w > 0.97, "thin writes near-free");
    let read_overhead = 1.0 - atp_r / android_r;
    // ~15 % under the amortized model (the btree-lookup charge is a larger
    // share of a read once command setup amortizes away); retightened once
    // the baseline batching pass confirmed the stack rows are byte-stable.
    assert!(
        (0.12..0.19).contains(&read_overhead),
        "thin read overhead {:.1}% out of band",
        read_overhead * 100.0
    );
}

/// "The hidden volume is encrypted using a hidden key via FDE ... the
/// basic MobiCeal scheme is a special case of MobiCeal with multi-level
/// deniability support" (§V): n=3 with one hidden password is the basic
/// scheme and must work identically.
#[test]
fn claim_basic_scheme_is_a_special_case() {
    use mobiceal::MobiCeal;
    use mobiceal_blockdev::{BlockDevice, MemDisk, SharedDevice};
    use std::sync::Arc;

    let clock = SimClock::new();
    let disk = Arc::new(MemDisk::new(4096, 4096, clock.clone()));
    let basic = MobiCealConfig { num_volumes: 3, ..fast_config() };
    let mc =
        MobiCeal::initialize(disk as SharedDevice, clock, basic, "decoy", &["hidden"], 4).unwrap();
    let public = mc.unlock_public("decoy").unwrap();
    let hidden = mc.unlock_hidden("hidden").unwrap();
    public.write_block(0, &vec![1u8; 4096]).unwrap();
    hidden.write_block(0, &vec![2u8; 4096]).unwrap();
    assert_eq!(public.read_block(0).unwrap(), vec![1u8; 4096]);
    assert_eq!(hidden.read_block(0).unwrap(), vec![2u8; 4096]);
}

/// "Note that we allow users to choose a secret number of volumes" /
/// §IV-C: the number of hidden volumes is controlled by the number of
/// hidden passwords, up to n-2.
#[test]
fn claim_hidden_count_follows_passwords() {
    use mobiceal::MobiCeal;
    use mobiceal_blockdev::{MemDisk, SharedDevice};
    use std::sync::Arc;

    for k in 0..=3usize {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(4096, 4096, clock.clone()));
        let pwds: Vec<String> = (0..k).map(|i| format!("hidden-{i}")).collect();
        let pwd_refs: Vec<&str> = pwds.iter().map(String::as_str).collect();
        let mc = MobiCeal::initialize(
            disk as SharedDevice,
            clock,
            MobiCealConfig { num_volumes: 6, ..fast_config() },
            "decoy",
            &pwd_refs,
            5 + k as u64,
        )
        .unwrap();
        let mut ids = std::collections::HashSet::new();
        for p in &pwd_refs {
            ids.insert(mc.unlock_hidden(p).unwrap().volume_id());
        }
        assert_eq!(ids.len(), k, "each password gets its own volume");
    }
}

/// §V: "We also test MobiCeal on a Huawei Nexus 6P with Android 7.1.2" —
/// the whole flow must work unchanged on the second device profile, and
/// the fast switch must still beat 10 seconds.
#[test]
fn claim_portable_to_nexus_6p() {
    use mobiceal_android::AndroidTimingModel;
    let mut phone = AndroidPhone::new(SimClock::new(), 8192, 4096, fast_config())
        .with_timing(AndroidTimingModel::nexus6p());
    phone.initialize_mobiceal("decoy", &["hidden"], 66).unwrap();
    phone.enter_boot_password("decoy").unwrap();
    let switch = phone.switch_to_hidden("hidden").unwrap();
    assert!(switch.as_secs_f64() < 10.0, "6P switch took {switch}");
    let vol = phone.data_volume().unwrap().clone();
    use mobiceal_blockdev::BlockDevice;
    vol.write_block(0, &vec![0x6B; 4096]).unwrap();
    phone.exit_hidden_mode();
    phone.enter_boot_password("decoy").unwrap();
    phone.switch_to_hidden("hidden").unwrap();
    assert_eq!(phone.data_volume().unwrap().read_block(0).unwrap(), vec![0x6B; 4096]);
}

/// §IV-D: "we only support fast switching from the public mode to the
/// hidden mode" — switching out must go through a reboot, never a fast
/// path.
#[test]
fn claim_one_way_fast_switching() {
    let mut phone = AndroidPhone::new(SimClock::new(), 4096, 4096, fast_config());
    phone.initialize_mobiceal("decoy", &["hidden"], 6).unwrap();
    phone.enter_boot_password("decoy").unwrap();
    phone.switch_to_hidden("hidden").unwrap();
    // The only way back is exit_hidden_mode (a reboot): after it the phone
    // is at the pre-boot prompt, not in public mode.
    phone.exit_hidden_mode();
    assert_eq!(phone.state(), mobiceal_android::PhoneState::PreBootAuth);
}
