//! Border crossing: the paper's motivating scenario (§I) as a runnable
//! experiment. A journalist's phone is imaged at two checkpoints; the
//! multi-snapshot adversary diffs the images. With a MobiPluto-class
//! system the hidden data is detected; with MobiCeal it is not.
//!
//! Run with: `cargo run --release --example border_crossing`

use mobiceal_adversary::{ChangedFreeSpaceDistinguisher, Distinguisher, Observation};
use mobiceal_baselines::MobiPluto;
use mobiceal_blockdev::{BlockDevice, MemDisk, SharedDevice};
use mobiceal_sim::SimClock;
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    println!("=== scenario: journalist crosses a border twice ===\n");

    // --- Phone A: legacy hidden-volume PDE (MobiPluto-class) ---
    let clock = SimClock::new();
    let disk_a = Arc::new(MemDisk::new(4096, 4096, clock.clone()));
    let pluto =
        MobiPluto::initialize(disk_a.clone() as SharedDevice, clock, "decoy", Some("hidden"), 7)?;
    let pluto_public = pluto.unlock_public("decoy")?;

    // Checkpoint 1: the agent images the phone.
    let obs_a1 = Observation {
        snapshot: disk_a.snapshot(),
        metadata: Some(pluto.metadata_view()),
        logs: vec![],
    };
    // Between checkpoints: normal public use AND hidden note-taking.
    for i in 1..=30 {
        pluto_public.write_block(i, &vec![0x20; 4096])?;
    }
    for _ in 0..12 {
        pluto.hidden_write(&vec![0x99; 4096])?;
    }
    pluto.commit()?;
    // Checkpoint 2.
    let obs_a2 = Observation {
        snapshot: disk_a.snapshot(),
        metadata: Some(pluto.metadata_view()),
        logs: vec![],
    };

    let differ = ChangedFreeSpaceDistinguisher {
        public_volume: 1,
        data_region_start: pluto.data_region_start(),
        data_region_blocks: pluto.data_region_blocks(),
    };
    let detected = differ.decide(&[obs_a1, obs_a2]);
    println!(
        "MobiPluto phone: free-space differencing says hidden data present? {}",
        if detected { "YES — deniability broken, traveller in danger" } else { "no" }
    );
    assert!(detected);

    // --- Phone B: MobiCeal ---
    let clock = SimClock::new();
    let disk_b = Arc::new(MemDisk::new(4096, 4096, clock.clone()));
    let config = mobiceal::MobiCealConfig {
        pbkdf2_iterations: 16,
        metadata_blocks: 64,
        ..Default::default()
    };
    let mc = mobiceal::MobiCeal::initialize(
        disk_b.clone() as SharedDevice,
        clock,
        config,
        "decoy",
        &["hidden"],
        7,
    )?;
    let mc_public = mc.unlock_public("decoy")?;
    let mc_hidden = mc.unlock_hidden("hidden")?;

    let observe = |mc: &mobiceal::MobiCeal, disk: &MemDisk| Observation {
        snapshot: disk.snapshot(),
        metadata: Some(mc.metadata_view()),
        logs: vec![],
    };
    let obs_b1 = observe(&mc, &disk_b);
    for i in 0..30 {
        mc_public.write_block(i, &vec![0x20; 4096])?;
    }
    for i in 0..12 {
        mc_hidden.write_block(i, &vec![0x99; 4096])?;
    }
    mc.commit()?;
    let obs_b2 = observe(&mc, &disk_b);

    let layout = mc.layout();
    let differ = ChangedFreeSpaceDistinguisher {
        public_volume: 1,
        data_region_start: layout.metadata_blocks,
        data_region_blocks: layout.data_blocks,
    };
    // The distinguisher fires on ANY non-public change — but MobiCeal
    // produces such changes in both worlds (dummy writes), so the signal
    // carries no information. Demonstrate by also running a no-hidden
    // control phone through the same checkpoint pattern.
    let fired_with_hidden = differ.decide(&[obs_b1, obs_b2]);

    let clock = SimClock::new();
    let disk_c = Arc::new(MemDisk::new(4096, 4096, clock.clone()));
    let config = mobiceal::MobiCealConfig {
        pbkdf2_iterations: 16,
        metadata_blocks: 64,
        ..Default::default()
    };
    let control = mobiceal::MobiCeal::initialize(
        disk_c.clone() as SharedDevice,
        clock,
        config,
        "decoy",
        &[],
        7,
    )?;
    let control_public = control.unlock_public("decoy")?;
    let obs_c1 = observe(&control, &disk_c);
    for i in 0..30 {
        control_public.write_block(i, &vec![0x20; 4096])?;
    }
    control.commit()?;
    let obs_c2 = observe(&control, &disk_c);
    let fired_without_hidden = differ.decide(&[obs_c1, obs_c2]);

    println!(
        "MobiCeal phone with hidden data: detector fires? {fired_with_hidden}; \
         control phone without hidden data: detector fires? {fired_without_hidden}"
    );
    println!(
        "the detector output is identical in both worlds -> zero advantage; \
         the journalist's notes stay deniable."
    );
    Ok(())
}
