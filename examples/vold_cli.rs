//! The `vdc` command-line flow of §V-B, end to end: initialize with
//! `cryptfs pde wipe`, authenticate with `cryptfs checkpw`, and fast-switch
//! with `cryptfs pde switch` — including the wrong-password paths that
//! return Vold's `-1`.
//!
//! Run with: `cargo run --release --example vold_cli`

use mobiceal::MobiCealConfig;
use mobiceal_android::{vdc, AndroidPhone, PhoneState};
use mobiceal_sim::SimClock;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let config = MobiCealConfig {
        num_volumes: 6,
        pbkdf2_iterations: 16,
        metadata_blocks: 64,
        ..Default::default()
    };
    let mut phone = AndroidPhone::new(SimClock::new(), 8192, 4096, config);

    let script = [
        // Initialization (erases the device, reboots to the prompt).
        "cryptfs pde wipe decoy-pwd 6 hidden-one,hidden-two",
        // A mistyped boot password, then the right one.
        "cryptfs checkpw decoy-pw",
        "cryptfs checkpw decoy-pwd",
        // A mistyped hidden password at the screen lock, then the right one.
        "cryptfs pde switch hidden-on",
        "cryptfs pde switch hidden-two",
    ];
    for cmd in script {
        let response = vdc(&mut phone, cmd);
        println!("$ vdc {cmd}\n  -> {}   [{:?}]", response.line, phone.state());
    }
    assert_eq!(phone.state(), PhoneState::HiddenMode);

    // Malformed commands are rejected with 500-class responses.
    println!();
    for bad in ["cryptfs pde wipe", "volume list", "cryptfs pde switch x y"] {
        let response = vdc(&mut phone, bad);
        println!("$ vdc {bad}\n  -> {}", response.line);
        assert!(!response.ok);
    }
    println!("\nvdc flow complete: phone is in hidden mode.");
    Ok(())
}
