//! Fast switching (§IV-D/§V-C): the screen-lock entrance to hidden mode in
//! under 10 seconds, versus reboot-based switching in prior systems.
//!
//! Run with: `cargo run --release --example fast_switching`

use mobiceal::MobiCealConfig;
use mobiceal_android::{AndroidPhone, PhoneState};
use mobiceal_blockdev::BlockDevice;
use mobiceal_sim::SimClock;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let config =
        MobiCealConfig { pbkdf2_iterations: 64, metadata_blocks: 64, ..Default::default() };
    let mut phone = AndroidPhone::new(SimClock::new(), 8192, 4096, config);

    let init = phone.initialize_mobiceal("decoy", &["hidden"], 99)?;
    println!("initialization (wipe + LVM + mkfs + reboot): {init}");

    let boot = phone.enter_boot_password("decoy")?;
    println!("pre-boot auth with decoy password:          {boot}");
    assert_eq!(phone.state(), PhoneState::PublicMode);

    // The opportunity: a sensitive photo must be taken NOW. The user types
    // the hidden password into the ordinary screen lock.
    let switch_in = phone.switch_to_hidden("hidden")?;
    println!("fast switch into hidden mode:               {switch_in}  (paper: 9.27s)");
    assert!(switch_in.as_secs_f64() < 10.0, "must beat 10 seconds");
    assert_eq!(phone.state(), PhoneState::HiddenMode);

    // Capture the evidence into the hidden volume.
    let vol = phone.data_volume().expect("hidden mounted").clone();
    for i in 0..16 {
        vol.write_block(i, &vec![0xCA; 4096])?;
    }
    phone.record_activity("camera wrote IMG_0001.jpg (hidden)");

    // Leaving hidden mode is deliberately a full reboot: RAM must hold no
    // residue when the device is next inspected.
    let switch_out = phone.exit_hidden_mode();
    println!("switch out (mandatory reboot):              {switch_out}  (paper: ~63s)");
    assert!(switch_out.as_secs_f64() > 55.0);

    // Contrast: prior systems (Mobiflage/MobiHydra/MobiPluto) reboot BOTH
    // ways. Their switch-in equals reboot + boot ≈ switch-out time.
    println!(
        "\nreboot-based switch-in of prior systems would take ~{:.0}s — \
         MobiCeal's screen-lock path is {:.1}x faster",
        switch_out.as_secs_f64(),
        switch_out.as_secs_f64() / switch_in.as_secs_f64()
    );

    // After the reboot the hidden data is still there, and public logs are
    // clean.
    phone.enter_boot_password("decoy")?;
    phone.switch_to_hidden("hidden")?;
    let vol = phone.data_volume().expect("hidden mounted");
    assert_eq!(vol.read_block(0)?, vec![0xCA; 4096]);
    println!("hidden data intact after the full cycle");
    assert!(!phone.logs().persistent_mentions("hidden"));
    println!("no hidden-mode traces on persistent storage");
    Ok(())
}
