//! Multi-level deniability (§IV-C): several hidden volumes behind distinct
//! passwords, so the user can disclose *some* hidden material under severe
//! coercion while denying the rest — plus dummy-space garbage collection.
//!
//! Run with: `cargo run --release --example multi_level`

use mobiceal::{MobiCeal, MobiCealConfig, MobiCealError};
use mobiceal_blockdev::{BlockDevice, MemDisk, SharedDevice};
use mobiceal_sim::SimClock;
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    let clock = SimClock::new();
    let disk = Arc::new(MemDisk::new(16384, 4096, clock.clone()));
    // Ten thin volumes; three of them become hidden volumes. The count of
    // hidden volumes is secret — it equals the number of passwords, which
    // only the user knows.
    let config = MobiCealConfig { num_volumes: 10, pbkdf2_iterations: 16, ..Default::default() };
    let passwords = ["level-one-diary", "level-two-sources", "level-three-archive"];
    let mc = MobiCeal::initialize(disk as SharedDevice, clock, config, "decoy", &passwords, 31337)?;

    // Each password deterministically selects its own volume via
    // k = (PBKDF2(pwd||salt) mod (n-1)) + 2.
    println!("hidden volume indices (secret, derived from passwords):");
    for pwd in &passwords {
        let vol = mc.unlock_hidden(pwd)?;
        println!("  {:<22} -> V{}", pwd, vol.volume_id());
        vol.write_block(0, &vec![vol.volume_id() as u8; 4096])?;
    }

    // Volumes are independent: each password decrypts only its own level.
    let v1 = mc.unlock_hidden("level-one-diary")?;
    let v2 = mc.unlock_hidden("level-two-sources")?;
    assert_ne!(v1.volume_id(), v2.volume_id());
    assert_eq!(v1.read_block(0)?, vec![v1.volume_id() as u8; 4096]);
    assert_eq!(v2.read_block(0)?, vec![v2.volume_id() as u8; 4096]);

    // Under pressure the user can concede the *diary* password and still
    // deny the other two levels — nothing marks V_sources/V_archive as
    // anything but dummy volumes.
    println!("\nconceding 'level-one-diary' reveals only V{}", v1.volume_id());
    assert!(matches!(mc.unlock_hidden("a-guess"), Err(MobiCealError::BadPassword)));

    // Generate dummy traffic, then garbage-collect part of it (hidden-mode
    // only, partial by design so surviving noise stays plausible).
    let public = mc.unlock_public("decoy")?;
    for i in 0..1500 {
        public.write_block(i, &vec![0x44; 4096])?;
    }
    let free_before = mc.free_blocks();
    let report = mc.garbage_collect(&passwords, 9)?;
    println!(
        "\nGC: examined {} dummy volumes, reclaimed {}/{} blocks (fraction {:.2})",
        report.dummy_volumes, report.blocks_reclaimed, report.blocks_before, report.fraction
    );
    println!("free blocks: {} -> {}", free_before, mc.free_blocks());
    assert!(report.blocks_reclaimed < report.blocks_before, "GC is deliberately partial");

    // All three levels survive GC.
    for pwd in &passwords {
        let vol = mc.unlock_hidden(pwd)?;
        assert_eq!(vol.read_block(0)?, vec![vol.volume_id() as u8; 4096]);
    }
    println!("all hidden levels intact after GC");
    Ok(())
}
