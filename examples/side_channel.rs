//! The §IV-D side-channel attack (Czeskis et al.) and MobiCeal's defence:
//! a HIVE/DEFY-style system that shares `/devlog`//`/cache` between modes
//! leaks hidden activity onto public storage; MobiCeal's tmpfs isolation
//! plus mandatory reboot leaves nothing behind.
//!
//! Run with: `cargo run --release --example side_channel`

use mobiceal::MobiCealConfig;
use mobiceal_adversary::{Distinguisher, Observation, SideChannelDistinguisher};
use mobiceal_android::AndroidPhone;
use mobiceal_sim::SimClock;
use std::error::Error;

fn run_session(protected: bool) -> Result<AndroidPhone, Box<dyn Error>> {
    let config =
        MobiCealConfig { pbkdf2_iterations: 16, metadata_blocks: 64, ..Default::default() };
    let mut phone = AndroidPhone::new(SimClock::new(), 4096, 4096, config);
    if !protected {
        phone = phone.without_side_channel_protection();
    }
    phone.initialize_mobiceal("decoy", &["hidden"], 55)?;
    phone.enter_boot_password("decoy")?;
    phone.record_activity("browser: weather.example.org");

    // A hidden session: switch in, work with sensitive files, switch out.
    phone.switch_to_hidden("hidden")?;
    phone.record_activity("editor: opened hidden file sources.txt");
    phone.record_activity("camera: saved hidden IMG_0042.jpg");
    phone.exit_hidden_mode();
    phone.enter_boot_password("decoy")?;
    Ok(phone)
}

fn main() -> Result<(), Box<dyn Error>> {
    let grep = SideChannelDistinguisher::default();

    for (label, protected) in
        [("HIVE/DEFY-style shared OS state", false), ("MobiCeal tmpfs isolation", true)]
    {
        let phone = run_session(protected)?;
        let observation = Observation {
            snapshot: phone.snapshot(),
            metadata: None,
            logs: phone.logs().persistent().to_vec(),
        };
        let compromised = grep.decide(&[observation]);
        println!("--- {label} ---");
        println!("persistent log lines the adversary reads:");
        for line in phone.logs().persistent() {
            println!("    {line}");
        }
        println!(
            "side-channel grep verdict: {}\n",
            if compromised {
                "HIDDEN ACTIVITY FOUND — deniability compromised"
            } else {
                "nothing — deniability holds"
            }
        );
        assert_eq!(compromised, !protected);
    }
    println!(
        "MobiCeal's §IV-D countermeasures (unmount /data,/cache,/devlog; \
         tmpfs RAM disks; one-way switch with reboot) close the channel."
    );
    Ok(())
}
