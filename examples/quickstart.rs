//! Quickstart: initialize MobiCeal, use the public and hidden volumes, and
//! survive a coercion attempt.
//!
//! Run with: `cargo run --release --example quickstart`

use mobiceal::{MobiCeal, MobiCealConfig, MobiCealError};
use mobiceal_blockdev::{MemDisk, SharedDevice};
use mobiceal_fs::{FileSystem, SimFs};
use mobiceal_sim::SimClock;
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    // A 64 MiB simulated eMMC userdata partition.
    let clock = SimClock::new();
    let disk = Arc::new(MemDisk::new(16384, 4096, clock.clone()));

    // `vdc cryptfs pde wipe <decoy> <n> <hidden…>`: one decoy password, one
    // hidden password, six thin volumes (public + hidden + four dummies).
    let config = MobiCealConfig { pbkdf2_iterations: 64, ..Default::default() };
    let mc = MobiCeal::initialize(
        disk.clone() as SharedDevice,
        clock.clone(),
        config,
        "correct-horse",
        &["battery-staple"],
        2024,
    )?;
    println!("initialized MobiCeal with {} thin volumes", mc.config().num_volumes);

    // Daily use: unlock the public volume with the decoy password and put
    // any block file system on it. Dummy writes ride along automatically.
    let public = mc.unlock_public("correct-horse")?;
    let mut pub_fs = SimFs::format(Arc::new(public) as SharedDevice)?;
    pub_fs.create("vacation.jpg")?;
    pub_fs.write("vacation.jpg", 0, &vec![0x89; 512 * 1024])?;
    pub_fs.sync()?;
    println!("public volume: wrote vacation.jpg ({} bytes)", pub_fs.file_size("vacation.jpg")?);

    // Emergency: unlock the hidden volume with the hidden password and
    // store the sensitive material.
    let hidden = mc.unlock_hidden("battery-staple")?;
    let mut hid_fs = SimFs::format(Arc::new(hidden) as SharedDevice)?;
    hid_fs.create("interview-notes.txt")?;
    hid_fs.write("interview-notes.txt", 0, b"names and places the border agent must not see")?;
    hid_fs.sync()?;
    println!("hidden volume: wrote interview-notes.txt");
    mc.commit()?;

    // Dummy-write accounting: the cover traffic that makes the hidden
    // volume deniable.
    let stats = mc.dummy_stats();
    println!(
        "dummy writes: {} trigger checks, {} bursts, {} noise blocks written",
        stats.trigger_checks, stats.bursts, stats.blocks_written
    );

    // Coercion: the user reveals ONLY the decoy password.
    println!("\n--- coercion at the checkpoint ---");
    let coerced = mc.unlock_public("correct-horse")?;
    let mut coerced_fs = SimFs::mount(Arc::new(coerced) as SharedDevice)?;
    println!("adversary decrypts public volume and sees: {:?}", coerced_fs.list());
    assert_eq!(coerced_fs.read("vacation.jpg", 0, 4)?, vec![0x89; 4]);

    // The adversary tries passwords against the other volumes: every
    // candidate fails, and hidden volumes are indistinguishable from the
    // dummy volumes that legitimately hold random noise.
    for guess in ["password123", "correct-horse2", "letmein"] {
        assert!(matches!(mc.unlock_hidden(guess), Err(MobiCealError::BadPassword)));
    }
    let view = mc.metadata_view();
    println!("per-volume mapped blocks visible in metadata:");
    for v in 1..=mc.config().num_volumes {
        println!("  V{v}: {} blocks", view.mapped_blocks(v));
    }
    println!(
        "every non-public volume holds only noise-like ciphertext; volumes with more \
         blocks are explained as dummy-write targets (the target volume is drawn from \
         stored_rand and legitimately concentrates noise). The user simply claims the \
         hidden volume is one of them."
    );
    println!("deniability holds: nothing distinguishes the hidden volume.");
    Ok(())
}
