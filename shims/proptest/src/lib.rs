//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no registry access, so this crate implements
//! the subset of the proptest API the workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, integer-range /
//! tuple / [`Just`] / `any::<T>()` strategies, `prop::collection::{vec,
//! hash_set}`, `prop::array::uniform{16,32}`, weighted [`prop_oneof!`], and
//! the `prop_assert*` / [`prop_assume!`] macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs (via the
//!   panic message) but does not minimize them.
//! * **Deterministic generation.** Each test function derives its RNG seed
//!   from its own name, so runs are reproducible without a persistence
//!   file. Set `PROPTEST_SEED=<u64>` to perturb the whole suite.

use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::ops::{Range, RangeInclusive};

/// Error type carried out of a single property-test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's inputs were rejected by `prop_assume!`.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Creates a rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result alias used by generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only `cases` is meaningful in this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Maximum rejected cases (via `prop_assume!`) before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65536 }
    }
}

impl ProptestConfig {
    /// Config requiring `cases` successful runs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}

/// Deterministic test RNG (xorshift64*), seeded per test + case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test identifier and case number (plus `PROPTEST_SEED`).
    pub fn for_case(test_id: &str, case: u64) -> Self {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        test_id.hash(&mut h);
        let env: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x9e3779b97f4a7c15);
        let mut state = h.finish() ^ env ^ case.wrapping_mul(0xa076_1d64_78bd_642f);
        if state == 0 {
            state = 0xdead_beef_cafe_f00d;
        }
        TestRng { state }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64* — adequate statistical quality for test generation.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value below `bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator. The shim generates independently per case and does
/// not shrink.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `f` (retries, then rejects).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f, whence }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter({}) rejected 1000 consecutive values", self.whence);
    }
}

/// Strategy yielding a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy for any value of `T` (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Canonical strategy for `T`: `any::<u8>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// String-pattern strategies: a `&str` is interpreted as a small regex
/// subset — literal characters, `[a-z0-9]`-style classes (ranges and single
/// characters), and `{n}` / `{m,n}` quantifiers. That covers the patterns
/// used as strategies in this workspace; anything fancier panics loudly.
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let alphabet: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed '[' in pattern {self:?}"))
                        + i;
                    let mut set = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            for c in chars[j]..=chars[j + 2] {
                                set.push(c);
                            }
                            j += 3;
                        } else {
                            set.push(chars[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    set
                }
                '{' | '}' | ']' | '(' | ')' | '|' | '*' | '+' | '?' | '\\' | '.' => {
                    panic!("unsupported regex construct {:?} in pattern {self:?}", chars[i])
                }
                literal => {
                    i += 1;
                    vec![literal]
                }
            };
            assert!(!alphabet.is_empty(), "empty character class in pattern {self:?}");
            // Optional quantifier.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed '{{' in pattern {self:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("bad quantifier"),
                        n.trim().parse::<usize>().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("bad quantifier");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..count {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
        }
        out
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// A weighted union of boxed strategies — what [`prop_oneof!`] builds.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies (`vec`, `hash_set`).
    pub mod collection {
        use super::super::*;

        /// Inclusive-capable size specification for collection strategies.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi_exclusive: usize,
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty collection size range");
                SizeRange { lo: r.start, hi_exclusive: r.end }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi_exclusive: n + 1 }
            }
        }

        impl SizeRange {
            fn sample(&self, rng: &mut TestRng) -> usize {
                let span = (self.hi_exclusive - self.lo) as u64;
                self.lo + rng.below(span.max(1)) as usize
            }
        }

        /// Strategy for `Vec<S::Value>` with a size in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        /// Strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.sample(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Strategy for `HashSet<S::Value>` targeting a size in `size`.
        ///
        /// If the element domain is too small to reach the sampled size the
        /// set is returned smaller (mirrors proptest's best-effort filling).
        pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Hash + Eq,
        {
            HashSetStrategy { element, size: size.into() }
        }

        /// Strategy returned by [`hash_set`].
        pub struct HashSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S> Strategy for HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Hash + Eq,
        {
            type Value = HashSet<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
                let target = self.size.sample(rng);
                let mut out = HashSet::with_capacity(target);
                let mut attempts = 0usize;
                while out.len() < target && attempts < target * 20 + 100 {
                    out.insert(self.element.generate(rng));
                    attempts += 1;
                }
                out
            }
        }
    }

    /// Fixed-size array strategies (`uniform16`, `uniform32`).
    pub mod array {
        use super::super::*;

        /// Strategy for `[S::Value; N]` drawing each element from `element`.
        pub struct UniformArray<S, const N: usize> {
            element: S,
        }

        impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
            type Value = [S::Value; N];

            fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
                std::array::from_fn(|_| self.element.generate(rng))
            }
        }

        /// `[T; 16]` strategy.
        pub fn uniform16<S: Strategy>(element: S) -> UniformArray<S, 16> {
            UniformArray { element }
        }

        /// `[T; 32]` strategy.
        pub fn uniform32<S: Strategy>(element: S) -> UniformArray<S, 32> {
            UniformArray { element }
        }
    }
}

/// Everything a property test needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
        TestRng,
    };
}

/// Runs `cases` instances of a property, panicking on the first failure.
///
/// This is the engine behind [`proptest!`]; `run_one` generates inputs from
/// its `TestRng` and returns the case result plus a rendering of the inputs
/// for diagnostics.
pub fn run_property(
    test_id: &str,
    config: &ProptestConfig,
    mut run_one: impl FnMut(&mut TestRng) -> (String, TestCaseResult),
) {
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case = 0u64;
    while passed < config.cases {
        let mut rng = TestRng::for_case(test_id, case);
        case += 1;
        let (inputs, outcome) = run_one(&mut rng);
        match outcome {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "{test_id}: exceeded {} rejected cases (prop_assume too strict)",
                        config.max_global_rejects
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{test_id}: property failed at case {case}: {msg}\n\
                     inputs: {inputs}\n\
                     (re-run deterministically; set PROPTEST_SEED to vary)"
                );
            }
        }
    }
}

/// Declares property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal: expands each test fn inside [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let test_id = concat!(module_path!(), "::", stringify!($name));
            $crate::run_property(test_id, &config, |rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), rng);)+
                let inputs = String::new(); // inputs echoed via assert messages
                let outcome: $crate::TestCaseResult = (|| { $body Ok(()) })();
                (inputs, outcome)
            });
        }
        $crate::__proptest_fns!(($config) $($rest)*);
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "msg", args..)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        // `match` keeps temporaries in the operands alive (as assert_eq!
        // does), unlike a `let` of references.
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?} == {:?}` ({} == {})",
                        l, r, stringify!($left), stringify!($right)
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?} == {:?}`: {}",
                        l, r, format!($($fmt)+)
                    )));
                }
            }
        }
    };
}

/// `prop_assert_ne!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?} != {:?}` ({} != {})",
                        l, r, stringify!($left), stringify!($right)
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?} != {:?}`: {}",
                        l, r, format!($($fmt)+)
                    )));
                }
            }
        }
    };
}

/// Skips the current case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Weighted choice between strategies producing a common value type.
///
/// `prop_oneof![s1, 2 => s2, ...]` — arms default to weight 1.
#[macro_export]
macro_rules! prop_oneof {
    ($($arms:tt)*) => {
        $crate::Union::new_weighted($crate::__prop_oneof_arms!(@acc [] $($arms)*))
    };
}

/// Internal: accumulates `prop_oneof!` arms into a vec. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __prop_oneof_arms {
    (@acc [$($done:expr,)*]) => { vec![$($done,)*] };
    (@acc [$($done:expr,)*] $weight:literal => $strat:expr $(, $($rest:tt)*)?) => {
        $crate::__prop_oneof_arms!(
            @acc [$($done,)* ($weight as u32, $crate::Strategy::boxed($strat)),]
            $($($rest)*)?
        )
    };
    (@acc [$($done:expr,)*] $strat:expr $(, $($rest:tt)*)?) => {
        $crate::__prop_oneof_arms!(
            @acc [$($done,)* (1u32, $crate::Strategy::boxed($strat)),]
            $($($rest)*)?
        )
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(10u64..20), &mut rng);
            assert!((10..20).contains(&v));
            let w = Strategy::generate(&(1u32..=3), &mut rng);
            assert!((1..=3).contains(&w));
        }
    }

    #[test]
    fn collections_and_arrays_have_requested_shapes() {
        let mut rng = TestRng::for_case("coll", 0);
        let v = Strategy::generate(&prop::collection::vec(any::<u8>(), 3..7), &mut rng);
        assert!((3..7).contains(&v.len()));
        let s = Strategy::generate(&prop::collection::hash_set(0u64..100, 5..10), &mut rng);
        assert!(s.len() < 10);
        let a = Strategy::generate(&prop::array::uniform32(any::<u8>()), &mut rng);
        assert_eq!(a.len(), 32);
    }

    #[test]
    fn oneof_honours_weights() {
        let strat = prop_oneof![
            9 => Just(true),
            Just(false),
        ];
        let mut rng = TestRng::for_case("weights", 0);
        let hits = (0..2000).filter(|_| strat.generate(&mut rng)).count();
        assert!(hits > 1500, "weight-9 arm should dominate, got {hits}/2000");
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_and_asserts(
            x in 0u64..100,
            (a, b) in (0u8..10, any::<bool>()),
            v in prop::collection::vec(any::<u8>(), 0..20),
        ) {
            prop_assert!(x < 100);
            prop_assert!(a < 10, "a was {a}");
            prop_assert_eq!(b, b);
            prop_assert_ne!(v.len(), 100);
            prop_assume!(x != 1_000_000); // never rejects
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics() {
        run_one_failing();
    }

    // No #[test] attribute: only invoked via failing_property_panics.
    proptest! {
        #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]
        fn run_one_failing(x in 0u8..10) {
            prop_assert!(x > 200, "x is only {x}");
        }
    }

    #[test]
    fn string_patterns_generate_matching_strings() {
        let mut rng = TestRng::for_case("pattern", 0);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z0-9]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()), "{s:?}");
            let t = Strategy::generate(&"ab[0-1]{3}", &mut rng);
            assert!(t.starts_with("ab") && t.len() == 5, "{t:?}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_case("same", 7);
        let mut b = TestRng::for_case("same", 7);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
