//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The workspace derives `Serialize`/`Deserialize` on result structs as
//! forward-looking metadata but never drives an actual serializer, so the
//! traits here are empty markers and the derives (re-exported from the
//! `serde_derive` shim) emit marker impls. Replacing this shim with the
//! real `serde` is a one-line change in the workspace manifest.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize` (lifetime elided —
/// nothing in this workspace names the trait directly).
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};
