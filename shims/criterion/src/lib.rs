//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the API subset the workspace's `micro` bench uses —
//! [`Criterion::bench_function`], benchmark groups with [`Throughput`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — over a simple
//! wall-clock measurement loop: warm up briefly, then run a fixed number of
//! timed samples and report mean / min / max ns per iteration (plus
//! throughput when configured). No statistics beyond that, no HTML reports,
//! no comparison to saved baselines.

use std::hint;
use std::time::{Duration, Instant};

/// Re-export of the standard black-box to keep optimizers honest.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost; the shim runs one setup per
/// measured iteration regardless, so this is a marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Units for reporting throughput alongside timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Measurement settings shared by a [`Criterion`] instance.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up: Duration::from_millis(300),
            measure_for: Duration::from_millis(1500),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measure_for = d;
        self
    }

    /// Runs `f` as a benchmark named `id` and prints the result.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.clone());
        f(&mut bencher);
        bencher.report(id, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), throughput: None }
    }

    /// Called by `criterion_main!` after all groups run.
    pub fn final_summary(&self) {}
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive rates from timings.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs `f` as a benchmark named `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.criterion.clone());
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id), self.throughput);
        self
    }

    /// Finishes the group (reporting happens per-function in this shim).
    pub fn finish(self) {}
}

/// Collected timing samples, in nanoseconds per iteration.
#[derive(Debug, Default)]
struct Samples {
    ns_per_iter: Vec<f64>,
}

/// The measurement driver handed to benchmark closures.
pub struct Bencher {
    config: Criterion,
    samples: Samples,
}

impl Bencher {
    fn new(config: Criterion) -> Self {
        Bencher { config, samples: Samples::default() }
    }

    /// Measures `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates per-iteration cost to size batches.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.config.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);
        let budget_ns = self.config.measure_for.as_nanos() as f64;
        let per_sample =
            ((budget_ns / self.config.sample_size as f64 / est_ns).ceil() as u64).max(1);
        for _ in 0..self.config.sample_size {
            let t0 = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            let dt = t0.elapsed().as_nanos() as f64;
            self.samples.ns_per_iter.push(dt / per_sample as f64);
        }
    }

    /// Measures `routine` with fresh input from `setup` each iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.config.warm_up {
            let input = setup();
            black_box(routine(input));
            warm_iters += 1;
        }
        let _ = warm_iters;
        for _ in 0..self.config.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.ns_per_iter.push(t0.elapsed().as_nanos() as f64);
        }
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        let s = &self.samples.ns_per_iter;
        if s.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let min = s.iter().copied().fold(f64::INFINITY, f64::min);
        let max = s.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let rate = match throughput {
            Some(Throughput::Bytes(b)) => {
                format!("  {:>10.1} MiB/s", b as f64 / mean * 1e9 / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(e)) => {
                format!("  {:>10.1} Melem/s", e as f64 / mean * 1e9 / 1e6)
            }
            None => String::new(),
        };
        println!(
            "{id:<40} mean {:>12} min {:>12} max {:>12}{rate}",
            fmt_ns(mean),
            fmt_ns(min),
            fmt_ns(max)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group: either the struct form with `name`/`config`/
/// `targets` or the simple list form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn groups_and_batched_iterations_work() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(4096));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![0u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group! {
        name = shim_benches;
        config = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        targets = target_a
    }

    fn target_a(c: &mut Criterion) {
        c.bench_function("a", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_macro_produces_runner() {
        shim_benches();
    }
}
