//! Offline stand-in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as metadata
//! on plain structs — nothing ever serializes through a `Serializer` — so
//! these derives emit a marker `impl` of the shim traits in the `serde`
//! shim crate and nothing else. Generic types are supported by emitting no
//! impl at all (the traits are only referenced via the derive).

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type identifier following the `struct`/`enum` keyword,
/// returning `None` for shapes this shim does not understand (generics).
fn plain_type_name(input: &TokenStream) -> Option<String> {
    let mut tokens = input.clone().into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ref ident) = tt {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    // Generic parameters need real parsing; skip the impl.
                    if let Some(TokenTree::Punct(p)) = tokens.peek() {
                        if p.as_char() == '<' {
                            return None;
                        }
                    }
                    return Some(name.to_string());
                }
            }
        }
    }
    None
}

/// Marker derive for the `serde::Serialize` shim trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match plain_type_name(&input) {
        Some(name) => format!("impl ::serde::Serialize for {name} {{}}").parse().unwrap(),
        None => TokenStream::new(),
    }
}

/// Marker derive for the `serde::Deserialize` shim trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match plain_type_name(&input) {
        Some(name) => format!("impl ::serde::Deserialize for {name} {{}}").parse().unwrap(),
        None => TokenStream::new(),
    }
}
