//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! The build environment for this workspace has no registry access, so this
//! crate provides the slice of the `parking_lot` API the tree uses —
//! [`Mutex`] and [`RwLock`] whose lock methods return guards directly
//! instead of `Result`s — implemented on top of `std::sync`. Poisoned locks
//! (a panic while holding the guard) are recovered rather than propagated,
//! matching `parking_lot`'s poison-free semantics.

use std::sync::{self, PoisonError};

/// A mutual-exclusion primitive; `lock()` returns the guard directly.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = std::sync::Arc::new(Mutex::new(5));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 5, "lock usable after a panicking holder");
    }
}
