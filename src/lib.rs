//! Umbrella crate for the MobiCeal (DSN 2018) reproduction.
//!
//! This workspace re-implements the full MobiCeal system — block-layer
//! plausibly deniable encryption with dummy writes, random allocation and
//! multi-level deniability — plus every substrate it depends on (simulated
//! eMMC, device mapper, thin provisioning, file systems, the Android
//! platform flows) and the systems it is evaluated against (Android FDE,
//! MobiPluto, HIVE's write-only ORAM, DEFY).
//!
//! Start with the [`mobiceal`] crate docs, the `examples/` directory
//! (`cargo run --example quickstart`), and `DESIGN.md` / `EXPERIMENTS.md`
//! for the experiment index.

#![forbid(unsafe_code)]

pub use mobiceal;
pub use mobiceal_adversary as adversary;
pub use mobiceal_android as android;
pub use mobiceal_baselines as baselines;
pub use mobiceal_blockdev as blockdev;
pub use mobiceal_crypto as crypto;
pub use mobiceal_dm as dm;
pub use mobiceal_fs as fs;
pub use mobiceal_sim as sim;
pub use mobiceal_thinp as thinp;
pub use mobiceal_workloads as workloads;
