//! Virtual time: [`SimClock`], [`SimInstant`], [`SimDuration`].
//!
//! A [`SimClock`] is a monotonically non-decreasing counter of simulated
//! nanoseconds shared (via [`SimClock::clone`]) by every component of a
//! simulated device. Components *charge* time to the clock instead of
//! sleeping, which makes multi-minute experiments (e.g. Table II's 18-minute
//! FDE initialization) run in microseconds of real time.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A span of simulated time with nanosecond resolution.
///
/// # Example
///
/// ```
/// use mobiceal_sim::SimDuration;
///
/// let d = SimDuration::from_millis(3) + SimDuration::from_micros(500);
/// assert_eq!(d.as_micros(), 3500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration {
    nanos: u64,
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration { nanos: 0 };

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration { nanos }
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration { nanos: micros * 1_000 }
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration { nanos: millis * 1_000_000 }
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration { nanos: secs * 1_000_000_000 }
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "secs must be finite and non-negative");
        SimDuration { nanos: (secs * 1e9).round() as u64 }
    }

    /// Total nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.nanos
    }

    /// Total whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.nanos / 1_000
    }

    /// Total whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.nanos / 1_000_000
    }

    /// Total seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration { nanos: self.nanos.saturating_sub(rhs.nanos) }
    }

    /// Checked addition, `None` on overflow.
    pub fn checked_add(self, rhs: SimDuration) -> Option<SimDuration> {
        self.nanos.checked_add(rhs.nanos).map(|nanos| SimDuration { nanos })
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration { nanos: self.nanos + rhs.nanos }
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.nanos += rhs.nanos;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration { nanos: self.nanos - rhs.nanos }
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration { nanos: self.nanos * rhs }
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration { nanos: self.nanos / rhs }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.nanos;
        if n >= 60_000_000_000 {
            let secs = n / 1_000_000_000;
            write!(f, "{}min{}s", secs / 60, secs % 60)
        } else if n >= 1_000_000_000 {
            write!(f, "{:.2}s", self.as_secs_f64())
        } else if n >= 1_000_000 {
            write!(f, "{:.2}ms", n as f64 / 1e6)
        } else if n >= 1_000 {
            write!(f, "{:.2}us", n as f64 / 1e3)
        } else {
            write!(f, "{}ns", n)
        }
    }
}

/// A point in simulated time, measured from the clock's origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimInstant {
    nanos: u64,
}

impl SimInstant {
    /// The clock origin (boot of the simulation).
    pub const EPOCH: SimInstant = SimInstant { nanos: 0 };

    /// Nanoseconds since [`SimInstant::EPOCH`].
    pub const fn as_nanos(self) -> u64 {
        self.nanos
    }

    /// Microseconds since the epoch (truncating).
    pub const fn as_micros(self) -> u64 {
        self.nanos / 1_000
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// Time elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimInstant) -> SimDuration {
        assert!(earlier.nanos <= self.nanos, "earlier instant is after self");
        SimDuration { nanos: self.nanos - earlier.nanos }
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;

    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant { nanos: self.nanos + rhs.as_nanos() }
    }
}

impl Sub<SimInstant> for SimInstant {
    type Output = SimDuration;

    fn sub(self, rhs: SimInstant) -> SimDuration {
        self.duration_since(rhs)
    }
}

/// A shareable, monotonically non-decreasing virtual clock.
///
/// Cloning a `SimClock` yields a handle to the *same* underlying counter, so
/// a device stack assembled from many components observes one coherent
/// timeline.
///
/// # Example
///
/// ```
/// use mobiceal_sim::{SimClock, SimDuration};
///
/// let clock = SimClock::new();
/// let handle = clock.clone();
/// clock.advance(SimDuration::from_millis(5));
/// assert_eq!(handle.now().as_micros(), 5_000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    nanos: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock at the epoch.
    pub fn new() -> Self {
        SimClock { nanos: Arc::new(AtomicU64::new(0)) }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimInstant {
        SimInstant { nanos: self.nanos.load(Ordering::SeqCst) }
    }

    /// Advances the clock by `d` and returns the new time.
    pub fn advance(&self, d: SimDuration) -> SimInstant {
        let prev = self.nanos.fetch_add(d.as_nanos(), Ordering::SeqCst);
        SimInstant { nanos: prev + d.as_nanos() }
    }

    /// Measures the simulated time consumed by `f`.
    pub fn measure<T>(&self, f: impl FnOnce() -> T) -> (T, SimDuration) {
        let start = self.now();
        let out = f();
        (out, self.now().duration_since(start))
    }

    /// Returns `true` if `other` shares the same underlying counter.
    pub fn same_clock(&self, other: &SimClock) -> bool {
        Arc::ptr_eq(&self.nanos, &other.nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_micros(10);
        let b = SimDuration::from_micros(4);
        assert_eq!((a + b).as_micros(), 14);
        assert_eq!((a - b).as_micros(), 6);
        assert_eq!((a * 3).as_micros(), 30);
        assert_eq!((a / 2).as_micros(), 5);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
    }

    #[test]
    fn duration_from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
        assert_eq!(SimDuration::from_secs_f64(1e-9).as_nanos(), 1);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn duration_from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn clock_advances_and_shares_state() {
        let clock = SimClock::new();
        let handle = clock.clone();
        assert!(clock.same_clock(&handle));
        assert_eq!(clock.now(), SimInstant::EPOCH);
        clock.advance(SimDuration::from_millis(7));
        assert_eq!(handle.now().as_nanos() / 1_000_000, 7);
    }

    #[test]
    fn distinct_clocks_are_independent() {
        let a = SimClock::new();
        let b = SimClock::new();
        assert!(!a.same_clock(&b));
        a.advance(SimDuration::from_secs(1));
        assert_eq!(b.now(), SimInstant::EPOCH);
    }

    #[test]
    fn concurrent_advances_sum_exactly() {
        // The clock is a single atomic counter: charges from many threads
        // never lose updates, so per-layer accounting telescopes to the
        // clock no matter how the schedule interleaves.
        let clock = SimClock::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let handle = clock.clone();
                s.spawn(move || {
                    for _ in 0..1_000 {
                        handle.advance(SimDuration::from_nanos(3));
                    }
                });
            }
        });
        assert_eq!(clock.now().as_nanos(), 4 * 1_000 * 3);
    }

    #[test]
    fn measure_reports_elapsed() {
        let clock = SimClock::new();
        let (value, elapsed) = clock.measure(|| {
            clock.advance(SimDuration::from_micros(42));
            "done"
        });
        assert_eq!(value, "done");
        assert_eq!(elapsed.as_micros(), 42);
    }

    #[test]
    fn instant_ordering_and_difference() {
        let clock = SimClock::new();
        let t0 = clock.now();
        let t1 = clock.advance(SimDuration::from_nanos(10));
        assert!(t1 > t0);
        assert_eq!(t1 - t0, SimDuration::from_nanos(10));
    }

    #[test]
    fn display_formats_scale() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.00us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.00ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.00s");
        assert_eq!(SimDuration::from_secs(125).to_string(), "2min5s");
    }
}
