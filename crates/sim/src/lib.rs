//! Simulation substrate for the MobiCeal reproduction.
//!
//! The paper evaluates MobiCeal on a physical LG Nexus 4 (eMMC storage,
//! Android 4.2.2). This reproduction runs entirely in userspace, so all
//! timing-sensitive experiments (Fig. 4, Table I, Table II) are driven by a
//! **virtual clock**: every simulated component charges time to a shared
//! [`SimClock`] according to a [`CostModel`] calibrated against the numbers
//! published in the paper. This keeps every experiment deterministic and
//! reproducible while preserving the *relative* performance shapes the paper
//! reports.
//!
//! The crate also provides [`SplitMix64`] and [`Xoshiro256`], small
//! deterministic PRNGs used for simulation decisions (workload shapes,
//! jitter). Security-relevant randomness (keys, dummy data) instead uses the
//! ChaCha20-based DRBG in `mobiceal-crypto`.
//!
//! # Example
//!
//! ```
//! use mobiceal_sim::{SimClock, SimDuration};
//!
//! let clock = SimClock::new();
//! clock.advance(SimDuration::from_micros(250));
//! assert_eq!(clock.now().as_micros(), 250);
//! ```

#![forbid(unsafe_code)]

mod clock;
mod cost;
mod rng;
mod stats;

pub use clock::{SimClock, SimDuration, SimInstant};
pub use cost::{CostModel, CpuCostModel, EmmcCostModel, OpKind};
pub use rng::{SplitMix64, Xoshiro256};
pub use stats::{RunningStat, Summary};
