//! Cost models: how much simulated time each storage / CPU operation costs.
//!
//! The eMMC model is calibrated so that the *uninstrumented* stack reproduces
//! the absolute ballpark of the paper's Nexus 4 measurements (Fig. 4:
//! ~19.5 MB/s sequential Ext4 write, ~27 MB/s sequential read on raw FDE),
//! and so that every layer we add on top (thin provisioning indirection,
//! dm-crypt AES, dummy writes, ORAM write amplification) shifts throughput by
//! mechanism, not by hand-tuned fudge factors.

use crate::clock::SimDuration;
use serde::{Deserialize, Serialize};

/// The kind of a single block-device operation, used for cost lookup and
/// statistics bucketing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Read of one block that directly follows the previously accessed block.
    SequentialRead,
    /// Read of one block anywhere else on the device.
    RandomRead,
    /// Write of one block that directly follows the previously accessed block.
    SequentialWrite,
    /// Write of one block anywhere else on the device.
    RandomWrite,
    /// A cache flush / barrier.
    Flush,
}

impl OpKind {
    /// Whether this op transfers data (i.e. is not a flush).
    pub fn is_transfer(self) -> bool {
        !matches!(self, OpKind::Flush)
    }

    /// Whether this op writes to the medium.
    pub fn is_write(self) -> bool {
        matches!(self, OpKind::SequentialWrite | OpKind::RandomWrite | OpKind::Flush)
    }
}

/// A timing model for a block storage medium.
pub trait CostModel: Send + Sync + std::fmt::Debug {
    /// Cost of one operation on `bytes` bytes.
    fn cost(&self, op: OpKind, bytes: usize) -> SimDuration;

    /// Cost of one multi-block command covering `blocks` blocks of `op` for
    /// `bytes` total transferred bytes.
    ///
    /// Real eMMC amortizes command overhead across a batch: a CMD23-prefixed
    /// CMD25 (or a packed WRITE command) pays controller/command setup once
    /// for the whole transfer, then a per-block cost for each block moved.
    /// Models that capture this override `batch_cost`; the default
    /// implementation is the legacy per-block sum, so a plain model (or the
    /// [`EmmcCostModel::flat`] profile) charges a batch exactly like the
    /// equivalent sequence of single-block operations.
    ///
    /// Implementations must keep three properties the simulator relies on
    /// (pinned by `crates/sim/tests/cost_props.rs`):
    ///
    /// 1. `batch_cost(op, 1, b) == cost(op, b)` — a batch of one *is* a
    ///    single command;
    /// 2. `batch_cost(op, n, n*b) <= n * cost(op, b)` — batching never
    ///    costs more than going block-by-block;
    /// 3. monotonicity in both `blocks` and `bytes`.
    fn batch_cost(&self, op: OpKind, blocks: usize, bytes: usize) -> SimDuration {
        if blocks == 0 {
            return SimDuration::ZERO;
        }
        // Distribute the bytes across the blocks without dropping a
        // remainder: `rem` blocks carry one extra byte, so the sum covers
        // exactly `bytes` and stays monotone for non-uniform batches.
        let per = bytes / blocks;
        let rem = bytes % blocks;
        self.cost(op, per) * (blocks - rem) as u64 + self.cost(op, per + 1) * rem as u64
    }

    /// The number of commands this medium can keep in flight at once —
    /// eMMC 5.1 CQE or SATA NCQ style hardware queueing. Depth 1 (the
    /// default) means a strictly synchronous device: every command waits
    /// for the previous one to finish, and queue-depth charging never
    /// engages.
    fn queue_depth(&self) -> usize {
        1
    }

    /// Cost of one multi-block command when `depth` commands are in flight
    /// on the device concurrently (CQE/NCQ overlap).
    ///
    /// While one command's data moves on the bus, the controller can
    /// execute the latency phases (command setup, FTL lookup, seek
    /// penalty) of the other queued commands, so latency — never the
    /// transfer itself, the bus is shared — amortizes across the overlap.
    /// The default implementation ignores `depth` and charges
    /// [`CostModel::batch_cost`], so plain models and depth-1 media are
    /// bit-identical to the pre-CQE model.
    ///
    /// In production the `depth` argument comes from genuine host-side
    /// queueing: `mobiceal_blockdev::IoEngine` registers every occupied
    /// ring slot with the device (`BlockDevice::host_queue_enter`), and
    /// the device charges the executing command at the resulting slot
    /// occupancy. Draining a ring of `k` batches therefore charges a
    /// descending depth ladder `k, k-1, …, 1` — the shape pinned by the
    /// `drain_ladder_is_bounded_and_monotone` property.
    ///
    /// Implementations must keep (pinned by `crates/sim/tests/cost_props.rs`):
    ///
    /// 1. `batch_cost_at_depth(op, n, b, 1) == batch_cost(op, n, b)` —
    ///    a lone in-flight command is the pre-CQE model exactly;
    /// 2. monotone non-increasing in `depth` (overlap never hurts) and
    ///    never below the pure transfer cost (the bus is not parallel);
    /// 3. monotone in `blocks`/`bytes` at every fixed depth;
    /// 4. `depth` saturates at [`CostModel::queue_depth`] — a queue deeper
    ///    than the hardware's buys nothing.
    fn batch_cost_at_depth(
        &self,
        op: OpKind,
        blocks: usize,
        bytes: usize,
        depth: usize,
    ) -> SimDuration {
        let _ = depth;
        self.batch_cost(op, blocks, bytes)
    }
}

/// eMMC-like flash timing (as exposed through an FTL as a block device).
///
/// Defaults are calibrated for a 2012-2013 phone eMMC part (LG Nexus 4
/// class): ~27 MB/s sequential read, ~21 MB/s sequential write at 4 KiB
/// granularity, with random I/O paying an additional per-op penalty.
///
/// # Example
///
/// ```
/// use mobiceal_sim::{CostModel, EmmcCostModel, OpKind};
///
/// let emmc = EmmcCostModel::nexus4();
/// let seq = emmc.cost(OpKind::SequentialWrite, 4096);
/// let rnd = emmc.cost(OpKind::RandomWrite, 4096);
/// assert!(rnd > seq);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmmcCostModel {
    /// Fixed controller/command overhead per operation.
    pub per_op_ns: u64,
    /// The portion of [`EmmcCostModel::per_op_ns`] that is per-*command*
    /// setup (CMD23 block-count programming, command/response turnaround,
    /// interrupt handling): a multi-block command pays it once for the whole
    /// batch instead of once per block. Must not exceed `per_op_ns`; `0`
    /// disables amortization entirely (every block is its own command).
    pub cmd_setup_ns: u64,
    /// Extra seek-equivalent penalty for a non-sequential access.
    pub random_penalty_ns: u64,
    /// Hardware command-queue depth (eMMC 5.1 CQE / SATA NCQ). When the
    /// host keeps several commands in flight, their latency phases overlap
    /// up to this depth (see [`CostModel::batch_cost_at_depth`]); `1`
    /// models a strictly synchronous device and disables overlap entirely.
    /// Single-threaded driving always observes depth 1, so this field
    /// never moves a sequentially-driven result.
    pub queue_depth: usize,
    /// Transfer cost per byte read.
    pub read_ns_per_byte: f64,
    /// Transfer cost per byte written.
    pub write_ns_per_byte: f64,
    /// Cost of a flush / cache barrier.
    pub flush_ns: u64,
}

impl EmmcCostModel {
    /// Calibration for the LG Nexus 4 internal eMMC (the paper's main
    /// evaluation device).
    ///
    /// Derived from Fig. 4: raw-FDE sequential write ≈ 19.5 MB/s and read
    /// ≈ 27 MB/s measured *through* dm-crypt; we budget the medium slightly
    /// faster so that the AES cost charged by the crypto layer lands the
    /// stack at the published figure.
    pub fn nexus4() -> Self {
        EmmcCostModel {
            per_op_ns: 28_000,
            // Roughly 40 % of the per-op overhead is command setup the
            // eMMC host controller pays once per CMD23/CMD25 batch; the
            // rest (FTL lookup, transfer-unit handling) stays per block.
            cmd_setup_ns: 12_000,
            // The FTL log-structures writes and flash has no seek, so the
            // random-access penalty at the block interface is modest.
            random_penalty_ns: 16_000,
            // The Nexus 4's eMMC 4.x part predates CQE: one command at a
            // time, no latency overlap. Keeping depth 1 here guarantees the
            // Fig. 4 / Table 1 calibration can never move, even under
            // concurrent driving.
            queue_depth: 1,
            read_ns_per_byte: 29.0,
            write_ns_per_byte: 38.0,
            flush_ns: 400_000,
        }
    }

    /// A Nexus 4-class medium upgraded to an eMMC 5.1 command queue: the
    /// same per-block/transfer timing as [`EmmcCostModel::nexus4`], plus
    /// the CQE 32-slot task queue that lets the controller overlap the
    /// latency phases of queued commands. This is the profile the
    /// `multi_tenant` workload drives so multi-volume concurrency shows up
    /// in *simulated* time; the paper's own (single-threaded, pre-CQE)
    /// figures keep using `nexus4()`.
    pub fn emmc51_cqe() -> Self {
        EmmcCostModel { queue_depth: 32, ..EmmcCostModel::nexus4() }
    }

    /// Calibration for a SATA SSD of the Samsung 840 EVO class — the device
    /// HIVE was evaluated on (Table I of the paper): ~216 MB/s sequential
    /// write, fast but not free random 4 KiB I/O, and an expensive flush
    /// (HIVE syncs per write, which dominates its overhead).
    pub fn ssd_840evo() -> Self {
        EmmcCostModel {
            per_op_ns: 4_000,
            // SATA command/completion overhead dominates the per-op cost;
            // NCQ amortizes most of it across a queued batch.
            cmd_setup_ns: 3_000,
            random_penalty_ns: 120_000,
            // SATA NCQ: 32 outstanding commands.
            queue_depth: 32,
            read_ns_per_byte: 2.5,
            write_ns_per_byte: 3.7,
            flush_ns: 1_800_000,
        }
    }

    /// Calibration for the `nandsim` MTD RAM-disk DEFY was evaluated on
    /// (Table I): the medium is nearly free, so cryptographic CPU work
    /// dominates any measured overhead — exactly the regime in which DEFY
    /// showed ~94 % slowdown.
    pub fn nandsim_ramdisk() -> Self {
        EmmcCostModel {
            per_op_ns: 1_500,
            // The MTD request path is mostly syscall/request-queue setup,
            // which vanishes when requests merge into one command.
            cmd_setup_ns: 1_000,
            random_penalty_ns: 500,
            // nandsim is a synchronous kernel thread: no hardware queue.
            queue_depth: 1,
            read_ns_per_byte: 0.9,
            write_ns_per_byte: 1.1,
            flush_ns: 2_000,
        }
    }

    /// A uniform "null" model where every transfer op costs `ns` and flushes
    /// are free. Useful for unit tests that only need relative ordering.
    ///
    /// `cmd_setup_ns` is zero, so a batch costs exactly the per-block sum:
    /// the flat model has no multi-block amortization, which makes it the
    /// control profile for tests isolating the amortization effect.
    pub fn flat(ns: u64) -> Self {
        EmmcCostModel {
            per_op_ns: ns,
            cmd_setup_ns: 0,
            random_penalty_ns: 0,
            // Depth 1: the flat model is the control for queue-depth
            // charging exactly as it is for setup amortization.
            queue_depth: 1,
            read_ns_per_byte: 0.0,
            write_ns_per_byte: 0.0,
            flush_ns: 0,
        }
    }

    /// The per-byte transfer rate for `op` (0 for flushes).
    fn ns_per_byte(&self, op: OpKind) -> f64 {
        match op {
            OpKind::SequentialRead | OpKind::RandomRead => self.read_ns_per_byte,
            OpKind::SequentialWrite | OpKind::RandomWrite => self.write_ns_per_byte,
            OpKind::Flush => 0.0,
        }
    }

    /// The per-block overhead that does *not* amortize: FTL lookup and
    /// transfer-unit handling, plus the seek-equivalent penalty for random
    /// accesses (a packed command still visits every scattered block).
    fn per_block_ns(&self, op: OpKind) -> u64 {
        let base = self.per_op_ns.saturating_sub(self.cmd_setup_ns);
        match op {
            OpKind::RandomRead | OpKind::RandomWrite => base + self.random_penalty_ns,
            _ => base,
        }
    }

    /// Nanoseconds of one single-block transfer command: full setup, one
    /// block's overhead, the transfer. The building block of both
    /// [`CostModel::cost`] and [`CostModel::batch_cost`].
    fn single_op_ns(&self, op: OpKind, bytes: usize) -> u64 {
        self.cmd_setup_ns + self.per_block_ns(op) + (self.ns_per_byte(op) * bytes as f64) as u64
    }
}

impl CostModel for EmmcCostModel {
    fn cost(&self, op: OpKind, bytes: usize) -> SimDuration {
        // A single-block operation is a command of one block: full setup
        // plus one block's overhead plus the transfer.
        self.batch_cost(op, 1, bytes)
    }

    /// One multi-block command: setup once, per-block overhead (and random
    /// penalty) per block, transfer per byte — computed as the legacy
    /// per-block sum minus `(blocks - 1) · cmd_setup_ns`. Subtracting from
    /// the per-block-truncated sum (instead of truncating one big float)
    /// keeps every documented invariant *exact*: equality with
    /// [`Self::cost`] at `blocks == 1`, equality with the sequential sum
    /// when `cmd_setup_ns == 0` (the [`Self::flat`] profile, or any model
    /// with amortization disabled) even under fractional per-byte rates,
    /// and never above the sequential sum otherwise.
    fn batch_cost(&self, op: OpKind, blocks: usize, bytes: usize) -> SimDuration {
        if blocks == 0 {
            return SimDuration::ZERO;
        }
        if op == OpKind::Flush {
            return SimDuration::from_nanos(self.flush_ns * blocks as u64);
        }
        let per = bytes / blocks;
        let rem = bytes % blocks;
        let sum = self.single_op_ns(op, per) * (blocks - rem) as u64
            + self.single_op_ns(op, per + 1) * rem as u64;
        SimDuration::from_nanos(sum - (blocks as u64 - 1) * self.cmd_setup_ns)
    }

    fn queue_depth(&self) -> usize {
        self.queue_depth.max(1)
    }

    /// CQE/NCQ overlap: the command's latency (one setup + per-block
    /// overhead and random penalties) divides across the `depth` commands
    /// concurrently in flight — while this command's data is not on the
    /// bus, the controller executes the others' latency phases — and the
    /// transfer charges full price (the bus is shared). `depth` saturates
    /// at [`EmmcCostModel::queue_depth`]; at (clamped) depth 1 the charge
    /// is [`CostModel::batch_cost`] to the nanosecond, because
    /// `transfer + ceil(latency / 1)` reassembles the exact decomposition.
    fn batch_cost_at_depth(
        &self,
        op: OpKind,
        blocks: usize,
        bytes: usize,
        depth: usize,
    ) -> SimDuration {
        if blocks == 0 {
            return SimDuration::ZERO;
        }
        let depth = depth.clamp(1, self.queue_depth.max(1)) as u64;
        let full = self.batch_cost(op, blocks, bytes);
        if depth == 1 || op == OpKind::Flush {
            return full;
        }
        // Exact latency/transfer split of `batch_cost`: everything except
        // the truncated per-byte transfer sums is latency.
        let latency = self.cmd_setup_ns + blocks as u64 * self.per_block_ns(op);
        let transfer = full.as_nanos() - latency;
        // div_ceil keeps the charge strictly positive for latency-only
        // commands and makes depth 1 the identity.
        SimDuration::from_nanos(transfer + latency.div_ceil(depth))
    }
}

/// CPU timing for cryptographic work on the simulated SoC.
///
/// The Snapdragon S4 Pro in the Nexus 4 has no AES instructions, so dm-crypt
/// runs table-based AES at roughly 55–80 MB/s per core; PBKDF2 with Android's
/// default iteration count takes tens of milliseconds per derivation.
///
/// This model is the *only* source of simulated encryption time: layers like
/// `DmCrypt` charge [`CpuCostModel::aes_cost`] to the virtual clock for the
/// bytes they process, regardless of how fast the host actually runs the
/// real cipher (T-tables, AES-NI, or the byte-wise reference core) and of
/// whether a batch was sharded across worker threads. Making the real
/// implementation faster therefore never moves a simulated result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CpuCostModel {
    /// AES-CBC/XTS bulk cost per byte (encrypt or decrypt).
    pub aes_ns_per_byte: f64,
    /// Fixed cost per AES call (key schedule reuse assumed).
    pub aes_call_ns: u64,
    /// Cost of one PBKDF2 derivation (full iteration count).
    pub pbkdf2_ns: u64,
    /// Cost per byte of CSPRNG output (dummy data generation).
    pub rng_ns_per_byte: f64,
    /// Cost of one SHA-256 compression-equivalent hash of a small input.
    pub hash_small_ns: u64,
}

impl CpuCostModel {
    /// Calibration for the Nexus 4's Snapdragon APQ8064. The kernel crypto
    /// layer overlaps AES with device DMA, so the *effective* per-byte cost
    /// on the dm-crypt path is small (Fig. 4 shows FDE within ~5 % of plain
    /// Ext4 on this device).
    pub fn nexus4() -> Self {
        CpuCostModel {
            aes_ns_per_byte: 2.5,
            aes_call_ns: 500,
            pbkdf2_ns: 45_000_000,
            rng_ns_per_byte: 4.0,
            hash_small_ns: 2_000,
        }
    }

    /// Calibration for DEFY's testbed: a single-processor PC running the
    /// whole cipher stack synchronously in Python/C on top of nandsim —
    /// no DMA overlap, so crypto costs full price per byte.
    pub fn pc_singlecore() -> Self {
        CpuCostModel {
            aes_ns_per_byte: 14.0,
            aes_call_ns: 1_500,
            pbkdf2_ns: 45_000_000,
            rng_ns_per_byte: 4.0,
            hash_small_ns: 2_000,
        }
    }

    /// Free CPU (for tests isolating device costs).
    pub fn free() -> Self {
        CpuCostModel {
            aes_ns_per_byte: 0.0,
            aes_call_ns: 0,
            pbkdf2_ns: 0,
            rng_ns_per_byte: 0.0,
            hash_small_ns: 0,
        }
    }

    /// Cost of encrypting or decrypting `bytes` bytes with AES.
    pub fn aes_cost(&self, bytes: usize) -> SimDuration {
        SimDuration::from_nanos(self.aes_call_ns + (self.aes_ns_per_byte * bytes as f64) as u64)
    }

    /// Cost of one PBKDF2 password derivation.
    pub fn pbkdf2_cost(&self) -> SimDuration {
        SimDuration::from_nanos(self.pbkdf2_ns)
    }

    /// Cost of generating `bytes` bytes of CSPRNG output.
    pub fn rng_cost(&self, bytes: usize) -> SimDuration {
        SimDuration::from_nanos((self.rng_ns_per_byte * bytes as f64) as u64)
    }

    /// Cost of hashing a small (<= one block) input.
    pub fn hash_cost(&self) -> SimDuration {
        SimDuration::from_nanos(self.hash_small_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_io_costs_more_than_sequential() {
        let m = EmmcCostModel::nexus4();
        for (r, s) in [
            (OpKind::RandomRead, OpKind::SequentialRead),
            (OpKind::RandomWrite, OpKind::SequentialWrite),
        ] {
            assert!(m.cost(r, 4096) > m.cost(s, 4096), "{r:?} should exceed {s:?}");
        }
    }

    #[test]
    fn write_costs_more_than_read_on_flash() {
        let m = EmmcCostModel::nexus4();
        assert!(m.cost(OpKind::SequentialWrite, 4096) > m.cost(OpKind::SequentialRead, 4096));
    }

    #[test]
    fn cost_scales_with_size() {
        let m = EmmcCostModel::nexus4();
        let small = m.cost(OpKind::SequentialRead, 512);
        let big = m.cost(OpKind::SequentialRead, 65536);
        assert!(big > small * 10);
    }

    #[test]
    fn nexus4_sequential_write_band() {
        // Sanity: the raw medium should land in the 20-30 MB/s band so the
        // full stack with AES lands near the paper's 19.5 MB/s.
        let m = EmmcCostModel::nexus4();
        let per_4k = m.cost(OpKind::SequentialWrite, 4096).as_nanos() as f64;
        let mbps = 4096.0 / per_4k * 1e9 / 1e6;
        assert!((20.0..=30.0).contains(&mbps), "raw write speed {mbps:.1} MB/s out of band");
    }

    #[test]
    fn flat_model_uniform() {
        let m = EmmcCostModel::flat(100);
        assert_eq!(m.cost(OpKind::SequentialRead, 4096), m.cost(OpKind::RandomWrite, 4096));
        assert_eq!(m.cost(OpKind::Flush, 0), SimDuration::ZERO);
    }

    #[test]
    fn op_kind_predicates() {
        assert!(OpKind::RandomWrite.is_write());
        assert!(OpKind::Flush.is_write());
        assert!(!OpKind::SequentialRead.is_write());
        assert!(OpKind::SequentialRead.is_transfer());
        assert!(!OpKind::Flush.is_transfer());
    }

    #[test]
    fn batch_of_one_is_a_single_command() {
        for m in [
            EmmcCostModel::nexus4(),
            EmmcCostModel::ssd_840evo(),
            EmmcCostModel::nandsim_ramdisk(),
            EmmcCostModel::flat(100),
        ] {
            for op in [
                OpKind::SequentialRead,
                OpKind::RandomRead,
                OpKind::SequentialWrite,
                OpKind::RandomWrite,
            ] {
                assert_eq!(m.batch_cost(op, 1, 4096), m.cost(op, 4096), "{m:?} {op:?}");
            }
        }
    }

    #[test]
    fn batch_amortizes_exactly_the_setup() {
        let m = EmmcCostModel::nexus4();
        for op in [OpKind::SequentialWrite, OpKind::RandomRead] {
            let single = m.cost(op, 4096).as_nanos();
            let batch = m.batch_cost(op, 64, 64 * 4096).as_nanos();
            // One setup + 64 × (everything but the setup).
            assert_eq!(batch, single * 64 - 63 * m.cmd_setup_ns, "{op:?}");
        }
    }

    #[test]
    fn flat_model_has_no_amortization() {
        let m = EmmcCostModel::flat(100);
        assert_eq!(
            m.batch_cost(OpKind::SequentialWrite, 64, 64 * 4096),
            m.cost(OpKind::SequentialWrite, 4096) * 64
        );
    }

    #[test]
    fn batch_cost_empty_and_flush() {
        let m = EmmcCostModel::nexus4();
        assert_eq!(m.batch_cost(OpKind::SequentialWrite, 0, 0), SimDuration::ZERO);
        assert_eq!(m.batch_cost(OpKind::Flush, 2, 0), m.cost(OpKind::Flush, 0) * 2);
    }

    #[test]
    fn default_batch_cost_is_the_per_block_sum() {
        // A model that does not override batch_cost charges the legacy sum.
        #[derive(Debug)]
        struct Plain;
        impl CostModel for Plain {
            fn cost(&self, op: OpKind, bytes: usize) -> SimDuration {
                SimDuration::from_nanos(1_000 + bytes as u64 + u64::from(op.is_write()))
            }
        }
        let p = Plain;
        assert_eq!(
            p.batch_cost(OpKind::RandomWrite, 7, 7 * 512),
            p.cost(OpKind::RandomWrite, 512) * 7
        );
        assert_eq!(p.batch_cost(OpKind::RandomWrite, 0, 0), SimDuration::ZERO);
    }

    #[test]
    fn depth_one_is_the_pre_cqe_model_exactly() {
        for m in [
            EmmcCostModel::nexus4(),
            EmmcCostModel::emmc51_cqe(),
            EmmcCostModel::ssd_840evo(),
            EmmcCostModel::nandsim_ramdisk(),
            EmmcCostModel::flat(25_000),
        ] {
            for op in [OpKind::SequentialWrite, OpKind::RandomRead, OpKind::Flush] {
                for blocks in [1usize, 7, 64] {
                    assert_eq!(
                        m.batch_cost_at_depth(op, blocks, blocks * 4096, 1),
                        m.batch_cost(op, blocks, blocks * 4096),
                        "{m:?} {op:?} depth 1 must be bit-identical"
                    );
                }
            }
        }
    }

    #[test]
    fn depth_overlap_amortizes_latency_but_not_transfer() {
        let m = EmmcCostModel::emmc51_cqe();
        let op = OpKind::RandomWrite;
        let full = m.batch_cost_at_depth(op, 8, 8 * 4096, 1);
        let mut last = full;
        for depth in [2usize, 4, 8, 32] {
            let overlapped = m.batch_cost_at_depth(op, 8, 8 * 4096, depth);
            assert!(overlapped < full, "depth {depth} must amortize");
            assert!(overlapped <= last, "deeper queues never cost more");
            last = overlapped;
        }
        // The bus is shared: the transfer component always charges full.
        let latency = m.cmd_setup_ns + 8 * m.per_block_ns(op);
        let transfer = m.batch_cost(op, 8, 8 * 4096).as_nanos() - latency;
        assert!(last.as_nanos() > transfer, "charge stays above the pure transfer");
    }

    #[test]
    fn depth_saturates_at_the_hardware_queue() {
        let m = EmmcCostModel::emmc51_cqe();
        assert_eq!(CostModel::queue_depth(&m), 32);
        assert_eq!(
            m.batch_cost_at_depth(OpKind::SequentialWrite, 4, 4 * 4096, 32),
            m.batch_cost_at_depth(OpKind::SequentialWrite, 4, 4 * 4096, 1000),
            "depth beyond the hardware queue buys nothing"
        );
    }

    #[test]
    fn synchronous_profiles_ignore_depth() {
        // nexus4 (pre-CQE eMMC), nandsim and flat() all advertise depth 1,
        // so even a deep in-flight count charges the pre-CQE cost — the
        // control that pins Fig. 4 / Table 1 under concurrent driving.
        for m in
            [EmmcCostModel::nexus4(), EmmcCostModel::nandsim_ramdisk(), EmmcCostModel::flat(25_000)]
        {
            assert_eq!(CostModel::queue_depth(&m), 1, "{m:?}");
            assert_eq!(
                m.batch_cost_at_depth(OpKind::RandomWrite, 16, 16 * 4096, 8),
                m.batch_cost(OpKind::RandomWrite, 16, 16 * 4096),
                "{m:?}"
            );
        }
    }

    #[test]
    fn default_batch_cost_at_depth_ignores_depth() {
        #[derive(Debug)]
        struct Plain;
        impl CostModel for Plain {
            fn cost(&self, _op: OpKind, bytes: usize) -> SimDuration {
                SimDuration::from_nanos(1_000 + bytes as u64)
            }
        }
        let p = Plain;
        assert_eq!(p.queue_depth(), 1);
        assert_eq!(
            p.batch_cost_at_depth(OpKind::SequentialRead, 5, 5 * 512, 16),
            p.batch_cost(OpKind::SequentialRead, 5, 5 * 512)
        );
    }

    #[test]
    fn cpu_model_costs() {
        let cpu = CpuCostModel::nexus4();
        assert!(cpu.aes_cost(4096) > cpu.aes_cost(512));
        assert!(cpu.pbkdf2_cost() >= SimDuration::from_millis(10));
        assert_eq!(CpuCostModel::free().aes_cost(1 << 20), SimDuration::ZERO);
    }
}
