//! Small deterministic PRNGs for simulation decisions.
//!
//! These are **not** cryptographically secure; they seed workloads, jitter
//! and the adversary's coin flips so that every experiment is exactly
//! reproducible from a seed. All security-relevant randomness (encryption
//! keys, dummy-write payloads) uses the ChaCha20 DRBG in `mobiceal-crypto`.

/// SplitMix64: a tiny, high-quality 64-bit PRNG, mainly used for seeding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** — the general-purpose simulation PRNG.
///
/// # Example
///
/// ```
/// use mobiceal_sim::Xoshiro256;
///
/// let mut a = Xoshiro256::seed_from(7);
/// let mut b = Xoshiro256::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the state by expanding `seed` through SplitMix64, per the
    /// reference implementation's recommendation.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // Guard against the all-zero state (astronomically unlikely, but the
        // generator would be stuck forever).
        if s == [0, 0, 0, 0] {
            s[0] = 0x1;
        }
        Xoshiro256 { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)` using Lemire's method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection-free for our purposes: 128-bit multiply-shift has
        // negligible bias for bounds far below 2^64; add one rejection round
        // to remove it entirely.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range");
        lo + self.next_below(hi - lo + 1)
    }

    /// Fills `buf` with random bytes (simulation-grade, not secret-grade).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Samples from Exp(lambda) by inversion.
    ///
    /// # Panics
    ///
    /// Panics if `lambda <= 0`.
    pub fn next_exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "lambda must be positive");
        let f = loop {
            let f = self.next_f64();
            if f < 1.0 {
                break f;
            }
        };
        -(1.0 - f).ln() / lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 1234567 from the public-domain
        // implementation by Vigna.
        let mut rng = SplitMix64::new(1234567);
        let expected = [6457827717110365317u64, 3203168211198807973, 9817491932198370423];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn xoshiro_next_below_in_range() {
        let mut rng = Xoshiro256::seed_from(99);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn xoshiro_next_below_covers_small_range() {
        let mut rng = Xoshiro256::seed_from(5);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear: {seen:?}");
    }

    #[test]
    fn xoshiro_f64_unit_interval() {
        let mut rng = Xoshiro256::seed_from(1);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn xoshiro_range_inclusive() {
        let mut rng = Xoshiro256::seed_from(2);
        let mut hit_lo = false;
        let mut hit_hi = false;
        for _ in 0..2000 {
            let v = rng.next_range(10, 12);
            assert!((10..=12).contains(&v));
            hit_lo |= v == 10;
            hit_hi |= v == 12;
        }
        assert!(hit_lo && hit_hi);
    }

    #[test]
    fn exponential_mean_close_to_inverse_lambda() {
        let mut rng = Xoshiro256::seed_from(7);
        for lambda in [0.5f64, 1.0, 2.0] {
            let n = 20_000;
            let sum: f64 = (0..n).map(|_| rng.next_exponential(lambda)).sum();
            let mean = sum / n as f64;
            let expect = 1.0 / lambda;
            assert!(
                (mean - expect).abs() < expect * 0.05,
                "lambda={lambda}: mean {mean} vs {expect}"
            );
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256::seed_from(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle should move things");
    }

    #[test]
    fn fill_bytes_fills_exactly() {
        let mut rng = Xoshiro256::seed_from(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Xoshiro256::seed_from(0).next_below(0);
    }
}
