//! Small statistics helpers shared by the benchmark harnesses.

use serde::{Deserialize, Serialize};

/// Online mean / variance accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use mobiceal_sim::RunningStat;
///
/// let mut s = RunningStat::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStat {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStat {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStat { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample standard deviation (0 if fewer than 2 samples).
    pub fn sample_std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Population standard deviation (0 if empty).
    pub fn population_std_dev(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Smallest observation (NaN if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (NaN if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Condenses into a [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.n,
            mean: self.mean(),
            std_dev: self.sample_std_dev(),
            min: self.min(),
            max: self.max(),
        }
    }
}

impl Extend<f64> for RunningStat {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for RunningStat {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = RunningStat::new();
        s.extend(iter);
        s
    }
}

/// Immutable summary of a sample, as reported in experiment tables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2}±{:.2} (n={})", self.mean, self.std_dev, self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stat_is_sane() {
        let s = RunningStat::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_std_dev(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn single_sample() {
        let s: RunningStat = [5.0].into_iter().collect();
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.sample_std_dev(), 0.0);
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn welford_matches_two_pass() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 10.0 + 3.0).collect();
        let s: RunningStat = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.sample_std_dev() - var.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn min_max_track_extremes() {
        let s: RunningStat = [3.0, -1.0, 7.5, 2.0].into_iter().collect();
        assert_eq!(s.min(), -1.0);
        assert_eq!(s.max(), 7.5);
    }

    #[test]
    fn summary_display() {
        let s: RunningStat = [1.0, 2.0, 3.0].into_iter().collect();
        let text = s.summary().to_string();
        assert!(text.contains("2.00"), "display should include mean: {text}");
        assert!(text.contains("n=3"));
    }
}
