//! Property tests of the amortized multi-command cost model: for every
//! device profile, `batch_cost` is exactly one setup charge plus per-block
//! costs, collapses to the legacy per-block sum under the default
//! implementation, and is monotone in depth and bytes.

use mobiceal_sim::{CostModel, EmmcCostModel, OpKind, SimDuration};
use proptest::prelude::*;

fn profiles() -> Vec<EmmcCostModel> {
    vec![
        EmmcCostModel::nexus4(),
        EmmcCostModel::emmc51_cqe(),
        EmmcCostModel::ssd_840evo(),
        EmmcCostModel::nandsim_ramdisk(),
        EmmcCostModel::flat(25_000),
        // Amortization disabled on a profile with *fractional* per-byte
        // rates: the regression corner where one-shot float truncation
        // used to charge a batch slightly MORE than the sequential sum.
        EmmcCostModel { cmd_setup_ns: 0, ..EmmcCostModel::ssd_840evo() },
    ]
}

fn transfer_ops() -> [OpKind; 4] {
    [OpKind::SequentialRead, OpKind::RandomRead, OpKind::SequentialWrite, OpKind::RandomWrite]
}

/// A cost model that deliberately does not override `batch_cost`.
#[derive(Debug)]
struct LegacyModel(EmmcCostModel);

impl CostModel for LegacyModel {
    fn cost(&self, op: OpKind, bytes: usize) -> SimDuration {
        self.0.cost(op, bytes)
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// For every profile, a batch of `n` uniform blocks costs exactly one
    /// command setup plus `n` per-block charges: the gap to the sequential
    /// sum is `(n - 1) * cmd_setup_ns`, nothing more and nothing less.
    #[test]
    fn batch_is_setup_plus_per_block(
        blocks in 1usize..256,
        bs_sel in 0usize..2,
        op_idx in 0usize..4,
    ) {
        let op = transfer_ops()[op_idx];
        let block_size = [512usize, 4096][bs_sel];
        for m in profiles() {
            let single = m.cost(op, block_size).as_nanos();
            let batch = m.batch_cost(op, blocks, blocks * block_size).as_nanos();
            let amortized = (blocks as u64 - 1) * m.cmd_setup_ns;
            prop_assert_eq!(
                batch,
                single * blocks as u64 - amortized,
                "{:?} {:?}", m, op
            );
        }
    }

    /// Batch of one ≡ single command, for every profile and op kind.
    #[test]
    fn size_one_equals_single(bytes in 0usize..65536, op_idx in 0usize..4) {
        let op = transfer_ops()[op_idx];
        for m in profiles() {
            prop_assert_eq!(m.batch_cost(op, 1, bytes), m.cost(op, bytes));
        }
    }

    /// A model that keeps the default `batch_cost` charges exactly the
    /// legacy per-block sum — existing models are unchanged by the trait
    /// extension.
    #[test]
    fn default_impl_collapses_to_legacy_sum(
        blocks in 1usize..128,
        bs_sel in 0usize..2,
        op_idx in 0usize..4,
    ) {
        let op = transfer_ops()[op_idx];
        let block_size = [512usize, 4096][bs_sel];
        for m in profiles() {
            let legacy = LegacyModel(m.clone());
            prop_assert_eq!(
                legacy.batch_cost(op, blocks, blocks * block_size),
                legacy.cost(op, block_size) * blocks as u64
            );
        }
    }

    /// `batch_cost` is monotone in blocks (at fixed block size) and in
    /// bytes (at fixed depth), and never exceeds the sequential sum.
    #[test]
    fn monotone_and_bounded_by_sequential(
        blocks in 1usize..128,
        bs_sel in 0usize..2,
        op_idx in 0usize..4,
    ) {
        let op = transfer_ops()[op_idx];
        let block_size = [512usize, 4096][bs_sel];
        for m in profiles() {
            let cost_n = m.batch_cost(op, blocks, blocks * block_size);
            let cost_n1 = m.batch_cost(op, blocks + 1, (blocks + 1) * block_size);
            prop_assert!(cost_n1 > cost_n, "more blocks must cost more");
            let more_bytes = m.batch_cost(op, blocks, blocks * block_size + 4096);
            prop_assert!(more_bytes >= cost_n, "more bytes must not cost less");
            prop_assert!(
                cost_n <= m.cost(op, block_size) * blocks as u64,
                "batching must never cost more than the sequential sum"
            );
        }
    }

    /// Queue-depth charging: depth 1 is `batch_cost` bit for bit on every
    /// profile; deeper queues are monotone non-increasing, saturate at the
    /// hardware queue depth, never fall below the pure transfer cost, and
    /// stay monotone in blocks at every fixed depth.
    #[test]
    fn queue_depth_charging_properties(
        blocks in 1usize..128,
        bs_sel in 0usize..2,
        op_idx in 0usize..4,
        depth in 1usize..64,
    ) {
        let op = transfer_ops()[op_idx];
        let block_size = [512usize, 4096][bs_sel];
        for m in profiles() {
            let bytes = blocks * block_size;
            prop_assert_eq!(
                m.batch_cost_at_depth(op, blocks, bytes, 1),
                m.batch_cost(op, blocks, bytes),
                "depth 1 must be the pre-CQE charge: {:?} {:?}", m, op
            );
            let at_depth = m.batch_cost_at_depth(op, blocks, bytes, depth);
            prop_assert!(at_depth <= m.batch_cost(op, blocks, bytes));
            prop_assert!(
                m.batch_cost_at_depth(op, blocks, bytes, depth + 1) <= at_depth,
                "deeper queues never cost more"
            );
            let hw = CostModel::queue_depth(&m);
            prop_assert_eq!(
                m.batch_cost_at_depth(op, blocks, bytes, hw),
                m.batch_cost_at_depth(op, blocks, bytes, hw + 100),
                "depth saturates at the hardware queue"
            );
            // More blocks cost more at every depth.
            prop_assert!(
                m.batch_cost_at_depth(op, blocks + 1, bytes + block_size, depth) > at_depth,
                "{:?} {:?} depth {}", m, op, depth
            );
            // The shared bus floor: transfer never amortizes.
            let transfer = (match op {
                OpKind::SequentialRead | OpKind::RandomRead => m.read_ns_per_byte,
                _ => m.write_ns_per_byte,
            } * block_size as f64) as u64 * blocks as u64;
            prop_assert!(at_depth.as_nanos() >= transfer);
        }
    }

    /// Draining a submission ring of `k` equal batches charges the depth
    /// ladder `k, k-1, …, 1` (each execution sees one fewer slot occupied —
    /// the shape `mobiceal_blockdev::IoEngine` produces). The ladder total
    /// is bracketed by the fully-overlapped and fully-sequential sums, and
    /// the *average* per-batch charge is monotone non-increasing in `k`:
    /// keeping a deeper ring full never makes a batch dearer.
    #[test]
    fn drain_ladder_is_bounded_and_monotone(
        k in 1usize..48,
        blocks in 1usize..32,
        bs_sel in 0usize..2,
        op_idx in 0usize..4,
    ) {
        let op = transfer_ops()[op_idx];
        let block_size = [512usize, 4096][bs_sel];
        let bytes = blocks * block_size;
        for m in profiles() {
            let ladder: Vec<u64> = (1..=k + 1)
                .rev()
                .map(|d| m.batch_cost_at_depth(op, blocks, bytes, d).as_nanos())
                .collect();
            let total_k: u64 = ladder[1..].iter().sum();
            let total_k1: u64 = ladder.iter().sum();
            let sequential = m.batch_cost(op, blocks, bytes).as_nanos() * k as u64;
            let hw = CostModel::queue_depth(&m);
            let saturated =
                m.batch_cost_at_depth(op, blocks, bytes, hw).as_nanos() * k as u64;
            prop_assert!(total_k <= sequential, "ladder never beats sequential upward");
            prop_assert!(total_k >= saturated, "ladder never beats full overlap downward");
            // avg(k+1) <= avg(k), compared exactly via cross-multiplication.
            prop_assert!(
                total_k1 * k as u64 <= total_k * (k as u64 + 1),
                "average per-batch charge must not rise with ring depth: {:?} {:?} k={}",
                m, op, k
            );
        }
    }
}
