//! Property-based tests of the cryptographic primitives.

use mobiceal_crypto::reference::ReferenceAes;
use mobiceal_crypto::{
    chacha20_xor, from_hex, hmac_sha256, pbkdf2_hmac_sha256, sha256, to_hex, Aes128, Aes192,
    Aes256, BlockCipher, CbcEssiv, ChaCha20Rng, HmacSha256, SectorCipher, Sha256, Xts,
};
use proptest::prelude::*;

/// Pads to the 16-byte multiple the sector modes require (min one block).
fn pad_sector(mut data: Vec<u8>) -> Vec<u8> {
    if data.is_empty() {
        data.push(0);
    }
    while !data.len().is_multiple_of(16) {
        data.push(0);
    }
    data
}

proptest! {
    #[test]
    fn t_table_core_is_pinned_to_reference(
        key in prop::array::uniform32(any::<u8>()),
        block in prop::array::uniform16(any::<u8>()),
    ) {
        // The fast T-table core must agree bit-for-bit with the byte-wise
        // FIPS 197 specification in both directions, for all key sizes.
        for key_len in [16usize, 24, 32] {
            let fast: Box<dyn BlockCipher> = match key_len {
                16 => Box::new(Aes128::from_slice(&key[..16])),
                24 => Box::new(Aes192::from_slice(&key[..24])),
                _ => Box::new(Aes256::from_slice(&key)),
            };
            let reference = ReferenceAes::new(&key[..key_len]);
            let mut a = block;
            let mut b = block;
            fast.encrypt_block(&mut a);
            reference.encrypt_block(&mut b);
            prop_assert_eq!(a, b, "encrypt diverges at key_len {}", key_len);
            fast.decrypt_block(&mut a);
            reference.decrypt_block(&mut b);
            prop_assert_eq!(a, b, "decrypt diverges at key_len {}", key_len);
            prop_assert_eq!(a, block, "roundtrip broken at key_len {}", key_len);
        }
    }

    #[test]
    fn essiv_in_place_equals_allocating(
        key in prop::array::uniform32(any::<u8>()),
        sector in any::<u64>(),
        data in prop::collection::vec(any::<u8>(), 1..200),
    ) {
        let plain = pad_sector(data);
        let cipher = CbcEssiv::with_essiv_key(Aes256::new(&key), &sha256(&key));
        let ct = cipher.encrypt_sector(sector, &plain);
        let mut buf = plain.clone();
        cipher.encrypt_sector_in_place(sector, &mut buf);
        prop_assert_eq!(&buf, &ct, "in-place encrypt must match allocating");
        cipher.decrypt_sector_in_place(sector, &mut buf);
        prop_assert_eq!(&buf, &plain, "in-place decrypt must invert");
        prop_assert_eq!(cipher.decrypt_sector(sector, &ct), plain);
    }

    #[test]
    fn xts_in_place_equals_allocating(
        key in prop::array::uniform32(any::<u8>()),
        tweak_key in prop::array::uniform32(any::<u8>()),
        sector in any::<u64>(),
        data in prop::collection::vec(any::<u8>(), 1..200),
    ) {
        let plain = pad_sector(data);
        let xts = Xts::new(Aes256::new(&key), Aes256::new(&tweak_key));
        let ct = xts.encrypt_sector(sector, &plain);
        let mut buf = plain.clone();
        xts.encrypt_sector_in_place(sector, &mut buf);
        prop_assert_eq!(&buf, &ct, "in-place encrypt must match allocating");
        xts.decrypt_sector_in_place(sector, &mut buf);
        prop_assert_eq!(&buf, &plain, "in-place decrypt must invert");
        prop_assert_eq!(xts.decrypt_sector(sector, &ct), plain);
    }

    #[test]
    fn aes_roundtrip_all_key_sizes(key in prop::array::uniform32(any::<u8>()),
                                   block in prop::array::uniform16(any::<u8>())) {
        for cipher in [
            Box::new(Aes128::from_slice(&key[..16])) as Box<dyn BlockCipher>,
            Box::new(Aes192::from_slice(&key[..24])),
            Box::new(Aes256::from_slice(&key)),
        ] {
            let mut b = block;
            cipher.encrypt_block(&mut b);
            prop_assert_ne!(b, block, "16-byte fixed point is astronomically unlikely");
            cipher.decrypt_block(&mut b);
            prop_assert_eq!(b, block);
        }
    }

    #[test]
    fn essiv_roundtrip_arbitrary_sectors(
        key in prop::array::uniform32(any::<u8>()),
        sector in any::<u64>(),
        data in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        // Pad to a 16-byte multiple as the mode requires.
        let mut plain = data;
        while plain.len() % 16 != 0 {
            plain.push(0);
        }
        let cipher = CbcEssiv::with_essiv_key(Aes256::new(&key), &sha256(&key));
        let ct = cipher.encrypt_sector(sector, &plain);
        prop_assert_eq!(ct.len(), plain.len());
        prop_assert_ne!(&ct, &plain);
        prop_assert_eq!(cipher.decrypt_sector(sector, &ct), plain);
    }

    #[test]
    fn xts_roundtrip_and_sector_separation(
        key in prop::array::uniform32(any::<u8>()),
        tweak_key in prop::array::uniform32(any::<u8>()),
        sector in any::<u64>(),
    ) {
        let xts = Xts::new(Aes256::new(&key), Aes256::new(&tweak_key));
        let plain = vec![0x5Au8; 512];
        let ct = xts.encrypt_sector(sector, &plain);
        prop_assert_eq!(xts.decrypt_sector(sector, &ct), plain.clone());
        let ct2 = xts.encrypt_sector(sector.wrapping_add(1), &plain);
        prop_assert_ne!(ct, ct2, "adjacent sectors must differ");
    }

    #[test]
    fn sha256_incremental_equals_oneshot(
        data in prop::collection::vec(any::<u8>(), 0..500),
        split in 0usize..500,
    ) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn hmac_incremental_equals_oneshot(
        key in prop::collection::vec(any::<u8>(), 0..100),
        data in prop::collection::vec(any::<u8>(), 0..300),
        split in 0usize..300,
    ) {
        let split = split.min(data.len());
        let mut mac = HmacSha256::new(&key);
        mac.update(&data[..split]);
        mac.update(&data[split..]);
        prop_assert_eq!(mac.finalize(), hmac_sha256(&key, &data));
    }

    #[test]
    fn pbkdf2_prefix_property(
        pwd in prop::collection::vec(any::<u8>(), 1..32),
        salt in prop::collection::vec(any::<u8>(), 1..32),
        iters in 1u32..8,
    ) {
        let mut short = [0u8; 16];
        let mut long = [0u8; 48];
        pbkdf2_hmac_sha256(&pwd, &salt, iters, &mut short);
        pbkdf2_hmac_sha256(&pwd, &salt, iters, &mut long);
        prop_assert_eq!(&short[..], &long[..16]);
    }

    #[test]
    fn chacha20_xor_is_an_involution(
        key in prop::array::uniform32(any::<u8>()),
        counter in any::<u32>(),
        data in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let nonce = [7u8; 12];
        let mut buf = data.clone();
        chacha20_xor(&key, counter, &nonce, &mut buf);
        if !data.is_empty() {
            prop_assert_ne!(&buf, &data);
        }
        chacha20_xor(&key, counter, &nonce, &mut buf);
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn chacha_rng_streams_are_split_invariant(
        seed in any::<u64>(),
        splits in prop::collection::vec(1usize..50, 1..6),
    ) {
        let total: usize = splits.iter().sum();
        let mut whole = vec![0u8; total];
        ChaCha20Rng::from_u64_seed(seed).fill_bytes(&mut whole);
        let mut pieces = Vec::new();
        let mut rng = ChaCha20Rng::from_u64_seed(seed);
        for &s in &splits {
            let mut buf = vec![0u8; s];
            rng.fill_bytes(&mut buf);
            pieces.extend_from_slice(&buf);
        }
        prop_assert_eq!(pieces, whole);
    }

    #[test]
    fn hex_roundtrip(data in prop::collection::vec(any::<u8>(), 0..200)) {
        prop_assert_eq!(from_hex(&to_hex(&data)).unwrap(), data);
    }

    #[test]
    fn different_keys_never_collide_on_sector(
        k1 in prop::array::uniform32(any::<u8>()),
        k2 in prop::array::uniform32(any::<u8>()),
    ) {
        prop_assume!(k1 != k2);
        let c1 = CbcEssiv::with_essiv_key(Aes256::new(&k1), &sha256(&k1));
        let c2 = CbcEssiv::with_essiv_key(Aes256::new(&k2), &sha256(&k2));
        let plain = vec![0u8; 64];
        prop_assert_ne!(c1.encrypt_sector(0, &plain), c2.encrypt_sector(0, &plain));
    }

    #[test]
    fn wide_lanes_are_pinned_to_reference_per_block(
        key in prop::array::uniform32(any::<u8>()),
        blocks in 0usize..24,
        seed in any::<u64>(),
    ) {
        // encrypt_blocks/decrypt_blocks over a run of 0..24 blocks — which
        // exercises the 8-wide ladder, the 4-wide ladder, the single-block
        // tail and every ragged mix (e.g. 13 = 8 + 4 + 1) — must equal the
        // byte-wise FIPS 197 reference applied block by block, for every
        // key size, on the hardware path and on the forced-software path.
        let mut data = vec![0u8; blocks * 16];
        let mut x = seed;
        for b in data.iter_mut() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *b = (x >> 24) as u8;
        }
        for key_len in [16usize, 24, 32] {
            let reference = ReferenceAes::new(&key[..key_len]);
            let mut expect = data.clone();
            for chunk in expect.chunks_exact_mut(16) {
                reference.encrypt_block(chunk.try_into().unwrap());
            }
            for force_soft in [false, true] {
                let hw: Box<dyn BlockCipher> = match key_len {
                    16 => {
                        let mut c = Aes128::from_slice(&key[..16]);
                        if force_soft { c.force_software(); }
                        Box::new(c)
                    }
                    24 => {
                        let mut c = Aes192::from_slice(&key[..24]);
                        if force_soft { c.force_software(); }
                        Box::new(c)
                    }
                    _ => {
                        let mut c = Aes256::from_slice(&key);
                        if force_soft { c.force_software(); }
                        Box::new(c)
                    }
                };
                let mut wide = data.clone();
                hw.encrypt_blocks(&mut wide);
                prop_assert_eq!(
                    &wide, &expect,
                    "wide encrypt diverges: key_len {}, {} blocks, soft {}",
                    key_len, blocks, force_soft
                );
                hw.decrypt_blocks(&mut wide);
                prop_assert_eq!(
                    &wide, &data,
                    "wide decrypt must invert: key_len {}, {} blocks, soft {}",
                    key_len, blocks, force_soft
                );
            }
        }
    }

    #[test]
    fn xts_wide_path_is_pinned_to_reference_core(
        key in prop::array::uniform32(any::<u8>()),
        tweak_key in prop::array::uniform32(any::<u8>()),
        sector in any::<u64>(),
        data in prop::collection::vec(any::<u8>(), 1..700),
    ) {
        // XTS through the pipelined lanes + tweak ladder must equal XTS
        // over the byte-wise reference core (which takes the default
        // per-block trait path and, composed with forced-portable tweaks,
        // the pure software route) — lane width and ladder backend are
        // not allowed to exist in the bytes.
        let plain = pad_sector(data);
        let fast = Xts::new(Aes256::new(&key), Aes256::new(&tweak_key));
        let mut soft = Xts::new(
            ReferenceAes::new(&key[..]),
            ReferenceAes::new(&tweak_key[..]),
        );
        soft.force_portable_tweaks();
        let ct = fast.encrypt_sector(sector, &plain);
        prop_assert_eq!(
            &soft.encrypt_sector(sector, &plain), &ct,
            "wide XTS encrypt must match the reference-core path"
        );
        prop_assert_eq!(&fast.decrypt_sector(sector, &ct), &plain);
        prop_assert_eq!(
            &soft.decrypt_sector(sector, &ct), &plain,
            "reference-core XTS decrypt must invert the wide ciphertext"
        );
    }

    #[test]
    fn essiv_wide_decrypt_is_pinned_to_reference_core(
        key in prop::array::uniform32(any::<u8>()),
        sector in any::<u64>(),
        data in prop::collection::vec(any::<u8>(), 1..700),
    ) {
        // CBC-ESSIV: encrypt is serial by nature, decrypt pipelines; both
        // must agree with the mode over the byte-wise reference core.
        let plain = pad_sector(data);
        let essiv_key = sha256(&key);
        let fast = CbcEssiv::with_essiv_key(Aes256::new(&key), &essiv_key);
        let soft = CbcEssiv::with_essiv_key(ReferenceAes::new(&key[..]), &essiv_key);
        let ct = fast.encrypt_sector(sector, &plain);
        prop_assert_eq!(
            &soft.encrypt_sector(sector, &plain), &ct,
            "serial CBC encrypt must match the reference-core path"
        );
        prop_assert_eq!(
            &fast.decrypt_sector(sector, &ct), &plain,
            "pipelined CBC decrypt must invert"
        );
        prop_assert_eq!(&soft.decrypt_sector(sector, &ct), &plain);
    }

    #[test]
    fn sector_batch_entry_points_match_per_sector(
        key in prop::array::uniform32(any::<u8>()),
        jobs in prop::collection::vec(
            (any::<u64>(), prop::collection::vec(any::<u8>(), 1..200)),
            1..10,
        ),
    ) {
        // The batch entry points must be a pure iteration of the
        // per-sector calls, for both modes, at every batch depth.
        let xts = Xts::new(Aes256::new(&key), Aes256::new(&sha256(&key)));
        let essiv = CbcEssiv::with_essiv_key(Aes256::new(&key), &sha256(&key));
        for cipher in [&xts as &dyn SectorCipher, &essiv] {
            let mut sectors: Vec<(u64, Vec<u8>)> =
                jobs.iter().map(|(s, d)| (*s, pad_sector(d.clone()))).collect();
            let expect: Vec<Vec<u8>> =
                sectors.iter().map(|(s, d)| cipher.encrypt_sector(*s, d)).collect();
            let mut batch: Vec<(u64, &mut [u8])> =
                sectors.iter_mut().map(|(s, d)| (*s, d.as_mut_slice())).collect();
            cipher.encrypt_sectors_in_place(&mut batch);
            for ((_, got), want) in sectors.iter().zip(&expect) {
                prop_assert_eq!(got, want, "batch encrypt must equal per-sector");
            }
            let mut batch: Vec<(u64, &mut [u8])> =
                sectors.iter_mut().map(|(s, d)| (*s, d.as_mut_slice())).collect();
            cipher.decrypt_sectors_in_place(&mut batch);
            for ((s, got), (_, orig)) in sectors.iter().zip(jobs.iter()) {
                let want = pad_sector(orig.clone());
                prop_assert_eq!(got, &want, "batch decrypt must invert (sector {})", s);
            }
        }
    }
}
