//! From-scratch cryptographic primitives for the MobiCeal reproduction.
//!
//! MobiCeal (DSN 2018) builds on Android's storage crypto stack: `dm-crypt`
//! with AES (CBC-ESSIV being the Android 4.2 default), PBKDF2 for password
//! key derivation, and kernel randomness for dummy-write payloads. This
//! crate re-implements exactly those primitives in pure Rust so the entire
//! reproduction is self-contained:
//!
//! * [`Sha256`] / [`hmac_sha256`] / [`pbkdf2_hmac_sha256`] — key derivation
//!   (§II-A, §IV-C of the paper).
//! * [`Aes128`] / [`Aes256`] block ciphers (T-table cores, pinned by
//!   property tests to the byte-wise [`reference`] implementation) with
//!   [`CbcEssiv`] (the dm-crypt `aes-cbc-essiv:sha256` mode used by
//!   Android FDE) and [`Xts`] (the mode modern dm-crypt deployments use) —
//!   sector encryption, allocating or in place
//!   ([`SectorCipher::encrypt_sector_in_place`]).
//! * [`ChaCha20Rng`] — a deterministic CSPRNG used to produce encryption
//!   keys and the random payloads of dummy writes; dummy data must be
//!   computationally indistinguishable from ciphertext (§IV-A Q2).
//!
//! Every primitive is validated against published test vectors (FIPS 197,
//! RFC 4231, RFC 7914/6070, IEEE 1619, RFC 8439) in the module tests.
//!
//! # Example
//!
//! ```
//! use mobiceal_crypto::{Aes256, CbcEssiv, SectorCipher};
//!
//! let key = [7u8; 32];
//! let cipher = CbcEssiv::new(Aes256::new(&key));
//! let sector = vec![0x42u8; 512];
//! let ct = cipher.encrypt_sector(9, &sector);
//! assert_ne!(ct, sector);
//! assert_eq!(cipher.decrypt_sector(9, &ct), sector);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

mod aes;
mod chacha20;
mod hmac;
mod modes;
mod pbkdf2;
mod sha256;
mod util;

pub use aes::reference;
pub use aes::{Aes128, Aes192, Aes256, BlockCipher, AES_BLOCK_SIZE};
pub use chacha20::{chacha20_block, chacha20_xor, ChaCha20Rng};
pub use hmac::{hmac_sha256, HmacSha256};
pub use modes::{CbcEssiv, SectorCipher, Xts};
pub use pbkdf2::pbkdf2_hmac_sha256;
pub use sha256::{sha256, Sha256, SHA256_OUTPUT_LEN};
pub use util::{ct_eq, from_hex, to_hex, ParseHexError};
