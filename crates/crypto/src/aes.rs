//! AES-128/192/256 (FIPS 197), T-table implementation with an AES-NI
//! hardware fast path.
//!
//! The S-box, its inverse, and the four encrypt/decrypt T-tables are all
//! *derived at compile time* from the GF(2^8) definition (multiplicative
//! inverse + affine map) rather than transcribed. Each round fuses
//! SubBytes + ShiftRows + MixColumns into four table lookups per output
//! word — the classic software layout dm-crypt's `aes-generic` kernel
//! implementation uses — with round keys held as `u32` words in fixed
//! arrays, so a 4 KiB sector costs a few thousand table lookups instead of
//! hundreds of thousands of GF multiplications. On x86-64 hosts that
//! report AES-NI at runtime, blocks instead go through the `AESENC` /
//! `AESDEC` instructions (the same key schedule feeds both backends, like
//! the kernel's `aesni-intel` vs `aes-generic` split); everything else
//! falls back to the T-tables.
//!
//! `AESENC` has ~4-cycle latency but 1/cycle throughput, so a single
//! dependent chain of rounds leaves three quarters of the unit idle.
//! [`BlockCipher::encrypt_blocks`] / [`BlockCipher::decrypt_blocks`]
//! therefore drive runs of *independent* blocks through interleaved
//! ladders that keep 8 (then 4) `__m128i` states in flight per round-key
//! load, which is where sector modes over independent blocks (XTS, CBC
//! decrypt) get their ~4x over the one-block-at-a-time path. The ragged
//! tail of a run falls back to the single-block path, and on non-AES-NI
//! hosts the wide entry points are a plain loop over the T-table core, so
//! every backend computes byte-identical output. The original byte-wise
//! core survives as [`reference`], an executable specification that the
//! property tests pin whichever backend is active against; all of them
//! are validated against the FIPS 197 example vectors in the tests.
//!
//! Real wall-clock speed matters only for running the test/bench suite:
//! *simulated* encryption timing in the experiments is charged to the
//! virtual clock by `mobiceal_sim::CpuCostModel`, and is unaffected by how
//! fast this code actually runs.

/// AES block size in bytes.
pub const AES_BLOCK_SIZE: usize = 16;

const fn xtime(a: u8) -> u8 {
    (a << 1) ^ (((a >> 7) & 1) * 0x1b)
}

const fn gf_mul(a: u8, b: u8) -> u8 {
    let mut p = 0u8;
    let mut x = a;
    let mut y = b;
    while y != 0 {
        if y & 1 != 0 {
            p ^= x;
        }
        x = xtime(x);
        y >>= 1;
    }
    p
}

const fn gf_inv(a: u8) -> u8 {
    // a^254 in GF(2^8) equals the multiplicative inverse (and 0 maps to 0).
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u32;
    while exp > 0 {
        if exp & 1 != 0 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

const fn rotl8(x: u8, n: u32) -> u8 {
    x.rotate_left(n)
}

const fn build_sbox() -> [u8; 256] {
    let mut sbox = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        let b = gf_inv(i as u8);
        sbox[i] = b ^ rotl8(b, 1) ^ rotl8(b, 2) ^ rotl8(b, 3) ^ rotl8(b, 4) ^ 0x63;
        i += 1;
    }
    sbox
}

const fn build_inv_sbox(sbox: &[u8; 256]) -> [u8; 256] {
    let mut inv = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        inv[sbox[i] as usize] = i as u8;
        i += 1;
    }
    inv
}

const SBOX: [u8; 256] = build_sbox();
const INV_SBOX: [u8; 256] = build_inv_sbox(&SBOX);

const RCON: [u8; 15] =
    [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36, 0x6c, 0xd8, 0xab, 0x4d, 0x9a];

/// `TE[0][x]` is the column `(2,1,1,3)·S[x]` packed big-endian; `TE[1..4]`
/// are its byte rotations. One round of SubBytes + ShiftRows + MixColumns
/// for one output word is then `TE[0][a] ^ TE[1][b] ^ TE[2][c] ^ TE[3][d]`.
static TE: [[u32; 256]; 4] = build_enc_tables();
/// `TD[0][x]` is `(14,9,13,11)·InvS[x]`; used both for the equivalent
/// inverse cipher rounds and for applying InvMixColumns to decrypt keys.
static TD: [[u32; 256]; 4] = build_dec_tables();

const fn build_enc_tables() -> [[u32; 256]; 4] {
    let mut t = [[0u32; 256]; 4];
    let mut i = 0usize;
    while i < 256 {
        let s = SBOX[i];
        let e = ((gf_mul(s, 2) as u32) << 24)
            | ((s as u32) << 16)
            | ((s as u32) << 8)
            | (gf_mul(s, 3) as u32);
        t[0][i] = e;
        t[1][i] = e.rotate_right(8);
        t[2][i] = e.rotate_right(16);
        t[3][i] = e.rotate_right(24);
        i += 1;
    }
    t
}

const fn build_dec_tables() -> [[u32; 256]; 4] {
    let mut t = [[0u32; 256]; 4];
    let mut i = 0usize;
    while i < 256 {
        let s = INV_SBOX[i];
        let e = ((gf_mul(s, 14) as u32) << 24)
            | ((gf_mul(s, 9) as u32) << 16)
            | ((gf_mul(s, 13) as u32) << 8)
            | (gf_mul(s, 11) as u32);
        t[0][i] = e;
        t[1][i] = e.rotate_right(8);
        t[2][i] = e.rotate_right(16);
        t[3][i] = e.rotate_right(24);
        i += 1;
    }
    t
}

/// A block cipher operating on 16-byte blocks.
///
/// Implemented by [`Aes128`], [`Aes192`] and [`Aes256`]; sector modes
/// ([`crate::CbcEssiv`], [`crate::Xts`]) are generic over it.
pub trait BlockCipher: Send + Sync {
    /// Encrypts one 16-byte block in place.
    fn encrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]);
    /// Decrypts one 16-byte block in place.
    fn decrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]);

    /// Encrypts a run of *independent* 16-byte blocks in place.
    ///
    /// The default is a loop over [`BlockCipher::encrypt_block`];
    /// implementations with hardware pipelines override it to keep several
    /// blocks in flight (the AES ciphers run 8x/4x interleaved AES-NI
    /// ladders). The blocks must genuinely be independent — chaining modes
    /// (CBC encrypt) cannot use this entry point for their chained ECB
    /// calls.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of 16.
    fn encrypt_blocks(&self, data: &mut [u8]) {
        assert!(data.len().is_multiple_of(AES_BLOCK_SIZE), "block run length {}", data.len());
        for chunk in data.chunks_exact_mut(AES_BLOCK_SIZE) {
            let block: &mut [u8; AES_BLOCK_SIZE] = chunk.try_into().expect("exact chunk");
            self.encrypt_block(block);
        }
    }

    /// Decrypts a run of *independent* 16-byte blocks in place; the inverse
    /// of [`BlockCipher::encrypt_blocks`] with the same contract.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of 16.
    fn decrypt_blocks(&self, data: &mut [u8]) {
        assert!(data.len().is_multiple_of(AES_BLOCK_SIZE), "block run length {}", data.len());
        for chunk in data.chunks_exact_mut(AES_BLOCK_SIZE) {
            let block: &mut [u8; AES_BLOCK_SIZE] = chunk.try_into().expect("exact chunk");
            self.decrypt_block(block);
        }
    }

    /// Key length in bytes (used by ESSIV to derive the IV key).
    fn key_len(&self) -> usize;
}

/// Maximum round-key words: AES-256 has 14 rounds → 4·(14+1) = 60 words.
const MAX_RK_WORDS: usize = 60;
/// Maximum round keys as 16-byte blocks (AES-256: 15).
const MAX_RK_BLOCKS: usize = 15;

/// Generic T-table AES parameterised by the number of rounds, with an
/// AES-NI fast path picked once at key-schedule time on x86-64 hosts.
///
/// Encryption round keys come straight from the FIPS 197 key schedule;
/// decryption uses the *equivalent inverse cipher* (FIPS 197 §5.3.5), whose
/// round keys are the encryption schedule reversed with InvMixColumns
/// applied to the inner rounds. That lets decryption share the fused
/// table-lookup structure of encryption — and it is exactly the key form
/// `AESDEC` expects, so the same schedule feeds both backends.
#[derive(Debug, Clone)]
struct AesCore {
    enc_keys: [u32; MAX_RK_WORDS],
    dec_keys: [u32; MAX_RK_WORDS],
    /// The schedules again, as the 16-byte blocks the AES-NI round
    /// instructions consume (identical bytes, pre-serialised).
    #[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
    enc_key_blocks: [[u8; 16]; MAX_RK_BLOCKS],
    #[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
    dec_key_blocks: [[u8; 16]; MAX_RK_BLOCKS],
    rounds: usize,
    key_len: usize,
    #[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
    use_aesni: bool,
}

#[inline]
const fn sub_word(w: u32) -> u32 {
    ((SBOX[(w >> 24) as usize] as u32) << 24)
        | ((SBOX[((w >> 16) & 0xff) as usize] as u32) << 16)
        | ((SBOX[((w >> 8) & 0xff) as usize] as u32) << 8)
        | (SBOX[(w & 0xff) as usize] as u32)
}

impl AesCore {
    fn new(key: &[u8]) -> Self {
        assert!(matches!(key.len(), 16 | 24 | 32), "AES key must be 16, 24 or 32 bytes");
        let nk = key.len() / 4;
        let nr = nk + 6;
        let total_words = 4 * (nr + 1);
        let mut w = [0u32; MAX_RK_WORDS];
        for (i, word) in w.iter_mut().enumerate().take(nk) {
            *word = u32::from_be_bytes(key[4 * i..4 * i + 4].try_into().unwrap());
        }
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                // RotWord + SubWord + Rcon (big-endian words: RotWord is a
                // left byte-rotation).
                temp = sub_word(temp.rotate_left(8)) ^ ((RCON[i / nk - 1] as u32) << 24);
            } else if nk > 6 && i % nk == 4 {
                temp = sub_word(temp);
            }
            w[i] = w[i - nk] ^ temp;
        }
        // Equivalent-inverse-cipher schedule: reverse the per-round order
        // and push the inner round keys through InvMixColumns. For any byte
        // b, TD[r][SBOX[b]] is InvMixColumns of b placed in row r, because
        // the InvS lookup inside TD cancels the S lookup.
        let mut dk = [0u32; MAX_RK_WORDS];
        dk[..4].copy_from_slice(&w[4 * nr..4 * nr + 4]);
        for r in 1..nr {
            for i in 0..4 {
                let k = w[4 * (nr - r) + i];
                dk[4 * r + i] = TD[0][SBOX[(k >> 24) as usize] as usize]
                    ^ TD[1][SBOX[((k >> 16) & 0xff) as usize] as usize]
                    ^ TD[2][SBOX[((k >> 8) & 0xff) as usize] as usize]
                    ^ TD[3][SBOX[(k & 0xff) as usize] as usize];
            }
        }
        dk[4 * nr..4 * nr + 4].copy_from_slice(&w[..4]);
        let mut enc_key_blocks = [[0u8; 16]; MAX_RK_BLOCKS];
        let mut dec_key_blocks = [[0u8; 16]; MAX_RK_BLOCKS];
        for r in 0..=nr {
            for i in 0..4 {
                enc_key_blocks[r][4 * i..4 * i + 4].copy_from_slice(&w[4 * r + i].to_be_bytes());
                dec_key_blocks[r][4 * i..4 * i + 4].copy_from_slice(&dk[4 * r + i].to_be_bytes());
            }
        }
        AesCore {
            enc_keys: w,
            dec_keys: dk,
            enc_key_blocks,
            dec_key_blocks,
            rounds: nr,
            key_len: key.len(),
            use_aesni: aesni_available(),
        }
    }

    #[inline]
    fn encrypt(&self, block: &mut [u8; 16]) {
        #[cfg(target_arch = "x86_64")]
        if self.use_aesni {
            // SAFETY: `use_aesni` is only set when the CPU reports AES-NI
            // and SSE2 support at runtime.
            unsafe { self.encrypt_aesni(block) };
            return;
        }
        let rk = &self.enc_keys;
        let mut s0 = u32::from_be_bytes(block[0..4].try_into().unwrap()) ^ rk[0];
        let mut s1 = u32::from_be_bytes(block[4..8].try_into().unwrap()) ^ rk[1];
        let mut s2 = u32::from_be_bytes(block[8..12].try_into().unwrap()) ^ rk[2];
        let mut s3 = u32::from_be_bytes(block[12..16].try_into().unwrap()) ^ rk[3];
        let mut i = 4;
        for _ in 1..self.rounds {
            let t0 = TE[0][(s0 >> 24) as usize]
                ^ TE[1][((s1 >> 16) & 0xff) as usize]
                ^ TE[2][((s2 >> 8) & 0xff) as usize]
                ^ TE[3][(s3 & 0xff) as usize]
                ^ rk[i];
            let t1 = TE[0][(s1 >> 24) as usize]
                ^ TE[1][((s2 >> 16) & 0xff) as usize]
                ^ TE[2][((s3 >> 8) & 0xff) as usize]
                ^ TE[3][(s0 & 0xff) as usize]
                ^ rk[i + 1];
            let t2 = TE[0][(s2 >> 24) as usize]
                ^ TE[1][((s3 >> 16) & 0xff) as usize]
                ^ TE[2][((s0 >> 8) & 0xff) as usize]
                ^ TE[3][(s1 & 0xff) as usize]
                ^ rk[i + 2];
            let t3 = TE[0][(s3 >> 24) as usize]
                ^ TE[1][((s0 >> 16) & 0xff) as usize]
                ^ TE[2][((s1 >> 8) & 0xff) as usize]
                ^ TE[3][(s2 & 0xff) as usize]
                ^ rk[i + 3];
            (s0, s1, s2, s3) = (t0, t1, t2, t3);
            i += 4;
        }
        // Final round: SubBytes + ShiftRows only.
        let t0 = sub_shift(s0, s1, s2, s3) ^ rk[i];
        let t1 = sub_shift(s1, s2, s3, s0) ^ rk[i + 1];
        let t2 = sub_shift(s2, s3, s0, s1) ^ rk[i + 2];
        let t3 = sub_shift(s3, s0, s1, s2) ^ rk[i + 3];
        block[0..4].copy_from_slice(&t0.to_be_bytes());
        block[4..8].copy_from_slice(&t1.to_be_bytes());
        block[8..12].copy_from_slice(&t2.to_be_bytes());
        block[12..16].copy_from_slice(&t3.to_be_bytes());
    }

    #[inline]
    fn decrypt(&self, block: &mut [u8; 16]) {
        #[cfg(target_arch = "x86_64")]
        if self.use_aesni {
            // SAFETY: `use_aesni` is only set when the CPU reports AES-NI
            // and SSE2 support at runtime.
            unsafe { self.decrypt_aesni(block) };
            return;
        }
        let rk = &self.dec_keys;
        let mut s0 = u32::from_be_bytes(block[0..4].try_into().unwrap()) ^ rk[0];
        let mut s1 = u32::from_be_bytes(block[4..8].try_into().unwrap()) ^ rk[1];
        let mut s2 = u32::from_be_bytes(block[8..12].try_into().unwrap()) ^ rk[2];
        let mut s3 = u32::from_be_bytes(block[12..16].try_into().unwrap()) ^ rk[3];
        let mut i = 4;
        for _ in 1..self.rounds {
            let t0 = TD[0][(s0 >> 24) as usize]
                ^ TD[1][((s3 >> 16) & 0xff) as usize]
                ^ TD[2][((s2 >> 8) & 0xff) as usize]
                ^ TD[3][(s1 & 0xff) as usize]
                ^ rk[i];
            let t1 = TD[0][(s1 >> 24) as usize]
                ^ TD[1][((s0 >> 16) & 0xff) as usize]
                ^ TD[2][((s3 >> 8) & 0xff) as usize]
                ^ TD[3][(s2 & 0xff) as usize]
                ^ rk[i + 1];
            let t2 = TD[0][(s2 >> 24) as usize]
                ^ TD[1][((s1 >> 16) & 0xff) as usize]
                ^ TD[2][((s0 >> 8) & 0xff) as usize]
                ^ TD[3][(s3 & 0xff) as usize]
                ^ rk[i + 2];
            let t3 = TD[0][(s3 >> 24) as usize]
                ^ TD[1][((s2 >> 16) & 0xff) as usize]
                ^ TD[2][((s1 >> 8) & 0xff) as usize]
                ^ TD[3][(s0 & 0xff) as usize]
                ^ rk[i + 3];
            (s0, s1, s2, s3) = (t0, t1, t2, t3);
            i += 4;
        }
        // Final round: InvSubBytes + InvShiftRows only.
        let t0 = inv_sub_shift(s0, s3, s2, s1) ^ rk[i];
        let t1 = inv_sub_shift(s1, s0, s3, s2) ^ rk[i + 1];
        let t2 = inv_sub_shift(s2, s1, s0, s3) ^ rk[i + 2];
        let t3 = inv_sub_shift(s3, s2, s1, s0) ^ rk[i + 3];
        block[0..4].copy_from_slice(&t0.to_be_bytes());
        block[4..8].copy_from_slice(&t1.to_be_bytes());
        block[8..12].copy_from_slice(&t2.to_be_bytes());
        block[12..16].copy_from_slice(&t3.to_be_bytes());
    }

    /// One block through the `AESENC` pipeline. AES-NI consumes the state
    /// and round keys in plain FIPS byte order, which is exactly how
    /// `enc_key_blocks` is laid out.
    ///
    /// # Safety
    ///
    /// The CPU must support the `aes` and `sse2` feature sets.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "aes,sse2")]
    unsafe fn encrypt_aesni(&self, block: &mut [u8; 16]) {
        use std::arch::x86_64::*;
        let rk = &self.enc_key_blocks;
        // SAFETY: the caller guarantees AES-NI + SSE2 (this fn's contract);
        // all loads/stores are unaligned (`_mm_loadu`/`_mm_storeu`) on
        // 16-byte sources, and `rk[self.rounds]` is in bounds because the
        // schedule holds `rounds + 1` blocks.
        unsafe {
            let mut state = _mm_loadu_si128(block.as_ptr() as *const __m128i);
            state = _mm_xor_si128(state, _mm_loadu_si128(rk[0].as_ptr() as *const __m128i));
            for key in rk.iter().take(self.rounds).skip(1) {
                state = _mm_aesenc_si128(state, _mm_loadu_si128(key.as_ptr() as *const __m128i));
            }
            state = _mm_aesenclast_si128(
                state,
                _mm_loadu_si128(rk[self.rounds].as_ptr() as *const __m128i),
            );
            _mm_storeu_si128(block.as_mut_ptr() as *mut __m128i, state);
        }
    }

    /// One block through the `AESDEC` pipeline. `AESDEC` wants the
    /// equivalent-inverse-cipher schedule (inner round keys through
    /// InvMixColumns) — the same `dec_key_blocks` the T-table path uses.
    ///
    /// # Safety
    ///
    /// The CPU must support the `aes` and `sse2` feature sets.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "aes,sse2")]
    unsafe fn decrypt_aesni(&self, block: &mut [u8; 16]) {
        use std::arch::x86_64::*;
        let rk = &self.dec_key_blocks;
        // SAFETY: same contract as `encrypt_aesni` — caller guarantees
        // AES-NI + SSE2, unaligned intrinsics throughout, and the decrypt
        // schedule also holds `rounds + 1` blocks.
        unsafe {
            let mut state = _mm_loadu_si128(block.as_ptr() as *const __m128i);
            state = _mm_xor_si128(state, _mm_loadu_si128(rk[0].as_ptr() as *const __m128i));
            for key in rk.iter().take(self.rounds).skip(1) {
                state = _mm_aesdec_si128(state, _mm_loadu_si128(key.as_ptr() as *const __m128i));
            }
            state = _mm_aesdeclast_si128(
                state,
                _mm_loadu_si128(rk[self.rounds].as_ptr() as *const __m128i),
            );
            _mm_storeu_si128(block.as_mut_ptr() as *mut __m128i, state);
        }
    }

    /// Encrypts a run of independent blocks: the AES-NI pipelined ladders
    /// when available, otherwise a plain loop over the T-table core.
    fn encrypt_many(&self, data: &mut [u8]) {
        assert!(data.len().is_multiple_of(16), "block run length {}", data.len());
        #[cfg(target_arch = "x86_64")]
        if self.use_aesni {
            // SAFETY: `use_aesni` is only set when the CPU reports AES-NI
            // and SSE2 support at runtime.
            unsafe { self.encrypt_blocks_aesni(data) };
            return;
        }
        for chunk in data.chunks_exact_mut(16) {
            self.encrypt(chunk.try_into().expect("exact chunk"));
        }
    }

    /// Inverse of [`AesCore::encrypt_many`], same backend dispatch.
    fn decrypt_many(&self, data: &mut [u8]) {
        assert!(data.len().is_multiple_of(16), "block run length {}", data.len());
        #[cfg(target_arch = "x86_64")]
        if self.use_aesni {
            // SAFETY: `use_aesni` is only set when the CPU reports AES-NI
            // and SSE2 support at runtime.
            unsafe { self.decrypt_blocks_aesni(data) };
            return;
        }
        for chunk in data.chunks_exact_mut(16) {
            self.decrypt(chunk.try_into().expect("exact chunk"));
        }
    }

    /// A run of blocks through interleaved `AESENC` ladders: 8 independent
    /// `__m128i` states per round-key load while the run is deep enough,
    /// then 4, then the single-block path for the ragged tail. `AESENC`
    /// retires one op per cycle but takes ~4 cycles to produce its result,
    /// so the single-block ladder is latency-bound; with 8 states in
    /// flight every cycle issues a useful round and throughput approaches
    /// the unit's ceiling (~4x measured on one core).
    ///
    /// # Safety
    ///
    /// The CPU must support the `aes` and `sse2` feature sets.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "aes,sse2")]
    unsafe fn encrypt_blocks_aesni(&self, data: &mut [u8]) {
        use std::arch::x86_64::*;
        // SAFETY: caller guarantees AES-NI + SSE2 (this fn's contract).
        // `keys[..=rounds]` is in bounds because the schedule holds
        // `rounds + 1` blocks; every pointer passed to the lane helpers
        // addresses a full `LANES * 16`-byte sub-slice of `data` (the
        // offset loops subtract before comparing, so `off + width <= len`),
        // and all loads/stores are unaligned intrinsics.
        unsafe {
            let mut keys = [_mm_setzero_si128(); MAX_RK_BLOCKS];
            for (k, src) in keys.iter_mut().zip(self.enc_key_blocks.iter()) {
                *k = _mm_loadu_si128(src.as_ptr() as *const __m128i);
            }
            let mut off = 0usize;
            while data.len() - off >= 8 * 16 {
                enc_lanes::<8>(&keys, self.rounds, data.as_mut_ptr().add(off) as *mut __m128i);
                off += 8 * 16;
            }
            while data.len() - off >= 4 * 16 {
                enc_lanes::<4>(&keys, self.rounds, data.as_mut_ptr().add(off) as *mut __m128i);
                off += 4 * 16;
            }
            while off < data.len() {
                let block: &mut [u8; 16] =
                    (&mut data[off..off + 16]).try_into().expect("exact block");
                self.encrypt_aesni(block);
                off += 16;
            }
        }
    }

    /// Inverse of [`AesCore::encrypt_blocks_aesni`]: the same 8x/4x/1x
    /// interleaving over `AESDEC` with the equivalent-inverse-cipher
    /// schedule.
    ///
    /// # Safety
    ///
    /// The CPU must support the `aes` and `sse2` feature sets.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "aes,sse2")]
    unsafe fn decrypt_blocks_aesni(&self, data: &mut [u8]) {
        use std::arch::x86_64::*;
        // SAFETY: same contract and bounds argument as
        // `encrypt_blocks_aesni`, over the decrypt schedule.
        unsafe {
            let mut keys = [_mm_setzero_si128(); MAX_RK_BLOCKS];
            for (k, src) in keys.iter_mut().zip(self.dec_key_blocks.iter()) {
                *k = _mm_loadu_si128(src.as_ptr() as *const __m128i);
            }
            let mut off = 0usize;
            while data.len() - off >= 8 * 16 {
                dec_lanes::<8>(&keys, self.rounds, data.as_mut_ptr().add(off) as *mut __m128i);
                off += 8 * 16;
            }
            while data.len() - off >= 4 * 16 {
                dec_lanes::<4>(&keys, self.rounds, data.as_mut_ptr().add(off) as *mut __m128i);
                off += 4 * 16;
            }
            while off < data.len() {
                let block: &mut [u8; 16] =
                    (&mut data[off..off + 16]).try_into().expect("exact block");
                self.decrypt_aesni(block);
                off += 16;
            }
        }
    }
}

/// One interleaved `AESENC` ladder over `N` consecutive blocks at `p`:
/// all `N` states load, whiten and step through each round together, so
/// between a state's round `r` and its round `r + 1` the other `N - 1`
/// states issue — exactly the independent work that hides `AESENC`
/// latency. `N` is a compile-time constant, so the per-round inner loops
/// fully unroll and the states live in xmm registers.
///
/// # Safety
///
/// The CPU must support `aes` + `sse2`; `p` must be valid for reads and
/// writes of `N * 16` bytes (any alignment); `keys[..=rounds]` must hold
/// the expanded encryption schedule.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "aes,sse2")]
unsafe fn enc_lanes<const N: usize>(
    keys: &[std::arch::x86_64::__m128i; MAX_RK_BLOCKS],
    rounds: usize,
    p: *mut std::arch::x86_64::__m128i,
) {
    use std::arch::x86_64::*;
    // SAFETY: caller guarantees the feature set, that `p..p+N` is readable
    // and writable, and that `keys[..=rounds]` is initialised; `rounds`
    // never exceeds `MAX_RK_BLOCKS - 1` by construction of the schedule.
    unsafe {
        let mut s = [_mm_setzero_si128(); N];
        for (i, lane) in s.iter_mut().enumerate() {
            *lane = _mm_xor_si128(_mm_loadu_si128(p.add(i)), keys[0]);
        }
        for key in keys.iter().take(rounds).skip(1) {
            for lane in s.iter_mut() {
                *lane = _mm_aesenc_si128(*lane, *key);
            }
        }
        for (i, lane) in s.iter_mut().enumerate() {
            *lane = _mm_aesenclast_si128(*lane, keys[rounds]);
            _mm_storeu_si128(p.add(i), *lane);
        }
    }
}

/// [`enc_lanes`] over `AESDEC`/`AESDECLAST` with the decrypt schedule;
/// same interleaving, same contract.
///
/// # Safety
///
/// The CPU must support `aes` + `sse2`; `p` must be valid for reads and
/// writes of `N * 16` bytes (any alignment); `keys[..=rounds]` must hold
/// the equivalent-inverse-cipher schedule.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "aes,sse2")]
unsafe fn dec_lanes<const N: usize>(
    keys: &[std::arch::x86_64::__m128i; MAX_RK_BLOCKS],
    rounds: usize,
    p: *mut std::arch::x86_64::__m128i,
) {
    use std::arch::x86_64::*;
    // SAFETY: caller guarantees the feature set, pointer validity for
    // `N * 16` bytes and an initialised decrypt schedule (see `enc_lanes`).
    unsafe {
        let mut s = [_mm_setzero_si128(); N];
        for (i, lane) in s.iter_mut().enumerate() {
            *lane = _mm_xor_si128(_mm_loadu_si128(p.add(i)), keys[0]);
        }
        for key in keys.iter().take(rounds).skip(1) {
            for lane in s.iter_mut() {
                *lane = _mm_aesdec_si128(*lane, *key);
            }
        }
        for (i, lane) in s.iter_mut().enumerate() {
            *lane = _mm_aesdeclast_si128(*lane, keys[rounds]);
            _mm_storeu_si128(p.add(i), *lane);
        }
    }
}

/// Whether the host CPU offers AES-NI (checked once per key schedule; the
/// result also decides which backend the equivalence property tests pin
/// against the reference core on a given host).
#[cfg(target_arch = "x86_64")]
fn aesni_available() -> bool {
    std::arch::is_x86_feature_detected!("aes") && std::arch::is_x86_feature_detected!("sse2")
}

#[cfg(not(target_arch = "x86_64"))]
fn aesni_available() -> bool {
    false
}

/// Assembles one final-round word from the four state words feeding it:
/// `S[a₂₄] ‖ S[b₁₆] ‖ S[c₈] ‖ S[d₀]` (ShiftRows selects a,b,c,d).
#[inline]
fn sub_shift(a: u32, b: u32, c: u32, d: u32) -> u32 {
    ((SBOX[(a >> 24) as usize] as u32) << 24)
        | ((SBOX[((b >> 16) & 0xff) as usize] as u32) << 16)
        | ((SBOX[((c >> 8) & 0xff) as usize] as u32) << 8)
        | (SBOX[(d & 0xff) as usize] as u32)
}

/// [`sub_shift`] with the inverse S-box (InvShiftRows column selection is
/// done by the caller's argument order).
#[inline]
fn inv_sub_shift(a: u32, b: u32, c: u32, d: u32) -> u32 {
    ((INV_SBOX[(a >> 24) as usize] as u32) << 24)
        | ((INV_SBOX[((b >> 16) & 0xff) as usize] as u32) << 16)
        | ((INV_SBOX[((c >> 8) & 0xff) as usize] as u32) << 8)
        | (INV_SBOX[(d & 0xff) as usize] as u32)
}

macro_rules! aes_variant {
    ($(#[$doc:meta])* $name:ident, $key_len:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            core: AesCore,
        }

        impl $name {
            /// Expands `key` into round keys.
            pub fn new(key: &[u8; $key_len]) -> Self {
                $name { core: AesCore::new(key) }
            }

            /// Expands a key provided as a slice.
            ///
            /// # Panics
            ///
            /// Panics if `key.len() !=` the variant's key length.
            pub fn from_slice(key: &[u8]) -> Self {
                assert_eq!(key.len(), $key_len, "wrong key length for {}", stringify!($name));
                $name { core: AesCore::new(key) }
            }

            /// Pins this instance to the portable T-table backend even on
            /// AES-NI hosts. Output is bit-identical either way; tests and
            /// benches use this to keep the software path covered (and
            /// measured) on hardware hosts.
            #[doc(hidden)]
            pub fn force_software(&mut self) {
                self.core.use_aesni = false;
            }
        }

        impl BlockCipher for $name {
            fn encrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
                self.core.encrypt(block);
            }

            fn decrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
                self.core.decrypt(block);
            }

            fn encrypt_blocks(&self, data: &mut [u8]) {
                self.core.encrypt_many(data);
            }

            fn decrypt_blocks(&self, data: &mut [u8]) {
                self.core.decrypt_many(data);
            }

            fn key_len(&self) -> usize {
                self.core.key_len
            }
        }
    };
}

aes_variant!(
    /// AES with a 128-bit key.
    ///
    /// # Example
    ///
    /// ```
    /// use mobiceal_crypto::{Aes128, BlockCipher};
    ///
    /// let aes = Aes128::new(&[0u8; 16]);
    /// let mut block = *b"sixteen byte msg";
    /// let orig = block;
    /// aes.encrypt_block(&mut block);
    /// aes.decrypt_block(&mut block);
    /// assert_eq!(block, orig);
    /// ```
    Aes128,
    16
);
aes_variant!(
    /// AES with a 192-bit key.
    Aes192,
    24
);
aes_variant!(
    /// AES with a 256-bit key (the dm-crypt default in Android FDE).
    Aes256,
    32
);

pub mod reference {
    //! The original byte-wise AES core, kept as an executable specification.
    //!
    //! This is the straight-from-FIPS-197 formulation: per-byte SubBytes,
    //! explicit ShiftRows permutation, and `gf_mul` inside MixColumns on
    //! every block. It is one to two orders of magnitude slower than the
    //! T-table core in the parent module, and exists so that
    //!
    //! * property tests can pin the fast core to it over random
    //!   keys/blocks, and
    //! * the `crypto_throughput` bench can report the measured speedup.

    use super::{gf_mul, BlockCipher, AES_BLOCK_SIZE, INV_SBOX, RCON, SBOX};

    /// Byte-wise AES for any standard key size (16, 24 or 32 bytes).
    ///
    /// # Panics
    ///
    /// [`ReferenceAes::new`] panics on a non-standard key length.
    #[derive(Debug, Clone)]
    pub struct ReferenceAes {
        round_keys: Vec<[u8; 16]>,
        key_len: usize,
    }

    impl ReferenceAes {
        /// Expands `key` (16/24/32 bytes) with the byte-wise key schedule.
        pub fn new(key: &[u8]) -> Self {
            let nk = key.len() / 4;
            let nr = nk + 6;
            assert!(matches!(key.len(), 16 | 24 | 32), "AES key must be 16, 24 or 32 bytes");
            let total_words = 4 * (nr + 1);
            let mut w: Vec<[u8; 4]> = Vec::with_capacity(total_words);
            for i in 0..nk {
                w.push([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
            }
            for i in nk..total_words {
                let mut temp = w[i - 1];
                if i % nk == 0 {
                    temp = [
                        SBOX[temp[1] as usize] ^ RCON[i / nk - 1],
                        SBOX[temp[2] as usize],
                        SBOX[temp[3] as usize],
                        SBOX[temp[0] as usize],
                    ];
                } else if nk > 6 && i % nk == 4 {
                    temp = [
                        SBOX[temp[0] as usize],
                        SBOX[temp[1] as usize],
                        SBOX[temp[2] as usize],
                        SBOX[temp[3] as usize],
                    ];
                }
                let prev = w[i - nk];
                w.push([
                    prev[0] ^ temp[0],
                    prev[1] ^ temp[1],
                    prev[2] ^ temp[2],
                    prev[3] ^ temp[3],
                ]);
            }
            let round_keys = w
                .chunks(4)
                .map(|c| {
                    let mut rk = [0u8; 16];
                    for (i, word) in c.iter().enumerate() {
                        rk[4 * i..4 * i + 4].copy_from_slice(word);
                    }
                    rk
                })
                .collect();
            ReferenceAes { round_keys, key_len: key.len() }
        }

        fn rounds(&self) -> usize {
            self.round_keys.len() - 1
        }

        fn encrypt(&self, state: &mut [u8; 16]) {
            add_round_key(state, &self.round_keys[0]);
            for round in 1..self.rounds() {
                sub_bytes(state);
                shift_rows(state);
                mix_columns(state);
                add_round_key(state, &self.round_keys[round]);
            }
            sub_bytes(state);
            shift_rows(state);
            add_round_key(state, &self.round_keys[self.rounds()]);
        }

        fn decrypt(&self, state: &mut [u8; 16]) {
            add_round_key(state, &self.round_keys[self.rounds()]);
            for round in (1..self.rounds()).rev() {
                inv_shift_rows(state);
                inv_sub_bytes(state);
                add_round_key(state, &self.round_keys[round]);
                inv_mix_columns(state);
            }
            inv_shift_rows(state);
            inv_sub_bytes(state);
            add_round_key(state, &self.round_keys[0]);
        }
    }

    impl BlockCipher for ReferenceAes {
        fn encrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
            self.encrypt(block);
        }

        fn decrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
            self.decrypt(block);
        }

        fn key_len(&self) -> usize {
            self.key_len
        }
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for i in 0..16 {
            state[i] ^= rk[i];
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = SBOX[*b as usize];
        }
    }

    fn inv_sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = INV_SBOX[*b as usize];
        }
    }

    // State layout: state[r + 4c] is row r, column c (column-major, FIPS 197).
    fn shift_rows(state: &mut [u8; 16]) {
        for r in 1..4 {
            let mut row = [0u8; 4];
            for c in 0..4 {
                row[c] = state[r + 4 * ((c + r) % 4)];
            }
            for c in 0..4 {
                state[r + 4 * c] = row[c];
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        for r in 1..4 {
            let mut row = [0u8; 4];
            for c in 0..4 {
                row[c] = state[r + 4 * ((c + 4 - r) % 4)];
            }
            for c in 0..4 {
                state[r + 4 * c] = row[c];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
            state[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
            state[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
            state[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
            state[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
            state[4 * c] =
                gf_mul(col[0], 14) ^ gf_mul(col[1], 11) ^ gf_mul(col[2], 13) ^ gf_mul(col[3], 9);
            state[4 * c + 1] =
                gf_mul(col[0], 9) ^ gf_mul(col[1], 14) ^ gf_mul(col[2], 11) ^ gf_mul(col[3], 13);
            state[4 * c + 2] =
                gf_mul(col[0], 13) ^ gf_mul(col[1], 9) ^ gf_mul(col[2], 14) ^ gf_mul(col[3], 11);
            state[4 * c + 3] =
                gf_mul(col[0], 11) ^ gf_mul(col[1], 13) ^ gf_mul(col[2], 9) ^ gf_mul(col[3], 14);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference::ReferenceAes;
    use super::*;
    use crate::util::{from_hex, to_hex};

    #[test]
    fn sbox_known_entries() {
        // Spot-check against FIPS 197 Figure 7.
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
        assert_eq!(INV_SBOX[0x63], 0x00);
        assert_eq!(INV_SBOX[0xed], 0x53);
    }

    #[test]
    fn sbox_is_a_permutation() {
        let mut seen = [false; 256];
        for &v in SBOX.iter() {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    #[test]
    fn t_tables_are_consistent_rotations() {
        for x in 0..256usize {
            for k in 1..4 {
                assert_eq!(TE[k][x], TE[0][x].rotate_right(8 * k as u32));
                assert_eq!(TD[k][x], TD[0][x].rotate_right(8 * k as u32));
            }
            // Column structure: TE[0] packs (2s, s, s, 3s) of S[x].
            let s = SBOX[x];
            let b = TE[0][x].to_be_bytes();
            assert_eq!(b, [gf_mul(s, 2), s, s, gf_mul(s, 3)]);
            let si = INV_SBOX[x];
            let b = TD[0][x].to_be_bytes();
            assert_eq!(b, [gf_mul(si, 14), gf_mul(si, 9), gf_mul(si, 13), gf_mul(si, 11)]);
        }
    }

    fn check_vector(key_hex: &str, pt_hex: &str, ct_hex: &str) {
        let key = from_hex(key_hex).unwrap();
        let pt = from_hex(pt_hex).unwrap();
        let mut block = [0u8; 16];
        block.copy_from_slice(&pt);
        let cipher: Box<dyn BlockCipher> = match key.len() {
            16 => Box::new(Aes128::from_slice(&key)),
            24 => Box::new(Aes192::from_slice(&key)),
            32 => Box::new(Aes256::from_slice(&key)),
            _ => unreachable!(),
        };
        cipher.encrypt_block(&mut block);
        assert_eq!(to_hex(&block), ct_hex);
        cipher.decrypt_block(&mut block);
        assert_eq!(to_hex(&block), pt_hex);
        // The byte-wise reference must agree on the same vector.
        let reference = ReferenceAes::new(&key);
        reference.encrypt_block(&mut block);
        assert_eq!(to_hex(&block), ct_hex);
        reference.decrypt_block(&mut block);
        assert_eq!(to_hex(&block), pt_hex);
    }

    #[test]
    fn fips197_aes128_example() {
        check_vector(
            "000102030405060708090a0b0c0d0e0f",
            "00112233445566778899aabbccddeeff",
            "69c4e0d86a7b0430d8cdb78070b4c55a",
        );
    }

    #[test]
    fn fips197_aes192_example() {
        check_vector(
            "000102030405060708090a0b0c0d0e0f1011121314151617",
            "00112233445566778899aabbccddeeff",
            "dda97ca4864cdfe06eaf70a0ec0d7191",
        );
    }

    #[test]
    fn fips197_aes256_example() {
        check_vector(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
            "00112233445566778899aabbccddeeff",
            "8ea2b7ca516745bfeafc49904b496089",
        );
    }

    #[test]
    fn fips197_appendix_b_aes128() {
        check_vector(
            "2b7e151628aed2a6abf7158809cf4f3c",
            "3243f6a8885a308d313198a2e0370734",
            "3925841d02dc09fbdc118597196a0b32",
        );
    }

    #[test]
    fn roundtrip_random_blocks_all_variants() {
        let mut x: u64 = 0x12345;
        let mut next = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 24) as u8
        };
        for _ in 0..50 {
            let mut key32 = [0u8; 32];
            key32.iter_mut().for_each(|b| *b = next());
            let mut block = [0u8; 16];
            block.iter_mut().for_each(|b| *b = next());
            let orig = block;
            for cipher in [
                Box::new(Aes128::from_slice(&key32[..16])) as Box<dyn BlockCipher>,
                Box::new(Aes192::from_slice(&key32[..24])),
                Box::new(Aes256::from_slice(&key32)),
            ] {
                let mut b = block;
                cipher.encrypt_block(&mut b);
                assert_ne!(b, orig);
                cipher.decrypt_block(&mut b);
                assert_eq!(b, orig);
            }
        }
    }

    #[test]
    fn t_table_core_matches_reference_core() {
        // Deterministic random keys/blocks across all three key sizes: the
        // fast core and the byte-wise specification must agree bit-for-bit
        // in both directions. (The proptest suite covers this too; this is
        // the quick in-crate pin.)
        let mut x: u64 = 0xfeed_beef;
        let mut next = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 24) as u8
        };
        for round in 0..100 {
            let mut key32 = [0u8; 32];
            key32.iter_mut().for_each(|b| *b = next());
            let mut block = [0u8; 16];
            block.iter_mut().for_each(|b| *b = next());
            let key_len = [16, 24, 32][round % 3];
            let key = &key32[..key_len];
            let fast: Box<dyn BlockCipher> = match key_len {
                16 => Box::new(Aes128::from_slice(key)),
                24 => Box::new(Aes192::from_slice(key)),
                _ => Box::new(Aes256::from_slice(key)),
            };
            let reference = ReferenceAes::new(key);
            let mut a = block;
            let mut b = block;
            fast.encrypt_block(&mut a);
            reference.encrypt_block(&mut b);
            assert_eq!(a, b, "encrypt mismatch, key_len {key_len}");
            fast.decrypt_block(&mut a);
            reference.decrypt_block(&mut b);
            assert_eq!(a, b, "decrypt mismatch, key_len {key_len}");
            assert_eq!(a, block, "roundtrip");
        }
    }

    #[test]
    fn both_backends_match_reference() {
        // On AES-NI hosts the public ciphers dispatch to the hardware
        // path, so pin the T-table path explicitly by clearing the flag —
        // both backends must match the byte-wise specification on every
        // host, whichever one the dispatch would pick.
        let mut x: u64 = 0x0ddba11;
        let mut next = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 24) as u8
        };
        for round in 0..60 {
            let mut key32 = [0u8; 32];
            key32.iter_mut().for_each(|b| *b = next());
            let mut block = [0u8; 16];
            block.iter_mut().for_each(|b| *b = next());
            let key = &key32[..[16, 24, 32][round % 3]];
            let reference = ReferenceAes::new(key);
            let mut expect_ct = block;
            reference.encrypt_block(&mut expect_ct);
            for force_soft in [false, true] {
                let mut core = AesCore::new(key);
                if force_soft {
                    core.use_aesni = false;
                }
                let mut b = block;
                core.encrypt(&mut b);
                assert_eq!(b, expect_ct, "encrypt (forced soft: {force_soft})");
                core.decrypt(&mut b);
                assert_eq!(b, block, "decrypt (forced soft: {force_soft})");
            }
        }
    }

    #[test]
    fn wide_lanes_match_single_block_at_every_depth() {
        // Runs of 0..=20 blocks cover the 8-wide ladder, the 4-wide ladder,
        // the single-block tail and every ragged combination (e.g. 13 =
        // 8 + 4 + 1). Both backends must agree with a per-block loop.
        let mut x: u64 = 0xabcdef;
        let mut next = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 24) as u8
        };
        for blocks in 0..=20usize {
            let mut key32 = [0u8; 32];
            key32.iter_mut().for_each(|b| *b = next());
            let mut data = vec![0u8; blocks * 16];
            data.iter_mut().for_each(|b| *b = next());
            for key_len in [16usize, 24, 32] {
                for force_soft in [false, true] {
                    let mut core = AesCore::new(&key32[..key_len]);
                    if force_soft {
                        core.use_aesni = false;
                    }
                    let mut expect = data.clone();
                    for chunk in expect.chunks_exact_mut(16) {
                        core.encrypt(chunk.try_into().unwrap());
                    }
                    let mut wide = data.clone();
                    core.encrypt_many(&mut wide);
                    assert_eq!(wide, expect, "encrypt: {blocks} blocks, soft {force_soft}");
                    core.decrypt_many(&mut wide);
                    assert_eq!(wide, data, "decrypt inverts: {blocks} blocks");
                }
            }
        }
    }

    #[test]
    fn trait_wide_entry_points_dispatch_to_the_ladders() {
        let cipher = Aes256::new(&[0x41u8; 32]);
        let mut soft = Aes256::new(&[0x41u8; 32]);
        soft.force_software();
        let data: Vec<u8> = (0..13 * 16).map(|i| (i % 251) as u8).collect();
        let mut a = data.clone();
        cipher.encrypt_blocks(&mut a);
        let mut b = data.clone();
        soft.encrypt_blocks(&mut b);
        let mut c = data.clone();
        for chunk in c.chunks_exact_mut(16) {
            cipher.encrypt_block(chunk.try_into().unwrap());
        }
        assert_eq!(a, b, "hardware and forced-software wide paths agree");
        assert_eq!(a, c, "wide path agrees with the single-block trait path");
        cipher.decrypt_blocks(&mut a);
        assert_eq!(a, data);
        soft.decrypt_blocks(&mut b);
        assert_eq!(b, data);
    }

    #[test]
    #[should_panic(expected = "block run length")]
    fn wide_lanes_reject_ragged_bytes() {
        let cipher = Aes128::new(&[0u8; 16]);
        let mut data = vec![0u8; 24];
        cipher.encrypt_blocks(&mut data);
    }

    #[test]
    #[should_panic(expected = "wrong key length")]
    fn from_slice_rejects_bad_length() {
        let _ = Aes128::from_slice(&[0u8; 17]);
    }

    #[test]
    fn key_len_reported() {
        assert_eq!(Aes128::new(&[0; 16]).key_len(), 16);
        assert_eq!(Aes192::new(&[0; 24]).key_len(), 24);
        assert_eq!(Aes256::new(&[0; 32]).key_len(), 32);
        assert_eq!(ReferenceAes::new(&[0; 32]).key_len(), 32);
    }
}
