//! AES-128/192/256 (FIPS 197).
//!
//! The S-box and its inverse are *derived at compile time* from the GF(2^8)
//! definition (multiplicative inverse + affine map) rather than transcribed,
//! and the whole cipher is validated against the FIPS 197 example vectors in
//! the tests. Performance is adequate for the simulation (timing in the
//! experiments is charged to the virtual clock, not measured from this code).

/// AES block size in bytes.
pub const AES_BLOCK_SIZE: usize = 16;

const fn xtime(a: u8) -> u8 {
    (a << 1) ^ (((a >> 7) & 1) * 0x1b)
}

const fn gf_mul(a: u8, b: u8) -> u8 {
    let mut p = 0u8;
    let mut x = a;
    let mut y = b;
    while y != 0 {
        if y & 1 != 0 {
            p ^= x;
        }
        x = xtime(x);
        y >>= 1;
    }
    p
}

const fn gf_inv(a: u8) -> u8 {
    // a^254 in GF(2^8) equals the multiplicative inverse (and 0 maps to 0).
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u32;
    while exp > 0 {
        if exp & 1 != 0 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

const fn rotl8(x: u8, n: u32) -> u8 {
    x.rotate_left(n)
}

const fn build_sbox() -> [u8; 256] {
    let mut sbox = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        let b = gf_inv(i as u8);
        sbox[i] = b ^ rotl8(b, 1) ^ rotl8(b, 2) ^ rotl8(b, 3) ^ rotl8(b, 4) ^ 0x63;
        i += 1;
    }
    sbox
}

const fn build_inv_sbox(sbox: &[u8; 256]) -> [u8; 256] {
    let mut inv = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        inv[sbox[i] as usize] = i as u8;
        i += 1;
    }
    inv
}

const SBOX: [u8; 256] = build_sbox();
const INV_SBOX: [u8; 256] = build_inv_sbox(&SBOX);

const RCON: [u8; 15] =
    [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36, 0x6c, 0xd8, 0xab, 0x4d, 0x9a];

/// A block cipher operating on 16-byte blocks.
///
/// Implemented by [`Aes128`], [`Aes192`] and [`Aes256`]; sector modes
/// ([`crate::CbcEssiv`], [`crate::Xts`]) are generic over it.
pub trait BlockCipher: Send + Sync {
    /// Encrypts one 16-byte block in place.
    fn encrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]);
    /// Decrypts one 16-byte block in place.
    fn decrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]);
    /// Key length in bytes (used by ESSIV to derive the IV key).
    fn key_len(&self) -> usize;
}

/// Generic AES implementation parameterised by the number of rounds.
#[derive(Debug, Clone)]
struct AesCore {
    round_keys: Vec<[u8; 16]>,
    key_len: usize,
}

impl AesCore {
    fn new(key: &[u8]) -> Self {
        let nk = key.len() / 4;
        let nr = nk + 6;
        assert!(matches!(key.len(), 16 | 24 | 32), "AES key must be 16, 24 or 32 bytes");
        let total_words = 4 * (nr + 1);
        let mut w: Vec<[u8; 4]> = Vec::with_capacity(total_words);
        for i in 0..nk {
            w.push([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp = [
                    SBOX[temp[1] as usize] ^ RCON[i / nk - 1],
                    SBOX[temp[2] as usize],
                    SBOX[temp[3] as usize],
                    SBOX[temp[0] as usize],
                ];
            } else if nk > 6 && i % nk == 4 {
                temp = [
                    SBOX[temp[0] as usize],
                    SBOX[temp[1] as usize],
                    SBOX[temp[2] as usize],
                    SBOX[temp[3] as usize],
                ];
            }
            let prev = w[i - nk];
            w.push([prev[0] ^ temp[0], prev[1] ^ temp[1], prev[2] ^ temp[2], prev[3] ^ temp[3]]);
        }
        let round_keys = w
            .chunks(4)
            .map(|c| {
                let mut rk = [0u8; 16];
                for (i, word) in c.iter().enumerate() {
                    rk[4 * i..4 * i + 4].copy_from_slice(word);
                }
                rk
            })
            .collect();
        AesCore { round_keys, key_len: key.len() }
    }

    fn rounds(&self) -> usize {
        self.round_keys.len() - 1
    }

    fn encrypt(&self, state: &mut [u8; 16]) {
        add_round_key(state, &self.round_keys[0]);
        for round in 1..self.rounds() {
            sub_bytes(state);
            shift_rows(state);
            mix_columns(state);
            add_round_key(state, &self.round_keys[round]);
        }
        sub_bytes(state);
        shift_rows(state);
        add_round_key(state, &self.round_keys[self.rounds()]);
    }

    fn decrypt(&self, state: &mut [u8; 16]) {
        add_round_key(state, &self.round_keys[self.rounds()]);
        for round in (1..self.rounds()).rev() {
            inv_shift_rows(state);
            inv_sub_bytes(state);
            add_round_key(state, &self.round_keys[round]);
            inv_mix_columns(state);
        }
        inv_shift_rows(state);
        inv_sub_bytes(state);
        add_round_key(state, &self.round_keys[0]);
    }
}

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn inv_sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

// State layout: state[r + 4c] is row r, column c (column-major, FIPS 197).
fn shift_rows(state: &mut [u8; 16]) {
    for r in 1..4 {
        let mut row = [0u8; 4];
        for c in 0..4 {
            row[c] = state[r + 4 * ((c + r) % 4)];
        }
        for c in 0..4 {
            state[r + 4 * c] = row[c];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    for r in 1..4 {
        let mut row = [0u8; 4];
        for c in 0..4 {
            row[c] = state[r + 4 * ((c + 4 - r) % 4)];
        }
        for c in 0..4 {
            state[r + 4 * c] = row[c];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        state[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
        state[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        state[4 * c] =
            gf_mul(col[0], 14) ^ gf_mul(col[1], 11) ^ gf_mul(col[2], 13) ^ gf_mul(col[3], 9);
        state[4 * c + 1] =
            gf_mul(col[0], 9) ^ gf_mul(col[1], 14) ^ gf_mul(col[2], 11) ^ gf_mul(col[3], 13);
        state[4 * c + 2] =
            gf_mul(col[0], 13) ^ gf_mul(col[1], 9) ^ gf_mul(col[2], 14) ^ gf_mul(col[3], 11);
        state[4 * c + 3] =
            gf_mul(col[0], 11) ^ gf_mul(col[1], 13) ^ gf_mul(col[2], 9) ^ gf_mul(col[3], 14);
    }
}

macro_rules! aes_variant {
    ($(#[$doc:meta])* $name:ident, $key_len:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            core: AesCore,
        }

        impl $name {
            /// Expands `key` into round keys.
            pub fn new(key: &[u8; $key_len]) -> Self {
                $name { core: AesCore::new(key) }
            }

            /// Expands a key provided as a slice.
            ///
            /// # Panics
            ///
            /// Panics if `key.len() !=` the variant's key length.
            pub fn from_slice(key: &[u8]) -> Self {
                assert_eq!(key.len(), $key_len, "wrong key length for {}", stringify!($name));
                $name { core: AesCore::new(key) }
            }
        }

        impl BlockCipher for $name {
            fn encrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
                self.core.encrypt(block);
            }

            fn decrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
                self.core.decrypt(block);
            }

            fn key_len(&self) -> usize {
                self.core.key_len
            }
        }
    };
}

aes_variant!(
    /// AES with a 128-bit key.
    ///
    /// # Example
    ///
    /// ```
    /// use mobiceal_crypto::{Aes128, BlockCipher};
    ///
    /// let aes = Aes128::new(&[0u8; 16]);
    /// let mut block = *b"sixteen byte msg";
    /// let orig = block;
    /// aes.encrypt_block(&mut block);
    /// aes.decrypt_block(&mut block);
    /// assert_eq!(block, orig);
    /// ```
    Aes128,
    16
);
aes_variant!(
    /// AES with a 192-bit key.
    Aes192,
    24
);
aes_variant!(
    /// AES with a 256-bit key (the dm-crypt default in Android FDE).
    Aes256,
    32
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{from_hex, to_hex};

    #[test]
    fn sbox_known_entries() {
        // Spot-check against FIPS 197 Figure 7.
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
        assert_eq!(INV_SBOX[0x63], 0x00);
        assert_eq!(INV_SBOX[0xed], 0x53);
    }

    #[test]
    fn sbox_is_a_permutation() {
        let mut seen = [false; 256];
        for &v in SBOX.iter() {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    fn check_vector(key_hex: &str, pt_hex: &str, ct_hex: &str) {
        let key = from_hex(key_hex).unwrap();
        let pt = from_hex(pt_hex).unwrap();
        let mut block = [0u8; 16];
        block.copy_from_slice(&pt);
        let cipher: Box<dyn BlockCipher> = match key.len() {
            16 => Box::new(Aes128::from_slice(&key)),
            24 => Box::new(Aes192::from_slice(&key)),
            32 => Box::new(Aes256::from_slice(&key)),
            _ => unreachable!(),
        };
        cipher.encrypt_block(&mut block);
        assert_eq!(to_hex(&block), ct_hex);
        cipher.decrypt_block(&mut block);
        assert_eq!(to_hex(&block), pt_hex);
    }

    #[test]
    fn fips197_aes128_example() {
        check_vector(
            "000102030405060708090a0b0c0d0e0f",
            "00112233445566778899aabbccddeeff",
            "69c4e0d86a7b0430d8cdb78070b4c55a",
        );
    }

    #[test]
    fn fips197_aes192_example() {
        check_vector(
            "000102030405060708090a0b0c0d0e0f1011121314151617",
            "00112233445566778899aabbccddeeff",
            "dda97ca4864cdfe06eaf70a0ec0d7191",
        );
    }

    #[test]
    fn fips197_aes256_example() {
        check_vector(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
            "00112233445566778899aabbccddeeff",
            "8ea2b7ca516745bfeafc49904b496089",
        );
    }

    #[test]
    fn fips197_appendix_b_aes128() {
        check_vector(
            "2b7e151628aed2a6abf7158809cf4f3c",
            "3243f6a8885a308d313198a2e0370734",
            "3925841d02dc09fbdc118597196a0b32",
        );
    }

    #[test]
    fn roundtrip_random_blocks_all_variants() {
        let mut x: u64 = 0x12345;
        let mut next = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 24) as u8
        };
        for _ in 0..50 {
            let mut key32 = [0u8; 32];
            key32.iter_mut().for_each(|b| *b = next());
            let mut block = [0u8; 16];
            block.iter_mut().for_each(|b| *b = next());
            let orig = block;
            for cipher in [
                Box::new(Aes128::from_slice(&key32[..16])) as Box<dyn BlockCipher>,
                Box::new(Aes192::from_slice(&key32[..24])),
                Box::new(Aes256::from_slice(&key32)),
            ] {
                let mut b = block;
                cipher.encrypt_block(&mut b);
                assert_ne!(b, orig);
                cipher.decrypt_block(&mut b);
                assert_eq!(b, orig);
            }
        }
    }

    #[test]
    #[should_panic(expected = "wrong key length")]
    fn from_slice_rejects_bad_length() {
        let _ = Aes128::from_slice(&[0u8; 17]);
    }

    #[test]
    fn key_len_reported() {
        assert_eq!(Aes128::new(&[0; 16]).key_len(), 16);
        assert_eq!(Aes192::new(&[0; 24]).key_len(), 24);
        assert_eq!(Aes256::new(&[0; 32]).key_len(), 32);
    }
}
