//! Hex helpers and constant-time comparison.

use std::fmt;

/// Error returned by [`from_hex`] for malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseHexError {
    offset: usize,
}

impl fmt::Display for ParseHexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid hex input at byte offset {}", self.offset)
    }
}

impl std::error::Error for ParseHexError {}

/// Encodes bytes as lowercase hex.
///
/// # Example
///
/// ```
/// assert_eq!(mobiceal_crypto::to_hex(&[0xde, 0xad]), "dead");
/// ```
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
    }
    s
}

/// Decodes a hex string (whitespace ignored).
///
/// # Errors
///
/// Returns [`ParseHexError`] if a non-hex character is found or the digit
/// count is odd.
pub fn from_hex(s: &str) -> Result<Vec<u8>, ParseHexError> {
    let mut out = Vec::with_capacity(s.len() / 2);
    let mut hi: Option<u8> = None;
    for (offset, c) in s.char_indices() {
        if c.is_whitespace() {
            continue;
        }
        let d = c.to_digit(16).ok_or(ParseHexError { offset })? as u8;
        match hi.take() {
            None => hi = Some(d),
            Some(h) => out.push((h << 4) | d),
        }
    }
    if hi.is_some() {
        return Err(ParseHexError { offset: s.len() });
    }
    Ok(out)
}

/// Constant-time equality for secrets (password hashes, key check values).
///
/// Runs in time dependent only on the lengths, not the contents.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(from_hex(&to_hex(&data)).unwrap(), data);
    }

    #[test]
    fn hex_ignores_whitespace() {
        assert_eq!(from_hex("de ad\nbe ef").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn hex_rejects_bad_chars() {
        assert!(from_hex("zz").is_err());
        let err = from_hex("0g").unwrap_err();
        assert_eq!(err, ParseHexError { offset: 1 });
        assert!(err.to_string().contains("offset 1"));
    }

    #[test]
    fn hex_rejects_odd_length() {
        assert!(from_hex("abc").is_err());
    }

    #[test]
    fn ct_eq_behaviour() {
        assert!(ct_eq(b"same", b"same"));
        assert!(!ct_eq(b"same", b"diff"));
        assert!(!ct_eq(b"short", b"longer"));
        assert!(ct_eq(b"", b""));
    }
}
