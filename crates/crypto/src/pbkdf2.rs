//! PBKDF2-HMAC-SHA256 (RFC 8018 / PKCS #5 v2.0).
//!
//! Android FDE derives the disk-encryption key-encryption-key from the user
//! password with PBKDF2 (§II-A of the paper); MobiCeal additionally derives
//! the hidden-volume index `k = (H(pwd||salt) mod (n-1)) + 2` from the same
//! primitive (§IV-C).

use crate::hmac::HmacSha256;
use crate::sha256::SHA256_OUTPUT_LEN;

/// Derives `out.len()` bytes from `password` and `salt` with `iterations`
/// rounds of PBKDF2-HMAC-SHA256.
///
/// # Panics
///
/// Panics if `iterations == 0` or `out` is empty.
///
/// # Example
///
/// ```
/// use mobiceal_crypto::pbkdf2_hmac_sha256;
///
/// let mut key = [0u8; 32];
/// pbkdf2_hmac_sha256(b"password", b"salt", 4096, &mut key);
/// assert_ne!(key, [0u8; 32]);
/// ```
pub fn pbkdf2_hmac_sha256(password: &[u8], salt: &[u8], iterations: u32, out: &mut [u8]) {
    assert!(iterations > 0, "iterations must be positive");
    assert!(!out.is_empty(), "output must be non-empty");
    for (i, chunk) in out.chunks_mut(SHA256_OUTPUT_LEN).enumerate() {
        let block_index = i as u32 + 1;
        let mut mac = HmacSha256::new(password);
        mac.update(salt);
        mac.update(&block_index.to_be_bytes());
        let mut u = mac.finalize();
        let mut acc = u;
        for _ in 1..iterations {
            let mut mac = HmacSha256::new(password);
            mac.update(&u);
            u = mac.finalize();
            for (a, b) in acc.iter_mut().zip(u.iter()) {
                *a ^= b;
            }
        }
        chunk.copy_from_slice(&acc[..chunk.len()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::to_hex;

    // PBKDF2-HMAC-SHA256 vectors from RFC 7914 §11 and the widely used
    // Josefsson test set.
    #[test]
    fn one_iteration() {
        let mut out = [0u8; 32];
        pbkdf2_hmac_sha256(b"password", b"salt", 1, &mut out);
        assert_eq!(
            to_hex(&out),
            "120fb6cffcf8b32c43e7225256c4f837a86548c92ccc35480805987cb70be17b"
        );
    }

    #[test]
    fn two_iterations() {
        let mut out = [0u8; 32];
        pbkdf2_hmac_sha256(b"password", b"salt", 2, &mut out);
        assert_eq!(
            to_hex(&out),
            "ae4d0c95af6b46d32d0adff928f06dd02a303f8ef3c251dfd6e2d85a95474c43"
        );
    }

    #[test]
    fn many_iterations() {
        let mut out = [0u8; 32];
        pbkdf2_hmac_sha256(b"password", b"salt", 4096, &mut out);
        assert_eq!(
            to_hex(&out),
            "c5e478d59288c841aa530db6845c4c8d962893a001ce4e11a4963873aa98134a"
        );
    }

    #[test]
    fn long_derived_key_multiple_blocks() {
        let mut out = [0u8; 40];
        pbkdf2_hmac_sha256(
            b"passwordPASSWORDpassword",
            b"saltSALTsaltSALTsaltSALTsaltSALTsalt",
            4096,
            &mut out,
        );
        assert_eq!(
            to_hex(&out),
            "348c89dbcbd32b2f32d814b8116e84cf2b17347ebc1800181c4e2a1fb8dd53e1c635518c7dac47e9"
        );
    }

    #[test]
    fn rfc7914_scrypt_appendix_vector() {
        let mut out = [0u8; 64];
        pbkdf2_hmac_sha256(b"passwd", b"salt", 1, &mut out);
        assert_eq!(
            to_hex(&out),
            "55ac046e56e3089fec1691c22544b605f94185216dde0465e68b9d57c20dacbc\
             49ca9cccf179b645991664b39d77ef317c71b845b1e30bd509112041d3a19783"
        );
    }

    #[test]
    fn different_salts_give_different_keys() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        pbkdf2_hmac_sha256(b"pwd", b"salt-a", 10, &mut a);
        pbkdf2_hmac_sha256(b"pwd", b"salt-b", 10, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn prefix_consistency_across_lengths() {
        // dkLen=16 must be a prefix of dkLen=32 for the same inputs.
        let mut short = [0u8; 16];
        let mut long = [0u8; 32];
        pbkdf2_hmac_sha256(b"pwd", b"salt", 3, &mut short);
        pbkdf2_hmac_sha256(b"pwd", b"salt", 3, &mut long);
        assert_eq!(short, long[..16]);
    }

    #[test]
    #[should_panic(expected = "iterations")]
    fn zero_iterations_panics() {
        let mut out = [0u8; 16];
        pbkdf2_hmac_sha256(b"p", b"s", 0, &mut out);
    }
}
