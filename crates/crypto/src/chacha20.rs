//! ChaCha20 (RFC 8439) and a deterministic CSPRNG built on it.
//!
//! MobiCeal's dummy writes fill blocks with "random noise ... which should be
//! indistinguishable from the encrypted data" (§IV-B). We generate that noise
//! (and all keys/salts) from a ChaCha20-based DRBG: cryptographically strong,
//! yet seedable so every experiment is reproducible.

const CHACHA_CONST: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 64-byte ChaCha20 keystream block (RFC 8439 §2.3).
pub fn chacha20_block(key: &[u8; 32], counter: u32, nonce: &[u8; 12]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CHACHA_CONST);
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[4 * i],
            nonce[4 * i + 1],
            nonce[4 * i + 2],
            nonce[4 * i + 3],
        ]);
    }
    let mut working = state;
    for _ in 0..10 {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// Encrypts/decrypts `data` in place with the ChaCha20 keystream starting at
/// block `counter` (RFC 8439 §2.4).
pub fn chacha20_xor(key: &[u8; 32], counter: u32, nonce: &[u8; 12], data: &mut [u8]) {
    for (i, chunk) in data.chunks_mut(64).enumerate() {
        let ks = chacha20_block(key, counter.wrapping_add(i as u32), nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

/// Deterministic CSPRNG: ChaCha20 keystream over an incrementing counter.
///
/// Used for every security-relevant random value in the reproduction —
/// master keys, salts, dummy-write payloads, `stored_rand` refreshes — so
/// that dummy noise is computationally indistinguishable from ciphertext
/// (the requirement of §IV-A Q2) while experiments stay replayable.
///
/// # Example
///
/// ```
/// use mobiceal_crypto::ChaCha20Rng;
///
/// let mut a = ChaCha20Rng::from_seed([1u8; 32]);
/// let mut b = ChaCha20Rng::from_seed([1u8; 32]);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct ChaCha20Rng {
    key: [u8; 32],
    nonce: [u8; 12],
    counter: u32,
    buf: [u8; 64],
    buf_pos: usize,
}

impl ChaCha20Rng {
    /// Creates a generator from a 32-byte seed.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        ChaCha20Rng { key: seed, nonce: [0u8; 12], counter: 0, buf: [0u8; 64], buf_pos: 64 }
    }

    /// Creates a generator from a 64-bit seed (expanded via SHA-256).
    pub fn from_u64_seed(seed: u64) -> Self {
        let digest = crate::sha256::sha256(&seed.to_le_bytes());
        Self::from_seed(digest)
    }

    /// Creates a generator seeded from the operating system
    /// (`/dev/urandom`); falls back to a time-derived seed if unavailable.
    pub fn from_os_entropy() -> Self {
        let read_os = || -> std::io::Result<[u8; 32]> {
            use std::io::Read;
            let mut f = std::fs::File::open("/dev/urandom")?;
            let mut b = [0u8; 32];
            f.read_exact(&mut b)?;
            Ok(b)
        };
        let seed = read_os().unwrap_or_else(|_| {
            let t = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0xDEADBEEF);
            crate::sha256::sha256(&t.to_le_bytes())
        });
        Self::from_seed(seed)
    }

    fn refill(&mut self) {
        self.buf = chacha20_block(&self.key, self.counter, &self.nonce);
        self.counter = self.counter.wrapping_add(1);
        if self.counter == 0 {
            // 256 GiB of output exhausted the counter: roll the nonce.
            for b in self.nonce.iter_mut() {
                *b = b.wrapping_add(1);
                if *b != 0 {
                    break;
                }
            }
        }
        self.buf_pos = 0;
    }

    /// Fills `out` with random bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        let mut written = 0;
        while written < out.len() {
            if self.buf_pos == 64 {
                self.refill();
            }
            let take = (64 - self.buf_pos).min(out.len() - written);
            out[written..written + take]
                .copy_from_slice(&self.buf[self.buf_pos..self.buf_pos + take]);
            self.buf_pos += take;
            written += take;
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_le_bytes(b)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.fill_bytes(&mut b);
        u32::from_le_bytes(b)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let x = self.next_u64();
            if x < zone {
                return x % bound;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range");
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A fresh 32-byte key/seed.
    pub fn gen_key(&mut self) -> [u8; 32] {
        let mut k = [0u8; 32];
        self.fill_bytes(&mut k);
        k
    }

    /// A fresh 16-byte value (salt, IV).
    pub fn gen_nonce16(&mut self) -> [u8; 16] {
        let mut n = [0u8; 16];
        self.fill_bytes(&mut n);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::to_hex;

    #[test]
    fn rfc8439_block_vector() {
        // RFC 8439 §2.3.2 test vector.
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce = [0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00];
        let block = chacha20_block(&key, 1, &nonce);
        assert_eq!(
            to_hex(&block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    #[test]
    fn rfc8439_encryption_vector() {
        // RFC 8439 §2.4.2.
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.".to_vec();
        chacha20_xor(&key, 1, &nonce, &mut data);
        assert_eq!(
            to_hex(&data[..32]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        );
        // Round-trip.
        chacha20_xor(&key, 1, &nonce, &mut data);
        assert!(data.starts_with(b"Ladies and Gentlemen"));
    }

    #[test]
    fn rng_determinism() {
        let mut a = ChaCha20Rng::from_u64_seed(77);
        let mut b = ChaCha20Rng::from_u64_seed(77);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_different_seeds_diverge() {
        let mut a = ChaCha20Rng::from_u64_seed(1);
        let mut b = ChaCha20Rng::from_u64_seed(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn rng_fill_spans_block_boundaries() {
        let mut a = ChaCha20Rng::from_u64_seed(9);
        let mut big = vec![0u8; 300];
        a.fill_bytes(&mut big);
        let mut b = ChaCha20Rng::from_u64_seed(9);
        let mut pieces = vec![0u8; 300];
        let (x, rest) = pieces.split_at_mut(61);
        let (y, z) = rest.split_at_mut(130);
        b.fill_bytes(x);
        b.fill_bytes(y);
        b.fill_bytes(z);
        assert_eq!(big, pieces);
    }

    #[test]
    fn rng_next_below_bounds() {
        let mut rng = ChaCha20Rng::from_u64_seed(5);
        for bound in [1u64, 2, 10, 1000] {
            for _ in 0..100 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn rng_bytes_look_uniform() {
        // Chi-square-lite: byte histogram of 64 KiB should have no empty or
        // wildly overfull bucket.
        let mut rng = ChaCha20Rng::from_u64_seed(1234);
        let mut buf = vec![0u8; 65536];
        rng.fill_bytes(&mut buf);
        let mut hist = [0u32; 256];
        for &b in &buf {
            hist[b as usize] += 1;
        }
        let expected = 65536.0 / 256.0;
        for (i, &h) in hist.iter().enumerate() {
            assert!(
                (h as f64) > expected * 0.5 && (h as f64) < expected * 1.5,
                "bucket {i} count {h}"
            );
        }
    }

    #[test]
    fn os_entropy_rng_works() {
        let mut rng = ChaCha20Rng::from_os_entropy();
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
    }
}
