//! Sector encryption modes: CBC-ESSIV and XTS.
//!
//! `dm-crypt` encrypts each 512-byte (or 4096-byte) sector independently so
//! that random block I/O stays random. Android 4.2's FDE used
//! `aes-cbc-essiv:sha256`; modern deployments use `aes-xts-plain64`. Both are
//! provided so the reproduction can model either stack.
//!
//! Both modes feed the cipher through the wide entry points
//! ([`BlockCipher::encrypt_blocks`]/[`BlockCipher::decrypt_blocks`]) wherever
//! their block structure allows, in [`LANE_CHUNK`]-block chunks staged on the
//! stack so the per-sector paths stay allocation-free:
//!
//! * **XTS** is independent per block in both directions once the tweak
//!   sequence is known, so each chunk's tweaks are precomputed (a PCLMULQDQ
//!   carry-less ladder on hosts that report it, the serial shift/xor double
//!   otherwise — see [`Xts::fill_tweaks`]), XORed in, run through the wide
//!   lanes, and XORed out.
//! * **CBC decrypt** is also embarrassingly parallel — every block is
//!   `D(C_i) ^ C_{i-1}` over *ciphertexts that already exist* — so each chunk
//!   saves its ciphertext, decrypts wide, then applies the lagged XOR.
//! * **CBC encrypt** cannot pipeline: block `i`'s input includes block
//!   `i - 1`'s *output*, a data dependency no amount of lane interleaving
//!   removes. It stays on the serial single-block path by nature.
//!
//! [`SectorCipher::encrypt_sectors_in_place`] /
//! [`SectorCipher::decrypt_sectors_in_place`] are the batch entry points the
//! dm layer drives, so a whole write batch crosses the cipher's virtual
//! dispatch once.

use crate::aes::{BlockCipher, AES_BLOCK_SIZE};
use crate::sha256::sha256;

/// Blocks staged per wide-lane chunk: 64 blocks (1 KiB) keeps the tweak /
/// saved-ciphertext scratch on the stack (no per-sector allocation) while
/// giving the 8-wide AES ladders long runs; a 4 KiB sector is 4 chunks.
const LANE_CHUNK: usize = 64;

/// A length-preserving cipher over whole device sectors, keyed by sector
/// number. This is the interface `mobiceal-dm`'s crypt target consumes.
///
/// The in-place methods are the hot path: `dm-crypt`-style layers own the
/// sector buffers they are about to write (or just read), so encrypting
/// in place avoids a heap allocation per sector, exactly like in-place
/// bio encryption in the kernel. The allocating and in-place variants are
/// interchangeable — default implementations route each through the other,
/// and property tests pin the equivalence for the two provided modes.
pub trait SectorCipher: Send + Sync {
    /// Encrypts `sector_data`, whose position on the device is `sector_index`.
    ///
    /// # Panics
    ///
    /// Panics if the data length is not a positive multiple of 16.
    fn encrypt_sector(&self, sector_index: u64, sector_data: &[u8]) -> Vec<u8>;

    /// Inverse of [`SectorCipher::encrypt_sector`].
    ///
    /// # Panics
    ///
    /// Panics if the data length is not a positive multiple of 16.
    fn decrypt_sector(&self, sector_index: u64, sector_data: &[u8]) -> Vec<u8>;

    /// Encrypts `sector_data` in place (no allocation in the provided
    /// modes; the default falls back to [`SectorCipher::encrypt_sector`]).
    ///
    /// # Panics
    ///
    /// Panics if the data length is not a positive multiple of 16.
    fn encrypt_sector_in_place(&self, sector_index: u64, sector_data: &mut [u8]) {
        let out = self.encrypt_sector(sector_index, sector_data);
        sector_data.copy_from_slice(&out);
    }

    /// Inverse of [`SectorCipher::encrypt_sector_in_place`].
    ///
    /// # Panics
    ///
    /// Panics if the data length is not a positive multiple of 16.
    fn decrypt_sector_in_place(&self, sector_index: u64, sector_data: &mut [u8]) {
        let out = self.decrypt_sector(sector_index, sector_data);
        sector_data.copy_from_slice(&out);
    }

    /// Encrypts every `(sector_index, buffer)` job in place — the batch
    /// entry point the dm layer feeds whole write batches through, so a
    /// 64-sector batch crosses the cipher's virtual dispatch once instead
    /// of 64 times (the calls inside this default are statically
    /// dispatched in the concrete impl the vtable selects). Jobs are
    /// independent sectors; order does not matter.
    ///
    /// # Panics
    ///
    /// Panics if any buffer length is not a positive multiple of 16.
    fn encrypt_sectors_in_place(&self, jobs: &mut [(u64, &mut [u8])]) {
        for (index, buf) in jobs.iter_mut() {
            self.encrypt_sector_in_place(*index, buf);
        }
    }

    /// Inverse of [`SectorCipher::encrypt_sectors_in_place`], same
    /// contract.
    ///
    /// # Panics
    ///
    /// Panics if any buffer length is not a positive multiple of 16.
    fn decrypt_sectors_in_place(&self, jobs: &mut [(u64, &mut [u8])]) {
        for (index, buf) in jobs.iter_mut() {
            self.decrypt_sector_in_place(*index, buf);
        }
    }
}

fn check_len(len: usize) {
    assert!(
        len > 0 && len.is_multiple_of(AES_BLOCK_SIZE),
        "sector length {len} not a multiple of 16"
    );
}

/// CBC with Encrypted Salt-Sector IV (the `aes-cbc-essiv:sha256` dm-crypt
/// mode used by Android 4.2 FDE, §II-A).
///
/// The per-sector IV is `E_{SHA256(key)}(sector_index_le)`, which hides
/// sector-number structure from the ciphertext.
pub struct CbcEssiv<C: BlockCipher> {
    data_cipher: C,
    iv_cipher: crate::aes::Aes256,
}

impl<C: BlockCipher> CbcEssiv<C> {
    /// Wraps `data_cipher`; the ESSIV key is SHA-256 of an encoding of the
    /// data key's identity. Because the trait does not expose raw key bytes,
    /// callers that need exact dm-crypt compatibility should construct via
    /// [`CbcEssiv::with_essiv_key`]; for the simulation the derived variant
    /// is sufficient and still gives each instance a distinct IV key.
    pub fn new(data_cipher: C) -> Self {
        // Derive an ESSIV key by encrypting two known blocks with the data
        // cipher and hashing the result: a keyed fingerprint of the data key.
        let mut b0 = [0u8; 16];
        let mut b1 = [0xffu8; 16];
        data_cipher.encrypt_block(&mut b0);
        data_cipher.encrypt_block(&mut b1);
        let mut seed = Vec::with_capacity(32);
        seed.extend_from_slice(&b0);
        seed.extend_from_slice(&b1);
        let essiv_key = sha256(&seed);
        CbcEssiv { data_cipher, iv_cipher: crate::aes::Aes256::new(&essiv_key) }
    }

    /// Wraps `data_cipher` with an explicit ESSIV key (`SHA256(data_key)` in
    /// real dm-crypt).
    pub fn with_essiv_key(data_cipher: C, essiv_key: &[u8; 32]) -> Self {
        CbcEssiv { data_cipher, iv_cipher: crate::aes::Aes256::new(essiv_key) }
    }

    fn iv_for(&self, sector_index: u64) -> [u8; 16] {
        let mut iv = [0u8; 16];
        iv[..8].copy_from_slice(&sector_index.to_le_bytes());
        self.iv_cipher.encrypt_block(&mut iv);
        iv
    }
}

impl<C: BlockCipher> SectorCipher for CbcEssiv<C> {
    fn encrypt_sector(&self, sector_index: u64, sector_data: &[u8]) -> Vec<u8> {
        let mut out = sector_data.to_vec();
        self.encrypt_sector_in_place(sector_index, &mut out);
        out
    }

    fn decrypt_sector(&self, sector_index: u64, sector_data: &[u8]) -> Vec<u8> {
        let mut out = sector_data.to_vec();
        self.decrypt_sector_in_place(sector_index, &mut out);
        out
    }

    // CBC encrypt cannot pipeline: block i's cipher input is
    // `P_i ^ C_{i-1}`, and `C_{i-1}` is the *output* of the previous
    // block's AES call — a true data dependency, so the blocks of one
    // sector are inherently serial and the wide lanes cannot apply. (The
    // parallelism CBC-ESSIV writes do get is per-sector: sectors chain
    // independently, which is what the dm layer's thread sharding and the
    // batch entry point exploit.)
    fn encrypt_sector_in_place(&self, sector_index: u64, sector_data: &mut [u8]) {
        check_len(sector_data.len());
        let mut prev = u128::from_ne_bytes(self.iv_for(sector_index));
        for chunk in sector_data.chunks_exact_mut(AES_BLOCK_SIZE) {
            let block: &mut [u8; AES_BLOCK_SIZE] = chunk.try_into().expect("exact chunk");
            *block = (u128::from_ne_bytes(*block) ^ prev).to_ne_bytes();
            self.data_cipher.encrypt_block(block);
            prev = u128::from_ne_bytes(*block);
        }
    }

    // CBC decrypt, unlike encrypt, is embarrassingly parallel: every
    // output is `D(C_i) ^ C_{i-1}` over ciphertexts that all exist up
    // front. Each chunk saves its ciphertext to a stack scratch, computes
    // every `D(C_i)` through the wide lanes, then applies the lagged XOR.
    fn decrypt_sector_in_place(&self, sector_index: u64, sector_data: &mut [u8]) {
        check_len(sector_data.len());
        let mut prev = u128::from_ne_bytes(self.iv_for(sector_index));
        let mut saved = [0u8; LANE_CHUNK * AES_BLOCK_SIZE];
        for chunk in sector_data.chunks_mut(LANE_CHUNK * AES_BLOCK_SIZE) {
            let saved = &mut saved[..chunk.len()];
            saved.copy_from_slice(chunk);
            self.data_cipher.decrypt_blocks(chunk);
            for (block, ct) in
                chunk.chunks_exact_mut(AES_BLOCK_SIZE).zip(saved.chunks_exact(AES_BLOCK_SIZE))
            {
                let block: &mut [u8; AES_BLOCK_SIZE] = block.try_into().expect("exact chunk");
                *block = (u128::from_ne_bytes(*block) ^ prev).to_ne_bytes();
                prev = u128::from_ne_bytes(ct.try_into().expect("exact chunk"));
            }
        }
    }
}

impl<C: BlockCipher> std::fmt::Debug for CbcEssiv<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CbcEssiv").finish_non_exhaustive()
    }
}

/// XTS mode (IEEE 1619-2007), the `aes-xts-plain64` dm-crypt mode.
///
/// Uses two independent keys: one for data, one for the tweak. Both
/// directions precompute each chunk's tweak sequence (PCLMULQDQ carry-less
/// ladder when the host reports it, serial shift/xor otherwise) and drive
/// the data cipher through the wide-lane entry points.
pub struct Xts<C: BlockCipher> {
    data_cipher: C,
    tweak_cipher: C,
    /// Whether the tweak ladder may use the PCLMULQDQ path (host support,
    /// detected once at construction; clearable for tests/benches).
    clmul_tweaks: bool,
}

impl<C: BlockCipher> Xts<C> {
    /// Creates an XTS cipher from the data-key cipher and tweak-key cipher.
    pub fn new(data_cipher: C, tweak_cipher: C) -> Self {
        Xts { data_cipher, tweak_cipher, clmul_tweaks: clmul_available() }
    }

    /// Pins the tweak ladder to the portable shift/xor path even on
    /// PCLMULQDQ hosts. Tweak values are bit-identical either way; tests
    /// and benches use this to keep the portable ladder covered (and
    /// measured) on hardware hosts.
    #[doc(hidden)]
    pub fn force_portable_tweaks(&mut self) {
        self.clmul_tweaks = false;
    }

    fn initial_tweak(&self, sector_index: u64) -> [u8; 16] {
        let mut t = [0u8; 16];
        t[..8].copy_from_slice(&sector_index.to_le_bytes());
        self.tweak_cipher.encrypt_block(&mut t);
        t
    }

    /// Multiplies the tweak by x in GF(2^128). In the little-endian u128
    /// view the byte-wise carry chain collapses to one wide shift: each
    /// byte shifts left taking the previous byte's top bit, and the final
    /// carry folds back as the 0x87 reduction polynomial.
    fn gf_double(v: u128) -> u128 {
        let reduce = ((v >> 127) as u8) * 0x87;
        (v << 1) ^ reduce as u128
    }

    /// Fills `out` with the consecutive tweak sequence starting at `t0`
    /// (`out[i] = t0 · x^i`, little-endian u128 view).
    ///
    /// The portable ladder is the serial double: each tweak depends on the
    /// one before it. The PCLMULQDQ ladder breaks that chain four ways —
    /// `out[1..4]` come straight off `t0` as `t0 · x^k`, and from there
    /// `out[i] = out[i-4] · x^4`, four independent multiply chains whose
    /// carry-less folds overlap — so tweak generation stays off the
    /// critical path of the wide AES lanes it feeds.
    fn fill_tweaks(&self, t0: u128, out: &mut [u128]) {
        #[cfg(target_arch = "x86_64")]
        if self.clmul_tweaks {
            // SAFETY: `clmul_tweaks` is only set when the CPU reports
            // PCLMULQDQ and SSE2 support at runtime.
            unsafe { fill_tweaks_clmul(t0, out) };
            return;
        }
        let mut t = t0;
        for slot in out.iter_mut() {
            *slot = t;
            t = Self::gf_double(t);
        }
    }

    fn process_in_place(&self, sector_index: u64, data: &mut [u8], encrypt: bool) {
        check_len(data.len());
        let mut t0 = u128::from_le_bytes(self.initial_tweak(sector_index));
        let mut tweaks = [0u128; LANE_CHUNK];
        for chunk in data.chunks_mut(LANE_CHUNK * AES_BLOCK_SIZE) {
            let tweaks = &mut tweaks[..chunk.len() / AES_BLOCK_SIZE];
            self.fill_tweaks(t0, tweaks);
            xor_tweaks(chunk, tweaks);
            if encrypt {
                self.data_cipher.encrypt_blocks(chunk);
            } else {
                self.data_cipher.decrypt_blocks(chunk);
            }
            xor_tweaks(chunk, tweaks);
            t0 = Self::gf_double(tweaks[tweaks.len() - 1]);
        }
    }
}

/// XORs `tweaks[i]` into the i-th 16-byte block of `chunk` (the pre- and
/// post-whitening steps of XTS; x86 is little-endian so the native u128
/// view matches the ladder's little-endian tweak values).
fn xor_tweaks(chunk: &mut [u8], tweaks: &[u128]) {
    for (block, &t) in chunk.chunks_exact_mut(AES_BLOCK_SIZE).zip(tweaks) {
        let block: &mut [u8; AES_BLOCK_SIZE] = block.try_into().expect("exact chunk");
        *block = (u128::from_le_bytes(*block) ^ t).to_le_bytes();
    }
}

/// Whether the host offers carry-less multiply for the XTS tweak ladder
/// (checked once per [`Xts`] construction).
#[cfg(target_arch = "x86_64")]
fn clmul_available() -> bool {
    std::arch::is_x86_feature_detected!("pclmulqdq") && std::arch::is_x86_feature_detected!("sse2")
}

#[cfg(not(target_arch = "x86_64"))]
fn clmul_available() -> bool {
    false
}

/// The PCLMULQDQ tweak ladder: `out[i] = t0 · x^i` in GF(2^128) with the
/// XTS reduction polynomial `x^128 + x^7 + x^2 + x + 1`.
///
/// Four multiply-by-`x^4` chains run interleaved (chain `j` produces
/// `out[j]`, `out[j+4]`, `out[j+8]`, …), so consecutive tweaks never wait
/// on each other — the serial shift/xor double's loop-carried dependency
/// is the thing this ladder deletes.
///
/// # Safety
///
/// The CPU must support the `pclmulqdq` and `sse2` feature sets.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "pclmulqdq,sse2")]
unsafe fn fill_tweaks_clmul(t0: u128, out: &mut [u128]) {
    use std::arch::x86_64::*;
    if out.is_empty() {
        return;
    }
    // SAFETY: caller guarantees PCLMULQDQ + SSE2 (this fn's contract).
    // `u128` and `__m128i` have identical 16-byte layouts on this
    // little-endian target, all stores go through unaligned intrinsics,
    // and every `p.add(i)` stays inside `out` (`i < n` throughout).
    unsafe {
        let n = out.len();
        let p = out.as_mut_ptr() as *mut __m128i;
        // Prologue: out[0..4] come straight off t0 as t0 · x^k — all
        // independent, no chain yet.
        let mut chain = [_mm_loadu_si128(&t0 as *const u128 as *const __m128i); 4];
        _mm_storeu_si128(p, chain[0]);
        for k in 1..4.min(n) {
            chain[k] = gf_mul_xk(chain[0], k as i64);
            _mm_storeu_si128(p.add(k), chain[k]);
        }
        // Steady state: four independent ·x^4 chains, interleaved.
        let mut i = 4;
        while i < n {
            for (j, lane) in chain.iter_mut().enumerate().take((n - i).min(4)) {
                *lane = gf_mul_xk(*lane, 4);
                _mm_storeu_si128(p.add(i + j), *lane);
            }
            i += 4;
        }
    }
}

/// One GF(2^128) multiply of `t` by `x^k` (1 ≤ k ≤ 63) with a carry-less
/// fold: the 128-bit polynomial shifts left `k` bits, and the `k` bits
/// that overflow degree 127 reduce in a single `PCLMULQDQ` against the
/// low terms `0x87` of the XTS polynomial (their product has degree
/// < k + 7 < 128, so one fold suffices — no shift/xor carry chain).
///
/// # Safety
///
/// The CPU must support the `pclmulqdq` and `sse2` feature sets.
#[cfg(target_arch = "x86_64")]
#[inline]
#[target_feature(enable = "pclmulqdq,sse2")]
unsafe fn gf_mul_xk(t: std::arch::x86_64::__m128i, k: i64) -> std::arch::x86_64::__m128i {
    use std::arch::x86_64::*;
    // Register arithmetic only — with the target features statically
    // enabled every intrinsic here is a safe operation, so no inner
    // `unsafe` block is needed; the `unsafe fn` carries the feature
    // contract for callers.
    let shl = _mm_set_epi64x(0, k);
    let shr = _mm_set_epi64x(0, 64 - k);
    // 128-bit shift left by k out of 64-bit limb shifts: each limb
    // shifts, the low limb's spilled top bits re-enter the high limb,
    // and the high limb's spilled bits are the degree-≥128 overflow.
    let limbs = _mm_sll_epi64(t, shl);
    let spill = _mm_srl_epi64(t, shr);
    let shifted = _mm_or_si128(limbs, _mm_slli_si128::<8>(spill));
    let overflow = _mm_srli_si128::<8>(spill);
    let fold = _mm_clmulepi64_si128::<0x00>(overflow, _mm_set_epi64x(0, 0x87));
    _mm_xor_si128(shifted, fold)
}

impl<C: BlockCipher> SectorCipher for Xts<C> {
    fn encrypt_sector(&self, sector_index: u64, sector_data: &[u8]) -> Vec<u8> {
        let mut out = sector_data.to_vec();
        self.process_in_place(sector_index, &mut out, true);
        out
    }

    fn decrypt_sector(&self, sector_index: u64, sector_data: &[u8]) -> Vec<u8> {
        let mut out = sector_data.to_vec();
        self.process_in_place(sector_index, &mut out, false);
        out
    }

    fn encrypt_sector_in_place(&self, sector_index: u64, sector_data: &mut [u8]) {
        self.process_in_place(sector_index, sector_data, true);
    }

    fn decrypt_sector_in_place(&self, sector_index: u64, sector_data: &mut [u8]) {
        self.process_in_place(sector_index, sector_data, false);
    }
}

impl<C: BlockCipher> std::fmt::Debug for Xts<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Xts").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::{Aes128, Aes256};
    use crate::util::{from_hex, to_hex};

    #[test]
    fn xts_ieee1619_vector_1() {
        // IEEE 1619 Vector 1: all-zero keys, sector 0, 32 zero bytes.
        let key1 = [0u8; 16];
        let key2 = [0u8; 16];
        let xts = Xts::new(Aes128::new(&key1), Aes128::new(&key2));
        let pt = [0u8; 32];
        let ct = xts.encrypt_sector(0, &pt);
        assert_eq!(to_hex(&ct), "917cf69ebd68b2ec9b9fe9a3eadda692cd43d2f59598ed858c02c2652fbf922e");
        assert_eq!(xts.decrypt_sector(0, &ct), pt);
    }

    #[test]
    fn xts_ieee1619_vector_2() {
        // IEEE 1619 Vector 2: key1=0x11.., key2=0x22.., sector 0x3333333333,
        // PT = 32 bytes of 0x44.
        let key1 = [0x11u8; 16];
        let key2 = [0x22u8; 16];
        let xts = Xts::new(Aes128::new(&key1), Aes128::new(&key2));
        let pt = [0x44u8; 32];
        let ct = xts.encrypt_sector(0x3333333333, &pt);
        assert_eq!(to_hex(&ct), "c454185e6a16936e39334038acef838bfb186fff7480adc4289382ecd6d394f0");
        assert_eq!(xts.decrypt_sector(0x3333333333, &ct), pt);
    }

    #[test]
    fn xts_full_sector_roundtrip() {
        let xts = Xts::new(Aes256::new(&[3u8; 32]), Aes256::new(&[9u8; 32]));
        let pt: Vec<u8> = (0..512).map(|i| (i % 256) as u8).collect();
        let ct = xts.encrypt_sector(1234, &pt);
        assert_ne!(ct, pt);
        assert_eq!(xts.decrypt_sector(1234, &ct), pt);
        // Different sector => different ciphertext.
        assert_ne!(xts.encrypt_sector(1235, &pt), ct);
    }

    #[test]
    fn essiv_roundtrip_and_sector_dependence() {
        let c = CbcEssiv::new(Aes256::new(&[5u8; 32]));
        let pt: Vec<u8> = (0..4096).map(|i| (i * 7 % 256) as u8).collect();
        let ct0 = c.encrypt_sector(0, &pt);
        let ct1 = c.encrypt_sector(1, &pt);
        assert_ne!(ct0, pt);
        assert_ne!(ct0, ct1, "IV must depend on sector number");
        assert_eq!(c.decrypt_sector(0, &ct0), pt);
        assert_eq!(c.decrypt_sector(1, &ct1), pt);
    }

    #[test]
    fn essiv_wrong_sector_fails_to_decrypt() {
        let c = CbcEssiv::new(Aes256::new(&[5u8; 32]));
        let pt = vec![0u8; 64];
        let ct = c.encrypt_sector(7, &pt);
        assert_ne!(c.decrypt_sector(8, &ct), pt);
    }

    #[test]
    fn essiv_explicit_key_matches_dm_crypt_shape() {
        let data_key =
            from_hex("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4").unwrap();
        let essiv_key = crate::sha256::sha256(&data_key);
        let c = CbcEssiv::with_essiv_key(Aes256::from_slice(&data_key), &essiv_key);
        let pt = vec![0xABu8; 512];
        let ct = c.encrypt_sector(42, &pt);
        assert_eq!(c.decrypt_sector(42, &ct), pt);
    }

    #[test]
    fn ciphertext_is_length_preserving() {
        let c = CbcEssiv::new(Aes128::new(&[1u8; 16]));
        for len in [16usize, 512, 4096] {
            assert_eq!(c.encrypt_sector(0, &vec![0u8; len]).len(), len);
        }
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn rejects_unaligned_sector() {
        let c = CbcEssiv::new(Aes128::new(&[1u8; 16]));
        let _ = c.encrypt_sector(0, &[0u8; 15]);
    }

    #[test]
    fn two_instances_same_key_agree() {
        let a = CbcEssiv::new(Aes256::new(&[8u8; 32]));
        let b = CbcEssiv::new(Aes256::new(&[8u8; 32]));
        let pt = vec![1u8; 64];
        assert_eq!(a.encrypt_sector(3, &pt), b.encrypt_sector(3, &pt));
    }

    #[test]
    fn clmul_tweak_ladder_matches_serial_double() {
        // The PCLMULQDQ ladder and the portable shift/xor double must
        // produce identical tweak sequences for every run length that
        // exercises the prologue (< 4), the interleaved chains and a full
        // 4 KiB sector's worth of doublings.
        let mut fast = Xts::new(Aes128::new(&[0x31u8; 16]), Aes128::new(&[0x32u8; 16]));
        let mut t0: u128 = 0x0123_4567_89ab_cdef_fedc_ba98_7654_3210;
        for n in [1usize, 2, 3, 4, 5, 7, 8, 13, 64, 256] {
            let mut expect = vec![0u128; n];
            let mut t = t0;
            for slot in expect.iter_mut() {
                *slot = t;
                t = Xts::<Aes128>::gf_double(t);
            }
            let mut got = vec![0u128; n];
            fast.fill_tweaks(t0, &mut got);
            assert_eq!(got, expect, "ladder diverges at n = {n}");
            t0 = t0.rotate_left(17) ^ n as u128;
        }
        // And the forced-portable instance takes the serial path (a no-op
        // check on non-PCLMULQDQ hosts, where both already did).
        fast.force_portable_tweaks();
        let mut got = vec![0u128; 9];
        fast.fill_tweaks(7, &mut got);
        assert_eq!(got[0], 7);
        assert_eq!(got[1], 14);
    }

    #[test]
    fn sector_batch_entry_points_match_per_sector_calls() {
        let xts = Xts::new(Aes256::new(&[3u8; 32]), Aes256::new(&[9u8; 32]));
        let essiv = CbcEssiv::new(Aes256::new(&[5u8; 32]));
        for cipher in [&xts as &dyn SectorCipher, &essiv] {
            let mut sectors: Vec<(u64, Vec<u8>)> = (0..5u64)
                .map(|s| (s * 11, (0..512).map(|i| (i as u64 * 7 + s) as u8).collect()))
                .collect();
            let expect: Vec<Vec<u8>> =
                sectors.iter().map(|(s, d)| cipher.encrypt_sector(*s, d)).collect();
            let mut jobs: Vec<(u64, &mut [u8])> =
                sectors.iter_mut().map(|(s, d)| (*s, d.as_mut_slice())).collect();
            cipher.encrypt_sectors_in_place(&mut jobs);
            for ((_, got), want) in sectors.iter().zip(&expect) {
                assert_eq!(got, want, "batch encrypt must match per-sector");
            }
            let mut jobs: Vec<(u64, &mut [u8])> =
                sectors.iter_mut().map(|(s, d)| (*s, d.as_mut_slice())).collect();
            cipher.decrypt_sectors_in_place(&mut jobs);
            for (s, (_, got)) in sectors.iter().enumerate() {
                let want: Vec<u8> = (0..512).map(|i| (i as u64 * 7 + s as u64) as u8).collect();
                assert_eq!(got, &want, "batch decrypt must invert");
            }
        }
    }

    #[test]
    fn wide_and_forced_portable_sector_paths_agree() {
        // Every (cipher backend, tweak ladder) combination must produce
        // the same bytes: hardware lanes + clmul tweaks, hardware lanes +
        // portable tweaks, software lanes + portable tweaks.
        let pt: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
        let fast = Xts::new(Aes256::new(&[3u8; 32]), Aes256::new(&[9u8; 32]));
        let mut portable_tweaks = Xts::new(Aes256::new(&[3u8; 32]), Aes256::new(&[9u8; 32]));
        portable_tweaks.force_portable_tweaks();
        let mut soft = {
            let mut k1 = Aes256::new(&[3u8; 32]);
            let mut k2 = Aes256::new(&[9u8; 32]);
            k1.force_software();
            k2.force_software();
            Xts::new(k1, k2)
        };
        soft.force_portable_tweaks();
        let ct = fast.encrypt_sector(77, &pt);
        assert_eq!(portable_tweaks.encrypt_sector(77, &pt), ct);
        assert_eq!(soft.encrypt_sector(77, &pt), ct);
        assert_eq!(fast.decrypt_sector(77, &ct), pt);
        assert_eq!(soft.decrypt_sector(77, &ct), pt);

        let essiv = CbcEssiv::new(Aes256::new(&[5u8; 32]));
        let essiv_soft = {
            let mut k = Aes256::new(&[5u8; 32]);
            k.force_software();
            CbcEssiv::new(k)
        };
        // The derived ESSIV key only depends on ciphertext bytes, which
        // are backend-independent, so both instances share an IV key.
        let ct = essiv.encrypt_sector(42, &pt);
        assert_eq!(essiv_soft.encrypt_sector(42, &pt), ct);
        assert_eq!(essiv_soft.decrypt_sector(42, &ct), pt);
    }
}
