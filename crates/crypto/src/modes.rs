//! Sector encryption modes: CBC-ESSIV and XTS.
//!
//! `dm-crypt` encrypts each 512-byte (or 4096-byte) sector independently so
//! that random block I/O stays random. Android 4.2's FDE used
//! `aes-cbc-essiv:sha256`; modern deployments use `aes-xts-plain64`. Both are
//! provided so the reproduction can model either stack.

use crate::aes::{BlockCipher, AES_BLOCK_SIZE};
use crate::sha256::sha256;

/// A length-preserving cipher over whole device sectors, keyed by sector
/// number. This is the interface `mobiceal-dm`'s crypt target consumes.
///
/// The in-place methods are the hot path: `dm-crypt`-style layers own the
/// sector buffers they are about to write (or just read), so encrypting
/// in place avoids a heap allocation per sector, exactly like in-place
/// bio encryption in the kernel. The allocating and in-place variants are
/// interchangeable — default implementations route each through the other,
/// and property tests pin the equivalence for the two provided modes.
pub trait SectorCipher: Send + Sync {
    /// Encrypts `sector_data`, whose position on the device is `sector_index`.
    ///
    /// # Panics
    ///
    /// Panics if the data length is not a positive multiple of 16.
    fn encrypt_sector(&self, sector_index: u64, sector_data: &[u8]) -> Vec<u8>;

    /// Inverse of [`SectorCipher::encrypt_sector`].
    ///
    /// # Panics
    ///
    /// Panics if the data length is not a positive multiple of 16.
    fn decrypt_sector(&self, sector_index: u64, sector_data: &[u8]) -> Vec<u8>;

    /// Encrypts `sector_data` in place (no allocation in the provided
    /// modes; the default falls back to [`SectorCipher::encrypt_sector`]).
    ///
    /// # Panics
    ///
    /// Panics if the data length is not a positive multiple of 16.
    fn encrypt_sector_in_place(&self, sector_index: u64, sector_data: &mut [u8]) {
        let out = self.encrypt_sector(sector_index, sector_data);
        sector_data.copy_from_slice(&out);
    }

    /// Inverse of [`SectorCipher::encrypt_sector_in_place`].
    ///
    /// # Panics
    ///
    /// Panics if the data length is not a positive multiple of 16.
    fn decrypt_sector_in_place(&self, sector_index: u64, sector_data: &mut [u8]) {
        let out = self.decrypt_sector(sector_index, sector_data);
        sector_data.copy_from_slice(&out);
    }
}

fn check_len(len: usize) {
    assert!(
        len > 0 && len.is_multiple_of(AES_BLOCK_SIZE),
        "sector length {len} not a multiple of 16"
    );
}

/// CBC with Encrypted Salt-Sector IV (the `aes-cbc-essiv:sha256` dm-crypt
/// mode used by Android 4.2 FDE, §II-A).
///
/// The per-sector IV is `E_{SHA256(key)}(sector_index_le)`, which hides
/// sector-number structure from the ciphertext.
pub struct CbcEssiv<C: BlockCipher> {
    data_cipher: C,
    iv_cipher: crate::aes::Aes256,
}

impl<C: BlockCipher> CbcEssiv<C> {
    /// Wraps `data_cipher`; the ESSIV key is SHA-256 of an encoding of the
    /// data key's identity. Because the trait does not expose raw key bytes,
    /// callers that need exact dm-crypt compatibility should construct via
    /// [`CbcEssiv::with_essiv_key`]; for the simulation the derived variant
    /// is sufficient and still gives each instance a distinct IV key.
    pub fn new(data_cipher: C) -> Self {
        // Derive an ESSIV key by encrypting two known blocks with the data
        // cipher and hashing the result: a keyed fingerprint of the data key.
        let mut b0 = [0u8; 16];
        let mut b1 = [0xffu8; 16];
        data_cipher.encrypt_block(&mut b0);
        data_cipher.encrypt_block(&mut b1);
        let mut seed = Vec::with_capacity(32);
        seed.extend_from_slice(&b0);
        seed.extend_from_slice(&b1);
        let essiv_key = sha256(&seed);
        CbcEssiv { data_cipher, iv_cipher: crate::aes::Aes256::new(&essiv_key) }
    }

    /// Wraps `data_cipher` with an explicit ESSIV key (`SHA256(data_key)` in
    /// real dm-crypt).
    pub fn with_essiv_key(data_cipher: C, essiv_key: &[u8; 32]) -> Self {
        CbcEssiv { data_cipher, iv_cipher: crate::aes::Aes256::new(essiv_key) }
    }

    fn iv_for(&self, sector_index: u64) -> [u8; 16] {
        let mut iv = [0u8; 16];
        iv[..8].copy_from_slice(&sector_index.to_le_bytes());
        self.iv_cipher.encrypt_block(&mut iv);
        iv
    }
}

impl<C: BlockCipher> SectorCipher for CbcEssiv<C> {
    fn encrypt_sector(&self, sector_index: u64, sector_data: &[u8]) -> Vec<u8> {
        let mut out = sector_data.to_vec();
        self.encrypt_sector_in_place(sector_index, &mut out);
        out
    }

    fn decrypt_sector(&self, sector_index: u64, sector_data: &[u8]) -> Vec<u8> {
        let mut out = sector_data.to_vec();
        self.decrypt_sector_in_place(sector_index, &mut out);
        out
    }

    fn encrypt_sector_in_place(&self, sector_index: u64, sector_data: &mut [u8]) {
        check_len(sector_data.len());
        let mut prev = u128::from_ne_bytes(self.iv_for(sector_index));
        for chunk in sector_data.chunks_exact_mut(AES_BLOCK_SIZE) {
            let block: &mut [u8; AES_BLOCK_SIZE] = chunk.try_into().expect("exact chunk");
            *block = (u128::from_ne_bytes(*block) ^ prev).to_ne_bytes();
            self.data_cipher.encrypt_block(block);
            prev = u128::from_ne_bytes(*block);
        }
    }

    fn decrypt_sector_in_place(&self, sector_index: u64, sector_data: &mut [u8]) {
        check_len(sector_data.len());
        let mut prev = u128::from_ne_bytes(self.iv_for(sector_index));
        for chunk in sector_data.chunks_exact_mut(AES_BLOCK_SIZE) {
            let block: &mut [u8; AES_BLOCK_SIZE] = chunk.try_into().expect("exact chunk");
            let ct = u128::from_ne_bytes(*block);
            self.data_cipher.decrypt_block(block);
            *block = (u128::from_ne_bytes(*block) ^ prev).to_ne_bytes();
            prev = ct;
        }
    }
}

impl<C: BlockCipher> std::fmt::Debug for CbcEssiv<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CbcEssiv").finish_non_exhaustive()
    }
}

/// XTS mode (IEEE 1619-2007), the `aes-xts-plain64` dm-crypt mode.
///
/// Uses two independent keys: one for data, one for the tweak.
pub struct Xts<C: BlockCipher> {
    data_cipher: C,
    tweak_cipher: C,
}

impl<C: BlockCipher> Xts<C> {
    /// Creates an XTS cipher from the data-key cipher and tweak-key cipher.
    pub fn new(data_cipher: C, tweak_cipher: C) -> Self {
        Xts { data_cipher, tweak_cipher }
    }

    fn initial_tweak(&self, sector_index: u64) -> [u8; 16] {
        let mut t = [0u8; 16];
        t[..8].copy_from_slice(&sector_index.to_le_bytes());
        self.tweak_cipher.encrypt_block(&mut t);
        t
    }

    /// Multiplies the tweak by x in GF(2^128). In the little-endian u128
    /// view the byte-wise carry chain collapses to one wide shift: each
    /// byte shifts left taking the previous byte's top bit, and the final
    /// carry folds back as the 0x87 reduction polynomial.
    fn gf_double(t: &mut [u8; 16]) {
        let v = u128::from_le_bytes(*t);
        let reduce = ((v >> 127) as u8) * 0x87;
        *t = ((v << 1) ^ reduce as u128).to_le_bytes();
    }

    fn process_in_place(&self, sector_index: u64, data: &mut [u8], encrypt: bool) {
        check_len(data.len());
        let mut tweak = self.initial_tweak(sector_index);
        for chunk in data.chunks_exact_mut(AES_BLOCK_SIZE) {
            let block: &mut [u8; AES_BLOCK_SIZE] = chunk.try_into().expect("exact chunk");
            let t = u128::from_ne_bytes(tweak);
            *block = (u128::from_ne_bytes(*block) ^ t).to_ne_bytes();
            if encrypt {
                self.data_cipher.encrypt_block(block);
            } else {
                self.data_cipher.decrypt_block(block);
            }
            *block = (u128::from_ne_bytes(*block) ^ t).to_ne_bytes();
            Self::gf_double(&mut tweak);
        }
    }
}

impl<C: BlockCipher> SectorCipher for Xts<C> {
    fn encrypt_sector(&self, sector_index: u64, sector_data: &[u8]) -> Vec<u8> {
        let mut out = sector_data.to_vec();
        self.process_in_place(sector_index, &mut out, true);
        out
    }

    fn decrypt_sector(&self, sector_index: u64, sector_data: &[u8]) -> Vec<u8> {
        let mut out = sector_data.to_vec();
        self.process_in_place(sector_index, &mut out, false);
        out
    }

    fn encrypt_sector_in_place(&self, sector_index: u64, sector_data: &mut [u8]) {
        self.process_in_place(sector_index, sector_data, true);
    }

    fn decrypt_sector_in_place(&self, sector_index: u64, sector_data: &mut [u8]) {
        self.process_in_place(sector_index, sector_data, false);
    }
}

impl<C: BlockCipher> std::fmt::Debug for Xts<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Xts").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::{Aes128, Aes256};
    use crate::util::{from_hex, to_hex};

    #[test]
    fn xts_ieee1619_vector_1() {
        // IEEE 1619 Vector 1: all-zero keys, sector 0, 32 zero bytes.
        let key1 = [0u8; 16];
        let key2 = [0u8; 16];
        let xts = Xts::new(Aes128::new(&key1), Aes128::new(&key2));
        let pt = [0u8; 32];
        let ct = xts.encrypt_sector(0, &pt);
        assert_eq!(to_hex(&ct), "917cf69ebd68b2ec9b9fe9a3eadda692cd43d2f59598ed858c02c2652fbf922e");
        assert_eq!(xts.decrypt_sector(0, &ct), pt);
    }

    #[test]
    fn xts_ieee1619_vector_2() {
        // IEEE 1619 Vector 2: key1=0x11.., key2=0x22.., sector 0x3333333333,
        // PT = 32 bytes of 0x44.
        let key1 = [0x11u8; 16];
        let key2 = [0x22u8; 16];
        let xts = Xts::new(Aes128::new(&key1), Aes128::new(&key2));
        let pt = [0x44u8; 32];
        let ct = xts.encrypt_sector(0x3333333333, &pt);
        assert_eq!(to_hex(&ct), "c454185e6a16936e39334038acef838bfb186fff7480adc4289382ecd6d394f0");
        assert_eq!(xts.decrypt_sector(0x3333333333, &ct), pt);
    }

    #[test]
    fn xts_full_sector_roundtrip() {
        let xts = Xts::new(Aes256::new(&[3u8; 32]), Aes256::new(&[9u8; 32]));
        let pt: Vec<u8> = (0..512).map(|i| (i % 256) as u8).collect();
        let ct = xts.encrypt_sector(1234, &pt);
        assert_ne!(ct, pt);
        assert_eq!(xts.decrypt_sector(1234, &ct), pt);
        // Different sector => different ciphertext.
        assert_ne!(xts.encrypt_sector(1235, &pt), ct);
    }

    #[test]
    fn essiv_roundtrip_and_sector_dependence() {
        let c = CbcEssiv::new(Aes256::new(&[5u8; 32]));
        let pt: Vec<u8> = (0..4096).map(|i| (i * 7 % 256) as u8).collect();
        let ct0 = c.encrypt_sector(0, &pt);
        let ct1 = c.encrypt_sector(1, &pt);
        assert_ne!(ct0, pt);
        assert_ne!(ct0, ct1, "IV must depend on sector number");
        assert_eq!(c.decrypt_sector(0, &ct0), pt);
        assert_eq!(c.decrypt_sector(1, &ct1), pt);
    }

    #[test]
    fn essiv_wrong_sector_fails_to_decrypt() {
        let c = CbcEssiv::new(Aes256::new(&[5u8; 32]));
        let pt = vec![0u8; 64];
        let ct = c.encrypt_sector(7, &pt);
        assert_ne!(c.decrypt_sector(8, &ct), pt);
    }

    #[test]
    fn essiv_explicit_key_matches_dm_crypt_shape() {
        let data_key =
            from_hex("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4").unwrap();
        let essiv_key = crate::sha256::sha256(&data_key);
        let c = CbcEssiv::with_essiv_key(Aes256::from_slice(&data_key), &essiv_key);
        let pt = vec![0xABu8; 512];
        let ct = c.encrypt_sector(42, &pt);
        assert_eq!(c.decrypt_sector(42, &ct), pt);
    }

    #[test]
    fn ciphertext_is_length_preserving() {
        let c = CbcEssiv::new(Aes128::new(&[1u8; 16]));
        for len in [16usize, 512, 4096] {
            assert_eq!(c.encrypt_sector(0, &vec![0u8; len]).len(), len);
        }
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn rejects_unaligned_sector() {
        let c = CbcEssiv::new(Aes128::new(&[1u8; 16]));
        let _ = c.encrypt_sector(0, &[0u8; 15]);
    }

    #[test]
    fn two_instances_same_key_agree() {
        let a = CbcEssiv::new(Aes256::new(&[8u8; 32]));
        let b = CbcEssiv::new(Aes256::new(&[8u8; 32]));
        let pt = vec![1u8; 64];
        assert_eq!(a.encrypt_sector(3, &pt), b.encrypt_sector(3, &pt));
    }
}
