//! HMAC-SHA256 (RFC 2104), incremental and one-shot.

use crate::sha256::{sha256, Sha256, SHA256_OUTPUT_LEN};

const BLOCK_LEN: usize = 64;

/// Incremental HMAC-SHA256.
///
/// # Example
///
/// ```
/// use mobiceal_crypto::{HmacSha256, hmac_sha256};
///
/// let mut mac = HmacSha256::new(b"key");
/// mac.update(b"message ");
/// mac.update(b"parts");
/// assert_eq!(mac.finalize(), hmac_sha256(b"key", b"message parts"));
/// ```
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates a MAC keyed with `key` (any length; hashed if longer than the
    /// block size, per RFC 2104).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            k[..SHA256_OUTPUT_LEN].copy_from_slice(&sha256(key));
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad_key = [0u8; BLOCK_LEN];
        let mut opad_key = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad_key[i] = k[i] ^ 0x36;
            opad_key[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad_key);
        HmacSha256 { inner, opad_key }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Consumes the MAC and returns the tag.
    pub fn finalize(self) -> [u8; SHA256_OUTPUT_LEN] {
        let inner_hash = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_hash);
        outer.finalize()
    }
}

/// One-shot HMAC-SHA256.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; SHA256_OUTPUT_LEN] {
    let mut mac = HmacSha256::new(key);
    mac.update(data);
    mac.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{from_hex, to_hex};

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            to_hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            to_hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            to_hex(&hmac_sha256(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case4() {
        let key = from_hex("0102030405060708090a0b0c0d0e0f10111213141516171819").unwrap();
        let data = [0xcdu8; 50];
        assert_eq!(
            to_hex(&hmac_sha256(&key, &data)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        assert_eq!(
            to_hex(&hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case7_long_key_long_data() {
        let key = [0xaau8; 131];
        let data = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        assert_eq!(
            to_hex(&hmac_sha256(&key, data)),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"split-key";
        let data: Vec<u8> = (0..300u16).map(|i| (i * 7 % 256) as u8).collect();
        let want = hmac_sha256(key, &data);
        for split in [0, 1, 63, 64, 65, 150, 299, 300] {
            let mut mac = HmacSha256::new(key);
            mac.update(&data[..split]);
            mac.update(&data[split..]);
            assert_eq!(mac.finalize(), want, "split {split}");
        }
    }

    #[test]
    fn different_keys_differ() {
        assert_ne!(hmac_sha256(b"a", b"msg"), hmac_sha256(b"b", b"msg"));
    }
}
