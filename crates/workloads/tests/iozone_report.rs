//! Dedicated coverage for the IOZone workload and the report renderer:
//! golden-output assertions for `render_table`, and an IOZone run on the
//! `flat()` control profile vs the amortized `nexus4()` profile showing
//! that multi-command amortization affects multi-block ops only.

use mobiceal_blockdev::{MemDisk, SharedDevice};
use mobiceal_sim::{EmmcCostModel, SimClock};
use mobiceal_workloads::{render_table, Cell, IozoneResult, IozoneWorkload, Table};
use std::sync::Arc;

/// Runs IOZone directly on a raw MemDisk with the given cost model, so the
/// record size is the *only* thing controlling device batch depth.
fn run_raw(model: EmmcCostModel, record_bytes: usize) -> IozoneResult {
    let clock = SimClock::new();
    let disk: SharedDevice =
        Arc::new(MemDisk::with_cost_model(4096, 4096, clock.clone(), Arc::new(model)));
    let wl = IozoneWorkload {
        file_bytes: 4 * 1024 * 1024,
        record_bytes,
        random_ops: 128,
        seed: 0xA0_57,
    };
    wl.run(disk, &clock).unwrap()
}

/// On the `flat()` profile (no command-setup amortization) the sequential
/// phases charge exactly the same time whether the file moves in 16 KiB
/// records (4-block batches) or 4 KiB records (single-block ops): the same
/// blocks cross the device in the same order, and without amortization the
/// batch boundaries are invisible.
#[test]
fn flat_profile_is_blind_to_record_size() {
    let batched = run_raw(EmmcCostModel::flat(25_000), 16 * 1024);
    let single = run_raw(EmmcCostModel::flat(25_000), 4 * 1024);
    assert_eq!(
        batched.write_kbps, single.write_kbps,
        "flat sequential writes must not see batch boundaries"
    );
    assert_eq!(
        batched.read_kbps, single.read_kbps,
        "flat sequential reads must not see batch boundaries"
    );
}

/// On the amortized `nexus4()` profile the same comparison shows the
/// multi-block win: 16 KiB records merge four blocks into one command and
/// beat the single-block run, while single-block ops themselves cost
/// exactly what they did before (pinned by the equality at depth 1 in
/// `crates/sim/tests/cost_props.rs` — here we pin the workload-level
/// consequence).
#[test]
fn nexus4_profile_rewards_multi_block_records() {
    let batched = run_raw(EmmcCostModel::nexus4(), 16 * 1024);
    let single = run_raw(EmmcCostModel::nexus4(), 4 * 1024);
    assert!(
        batched.write_kbps > single.write_kbps * 1.02,
        "amortized multi-block writes must be measurably faster: {:.1} vs {:.1}",
        batched.write_kbps,
        single.write_kbps
    );
    assert!(
        batched.read_kbps > single.read_kbps * 1.02,
        "amortized multi-block reads must be measurably faster: {:.1} vs {:.1}",
        batched.read_kbps,
        single.read_kbps
    );
}

/// All five IOZone phases produce finite, positive rates on a raw device.
#[test]
fn iozone_phases_are_positive_and_finite() {
    let r = run_raw(EmmcCostModel::nexus4(), 16 * 1024);
    for (name, v) in [
        ("write", r.write_kbps),
        ("random write", r.random_write_kbps),
        ("read", r.read_kbps),
        ("random read", r.random_read_kbps),
        ("mixed", r.mixed_kbps),
    ] {
        assert!(v.is_finite() && v > 0.0, "{name} = {v}");
    }
}

/// Golden output: the rendered table layout is part of the experiment
/// binaries' contract (EXPERIMENTS.md embeds it verbatim), so pin it
/// byte for byte.
#[test]
fn report_renders_the_golden_table() {
    let mut t = Table::new("Table I: overhead comparison", &["system", "MB/s", "overhead"]);
    t.push_row(vec!["MobiCeal".into(), Cell::Num(18.0), Cell::Pct(23.5)]);
    t.push_row(vec!["HIVE".into(), Cell::Num(1.58), Cell::Pct(99.22)]);
    t.push_row(vec![Cell::Text("DEFY".into()), Cell::Int(31), Cell::Pct(95.37)]);
    let expected = "\
== Table I: overhead comparison ==
system    MB/s   overhead
-------------------------
MobiCeal  18.00  23.50%
HIVE      1.58   99.22%
DEFY      31     95.37%
";
    assert_eq!(render_table(&t), expected);
}

/// Golden output: a single-column table exercises the width arithmetic's
/// edge case (no inter-column padding).
#[test]
fn report_renders_single_column_table() {
    let mut t = Table::new("L", &["x"]);
    t.push_row(vec![Cell::Int(7)]);
    assert_eq!(render_table(&t), "== L ==\nx\n-\n7\n");
}
