//! The `multi_tenant` workload: N worker threads driving the public
//! volume, a hidden volume and a `SimFs` instance *concurrently* through
//! one MobiCeal device.
//!
//! This is the workload the lock-sharding refactor exists for. The paper
//! evaluates MobiCeal single-threaded, but a real phone's block layer is
//! concurrent: Vold, the file system and background apps hit the pool at
//! once. The workload fixes a set of four I/O **streams** (so the total
//! traffic is identical at every worker count) and varies only how many
//! threads execute them:
//!
//! | stream | tenant                                               |
//! |--------|------------------------------------------------------|
//! | 0      | public volume, batched writes + read-back (low range)|
//! | 1      | hidden volume `hidden-a`, batched writes + read-back |
//! | 2      | `SimFs` formatted on hidden volume `hidden-b`        |
//! | 3      | public volume, batched writes (high range)           |
//!
//! `workers = 1` runs all four streams on one thread — that run is fully
//! deterministic and charges exactly what PR 4's single-threaded model
//! charged (the sharded device observes queue depth 1 throughout).
//! `workers = N` distributes the streams round-robin over N threads; on a
//! multi-core host the shard/volume/allocator lock split lets them
//! proceed in parallel (wall-clock win), and on a queue-capable medium
//! ([`EmmcCostModel::emmc51_cqe`]) overlapping in-flight commands also
//! amortize latency in *simulated* time. Streams use disjoint block
//! ranges, so the final plaintext is independent of the interleaving.
//!
//! [`MultiTenantWorkload::run_engine`] is the asynchronous alternative to
//! thread-per-tenant: **one** thread drives the same four streams through
//! per-tenant [`IoEngine`] rings of `ring_depth` slots each, round-robining
//! submissions so the device's command queue stays full. Every occupied
//! ring slot registers with the medium, so the CQE discount comes from
//! genuine host-side queueing — a single thread sustains queue depth 32
//! without any of the thread-per-tenant machinery, and the run is fully
//! deterministic (one thread, one submission order).

use mobiceal::{MobiCeal, MobiCealConfig, MobiCealError, UnlockedVolume};
use mobiceal_blockdev::{BlockDevice, EngineDevice, IoEngine, IoOutput, MemDisk, SharedDevice};
use mobiceal_fs::{FileSystem, SimFs};
use mobiceal_sim::{EmmcCostModel, SimClock, SimDuration};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many fixed I/O streams the workload multiplexes over the workers.
pub const STREAMS: usize = 4;

/// Parameters of one multi-tenant run.
#[derive(Debug, Clone, Copy)]
pub struct MultiTenantWorkload {
    /// Batches each block-level stream issues.
    pub batches_per_stream: usize,
    /// Blocks per batch (4 KiB each).
    pub batch_blocks: usize,
    /// Disk size in 4 KiB blocks.
    pub disk_blocks: u64,
    /// `true` drives an eMMC 5.1 CQE medium
    /// ([`EmmcCostModel::emmc51_cqe`]) so concurrency also shows in
    /// simulated time; `false` keeps the paper's pre-CQE
    /// [`EmmcCostModel::nexus4`] device, where only wall clock can move.
    pub cqe_medium: bool,
    /// RNG seed for device initialization.
    pub seed: u64,
}

impl Default for MultiTenantWorkload {
    fn default() -> Self {
        MultiTenantWorkload {
            batches_per_stream: 24,
            batch_blocks: 32,
            disk_blocks: 16384,
            cqe_medium: true,
            seed: 11,
        }
    }
}

/// Result of one multi-tenant run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiTenantResult {
    /// Threads the streams were distributed over.
    pub workers: usize,
    /// Ring slots per tenant engine for a [`MultiTenantWorkload::run_engine`]
    /// run; `0` for a thread-per-tenant [`MultiTenantWorkload::run`].
    pub ring_depth: usize,
    /// Host wall-clock time for all streams to complete.
    pub wall: Duration,
    /// Simulated device time charged by the run.
    pub simulated: SimDuration,
    /// Plaintext bytes written across all streams.
    pub bytes_written: u64,
    /// CPUs the host exposes — wall-clock parity at `workers > 1` on a
    /// 1-CPU host is expected, not a regression (see EXPERIMENTS.md).
    pub host_cpus: usize,
}

impl MultiTenantResult {
    /// Wall-clock write throughput in MB/s.
    pub fn wall_mbps(&self) -> f64 {
        self.bytes_written as f64 / self.wall.as_secs_f64() / 1e6
    }
}

/// One stream's work, boxed so streams can be handed to worker threads.
type Stream = Box<dyn FnOnce() + Send>;

impl MultiTenantWorkload {
    fn config() -> MobiCealConfig {
        MobiCealConfig {
            num_volumes: 6,
            pbkdf2_iterations: 4,
            metadata_blocks: 128,
            ..MobiCealConfig::default()
        }
    }

    /// A block-level tenant: `batches` vectored writes at stride inside
    /// `[base, base + span)`, then one vectored read-back verifying the
    /// fill pattern.
    fn block_stream(&self, vol: UnlockedVolume, base: u64, fill: u8) -> Stream {
        let batches = self.batches_per_stream;
        let depth = self.batch_blocks;
        Box::new(move || {
            let data = vec![fill; 4096];
            for round in 0..batches as u64 {
                let start = base + round * depth as u64;
                let writes: Vec<(u64, &[u8])> =
                    (0..depth as u64).map(|i| (start + i, data.as_slice())).collect();
                vol.write_blocks(&writes).expect("tenant write");
            }
            let indices: Vec<u64> = (0..(batches * depth) as u64).map(|i| base + i).collect();
            for buf in vol.read_blocks(&indices).expect("tenant read-back") {
                assert_eq!(buf, data, "tenant {fill:#x} read back its own bytes");
            }
        })
    }

    /// The file-system tenant: a `SimFs` formatted on its own hidden
    /// volume, writing and syncing files while the block tenants run.
    fn fs_stream(&self, vol: UnlockedVolume) -> Stream {
        let files = self.batches_per_stream.max(1);
        let file_bytes = self.batch_blocks * 4096;
        Box::new(move || {
            let mut fs = SimFs::format(Arc::new(vol) as SharedDevice).expect("format");
            let payload = vec![0xF5u8; file_bytes];
            for f in 0..files {
                let name = format!("tenant-{f}.dat");
                fs.create(&name).expect("create");
                fs.write(&name, 0, &payload).expect("fs write");
                if f % 4 == 3 {
                    fs.sync().expect("sync");
                }
            }
            fs.sync().expect("final sync");
            for f in 0..files {
                let name = format!("tenant-{f}.dat");
                let back = fs.read(&name, 0, file_bytes).expect("fs read");
                assert_eq!(back, payload, "{name} round-trips");
            }
        })
    }

    /// Initializes the device stack and unlocks the three tenant volumes
    /// (public, `hidden-a` for block I/O, `hidden-b` for the file system).
    fn setup(
        &self,
    ) -> Result<(SimClock, UnlockedVolume, UnlockedVolume, UnlockedVolume), MobiCealError> {
        let clock = SimClock::new();
        let cost: Arc<dyn mobiceal_sim::CostModel> = if self.cqe_medium {
            Arc::new(EmmcCostModel::emmc51_cqe())
        } else {
            Arc::new(EmmcCostModel::nexus4())
        };
        let disk = Arc::new(MemDisk::with_cost_model(self.disk_blocks, 4096, clock.clone(), cost));
        let mc = MobiCeal::initialize(
            disk as SharedDevice,
            clock.clone(),
            Self::config(),
            "decoy",
            &["hidden-a", "hidden-b"],
            self.seed,
        )?;
        let public = mc.unlock_public("decoy")?;
        let hidden = mc.unlock_hidden("hidden-a")?;
        let fs_vol = mc.unlock_hidden("hidden-b")?;
        Ok((clock, public, hidden, fs_vol))
    }

    /// Blocks one block-level stream writes before its read-back.
    fn stream_blocks(&self) -> u64 {
        (self.batches_per_stream * self.batch_blocks) as u64
    }

    /// Plaintext bytes all four streams write: the three block tenants
    /// cover their ranges once and the fs tenant writes its files (plus
    /// metadata, which we do not count).
    fn bytes_written(&self) -> u64 {
        4 * self.stream_blocks() * 4096
    }

    /// Builds the device and the four streams.
    fn build(&self) -> Result<(SimClock, Vec<Stream>, u64), MobiCealError> {
        let (clock, public, hidden, fs_vol) = self.setup()?;
        let streams: Vec<Stream> = vec![
            self.block_stream(public.clone(), 0, 0xA1),
            self.block_stream(hidden, 0, 0xB2),
            self.fs_stream(fs_vol),
            self.block_stream(public, self.stream_blocks(), 0xC3),
        ];
        Ok((clock, streams, self.bytes_written()))
    }

    /// Runs the four fixed streams distributed round-robin over `workers`
    /// threads and reports wall-clock plus simulated time.
    ///
    /// # Errors
    ///
    /// Device initialization/unlock errors; stream I/O failures panic the
    /// owning worker (a workload bug, not an expected outcome).
    ///
    /// # Panics
    ///
    /// If a worker thread panics (propagated join).
    pub fn run(&self, workers: usize) -> Result<MultiTenantResult, MobiCealError> {
        let workers = workers.clamp(1, STREAMS);
        let (clock, streams, bytes_written) = self.build()?;
        let sim_start = clock.now();
        let wall_start = Instant::now();
        // Round-robin assignment: worker w executes streams w, w+N, …
        let mut lanes: Vec<Vec<Stream>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, stream) in streams.into_iter().enumerate() {
            lanes[i % workers].push(stream);
        }
        std::thread::scope(|s| {
            let handles: Vec<_> = lanes
                .into_iter()
                .map(|lane| {
                    s.spawn(move || {
                        for stream in lane {
                            stream();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("worker thread");
            }
        });
        Ok(MultiTenantResult {
            workers,
            ring_depth: 0,
            wall: wall_start.elapsed(),
            simulated: clock.now() - sim_start,
            bytes_written,
            host_cpus: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        })
    }

    /// Runs the four fixed streams from **one** thread through per-tenant
    /// submission rings of `ring_depth` slots each ([`IoEngine`]).
    ///
    /// The driver round-robins one write batch per block tenant per round,
    /// then performs that round's file-system work through an
    /// [`EngineDevice`] façade, so the rings stay populated while the fs
    /// tenant's synchronous commands execute. Read-backs ride the rings
    /// too: waiting on a read ticket first retires every queued write of
    /// that tenant in device order. Per-stream traffic (batch count, batch
    /// shape, block ranges, fill patterns, fs files and sync cadence) is
    /// identical to [`MultiTenantWorkload::run`], so the two modes are
    /// directly comparable; `ring_depth = 1` with a depth-1 medium charges
    /// the synchronous schedule exactly.
    ///
    /// One thread never deadlocks on a full ring: a blocking submit whose
    /// ring is full executes the oldest queued command itself to free a
    /// slot (see the engine docs).
    ///
    /// # Errors
    ///
    /// Device initialization/unlock errors; stream I/O failures panic (a
    /// workload bug, not an expected outcome).
    ///
    /// # Panics
    ///
    /// If `ring_depth` is zero, or a tenant reads back bytes it did not
    /// write.
    pub fn run_engine(&self, ring_depth: usize) -> Result<MultiTenantResult, MobiCealError> {
        let (clock, public, hidden, fs_vol) = self.setup()?;
        let stream_blocks = self.stream_blocks();
        let sim_start = clock.now();
        let wall_start = Instant::now();

        // One ring per block tenant, in the same stream order as `run`.
        let engines = [
            IoEngine::new(public.clone(), ring_depth),
            IoEngine::new(hidden, ring_depth),
            IoEngine::new(public, ring_depth),
        ];
        let bases = [0u64, 0, stream_blocks];
        let fills: [u8; 3] = [0xA1, 0xB2, 0xC3];
        let data: Vec<Vec<u8>> = fills.iter().map(|&f| vec![f; 4096]).collect();

        // The fs tenant speaks synchronous `BlockDevice`, so it rides the
        // ring through the façade: each of its commands executes at the
        // depth the other tenants' in-flight slots create.
        let fs_engine = Arc::new(IoEngine::new(fs_vol, ring_depth));
        let mut fs = SimFs::format(Arc::new(EngineDevice(fs_engine.clone())) as SharedDevice)
            .expect("format");
        let file_bytes = self.batch_blocks * 4096;
        let payload = vec![0xF5u8; file_bytes];

        let depth = self.batch_blocks;
        let files = self.batches_per_stream.max(1);
        for round in 0..files {
            if round < self.batches_per_stream {
                for (i, engine) in engines.iter().enumerate() {
                    let start = bases[i] + (round * depth) as u64;
                    let writes: Vec<(u64, &[u8])> =
                        (0..depth as u64).map(|j| (start + j, data[i].as_slice())).collect();
                    engine.submit_write_blocks(&writes);
                }
            }
            let name = format!("tenant-{round}.dat");
            fs.create(&name).expect("create");
            fs.write(&name, 0, &payload).expect("fs write");
            if round % 4 == 3 {
                fs.sync().expect("sync");
            }
        }
        fs.sync().expect("final sync");

        // Vectored read-backs, submitted to every ring before reaping any,
        // so each tenant's drain still overlaps the others' queues.
        let tickets: Vec<_> = engines
            .iter()
            .enumerate()
            .map(|(i, engine)| {
                let indices: Vec<u64> = (0..stream_blocks).map(|j| bases[i] + j).collect();
                engine.submit_read_blocks(&indices)
            })
            .collect();
        for (i, (engine, ticket)) in engines.iter().zip(tickets).enumerate() {
            match engine.wait(ticket).expect("tenant read-back") {
                IoOutput::Read(bufs) => {
                    for buf in &bufs {
                        assert_eq!(buf, &data[i], "tenant {:#x} read back its own bytes", fills[i]);
                    }
                }
                IoOutput::Write => unreachable!("read ticket completed as a write"),
            }
        }
        for f in 0..files {
            let name = format!("tenant-{f}.dat");
            let back = fs.read(&name, 0, file_bytes).expect("fs read");
            assert_eq!(back, payload, "{name} round-trips");
        }

        Ok(MultiTenantResult {
            workers: 1,
            ring_depth,
            wall: wall_start.elapsed(),
            simulated: clock.now() - sim_start,
            bytes_written: self.bytes_written(),
            host_cpus: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> MultiTenantWorkload {
        MultiTenantWorkload {
            batches_per_stream: 6,
            batch_blocks: 16,
            disk_blocks: 8192,
            cqe_medium: true,
            seed: 3,
        }
    }

    #[test]
    fn single_worker_run_is_deterministic() {
        let w = quick();
        let a = w.run(1).unwrap();
        let b = w.run(1).unwrap();
        assert_eq!(a.simulated, b.simulated, "one thread: fully deterministic");
        assert_eq!(a.bytes_written, b.bytes_written);
        assert_eq!(a.workers, 1);
    }

    #[test]
    fn all_worker_counts_complete_the_same_traffic() {
        let w = quick();
        let one = w.run(1).unwrap();
        for workers in [2usize, 4] {
            let n = w.run(workers).unwrap();
            assert_eq!(n.workers, workers);
            assert_eq!(n.bytes_written, one.bytes_written, "same streams, same bytes");
            // Concurrent driving can only discount simulated time (CQE
            // overlap); it can never inflate it past the serial schedule
            // by more than classification jitter. Generous bound: the
            // serial charge plus 10 % covers any seq/random re-mix.
            assert!(
                n.simulated.as_nanos() as f64 <= one.simulated.as_nanos() as f64 * 1.10,
                "workers={workers}: {} vs serial {}",
                n.simulated,
                one.simulated
            );
        }
    }

    #[test]
    fn pre_cqe_medium_keeps_serial_charges_for_one_worker() {
        // On the paper's nexus4 medium, the 1-worker run charges the same
        // simulated time whether or not the CQE flag exists: depth is 1
        // throughout. (The CQE medium at 1 worker is *also* depth 1 and
        // charges identically — the profiles share their timing.)
        let nexus = MultiTenantWorkload { cqe_medium: false, ..quick() };
        let cqe = MultiTenantWorkload { cqe_medium: true, ..quick() };
        assert_eq!(
            nexus.run(1).unwrap().simulated,
            cqe.run(1).unwrap().simulated,
            "single-threaded: CQE must change nothing"
        );
    }

    #[test]
    fn workers_clamp_to_stream_count() {
        let r = quick().run(64).unwrap();
        assert_eq!(r.workers, STREAMS);
    }

    #[test]
    fn engine_run_is_deterministic_and_writes_the_same_traffic() {
        let w = quick();
        let a = w.run_engine(8).unwrap();
        let b = w.run_engine(8).unwrap();
        assert_eq!(a.simulated, b.simulated, "one thread, one submission order");
        assert_eq!(a.workers, 1);
        assert_eq!(a.ring_depth, 8);
        assert_eq!(
            a.bytes_written,
            w.run(1).unwrap().bytes_written,
            "engine mode drives the same per-stream traffic"
        );
    }

    #[test]
    fn engine_sweep_is_monotone_and_qd32_matches_thread_per_tenant() {
        let w = quick();
        // Deeper rings keep more slots occupied at every execution, so the
        // CQE discount can only grow. A 1 % tolerance absorbs seq/random
        // re-classification jitter from the changed execution interleaving.
        let sweep: Vec<_> =
            [1usize, 4, 8, 32].iter().map(|&qd| w.run_engine(qd).unwrap().simulated).collect();
        for pair in sweep.windows(2) {
            assert!(
                pair[1].as_nanos() as f64 <= pair[0].as_nanos() as f64 * 1.01,
                "deeper ring must not charge more: {} then {}",
                pair[0],
                pair[1]
            );
        }
        // The acceptance pin: one thread at QD 32 sustains at least the
        // simulated overlap four dedicated tenant threads achieve.
        let threaded = w.run(4).unwrap().simulated;
        assert!(
            sweep[3].as_nanos() as f64 <= threaded.as_nanos() as f64 * 1.05,
            "engine qd32 {} vs workers=4 {}",
            sweep[3],
            threaded
        );
    }

    #[test]
    fn engine_on_pre_cqe_medium_stays_near_the_serial_charge() {
        // nexus4 has no hardware queue: ring depth cannot buy simulated
        // time, so the engine run lands within classification jitter of
        // the serial thread-per-tenant schedule — and never meaningfully
        // below it (there is no overlap to discount).
        let nexus = MultiTenantWorkload { cqe_medium: false, ..quick() };
        let serial = nexus.run(1).unwrap().simulated.as_nanos() as f64;
        let engine = nexus.run_engine(32).unwrap().simulated.as_nanos() as f64;
        assert!(
            (0.95..=1.05).contains(&(engine / serial)),
            "pre-CQE: engine {engine} vs serial {serial}"
        );
    }
}
