//! **Table I** row computation: overhead of the three multi-snapshot-secure
//! systems — DEFY, HIVE, MobiCeal — each measured in its own original test
//! environment (the paper stresses the environments differ and only the
//! *overheads* are comparable).
//!
//! | system   | environment                  | paper Ext4 | paper encrypted | paper overhead |
//! |----------|------------------------------|-----------:|----------------:|---------------:|
//! | DEFY     | Ubuntu + nandsim RAM disk    |  800 MB/s  |      50 MB/s    | 93.75 %        |
//! | HIVE     | Arch + Samsung 840 EVO SSD   |  216 MB/s  |    0.97 MB/s    | 99.55 %        |
//! | MobiCeal | Android 4.2.2 + Nexus 4 eMMC | 19.5 MB/s  |    15.2 MB/s    | 22.05 %        |
//!
//! Both the baseline ("Ext4") and the encrypted stack are driven with the
//! same *vectored* discipline as the paper's `dd`: 64-block (256 KiB)
//! chunks, one `write_blocks` batch per chunk. Before the baselines grew
//! batched paths, HIVE and DEFY were measured one block at a time — which
//! silently flattered MobiCeal by an amortization axis the comparison
//! never let the baselines use. The band tests below pin the recalibrated
//! rows and the paper's ordering claims.

use crate::dd::DdWorkload;
use crate::stacks::{build_stack, StackConfig};
use mobiceal_baselines::{DefyLite, HiveWoOram};
use mobiceal_blockdev::{BlockDevice, MemDisk, SharedDevice};
use mobiceal_sim::{EmmcCostModel, SimClock};
use std::sync::Arc;

const BLOCKS: u64 = 16384;
const BS: usize = 4096;

/// Blocks per driven chunk: dd's 256 KiB at 4 KiB granularity.
pub const TABLE1_CHUNK_BLOCKS: u64 = 64;

/// One Table 1 row: baseline ("Ext4") vs. encrypted sequential-write
/// throughput, both in MB/s of simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Raw-medium throughput in the system's own environment.
    pub base_mbps: f64,
    /// Throughput through the encrypted stack.
    pub encrypted_mbps: f64,
}

impl Table1Row {
    /// Fractional overhead (`1 - encrypted/base`), the paper's comparison
    /// metric.
    pub fn overhead(&self) -> f64 {
        1.0 - self.encrypted_mbps / self.base_mbps
    }
}

/// Sequential-write throughput of `dev` in MB/s over `n` blocks, driven in
/// [`TABLE1_CHUNK_BLOCKS`]-deep vectored chunks with one final flush (the
/// `conv=fdatasync` condition).
fn seq_write_mbps(dev: &dyn BlockDevice, clock: &SimClock, n: u64) -> f64 {
    let buf = vec![0xA5u8; BS];
    let t0 = clock.now();
    let mut base = 0u64;
    while base < n {
        let take = (n - base).min(TABLE1_CHUNK_BLOCKS);
        let batch: Vec<(u64, &[u8])> = (0..take).map(|i| (base + i, buf.as_slice())).collect();
        dev.write_blocks(&batch).expect("write");
        base += take;
    }
    dev.flush().expect("flush");
    let elapsed = clock.now() - t0;
    (n as usize * BS) as f64 / elapsed.as_secs_f64() / 1e6
}

/// DEFY's row: nandsim RAM disk, where raw writes are nearly free and the
/// per-write cryptography dominates.
pub fn defy_row() -> Table1Row {
    let clock = SimClock::new();
    let raw = Arc::new(MemDisk::with_cost_model(
        BLOCKS,
        BS,
        clock.clone(),
        Arc::new(EmmcCostModel::nandsim_ramdisk()),
    ));
    let base = seq_write_mbps(&*raw, &clock, 2048);

    let clock2 = SimClock::new();
    let disk: SharedDevice = Arc::new(MemDisk::with_cost_model(
        BLOCKS,
        BS,
        clock2.clone(),
        Arc::new(EmmcCostModel::nandsim_ramdisk()),
    ));
    let defy = DefyLite::new(disk, clock2.clone(), 4096, [7u8; 32]).expect("defy");
    let enc = seq_write_mbps(&defy, &clock2, 2048);
    Table1Row { base_mbps: base, encrypted_mbps: enc }
}

/// HIVE's row: Samsung 840 EVO SSD, where the per-write sync and the k-fold
/// random write amplification dominate.
pub fn hive_row() -> Table1Row {
    let clock = SimClock::new();
    let raw = Arc::new(MemDisk::with_cost_model(
        BLOCKS,
        BS,
        clock.clone(),
        Arc::new(EmmcCostModel::ssd_840evo()),
    ));
    let base = seq_write_mbps(&*raw, &clock, 2048);

    let clock2 = SimClock::new();
    let disk: SharedDevice = Arc::new(MemDisk::with_cost_model(
        BLOCKS,
        BS,
        clock2.clone(),
        Arc::new(EmmcCostModel::ssd_840evo()),
    ));
    let oram = HiveWoOram::new(disk, clock2.clone(), 4096, [9u8; 64], 3).expect("hive");
    let enc = seq_write_mbps(&oram, &clock2, 2048);
    Table1Row { base_mbps: base, encrypted_mbps: enc }
}

/// MobiCeal's row: Nexus 4 eMMC, measured through Ext4 (SimFs) with the
/// paper's dd, against plain SimFs on the same medium.
pub fn mobiceal_row() -> Table1Row {
    let dd = DdWorkload { file_bytes: 8 * 1024 * 1024, chunk_bytes: 256 * 1024 };
    let clock = SimClock::new();
    let raw: SharedDevice = Arc::new(MemDisk::new(BLOCKS, BS, clock.clone()));
    let base = dd.run(raw, &clock).expect("dd raw").write_mbps();

    let stack = build_stack(StackConfig::MobiCealPublic, BLOCKS, 5).expect("stack");
    let enc = dd.run(stack.device.clone(), &stack.clock).expect("dd mc").write_mbps();
    Table1Row { base_mbps: base, encrypted_mbps: enc }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hive_overhead_in_recalibrated_band() {
        // Batched driving moved HIVE for the first time since PR 1: the
        // per-batch sync amortizes 64 flushes into one, so the row drops
        // from 99.2 % (single-block; paper 99.55 %) into the mid-90s —
        // still crushing, still far above MobiCeal's band.
        let row = hive_row();
        let overhead = row.overhead();
        assert!(
            (0.90..0.99).contains(&overhead),
            "HIVE overhead {:.2}% out of the recalibrated band",
            overhead * 100.0
        );
    }

    #[test]
    fn defy_overhead_in_recalibrated_band() {
        // DEFY's regime is crypto-bound on a near-free medium: batching the
        // log barely moves the encrypted side, while the raw RAM disk gains
        // from amortization — the overhead stays in the paper's ~94 %
        // neighbourhood.
        let row = defy_row();
        let overhead = row.overhead();
        assert!(
            (0.90..0.98).contains(&overhead),
            "DEFY overhead {:.2}% out of the recalibrated band",
            overhead * 100.0
        );
    }

    #[test]
    fn paper_ordering_survives_batched_baselines() {
        // The paper's comparative claim (§I, Table I): HIVE slower than
        // DEFY slower than MobiCeal, with MobiCeal "much smaller" — an
        // ordering that must hold even once every stack amortizes.
        let hive = hive_row().overhead();
        let defy = defy_row().overhead();
        let mobiceal = mobiceal_row().overhead();
        assert!(
            hive > defy && defy > mobiceal,
            "ordering broken: HIVE {hive:.3}, DEFY {defy:.3}, MobiCeal {mobiceal:.3}"
        );
        assert!(hive > 0.90 && defy > 0.90, "prior PDE systems stay >= 90%");
        assert!(mobiceal < 0.40, "only MobiCeal stays below 40%");
    }
}
