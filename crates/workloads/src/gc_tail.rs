//! The `gc_tail` workload: foreground write tail latency under GC
//! pressure, inline vs backgrounded.
//!
//! The paper's GC (§IV-D) reclaims dummy-write space, and the seed
//! implementation ran it inline: the unlucky foreground write that lands
//! behind a reclamation pass waits for every discard plus the metadata
//! commit. This workload measures exactly that tail with an **open-loop
//! arrival model**: writes arrive on a fixed simulated-time schedule
//! (`arrival_interval_ns`), so a stall does not slow the arrival process —
//! it piles queueing delay onto every write issued while the stall drains,
//! exactly how tail latency behaves on a real phone.
//!
//! Latency accounting keeps a **virtual busy cursor**: the simulated
//! clock only measures durations (it advances whenever work runs,
//! regardless of the schedule), so the workload replays each piece of
//! work onto the arrival timeline itself. Work released at time `r` with
//! measured duration `d` starts at `max(busy_until, r)` and advances
//! `busy_until` by `d`; a write's latency is its completion minus its
//! arrival. A GC pass or copier step is released at the arrival of the
//! write it precedes — it cannot retroactively run in idle time the
//! schedule already left behind, which is exactly why an inline pass
//! stalls the writes behind it.
//!
//! Two variants over identical traffic and identical GC victim plans:
//!
//! - [`GcTailWorkload::run_inline`]: the seed path — no cache, GC passes
//!   run synchronously between two arrivals.
//! - [`GcTailWorkload::run_background`]: PR 8's path — a write-back cache
//!   absorbs foreground writes, GC passes are *submitted* to a
//!   [`Copier`] and at most one bounded chunk job is stepped between
//!   arrivals, so no single write ever waits for a whole pass.

use mobiceal::{MobiCeal, MobiCealConfig, MobiCealError};
use mobiceal_blockdev::{BlockDevice, Copier, MemDisk, SharedDevice};
use mobiceal_sim::SimClock;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Parameters of one tail-latency run.
#[derive(Debug, Clone, Copy)]
pub struct GcTailWorkload {
    /// Foreground writes in the measured phase.
    pub foreground_writes: usize,
    /// Open-loop arrival interval in simulated nanoseconds.
    pub arrival_interval_ns: u64,
    /// A GC pass triggers every this many foreground writes.
    pub gc_every: usize,
    /// Public-volume blocks written before measuring, to accrue the dummy
    /// traffic GC reclaims.
    pub warmup_blocks: u64,
    /// Disk size in 4 KiB blocks.
    pub disk_blocks: u64,
    /// RNG seed for device initialization and the GC victim sampler.
    pub seed: u64,
}

impl Default for GcTailWorkload {
    fn default() -> Self {
        GcTailWorkload {
            foreground_writes: 400,
            // 1 ms between arrivals: comfortably above the uncached
            // per-write service time, so the baseline keeps up with the
            // schedule and the tail isolates the GC stalls rather than
            // open-loop saturation.
            arrival_interval_ns: 1_000_000,
            gc_every: 100,
            warmup_blocks: 600,
            disk_blocks: 16384,
            seed: 17,
        }
    }
}

/// Tail-latency distribution of one run's foreground writes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GcTailResult {
    /// Foreground writes measured.
    pub writes: usize,
    /// GC passes triggered during the measured phase.
    pub gc_passes: usize,
    /// Blocks the passes reclaimed in total.
    pub blocks_reclaimed: u64,
    /// Median foreground write latency (simulated ns).
    pub p50_ns: u64,
    /// 99th-percentile foreground write latency (simulated ns).
    pub p99_ns: u64,
    /// Worst foreground write latency (simulated ns).
    pub max_ns: u64,
    /// Mean foreground write latency (simulated ns).
    pub mean_ns: f64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn summarize(mut latencies: Vec<u64>, gc_passes: usize, blocks_reclaimed: u64) -> GcTailResult {
    latencies.sort_unstable();
    let n = latencies.len();
    let mean = latencies.iter().sum::<u64>() as f64 / n.max(1) as f64;
    GcTailResult {
        writes: n,
        gc_passes,
        blocks_reclaimed,
        p50_ns: percentile(&latencies, 0.50),
        p99_ns: percentile(&latencies, 0.99),
        max_ns: *latencies.last().unwrap_or(&0),
        mean_ns: mean,
    }
}

impl GcTailWorkload {
    fn config(&self, cache_blocks: usize) -> MobiCealConfig {
        MobiCealConfig {
            num_volumes: 5,
            pbkdf2_iterations: 4,
            metadata_blocks: 128,
            cache_blocks,
            cache_shards: 8,
            ..MobiCealConfig::default()
        }
    }

    /// Builds the device, runs the warmup traffic (accruing the dummy
    /// blocks GC will reclaim) and commits, so the measured phase starts
    /// from identical on-disk state in both variants.
    fn setup(
        &self,
        cache_blocks: usize,
    ) -> Result<(SimClock, MobiCeal, mobiceal::UnlockedVolume), MobiCealError> {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(self.disk_blocks, 4096, clock.clone()));
        let mc = MobiCeal::initialize(
            disk as SharedDevice,
            clock.clone(),
            self.config(cache_blocks),
            "decoy",
            &["hidden-a"],
            self.seed,
        )?;
        let public = mc.unlock_public("decoy")?;
        let data = vec![0x5C; 4096];
        for b in 0..self.warmup_blocks {
            public.write_block(b, &data)?;
        }
        mc.commit()?;
        Ok((clock, mc, public))
    }

    /// The measured phase, parameterized over what happens at a GC
    /// trigger (`on_gc`) and between arrivals (`between`). Returns the
    /// per-write latencies under the open-loop schedule.
    fn drive<G, B>(
        &self,
        clock: &SimClock,
        public: &mobiceal::UnlockedVolume,
        mut on_gc: G,
        mut between: B,
    ) -> Result<Vec<u64>, MobiCealError>
    where
        G: FnMut(usize) -> Result<u64, MobiCealError>,
        B: FnMut(),
    {
        let data = vec![0x9E; 4096];
        let base = self.warmup_blocks;
        let t0 = clock.now().as_nanos();
        let mut busy_until = t0;
        let mut latencies = Vec::with_capacity(self.foreground_writes);
        let mut pass = 0usize;
        // Measures one piece of work on the simulated clock and replays it
        // onto the virtual timeline at release time `r`.
        let replay = |busy_until: &mut u64, r: u64, d: u64| {
            *busy_until = (*busy_until).max(r) + d;
            *busy_until
        };
        for i in 0..self.foreground_writes {
            let arrival = t0 + i as u64 * self.arrival_interval_ns;
            if i > 0 && i % self.gc_every == 0 {
                let before = clock.now().as_nanos();
                on_gc(pass)?;
                pass += 1;
                replay(&mut busy_until, arrival, clock.now().as_nanos() - before);
            }
            let before = clock.now().as_nanos();
            between();
            replay(&mut busy_until, arrival, clock.now().as_nanos() - before);
            let before = clock.now().as_nanos();
            public.write_block(base + i as u64, &data)?;
            let completion = replay(&mut busy_until, arrival, clock.now().as_nanos() - before);
            latencies.push(completion - arrival);
        }
        Ok(latencies)
    }

    /// The seed path: no cache, each GC pass runs inline between two
    /// arrivals and the next writes absorb the full stall.
    ///
    /// # Errors
    ///
    /// Device initialization/unlock/GC errors.
    pub fn run_inline(&self) -> Result<GcTailResult, MobiCealError> {
        let (clock, mc, public) = self.setup(0)?;
        let mut reclaimed = 0u64;
        let mut passes = 0usize;
        let latencies = self.drive(
            &clock,
            &public,
            |pass| {
                let report = mc.garbage_collect(&["hidden-a"], self.seed + pass as u64)?;
                reclaimed += report.blocks_reclaimed;
                passes += 1;
                Ok(report.blocks_reclaimed)
            },
            || {},
        )?;
        Ok(summarize(latencies, passes, reclaimed))
    }

    /// PR 8's path: a `cache_blocks`-block write-back cache absorbs the
    /// foreground stream, hidden mode is proven **once** before the
    /// measured phase (a [`mobiceal::GcSession`] — on a real phone the
    /// hidden unlock already happened when GC was enabled), and each GC
    /// trigger only samples victims in memory and submits the device work
    /// to a depth-`depth` [`Copier`] in `chunk_blocks`-discard jobs. At
    /// most one job is stepped between two arrivals, so no single write
    /// ever waits behind a whole pass; the copier is drained (and the
    /// device committed) after the measured phase, off the foreground
    /// path.
    ///
    /// # Errors
    ///
    /// Device initialization/unlock/GC errors; job errors surface from the
    /// final drain.
    pub fn run_background(
        &self,
        cache_blocks: usize,
        depth: usize,
        chunk_blocks: usize,
    ) -> Result<GcTailResult, MobiCealError> {
        let (clock, mc, public) = self.setup(cache_blocks)?;
        // Verification charges its PBKDF2 cost here, before the arrival
        // schedule starts — the measured passes reuse the proof.
        let session = mc.begin_gc_session(&["hidden-a"])?;
        let copier = Copier::new(depth);
        let mut reclaimed = 0u64;
        let mut passes = 0usize;
        let latencies = self.drive(
            &clock,
            &public,
            |pass| {
                let report = mc.garbage_collect_background_in_session(
                    &session,
                    self.seed + pass as u64,
                    &copier,
                    chunk_blocks,
                )?;
                reclaimed += report.blocks_reclaimed;
                passes += 1;
                Ok(report.blocks_reclaimed)
            },
            || {
                copier.step();
            },
        )?;
        copier.drain().map_err(MobiCealError::from)?;
        mc.commit()?;
        Ok(summarize(latencies, passes, reclaimed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> GcTailWorkload {
        GcTailWorkload {
            foreground_writes: 200,
            gc_every: 50,
            warmup_blocks: 400,
            disk_blocks: 8192,
            ..GcTailWorkload::default()
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let w = quick();
        assert_eq!(w.run_inline().unwrap(), w.run_inline().unwrap());
        assert_eq!(w.run_background(256, 8, 16).unwrap(), w.run_background(256, 8, 16).unwrap());
    }

    #[test]
    fn both_variants_run_real_gc_passes() {
        // Victim *counts* legitimately differ between the variants: the
        // cache re-batches write-back below itself, so the dummy trigger
        // consumes its RNG stream in a different order and places
        // different dummy blocks. (Plan equality at identical device
        // history is pinned separately by
        // `background_gc_matches_inline_gc_exactly` in the core crate.)
        let w = quick();
        let inline = w.run_inline().unwrap();
        let background = w.run_background(256, 8, 16).unwrap();
        assert!(inline.gc_passes >= 3, "{inline:?}");
        assert_eq!(background.gc_passes, inline.gc_passes);
        assert!(inline.blocks_reclaimed > 0);
        assert!(background.blocks_reclaimed > 0);
    }

    #[test]
    fn backgrounding_cuts_foreground_p99_by_10x() {
        // The tentpole acceptance pin: taking GC off the foreground path
        // must drop the foreground write p99 by at least an order of
        // magnitude on identical traffic.
        let w = quick();
        let inline = w.run_inline().unwrap();
        let background = w.run_background(256, 8, 16).unwrap();
        assert!(
            inline.p99_ns >= background.p99_ns.max(1) * 10,
            "p99 inline {} ns vs background {} ns",
            inline.p99_ns,
            background.p99_ns
        );
        assert!(inline.max_ns > background.max_ns, "worst stall must shrink too");
    }
}
