//! An IOZone-style workload: random-access read/write/mixed phases.
//!
//! DEFY was evaluated with IOZone (§VI-B, Table I context). Beyond
//! reproducing that row's environment, random-access phases matter for
//! MobiCeal because its random *allocation* makes logically-sequential
//! files physically scattered — so the gap between sequential and random
//! access is where the design's I/O cost hides or shows.

use mobiceal_blockdev::SharedDevice;
use mobiceal_fs::{FileSystem, FsError, SimFs};
use mobiceal_sim::{SimClock, Xoshiro256};
use serde::{Deserialize, Serialize};

/// Result of one IOZone-style run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IozoneResult {
    /// Sequential write throughput, KB/s (IOZone "write").
    pub write_kbps: f64,
    /// Random-offset write throughput, KB/s ("random write").
    pub random_write_kbps: f64,
    /// Sequential read throughput, KB/s ("read").
    pub read_kbps: f64,
    /// Random-offset read throughput, KB/s ("random read").
    pub random_read_kbps: f64,
    /// Mixed 50/50 random read/write throughput, KB/s ("mixed workload").
    pub mixed_kbps: f64,
}

/// The IOZone-style benchmark.
#[derive(Debug, Clone, Copy)]
pub struct IozoneWorkload {
    /// Test file size in bytes.
    pub file_bytes: u64,
    /// Record (chunk) size in bytes.
    pub record_bytes: usize,
    /// Operations per random phase.
    pub random_ops: u32,
    /// RNG seed for offset sequences.
    pub seed: u64,
}

impl Default for IozoneWorkload {
    fn default() -> Self {
        IozoneWorkload {
            file_bytes: 8 * 1024 * 1024,
            record_bytes: 16 * 1024,
            random_ops: 256,
            seed: 0x1020,
        }
    }
}

impl IozoneWorkload {
    /// Formats a fresh `SimFs` on `device` and runs all phases.
    ///
    /// # Errors
    ///
    /// File-system or device errors.
    pub fn run(&self, device: SharedDevice, clock: &SimClock) -> Result<IozoneResult, FsError> {
        let mut fs = SimFs::format(device)?;
        let mut rng = Xoshiro256::seed_from(self.seed);
        let mut record = vec![0u8; self.record_bytes];
        rng.fill_bytes(&mut record);
        let records = self.file_bytes / self.record_bytes as u64;

        // Phase 1: sequential write.
        fs.create("iozone.tmp")?;
        let t0 = clock.now();
        for r in 0..records {
            fs.write("iozone.tmp", r * self.record_bytes as u64, &record)?;
        }
        fs.sync()?;
        let write_time = clock.now() - t0;

        // Phase 2: random write.
        let t1 = clock.now();
        for _ in 0..self.random_ops {
            let r = rng.next_below(records);
            fs.write("iozone.tmp", r * self.record_bytes as u64, &record)?;
        }
        fs.sync()?;
        let random_write_time = clock.now() - t1;

        // Phase 3: sequential read.
        let t2 = clock.now();
        for r in 0..records {
            fs.read("iozone.tmp", r * self.record_bytes as u64, self.record_bytes)?;
        }
        let read_time = clock.now() - t2;

        // Phase 4: random read.
        let t3 = clock.now();
        for _ in 0..self.random_ops {
            let r = rng.next_below(records);
            fs.read("iozone.tmp", r * self.record_bytes as u64, self.record_bytes)?;
        }
        let random_read_time = clock.now() - t3;

        // Phase 5: mixed 50/50.
        let t4 = clock.now();
        for _ in 0..self.random_ops {
            let r = rng.next_below(records);
            if rng.next_u64() & 1 == 0 {
                fs.write("iozone.tmp", r * self.record_bytes as u64, &record)?;
            } else {
                fs.read("iozone.tmp", r * self.record_bytes as u64, self.record_bytes)?;
            }
        }
        fs.sync()?;
        let mixed_time = clock.now() - t4;

        let kbps = |bytes: u64, secs: f64| bytes as f64 / secs / 1000.0;
        let rand_bytes = self.random_ops as u64 * self.record_bytes as u64;
        Ok(IozoneResult {
            write_kbps: kbps(self.file_bytes, write_time.as_secs_f64()),
            random_write_kbps: kbps(rand_bytes, random_write_time.as_secs_f64()),
            read_kbps: kbps(self.file_bytes, read_time.as_secs_f64()),
            random_read_kbps: kbps(rand_bytes, random_read_time.as_secs_f64()),
            mixed_kbps: kbps(rand_bytes, mixed_time.as_secs_f64()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stacks::{build_stack, StackConfig};

    fn run_on(config: StackConfig) -> IozoneResult {
        let stack = build_stack(config, 16384, 21).unwrap();
        let wl = IozoneWorkload { file_bytes: 4 * 1024 * 1024, ..Default::default() };
        wl.run(stack.device.clone(), &stack.clock).unwrap()
    }

    #[test]
    fn all_phases_positive() {
        let r = run_on(StackConfig::Android);
        for v in [r.write_kbps, r.random_write_kbps, r.read_kbps, r.random_read_kbps, r.mixed_kbps]
        {
            assert!(v > 0.0, "{r:?}");
        }
    }

    #[test]
    fn random_access_is_not_faster_than_sequential() {
        let r = run_on(StackConfig::Android);
        assert!(r.random_read_kbps <= r.read_kbps * 1.05, "{r:?}");
        assert!(r.random_write_kbps <= r.write_kbps * 1.25, "{r:?}");
    }

    #[test]
    fn mobiceal_narrows_the_seq_random_read_gap() {
        // Random allocation scatters even sequential files, so MC's
        // sequential reads already pay random-access costs: the seq/random
        // gap should be smaller than on FDE.
        let fde = run_on(StackConfig::Android);
        let mc = run_on(StackConfig::MobiCealHidden);
        let fde_gap = fde.read_kbps / fde.random_read_kbps;
        let mc_gap = mc.read_kbps / mc.random_read_kbps;
        assert!(
            mc_gap <= fde_gap * 1.02,
            "MC gap {mc_gap:.2} should not exceed FDE gap {fde_gap:.2}"
        );
    }
}
