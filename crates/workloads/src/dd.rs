//! The `dd` workload (§VI-B): one big sequential write with fdatasync, one
//! big sequential read with a dropped cache.

use mobiceal_blockdev::SharedDevice;
use mobiceal_fs::{FileSystem, FsError, SimFs};
use mobiceal_sim::SimClock;
use serde::{Deserialize, Serialize};

/// Result of one dd run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DdResult {
    /// Bytes transferred.
    pub bytes: u64,
    /// Sequential write throughput in KB/s (the paper's unit).
    pub write_kbps: f64,
    /// Sequential read throughput in KB/s.
    pub read_kbps: f64,
}

impl DdResult {
    /// Write throughput in MB/s.
    pub fn write_mbps(&self) -> f64 {
        self.write_kbps / 1000.0
    }

    /// Read throughput in MB/s.
    pub fn read_mbps(&self) -> f64 {
        self.read_kbps / 1000.0
    }
}

/// The dd benchmark: `dd if=/dev/zero of=test.dbf bs=… conv=fdatasync`,
/// `echo 3 > /proc/sys/vm/drop_caches`, `dd if=test.dbf of=/dev/null`.
#[derive(Debug, Clone, Copy)]
pub struct DdWorkload {
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// I/O chunk size in bytes.
    pub chunk_bytes: usize,
}

impl Default for DdWorkload {
    fn default() -> Self {
        // Scaled from the paper's 400 MB to fit the simulated disk.
        DdWorkload { file_bytes: 24 * 1024 * 1024, chunk_bytes: 1024 * 1024 }
    }
}

impl DdWorkload {
    /// Formats a fresh `SimFs` on `device` and runs write-then-read,
    /// measuring on `clock`.
    ///
    /// # Errors
    ///
    /// File-system or device errors.
    pub fn run(&self, device: SharedDevice, clock: &SimClock) -> Result<DdResult, FsError> {
        let mut fs = SimFs::format(device)?;
        fs.create("test.dbf")?;
        let chunk = vec![0u8; self.chunk_bytes]; // dd reads /dev/zero
        let t0 = clock.now();
        let mut off = 0u64;
        while off < self.file_bytes {
            let take = (self.file_bytes - off).min(self.chunk_bytes as u64) as usize;
            fs.write("test.dbf", off, &chunk[..take])?;
            off += take as u64;
        }
        fs.sync()?; // conv=fdatasync
        let write_time = clock.now() - t0;

        // "echo 3 > /proc/sys/vm/drop_caches": SimFs has no data cache, so
        // reads always hit the device, matching the measured condition.
        let t1 = clock.now();
        let mut off = 0u64;
        while off < self.file_bytes {
            let take = (self.file_bytes - off).min(self.chunk_bytes as u64) as usize;
            let data = fs.read("test.dbf", off, take)?;
            debug_assert_eq!(data.len(), take);
            off += take as u64;
        }
        let read_time = clock.now() - t1;

        Ok(DdResult {
            bytes: self.file_bytes,
            write_kbps: self.file_bytes as f64 / write_time.as_secs_f64() / 1000.0,
            read_kbps: self.file_bytes as f64 / read_time.as_secs_f64() / 1000.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stacks::{build_stack, StackConfig};

    fn run_on(config: StackConfig) -> DdResult {
        let stack = build_stack(config, 16384, 11).unwrap();
        let wl = DdWorkload { file_bytes: 8 * 1024 * 1024, chunk_bytes: 256 * 1024 };
        wl.run(stack.device.clone(), &stack.clock).unwrap()
    }

    #[test]
    fn android_fde_lands_in_calibrated_band() {
        // Fig. 4 band under the amortized multi-command eMMC model: dd's
        // 256 KiB chunks ride 64-block CMD25 batches, so Android FDE lands
        // at ~22.2 MB/s writes and ~28.2 MB/s reads (the paper measured
        // ~19.5/~27 through dm-crypt). Retightened after the baseline
        // batching pass confirmed the five stack rows are byte-stable.
        let r = run_on(StackConfig::Android);
        assert!((21.0..23.5).contains(&r.write_mbps()), "FDE write {:.1} MB/s", r.write_mbps());
        assert!((27.0..29.5).contains(&r.read_mbps()), "FDE read {:.1} MB/s", r.read_mbps());
    }

    #[test]
    fn thin_layer_costs_mainly_on_reads() {
        let android = run_on(StackConfig::Android);
        let atp = run_on(StackConfig::AndroidThinPublic);
        let write_ratio = atp.write_kbps / android.write_kbps;
        let read_ratio = atp.read_kbps / android.read_kbps;
        // The stock thin layer's sequential allocator keeps batches
        // contiguous, so its writes amortize exactly like raw FDE's. The
        // read side pays the btree lookup: ~0.85 at this calibration.
        assert!(write_ratio > 0.97, "thin writes near-free: ratio {write_ratio:.2}");
        assert!(
            (0.82..0.88).contains(&read_ratio),
            "thin reads pay the lookup: ratio {read_ratio:.2}"
        );
    }

    #[test]
    fn mobiceal_write_overhead_in_paper_band() {
        let android = run_on(StackConfig::Android);
        let mcp = run_on(StackConfig::MobiCealPublic);
        let ratio = mcp.write_kbps / android.write_kbps;
        // Paper: "MobiCeal reduces the performance by about 18%" on writes;
        // we accept the 15-28 % overhead slice of the paper's band this
        // seed lands in (0.82 at seed 11). Amortization widens the raw gap
        // (Android's contiguous batches merge into fewer commands than
        // MobiCeal's randomly-allocated ones) but packed-command batching
        // keeps MobiCeal inside the band.
        assert!((0.72..0.85).contains(&ratio), "MC-P/Android write ratio {ratio:.2}");
    }

    #[test]
    fn hidden_volume_performance_close_to_public() {
        let mcp = run_on(StackConfig::MobiCealPublic);
        let mch = run_on(StackConfig::MobiCealHidden);
        let ratio = mch.read_kbps / mcp.read_kbps;
        // Reads share the thin-lookup path, so the two volumes are within
        // a few percent of each other (exactly equal at this calibration).
        assert!((0.9..1.1).contains(&ratio), "MC-H/MC-P read ratio {ratio:.2}");
    }
}
