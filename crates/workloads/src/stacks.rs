//! The five Fig. 4 stack configurations as mountable devices.
//!
//! | name    | stack                                                        |
//! |---------|--------------------------------------------------------------|
//! | Android | dm-crypt over the raw device (stock FDE)                     |
//! | A-T-P   | dm-crypt over a *stock* thin volume (sequential allocation)  |
//! | A-T-H   | dm-crypt over a second stock thin volume ("hidden" position) |
//! | MC-P    | MobiCeal public volume (random allocation + dummy writes)    |
//! | MC-H    | MobiCeal hidden volume (random allocation, no dummy hook)    |

use mobiceal::{MobiCeal, MobiCealConfig, MobiCealError};
use mobiceal_baselines::AndroidFde;
use mobiceal_blockdev::{MemDisk, SharedDevice};
use mobiceal_dm::{DmCrypt, DmLinear};
use mobiceal_sim::{CpuCostModel, SimClock};
use mobiceal_thinp::{AllocStrategy, PoolConfig, ThinPool};
use std::sync::Arc;

/// Which Fig. 4 configuration to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackConfig {
    /// Stock Android FDE.
    Android,
    /// Android + thin volumes (stock kernel), public volume.
    AndroidThinPublic,
    /// Android + thin volumes (stock kernel), hidden-position volume.
    AndroidThinHidden,
    /// MobiCeal public volume.
    MobiCealPublic,
    /// MobiCeal hidden volume.
    MobiCealHidden,
}

impl StackConfig {
    /// The label used in the paper's Fig. 4.
    pub fn label(self) -> &'static str {
        match self {
            StackConfig::Android => "Android",
            StackConfig::AndroidThinPublic => "A-T-P",
            StackConfig::AndroidThinHidden => "A-T-H",
            StackConfig::MobiCealPublic => "MC-P",
            StackConfig::MobiCealHidden => "MC-H",
        }
    }

    /// All five configurations in the paper's presentation order.
    pub fn all() -> [StackConfig; 5] {
        [
            StackConfig::Android,
            StackConfig::AndroidThinPublic,
            StackConfig::AndroidThinHidden,
            StackConfig::MobiCealPublic,
            StackConfig::MobiCealHidden,
        ]
    }
}

/// A built stack: the mountable device plus its clock and backing disk.
pub struct StackHandle {
    /// The decrypted device a file system mounts.
    pub device: SharedDevice,
    /// The simulated clock all layers charge.
    pub clock: SimClock,
    /// The raw backing disk (for snapshots / statistics).
    pub disk: Arc<MemDisk>,
    /// The MobiCeal instance, for the MC-* configurations.
    pub mobiceal: Option<MobiCeal>,
    /// The configuration that was built.
    pub config: StackConfig,
}

impl std::fmt::Debug for StackHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StackHandle").field("config", &self.config).finish_non_exhaustive()
    }
}

fn mc_config() -> MobiCealConfig {
    MobiCealConfig {
        num_volumes: 6,
        pbkdf2_iterations: 4,
        metadata_blocks: 128,
        ..MobiCealConfig::default()
    }
}

/// Builds one of the Fig. 4 stacks over a fresh disk of `disk_blocks`
/// 4 KiB blocks.
///
/// # Errors
///
/// Propagates initialization failures (e.g. a too-small disk).
pub fn build_stack(
    config: StackConfig,
    disk_blocks: u64,
    seed: u64,
) -> Result<StackHandle, MobiCealError> {
    let clock = SimClock::new();
    let block_size = 4096;
    let disk = Arc::new(MemDisk::new(disk_blocks, block_size, clock.clone()));
    match config {
        StackConfig::Android => {
            let fde =
                AndroidFde::initialize(disk.clone() as SharedDevice, clock.clone(), "pwd", seed)?;
            let device = fde.unlock("pwd")?;
            Ok(StackHandle { device, clock, disk, mobiceal: None, config })
        }
        StackConfig::AndroidThinPublic | StackConfig::AndroidThinHidden => {
            // Stock thin provisioning (sequential allocator, §II-C), then
            // dm-crypt on the chosen thin volume.
            let metadata_blocks = 128u64;
            let data_blocks = disk_blocks - metadata_blocks;
            let meta: SharedDevice =
                Arc::new(DmLinear::new(disk.clone() as SharedDevice, 0, metadata_blocks)?);
            let data: SharedDevice = Arc::new(DmLinear::new(
                disk.clone() as SharedDevice,
                metadata_blocks,
                data_blocks,
            )?);
            let pool = Arc::new(ThinPool::create_seeded(
                data,
                meta,
                PoolConfig::new(2),
                AllocStrategy::Sequential,
                seed,
            )?);
            pool.set_read_overhead(clock.clone(), mobiceal::THIN_READ_LOOKUP);
            let public = pool.create_volume(1, data_blocks)?;
            let hidden = pool.create_volume(2, data_blocks)?;
            let vol = match config {
                StackConfig::AndroidThinPublic => public,
                _ => hidden,
            };
            let key = [0x37u8; 32];
            let crypt = DmCrypt::new_essiv(Arc::new(vol), &key)
                .with_timing(clock.clone(), CpuCostModel::nexus4());
            Ok(StackHandle { device: Arc::new(crypt), clock, disk, mobiceal: None, config })
        }
        StackConfig::MobiCealPublic | StackConfig::MobiCealHidden => {
            let mc = MobiCeal::initialize(
                disk.clone() as SharedDevice,
                clock.clone(),
                mc_config(),
                "decoy",
                &["hidden"],
                seed,
            )?;
            let device: SharedDevice = match config {
                StackConfig::MobiCealPublic => Arc::new(mc.unlock_public("decoy")?),
                _ => Arc::new(mc.unlock_hidden("hidden")?),
            };
            Ok(StackHandle { device, clock, disk, mobiceal: Some(mc), config })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobiceal_blockdev::BlockDevice;

    #[test]
    fn all_stacks_build_and_roundtrip() {
        for config in StackConfig::all() {
            let stack = build_stack(config, 8192, 7).unwrap();
            let data = vec![0x5A; 4096];
            stack.device.write_block(3, &data).unwrap();
            assert_eq!(stack.device.read_block(3).unwrap(), data, "{} roundtrip", config.label());
        }
    }

    #[test]
    fn labels_match_figure4() {
        let labels: Vec<&str> = StackConfig::all().iter().map(|c| c.label()).collect();
        assert_eq!(labels, vec!["Android", "A-T-P", "A-T-H", "MC-P", "MC-H"]);
    }

    #[test]
    fn mobiceal_stacks_expose_the_device() {
        let stack = build_stack(StackConfig::MobiCealPublic, 8192, 1).unwrap();
        assert!(stack.mobiceal.is_some());
        let stack = build_stack(StackConfig::Android, 8192, 1).unwrap();
        assert!(stack.mobiceal.is_none());
    }
}
