//! Plain-text table rendering for experiment output.

use serde::{Deserialize, Serialize};

/// One table cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Cell {
    /// Free text.
    Text(String),
    /// A number rendered with two decimals.
    Num(f64),
    /// A number rendered as an integer.
    Int(u64),
    /// A percentage rendered with two decimals and a `%`.
    Pct(f64),
}

impl Cell {
    fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Num(v) => format!("{v:.2}"),
            Cell::Int(v) => v.to_string(),
            Cell::Pct(v) => format!("{v:.2}%"),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_string())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Num(v)
    }
}

impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::Int(v)
    }
}

/// A named table with a header row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table caption (e.g. `"Table I: overhead comparison"`).
    pub title: String,
    /// Column headings.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header.
    pub fn push_row(&mut self, row: Vec<Cell>) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row);
    }
}

/// Renders a table as aligned plain text (the way experiment binaries print
/// their output).
pub fn render_table(table: &Table) -> String {
    let mut widths: Vec<usize> = table.columns.iter().map(|c| c.len()).collect();
    let rendered: Vec<Vec<String>> =
        table.rows.iter().map(|row| row.iter().map(Cell::render).collect()).collect();
    for row in &rendered {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    // Pad every column but the last, so lines carry no trailing spaces.
    let push_line = |out: &mut String, cells: &[String]| {
        for (i, c) in cells.iter().enumerate() {
            if i + 1 == widths.len() {
                out.push_str(c);
            } else {
                out.push_str(&format!("{:<width$}  ", c, width = widths[i]));
            }
        }
        out.push('\n');
    };
    let mut out = String::new();
    out.push_str(&format!("== {} ==\n", table.title));
    push_line(&mut out, &table.columns);
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in &rendered {
        push_line(&mut out, row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("Demo", &["system", "MB/s", "overhead"]);
        t.push_row(vec!["MobiCeal".into(), Cell::Num(15.2), Cell::Pct(22.05)]);
        t.push_row(vec!["HIVE".into(), Cell::Num(0.97), Cell::Pct(99.55)]);
        let text = render_table(&t);
        assert!(text.contains("== Demo =="));
        assert!(text.contains("15.20"));
        assert!(text.contains("99.55%"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5, "{text}");
    }

    #[test]
    fn cell_rendering() {
        assert_eq!(Cell::Text("x".into()).render(), "x");
        assert_eq!(Cell::Num(1.234).render(), "1.23");
        assert_eq!(Cell::Int(7).render(), "7");
        assert_eq!(Cell::Pct(18.0).render(), "18.00%");
        assert_eq!(Cell::from(3.0_f64), Cell::Num(3.0));
        assert_eq!(Cell::from(3u64), Cell::Int(3));
        assert_eq!(Cell::from("a"), Cell::Text("a".into()));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("T", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }
}
