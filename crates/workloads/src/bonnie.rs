//! The Bonnie++-style workload (§VI-B): block output/input/rewrite plus
//! small-file create/stat/delete churn, working set 2× "RAM".

use mobiceal_blockdev::SharedDevice;
use mobiceal_fs::{FileSystem, FsError, SimFs};
use mobiceal_sim::{SimClock, Xoshiro256};
use serde::{Deserialize, Serialize};

/// Result of one Bonnie++-style run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BonnieResult {
    /// Block-wise sequential write throughput, KB/s (Bonnie's
    /// "Sequential Output / Block").
    pub block_write_kbps: f64,
    /// Block-wise sequential read throughput, KB/s ("Sequential Input /
    /// Block").
    pub block_read_kbps: f64,
    /// Rewrite (read + write back) throughput, KB/s.
    pub rewrite_kbps: f64,
    /// Sequential file creations per second.
    pub creates_per_sec: f64,
    /// File stats per second.
    pub stats_per_sec: f64,
    /// File deletions per second.
    pub deletes_per_sec: f64,
}

impl BonnieResult {
    /// Block write throughput in MB/s.
    pub fn write_mbps(&self) -> f64 {
        self.block_write_kbps / 1000.0
    }

    /// Block read throughput in MB/s.
    pub fn read_mbps(&self) -> f64 {
        self.block_read_kbps / 1000.0
    }
}

/// The Bonnie++-style benchmark.
#[derive(Debug, Clone, Copy)]
pub struct BonnieWorkload {
    /// Size of the big test file ("twice the size of the system RAM" in the
    /// paper; scaled here).
    pub file_bytes: u64,
    /// Chunk size for block I/O (Bonnie uses 8 KiB).
    pub chunk_bytes: usize,
    /// Number of small files in the creation phase.
    pub small_files: u32,
    /// Size of each small file.
    pub small_file_bytes: usize,
}

impl Default for BonnieWorkload {
    fn default() -> Self {
        BonnieWorkload {
            file_bytes: 16 * 1024 * 1024,
            chunk_bytes: 8 * 1024,
            small_files: 64,
            small_file_bytes: 1024,
        }
    }
}

impl BonnieWorkload {
    /// Formats a fresh `SimFs` on `device` and runs all phases.
    ///
    /// # Errors
    ///
    /// File-system or device errors.
    pub fn run(&self, device: SharedDevice, clock: &SimClock) -> Result<BonnieResult, FsError> {
        let mut fs = SimFs::format(device)?;
        let mut rng = Xoshiro256::seed_from(0xB0_111E);

        // Phase 1: sequential block output.
        fs.create("Bonnie.0")?;
        let mut chunk = vec![0u8; self.chunk_bytes];
        rng.fill_bytes(&mut chunk);
        let t0 = clock.now();
        let mut off = 0u64;
        while off < self.file_bytes {
            let take = (self.file_bytes - off).min(self.chunk_bytes as u64) as usize;
            fs.write("Bonnie.0", off, &chunk[..take])?;
            off += take as u64;
        }
        fs.sync()?;
        let write_time = clock.now() - t0;

        // Phase 2: rewrite — read each chunk, write it back.
        let t1 = clock.now();
        let mut off = 0u64;
        while off < self.file_bytes {
            let take = (self.file_bytes - off).min(self.chunk_bytes as u64) as usize;
            let data = fs.read("Bonnie.0", off, take)?;
            fs.write("Bonnie.0", off, &data)?;
            off += take as u64;
        }
        fs.sync()?;
        let rewrite_time = clock.now() - t1;

        // Phase 3: sequential block input.
        let t2 = clock.now();
        let mut off = 0u64;
        while off < self.file_bytes {
            let take = (self.file_bytes - off).min(self.chunk_bytes as u64) as usize;
            fs.read("Bonnie.0", off, take)?;
            off += take as u64;
        }
        let read_time = clock.now() - t2;

        // Phase 4: small-file create / stat / delete.
        let t3 = clock.now();
        for i in 0..self.small_files {
            let name = format!("bon_{i:05}");
            fs.create(&name)?;
            fs.write(&name, 0, &chunk[..self.small_file_bytes])?;
        }
        fs.sync()?;
        let create_time = clock.now() - t3;

        let t4 = clock.now();
        for i in 0..self.small_files {
            fs.file_size(&format!("bon_{i:05}"))?;
        }
        let stat_time = clock.now() - t4;

        let t5 = clock.now();
        for i in 0..self.small_files {
            fs.delete(&format!("bon_{i:05}"))?;
        }
        fs.sync()?;
        let delete_time = clock.now() - t5;

        let kbps = |bytes: u64, secs: f64| bytes as f64 / secs / 1000.0;
        let per_sec = |count: u32, secs: f64| {
            if secs == 0.0 {
                f64::INFINITY
            } else {
                count as f64 / secs
            }
        };
        Ok(BonnieResult {
            block_write_kbps: kbps(self.file_bytes, write_time.as_secs_f64()),
            block_read_kbps: kbps(self.file_bytes, read_time.as_secs_f64()),
            rewrite_kbps: kbps(2 * self.file_bytes, rewrite_time.as_secs_f64()),
            creates_per_sec: per_sec(self.small_files, create_time.as_secs_f64()),
            stats_per_sec: per_sec(self.small_files, stat_time.as_secs_f64()),
            deletes_per_sec: per_sec(self.small_files, delete_time.as_secs_f64()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stacks::{build_stack, StackConfig};

    fn run_on(config: StackConfig) -> BonnieResult {
        let stack = build_stack(config, 16384, 13).unwrap();
        let wl = BonnieWorkload { file_bytes: 6 * 1024 * 1024, ..Default::default() };
        wl.run(stack.device.clone(), &stack.clock).unwrap()
    }

    #[test]
    fn all_phases_produce_positive_rates() {
        let r = run_on(StackConfig::Android);
        assert!(r.block_write_kbps > 0.0);
        assert!(r.block_read_kbps > 0.0);
        assert!(r.rewrite_kbps > 0.0);
        assert!(r.creates_per_sec > 0.0);
        assert!(r.stats_per_sec > 0.0);
        assert!(r.deletes_per_sec > 0.0);
    }

    #[test]
    fn bonnie_agrees_with_dd_ordering() {
        // The paper notes Bonnie++ results are "similar to the results in
        // the dd test": MobiCeal public writes slower than stock FDE.
        let android = run_on(StackConfig::Android);
        let mcp = run_on(StackConfig::MobiCealPublic);
        assert!(
            mcp.block_write_kbps < android.block_write_kbps,
            "MC-P {} vs Android {}",
            mcp.block_write_kbps,
            android.block_write_kbps
        );
    }

    #[test]
    fn rewrite_is_slower_than_pure_read() {
        let r = run_on(StackConfig::Android);
        assert!(r.rewrite_kbps < r.block_read_kbps + r.block_write_kbps);
    }

    #[test]
    fn bonnie_bands_match_the_amortized_calibration() {
        // Bonnie's 8 KiB chunks ride 2-block commands, so amortization is
        // shallower than dd's 64-block batches: Android block output lands
        // at ~21.4 MB/s (vs ~22.2 for dd) under the amortized nexus4()
        // profile, and the MobiCeal/Android write ratio (0.72 at seed 13)
        // stays inside the paper's 15-35 % overhead band here too.
        // Retightened after the baseline batching pass confirmed the stack
        // rows are byte-stable.
        let android = run_on(StackConfig::Android);
        let mcp = run_on(StackConfig::MobiCealPublic);
        assert!(
            (20.5..22.5).contains(&android.write_mbps()),
            "Android block output {:.1} MB/s",
            android.write_mbps()
        );
        assert!(
            (26.0..28.5).contains(&android.read_mbps()),
            "Android block input {:.1} MB/s",
            android.read_mbps()
        );
        let ratio = mcp.block_write_kbps / android.block_write_kbps;
        assert!((0.68..0.80).contains(&ratio), "MC-P/Android Bonnie write ratio {ratio:.2}");
    }
}
