//! Measurement workloads reproducing the paper's benchmarks.
//!
//! §VI-B evaluates MobiCeal with two tools:
//!
//! * `dd` — one large sequential write
//!   (`dd if=/dev/zero of=test.dbf bs=400M count=1 conv=fdatasync`) and one
//!   large sequential read, cache dropped in between → [`DdWorkload`].
//! * Bonnie++ — block-wise sequential output/input/rewrite plus small-file
//!   create/stat/delete churn, with a working set sized at 2× RAM →
//!   [`BonnieWorkload`].
//!
//! [`stacks`] assembles the five configurations of Fig. 4 (Android FDE,
//! A-T-P, A-T-H, MC-P, MC-H) as mountable block devices, and [`report`]
//! renders rows the way the paper's tables do. All timing comes from the
//! simulated clock, so results are exactly reproducible.

#![forbid(unsafe_code)]

pub mod bonnie;
pub mod dd;
pub mod gc_tail;
pub mod iozone;
pub mod multi_tenant;
pub mod report;
pub mod stacks;
pub mod table1;

pub use bonnie::{BonnieResult, BonnieWorkload};
pub use dd::{DdResult, DdWorkload};
pub use gc_tail::{GcTailResult, GcTailWorkload};
pub use iozone::{IozoneResult, IozoneWorkload};
pub use multi_tenant::{MultiTenantResult, MultiTenantWorkload};
pub use report::{render_table, Cell, Table};
pub use stacks::{build_stack, StackConfig, StackHandle};
pub use table1::{defy_row, hive_row, mobiceal_row, Table1Row};
