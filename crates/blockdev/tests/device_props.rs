//! Property-based tests of the simulated block device and snapshots.

// Test binary: aborting on an unexpected error is the point.
#![allow(clippy::unwrap_used)]

use mobiceal_blockdev::{BlockDevice, DiskSnapshot, MemDisk};
use mobiceal_sim::SimClock;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The device is a faithful array of blocks: reads always return the
    /// last write, untouched blocks stay zero.
    #[test]
    fn device_matches_model(
        writes in prop::collection::vec((0u64..64, any::<u8>()), 0..100),
    ) {
        let disk = MemDisk::with_default_timing(64, 512);
        let mut model: HashMap<u64, u8> = HashMap::new();
        for &(block, fill) in &writes {
            disk.write_block(block, &vec![fill; 512]).unwrap();
            model.insert(block, fill);
        }
        for b in 0..64 {
            let expect = model.get(&b).copied().unwrap_or(0);
            prop_assert_eq!(disk.read_block(b).unwrap(), vec![expect; 512]);
        }
    }

    /// Snapshot diffing reports exactly the blocks whose content changed
    /// between two captures.
    #[test]
    fn changed_blocks_is_exact(
        first in prop::collection::vec((0u64..32, any::<u8>()), 0..40),
        second in prop::collection::vec((0u64..32, any::<u8>()), 0..40),
    ) {
        let disk = MemDisk::with_default_timing(32, 512);
        for &(block, fill) in &first {
            disk.write_block(block, &vec![fill; 512]).unwrap();
        }
        let snap1 = disk.snapshot();
        for &(block, fill) in &second {
            disk.write_block(block, &vec![fill; 512]).unwrap();
        }
        let snap2 = disk.snapshot();
        let reported: Vec<u64> = snap1.changed_blocks(&snap2);
        // Recompute expectation directly from the snapshots.
        let expected: Vec<u64> =
            (0..32).filter(|&b| snap1.block(b) != snap2.block(b)).collect();
        prop_assert_eq!(reported, expected);
    }

    /// Time on the shared clock is monotone and strictly increases with
    /// every transfer operation.
    #[test]
    fn clock_monotone_under_io(ops in prop::collection::vec((0u64..16, any::<bool>()), 1..50)) {
        let clock = SimClock::new();
        let disk = MemDisk::new(16, 512, clock.clone());
        let mut last = clock.now();
        for &(block, write) in &ops {
            if write {
                disk.write_block(block, &vec![1u8; 512]).unwrap();
            } else {
                disk.read_block(block).unwrap();
            }
            let now = clock.now();
            prop_assert!(now > last, "every op must consume time");
            last = now;
        }
    }

    /// Snapshots are deep copies: later writes never mutate an existing
    /// snapshot, and snapshots round-trip through their raw bytes.
    #[test]
    fn snapshots_are_immutable_and_reconstructible(
        writes in prop::collection::vec((0u64..16, any::<u8>()), 1..30),
    ) {
        let disk = MemDisk::with_default_timing(16, 512);
        for &(block, fill) in &writes {
            disk.write_block(block, &vec![fill; 512]).unwrap();
        }
        let snap = disk.snapshot();
        let bytes = snap.as_bytes().to_vec();
        disk.fill(0xFF);
        prop_assert_eq!(snap.as_bytes(), &bytes[..], "snapshot unaffected by fill");
        let rebuilt = DiskSnapshot::new(512, 16, bytes);
        prop_assert_eq!(rebuilt, snap);
    }

    /// The vectored write path lands the same bytes with the same op mix
    /// and byte counts as the sequential loop; under the amortized
    /// multi-command cost model its charged time is *at most* the
    /// sequential loop's, with equality for batches of one block.
    #[test]
    fn write_blocks_equivalent_to_sequential(
        writes in prop::collection::vec((0u64..64, any::<u8>()), 0..100),
    ) {
        let batched = MemDisk::with_default_timing(64, 512);
        let sequential = MemDisk::with_default_timing(64, 512);
        let buffers: Vec<(u64, Vec<u8>)> =
            writes.iter().map(|&(b, fill)| (b, vec![fill; 512])).collect();
        let batch: Vec<(u64, &[u8])> = buffers.iter().map(|(b, d)| (*b, d.as_slice())).collect();
        batched.write_blocks(&batch).unwrap();
        for (b, d) in &buffers {
            sequential.write_block(*b, d).unwrap();
        }
        prop_assert_eq!(batched.snapshot().as_bytes(), sequential.snapshot().as_bytes());
        prop_assert_eq!(batched.stats().without_time(), sequential.stats().without_time());
        prop_assert!(batched.clock().now() <= sequential.clock().now(),
            "batched {} must not exceed sequential {}",
            batched.clock().now().as_nanos(), sequential.clock().now().as_nanos());
        if writes.len() == 1 {
            prop_assert_eq!(batched.clock().now(), sequential.clock().now());
        }
        // With three or more blocks, at least one of the two simulated
        // commands (sequential-merging, packed-random) covers two blocks,
        // so some setup must amortize. (A two-block batch can split one
        // block per command and legitimately charge the sequential sum.)
        if writes.len() > 2 {
            prop_assert!(batched.clock().now() < sequential.clock().now(),
                "deep batches must amortize command setup");
        }
    }

    /// The vectored read path returns exactly what the sequential loop
    /// returns, with identical op/byte statistics and amortized (never
    /// larger, equal at depth 1) charged time.
    #[test]
    fn read_blocks_equivalent_to_sequential(
        writes in prop::collection::vec((0u64..64, any::<u8>()), 0..40),
        reads in prop::collection::vec(0u64..64, 0..60),
    ) {
        let batched = MemDisk::with_default_timing(64, 512);
        let sequential = MemDisk::with_default_timing(64, 512);
        for &(b, fill) in &writes {
            batched.write_block(b, &vec![fill; 512]).unwrap();
            sequential.write_block(b, &vec![fill; 512]).unwrap();
        }
        let before_b = batched.clock().now();
        let before_s = sequential.clock().now();
        prop_assert_eq!(before_b, before_s, "single-block preamble charges identically");
        let from_batch = batched.read_blocks(&reads).unwrap();
        let from_loop: Vec<Vec<u8>> =
            reads.iter().map(|&b| sequential.read_block(b).unwrap()).collect();
        prop_assert_eq!(from_batch, from_loop);
        prop_assert_eq!(batched.stats().without_time(), sequential.stats().without_time());
        let batched_time = batched.clock().now() - before_b;
        let sequential_time = sequential.clock().now() - before_s;
        prop_assert!(batched_time <= sequential_time);
        if reads.len() == 1 {
            prop_assert_eq!(batched_time, sequential_time);
        }
        if reads.len() > 2 {
            prop_assert!(batched_time < sequential_time, "see the write property");
        }
    }

    /// Statistics account for every operation.
    #[test]
    fn stats_count_everything(reads in 0u64..50, writes in 0u64..50) {
        let disk = MemDisk::with_default_timing(64, 512);
        for i in 0..writes {
            disk.write_block(i % 64, &vec![1u8; 512]).unwrap();
        }
        for i in 0..reads {
            disk.read_block(i % 64).unwrap();
        }
        let s = disk.stats();
        prop_assert_eq!(s.total_writes(), writes);
        prop_assert_eq!(s.total_reads(), reads);
        prop_assert_eq!(s.bytes_written(), writes * 512);
        prop_assert_eq!(s.bytes_read(), reads * 512);
    }
}
