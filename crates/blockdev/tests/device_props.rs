//! Property-based tests of the simulated block device and snapshots.

use mobiceal_blockdev::{BlockDevice, DiskSnapshot, MemDisk};
use mobiceal_sim::SimClock;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The device is a faithful array of blocks: reads always return the
    /// last write, untouched blocks stay zero.
    #[test]
    fn device_matches_model(
        writes in prop::collection::vec((0u64..64, any::<u8>()), 0..100),
    ) {
        let disk = MemDisk::with_default_timing(64, 512);
        let mut model: HashMap<u64, u8> = HashMap::new();
        for &(block, fill) in &writes {
            disk.write_block(block, &vec![fill; 512]).unwrap();
            model.insert(block, fill);
        }
        for b in 0..64 {
            let expect = model.get(&b).copied().unwrap_or(0);
            prop_assert_eq!(disk.read_block(b).unwrap(), vec![expect; 512]);
        }
    }

    /// Snapshot diffing reports exactly the blocks whose content changed
    /// between two captures.
    #[test]
    fn changed_blocks_is_exact(
        first in prop::collection::vec((0u64..32, any::<u8>()), 0..40),
        second in prop::collection::vec((0u64..32, any::<u8>()), 0..40),
    ) {
        let disk = MemDisk::with_default_timing(32, 512);
        for &(block, fill) in &first {
            disk.write_block(block, &vec![fill; 512]).unwrap();
        }
        let snap1 = disk.snapshot();
        for &(block, fill) in &second {
            disk.write_block(block, &vec![fill; 512]).unwrap();
        }
        let snap2 = disk.snapshot();
        let reported: Vec<u64> = snap1.changed_blocks(&snap2);
        // Recompute expectation directly from the snapshots.
        let expected: Vec<u64> =
            (0..32).filter(|&b| snap1.block(b) != snap2.block(b)).collect();
        prop_assert_eq!(reported, expected);
    }

    /// Time on the shared clock is monotone and strictly increases with
    /// every transfer operation.
    #[test]
    fn clock_monotone_under_io(ops in prop::collection::vec((0u64..16, any::<bool>()), 1..50)) {
        let clock = SimClock::new();
        let disk = MemDisk::new(16, 512, clock.clone());
        let mut last = clock.now();
        for &(block, write) in &ops {
            if write {
                disk.write_block(block, &vec![1u8; 512]).unwrap();
            } else {
                disk.read_block(block).unwrap();
            }
            let now = clock.now();
            prop_assert!(now > last, "every op must consume time");
            last = now;
        }
    }

    /// Snapshots are deep copies: later writes never mutate an existing
    /// snapshot, and snapshots round-trip through their raw bytes.
    #[test]
    fn snapshots_are_immutable_and_reconstructible(
        writes in prop::collection::vec((0u64..16, any::<u8>()), 1..30),
    ) {
        let disk = MemDisk::with_default_timing(16, 512);
        for &(block, fill) in &writes {
            disk.write_block(block, &vec![fill; 512]).unwrap();
        }
        let snap = disk.snapshot();
        let bytes = snap.as_bytes().to_vec();
        disk.fill(0xFF);
        prop_assert_eq!(snap.as_bytes(), &bytes[..], "snapshot unaffected by fill");
        let rebuilt = DiskSnapshot::new(512, 16, bytes);
        prop_assert_eq!(rebuilt, snap);
    }

    /// Statistics account for every operation.
    #[test]
    fn stats_count_everything(reads in 0u64..50, writes in 0u64..50) {
        let disk = MemDisk::with_default_timing(64, 512);
        for i in 0..writes {
            disk.write_block(i % 64, &vec![1u8; 512]).unwrap();
        }
        for i in 0..reads {
            disk.read_block(i % 64).unwrap();
        }
        let s = disk.stats();
        prop_assert_eq!(s.total_writes(), writes);
        prop_assert_eq!(s.total_reads(), reads);
        prop_assert_eq!(s.bytes_written(), writes * 512);
        prop_assert_eq!(s.bytes_read(), reads * 512);
    }
}
