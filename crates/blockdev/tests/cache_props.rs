//! Property tier for [`WriteBackCache`]: the cached stack must be
//! observably equivalent to the direct path — identical bytes after a
//! flush, identical read results along the way — for arbitrary operation
//! sequences, across capacities and shard counts; faults must never cost a
//! dirty block; and the stats must telescope (every lookup is a hit or a
//! miss, and cache hits charge no simulated device time).

// Test binary: aborting on an unexpected error is the point.
#![allow(clippy::unwrap_used)]

use mobiceal_blockdev::{BlockDevice, CacheConfig, FaultInjection, MemDisk, WriteBackCache};
use mobiceal_sim::SimClock;

const BLOCKS: u64 = 128;
const BS: usize = 512;

/// Deterministic xorshift stream — enough structure for op sequences
/// without pulling a crypto RNG into the device crate's dev-deps.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

#[derive(Debug, Clone)]
enum Op {
    Read(u64),
    Write(u64, u8),
    ReadBatch(Vec<u64>),
    WriteBatch(Vec<(u64, u8)>),
    Flush,
}

fn arbitrary_ops(seed: u64, count: usize) -> Vec<Op> {
    let mut rng = Rng(seed | 1);
    (0..count)
        .map(|_| match rng.next() % 10 {
            0..=2 => Op::Read(rng.next() % BLOCKS),
            3..=5 => Op::Write(rng.next() % BLOCKS, rng.next() as u8),
            6..=7 => {
                let n = (rng.next() % 12 + 1) as usize;
                Op::ReadBatch((0..n).map(|_| rng.next() % BLOCKS).collect())
            }
            8 => {
                let n = (rng.next() % 12 + 1) as usize;
                Op::WriteBatch((0..n).map(|_| (rng.next() % BLOCKS, rng.next() as u8)).collect())
            }
            _ => Op::Flush,
        })
        .collect()
}

/// Applies `ops` to a device, returning every read result in order.
fn apply(dev: &dyn BlockDevice, ops: &[Op]) -> Vec<Vec<u8>> {
    let mut reads = Vec::new();
    for op in ops {
        match op {
            Op::Read(b) => reads.push(dev.read_block(*b).unwrap()),
            Op::Write(b, v) => dev.write_block(*b, &vec![*v; BS]).unwrap(),
            Op::ReadBatch(bs) => reads.extend(dev.read_blocks(bs).unwrap()),
            Op::WriteBatch(ws) => {
                let bufs: Vec<(u64, Vec<u8>)> = ws.iter().map(|&(b, v)| (b, vec![v; BS])).collect();
                let batch: Vec<(u64, &[u8])> =
                    bufs.iter().map(|(b, d)| (*b, d.as_slice())).collect();
                dev.write_blocks(&batch).unwrap();
            }
            Op::Flush => dev.flush().unwrap(),
        }
    }
    reads
}

fn cached(capacity: usize, shards: usize) -> WriteBackCache<MemDisk> {
    WriteBackCache::new(
        MemDisk::with_default_timing(BLOCKS, BS),
        CacheConfig { capacity_blocks: capacity, shards },
    )
}

#[test]
fn cached_equals_uncached_for_arbitrary_op_sequences() {
    // Across seeds and cache shapes (tiny thrashing caches through
    // bigger-than-device ones), every read observes the same bytes as the
    // direct path and a final flush leaves the identical medium.
    for seed in [1u64, 7, 42, 1999] {
        let ops = arbitrary_ops(seed, 400);
        let direct = MemDisk::with_default_timing(BLOCKS, BS);
        let direct_reads = apply(&direct, &ops);
        direct.flush().unwrap();
        for (capacity, shards) in [(2, 1), (8, 4), (32, 8), (256, 8)] {
            let cache = cached(capacity, shards);
            let cached_reads = apply(&cache, &ops);
            assert_eq!(cached_reads, direct_reads, "seed {seed} cap {capacity}x{shards}");
            cache.flush().unwrap();
            assert_eq!(
                cache.inner().snapshot().as_bytes(),
                direct.snapshot().as_bytes(),
                "seed {seed} cap {capacity}x{shards}: media diverged after flush"
            );
            assert_eq!(cache.dirty_blocks(), 0);
        }
    }
}

#[test]
fn size_zero_cache_is_bit_identical_including_stats_metadata() {
    // The pass-through shape: not just equal bytes, but the identical
    // backing-device op mix and simulated clock — the cache must be
    // invisible, exactly as the depth-1 ring reassembles the direct path.
    let ops = arbitrary_ops(77, 300);

    let clock_direct = SimClock::new();
    let direct = MemDisk::new(BLOCKS, BS, clock_direct.clone());
    let direct_reads = apply(&direct, &ops);

    let clock_cached = SimClock::new();
    let cache = WriteBackCache::new(
        MemDisk::new(BLOCKS, BS, clock_cached.clone()),
        CacheConfig::disabled(),
    );
    let cached_reads = apply(&cache, &ops);

    assert_eq!(cached_reads, direct_reads);
    assert_eq!(cache.inner().snapshot().as_bytes(), direct.snapshot().as_bytes());
    assert_eq!(cache.inner().stats(), direct.stats(), "op mix must be identical");
    assert_eq!(clock_cached.now(), clock_direct.now(), "charged time must be identical");
    assert_eq!(cache.stats().lookups(), 0, "a pass-through serves nothing itself");
}

#[test]
fn eviction_never_loses_a_dirty_block_under_device_faults() {
    // Every write-back target fails at first: evictions and flushes error,
    // but the dirty data must stay in the cache. Once the faults clear, a
    // flush lands everything and the medium matches a fault-free run.
    let cache = cached(4, 2); // tiny: constant dirty eviction pressure
    let mut faults = FaultInjection::default();
    for b in 0..BLOCKS {
        faults.failing_writes.insert(b);
    }
    cache.inner().set_faults(faults);

    let mut expected: Vec<(u64, u8)> = Vec::new();
    let mut errors = 0;
    for i in 0..48u64 {
        let b = (i * 5) % BLOCKS;
        let v = 0x30 + (i % 64) as u8;
        if cache.write_block(b, &vec![v; BS]).is_err() {
            errors += 1;
        }
        expected.retain(|&(eb, _)| eb != b);
        expected.push((b, v));
    }
    assert!(errors > 0, "the fault injection must actually have fired");
    assert!(cache.flush().is_err(), "flush must surface the device fault");
    // Nothing lost: every write is still present, in cache or on disk.
    for &(b, v) in &expected {
        assert_eq!(cache.read_block(b).unwrap(), vec![v; BS], "block {b} lost under faults");
    }

    cache.inner().set_faults(FaultInjection::default());
    cache.flush().unwrap();
    assert_eq!(cache.dirty_blocks(), 0);
    for &(b, v) in &expected {
        assert_eq!(cache.inner().read_block(b).unwrap(), vec![v; BS], "block {b} not flushed");
    }
}

#[test]
fn stats_telescope_to_the_clock() {
    // Telescoping identities: hits + misses == lookups, and only misses /
    // write-backs charge the simulated clock — a cache hit is free.
    let clock = SimClock::new();
    let cache = WriteBackCache::new(
        MemDisk::new(BLOCKS, BS, clock.clone()),
        CacheConfig { capacity_blocks: 64, shards: 4 },
    );
    for b in 0..32u64 {
        cache.write_block(b, &vec![b as u8; BS]).unwrap();
    }
    let t_after_writes = clock.now();
    assert_eq!(t_after_writes, SimClock::new().now(), "absorbed writes charge nothing");

    // Hits: all 32 blocks are resident.
    for b in 0..32u64 {
        cache.read_block(b).unwrap();
    }
    assert_eq!(clock.now(), t_after_writes, "cache hits must charge no device time");

    // Misses go to the device and charge time.
    for b in 64..80u64 {
        cache.read_block(b).unwrap();
    }
    let t_after_misses = clock.now();
    assert!(t_after_misses > t_after_writes, "misses must charge device time");

    cache.flush().unwrap();
    assert!(clock.now() > t_after_misses, "write-back must charge device time");

    let s = cache.stats();
    assert_eq!(s.read_hits, 32);
    assert_eq!(s.read_misses, 16);
    assert_eq!(s.write_misses, 32);
    assert_eq!(s.write_hits, 0);
    assert_eq!(s.lookups(), s.read_hits + s.read_misses + s.write_hits + s.write_misses);
    assert_eq!(s.writebacks, 32, "every dirty block written back exactly once");
    // The device's own stats agree with the cache's accounting: reads =
    // misses, writes = writebacks.
    let dev = cache.inner().stats();
    assert_eq!(dev.total_reads(), s.read_misses);
    assert_eq!(dev.total_writes(), s.writebacks);
}

#[test]
fn depth_one_copier_is_the_inline_path() {
    // The copier analogue of size-0 bit-identity: at depth 1 every job
    // runs at submit, so the device history is identical to calling the
    // closures directly.
    use mobiceal_blockdev::{copy_job, Copier};
    use std::sync::Arc;

    let direct: Arc<MemDisk> = Arc::new(MemDisk::with_default_timing(BLOCKS, BS));
    let piped: Arc<MemDisk> = Arc::new(MemDisk::with_default_timing(BLOCKS, BS));
    for b in 0..8u64 {
        let data = vec![b as u8 + 1; BS];
        direct.write_block(b, &data).unwrap();
        piped.write_block(b, &data).unwrap();
    }
    // Direct: run the relocations by hand.
    for b in 0..8u64 {
        let data = direct.read_block(b).unwrap();
        direct.write_block(b + 64, &data).unwrap();
    }
    // Copier at depth 1: identical ops, same order, at submit time.
    let copier = Copier::new(1);
    for b in 0..8u64 {
        copier.submit(copy_job(piped.clone(), vec![(b, b + 64)]));
        assert_eq!(copier.pending(), 0, "depth-1 must never defer");
    }
    copier.drain().unwrap();
    assert_eq!(piped.snapshot().as_bytes(), direct.snapshot().as_bytes());
    assert_eq!(copier.stats().blocks_moved, 8);
}
