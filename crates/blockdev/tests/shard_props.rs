//! Property tests of the sharded MemDisk: parallel batches to disjoint
//! ranges are byte-equal to sequential execution, statistics and clock
//! still telescope under concurrency, and depth-1 / `flat()` charges stay
//! bit-identical to the pre-sharding (PR 3/4) single-lock device.

// Test binary: aborting on an unexpected error is the point.
#![allow(clippy::unwrap_used)]

use mobiceal_blockdev::{BlockDevice, BlockIndex, MemDisk};
use mobiceal_sim::{EmmcCostModel, SimClock};
use proptest::prelude::*;
use std::sync::Arc;

const BS: usize = 512;
const DISK_BLOCKS: u64 = 256;

/// A per-thread write plan: each thread owns a disjoint slice of the disk
/// (thread `t` owns blocks `[t * span, (t + 1) * span)`) and writes a
/// proptest-chosen pattern of batches inside it.
fn thread_batches(threads: usize) -> impl Strategy<Value = Vec<Vec<Vec<(u64, u8)>>>> {
    let span = DISK_BLOCKS / threads as u64;
    prop::collection::vec(
        prop::collection::vec(prop::collection::vec((0u64..span, any::<u8>()), 1..12), 1..6),
        threads..=threads,
    )
    .prop_map(move |per_thread| {
        per_thread
            .into_iter()
            .enumerate()
            .map(|(t, batches)| {
                batches
                    .into_iter()
                    .map(|batch| {
                        batch.into_iter().map(|(b, fill)| (t as u64 * span + b, fill)).collect()
                    })
                    .collect()
            })
            .collect()
    })
}

fn run_parallel(disk: &MemDisk, plans: &[Vec<Vec<(u64, u8)>>]) {
    std::thread::scope(|s| {
        for plan in plans {
            let disk = disk.clone();
            s.spawn(move || {
                for batch in plan {
                    let bufs: Vec<(u64, Vec<u8>)> =
                        batch.iter().map(|&(b, fill)| (b, vec![fill; BS])).collect();
                    let writes: Vec<(BlockIndex, &[u8])> =
                        bufs.iter().map(|(b, d)| (*b, d.as_slice())).collect();
                    disk.write_blocks(&writes).unwrap();
                }
            });
        }
    });
}

fn run_sequential(disk: &MemDisk, plans: &[Vec<Vec<(u64, u8)>>]) {
    for plan in plans {
        for batch in plan {
            let bufs: Vec<(u64, Vec<u8>)> =
                batch.iter().map(|&(b, fill)| (b, vec![fill; BS])).collect();
            let writes: Vec<(BlockIndex, &[u8])> =
                bufs.iter().map(|(b, d)| (*b, d.as_slice())).collect();
            disk.write_blocks(&writes).unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Parallel batched writes to disjoint per-thread ranges land exactly
    /// the bytes any sequential interleaving of the same batches lands,
    /// and the per-op statistics still sum exactly to the clock advance
    /// (the telescoping invariant survives concurrency).
    #[test]
    fn parallel_disjoint_writes_equal_sequential(plans in thread_batches(4)) {
        let clock = SimClock::new();
        let parallel = MemDisk::new(DISK_BLOCKS, BS, clock.clone());
        run_parallel(&parallel, &plans);

        let sequential = MemDisk::with_default_timing(DISK_BLOCKS, BS);
        run_sequential(&sequential, &plans);

        prop_assert_eq!(
            parallel.snapshot().as_bytes(),
            sequential.snapshot().as_bytes(),
            "disjoint ranges: bytes must be interleaving-independent"
        );
        // Telescoping: every nanosecond charged to the clock is accounted
        // in exactly one stats bucket, even under contention.
        prop_assert_eq!(
            parallel.stats().total_time().as_nanos(),
            clock.now().as_nanos()
        );
        // Same transfer volume; op *mix* (seq/random split) legitimately
        // depends on the interleaving, byte totals do not.
        prop_assert_eq!(parallel.stats().bytes_written(), sequential.stats().bytes_written());
        prop_assert_eq!(
            parallel.stats().total_writes(),
            sequential.stats().total_writes()
        );
    }

    /// Concurrent readers see only fully-written blocks (block-atomic
    /// copies) while writers hammer a disjoint region.
    #[test]
    fn reads_are_block_atomic_under_concurrent_writes(
        writes in prop::collection::vec((0u64..128, any::<u8>()), 1..40),
    ) {
        let disk = MemDisk::with_default_timing(DISK_BLOCKS, BS);
        // Pre-fill the read region with a known pattern.
        let setup: Vec<(u64, Vec<u8>)> =
            (128..DISK_BLOCKS).map(|b| (b, vec![b as u8; BS])).collect();
        let batch: Vec<(BlockIndex, &[u8])> =
            setup.iter().map(|(b, d)| (*b, d.as_slice())).collect();
        disk.write_blocks(&batch).unwrap();

        std::thread::scope(|s| {
            let writer = disk.clone();
            let writes = writes.clone();
            s.spawn(move || {
                for (b, fill) in writes {
                    writer.write_block(b, &vec![fill; BS]).unwrap();
                }
            });
            let indices: Vec<u64> = (128..DISK_BLOCKS).collect();
            for _ in 0..4 {
                let bufs = disk.read_blocks(&indices).unwrap();
                for (b, buf) in indices.iter().zip(bufs) {
                    assert_eq!(buf, vec![*b as u8; BS], "read region untouched by writers");
                }
            }
        });
    }

    /// The sharded device driven single-threaded charges bit-identically
    /// to the sequential single-block loop under `flat()` (the
    /// amortization-free control), and a deep queue-depth floor changes
    /// nothing on a depth-1 medium: both PR 3/4 controls survive sharding.
    #[test]
    fn flat_and_depth1_charges_survive_sharding(
        writes in prop::collection::vec((0u64..64, any::<u8>()), 1..40),
        floor in 1usize..16,
    ) {
        let mk = || MemDisk::with_cost_model(
            64, BS, SimClock::new(), Arc::new(EmmcCostModel::flat(25_000)),
        );
        let batched = mk();
        batched.set_queue_depth_floor(floor);
        let sequential = mk();
        let bufs: Vec<(u64, Vec<u8>)> =
            writes.iter().map(|&(b, fill)| (b, vec![fill; BS])).collect();
        let batch: Vec<(BlockIndex, &[u8])> =
            bufs.iter().map(|(b, d)| (*b, d.as_slice())).collect();
        batched.write_blocks(&batch).unwrap();
        for (b, d) in &bufs {
            sequential.write_block(*b, d).unwrap();
        }
        prop_assert_eq!(batched.clock().now(), sequential.clock().now(),
            "flat() batches at any depth floor charge the sequential sum");
        prop_assert_eq!(batched.stats(), sequential.stats());
    }

    /// On a CQE medium a deeper depth floor discounts monotonically while
    /// preserving bytes and op mix, and the stats always telescope.
    #[test]
    fn depth_floor_discounts_monotonically_on_cqe(
        writes in prop::collection::vec((0u64..64, any::<u8>()), 2..40),
    ) {
        let run = |floor: usize| {
            let disk = MemDisk::with_cost_model(
                64, BS, SimClock::new(), Arc::new(EmmcCostModel::emmc51_cqe()),
            );
            disk.set_queue_depth_floor(floor);
            let bufs: Vec<(u64, Vec<u8>)> =
                writes.iter().map(|&(b, fill)| (b, vec![fill; BS])).collect();
            let batch: Vec<(BlockIndex, &[u8])> =
                bufs.iter().map(|(b, d)| (*b, d.as_slice())).collect();
            disk.write_blocks(&batch).unwrap();
            (disk.clock().now(), disk.stats())
        };
        let (t1, s1) = run(1);
        let mut last = t1;
        for floor in [2usize, 8, 32] {
            let (t, s) = run(floor);
            prop_assert!(t <= last, "deeper floors never charge more");
            prop_assert_eq!(s.without_time(), s1.without_time(), "op mix is depth-independent");
            prop_assert_eq!(s.total_time().as_nanos(), t.as_nanos(), "telescopes at any depth");
            last = t;
        }
        prop_assert!(last < t1, "a deep queue must discount a multi-block batch");
    }
}
