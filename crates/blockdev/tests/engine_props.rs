//! Property tests of the submission/completion engine (`IoEngine`): the
//! ring bound holds under any submit/poll interleaving, execution in
//! submission order makes results reap-order-independent and equal to the
//! direct sequential path, a depth-1 ring charges bit-identically to
//! direct calls, faulted batches stay confined to their own ticket, and
//! engine-driven queue depth equals real slot occupancy (pinned against
//! the deterministic depth floor, which is now a test hook only).

// Test binary: aborting on an unexpected error is the point.
#![allow(clippy::unwrap_used)]

use mobiceal_blockdev::{
    BlockDevice, BlockDeviceError, BlockIndex, FaultInjection, IoEngine, IoOutput, MemDisk,
};
use mobiceal_sim::{EmmcCostModel, SimClock};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

const BS: usize = 512;
const DISK_BLOCKS: u64 = 256;

/// A proptest-generated batch: `(write?, [(block, fill)])`. Reads reuse the
/// block list and ignore the fills.
type Batch = (bool, Vec<(u64, u8)>);

fn batches_strategy(max_batches: usize) -> impl Strategy<Value = Vec<Batch>> {
    prop::collection::vec(
        (any::<bool>(), prop::collection::vec((0u64..64, any::<u8>()), 1..8)),
        1..max_batches,
    )
}

fn cqe_disk() -> MemDisk {
    MemDisk::with_cost_model(
        DISK_BLOCKS,
        BS,
        SimClock::new(),
        Arc::new(EmmcCostModel::emmc51_cqe()),
    )
}

/// Submits one batch (blocking) and returns its ticket.
fn submit(engine: &IoEngine<impl BlockDevice>, batch: &Batch) -> mobiceal_blockdev::Ticket {
    let (write, blocks) = batch;
    if *write {
        let bufs: Vec<(u64, Vec<u8>)> =
            blocks.iter().map(|&(b, fill)| (b, vec![fill; BS])).collect();
        let writes: Vec<(BlockIndex, &[u8])> =
            bufs.iter().map(|(b, d)| (*b, d.as_slice())).collect();
        engine.submit_write_blocks(&writes)
    } else {
        let indices: Vec<u64> = blocks.iter().map(|&(b, _)| b).collect();
        engine.submit_read_blocks(&indices)
    }
}

/// Runs one batch directly on `dev`, mirroring what the engine executes.
fn run_direct(dev: &impl BlockDevice, batch: &Batch) -> Result<IoOutput, BlockDeviceError> {
    let (write, blocks) = batch;
    if *write {
        let bufs: Vec<(u64, Vec<u8>)> =
            blocks.iter().map(|&(b, fill)| (b, vec![fill; BS])).collect();
        let writes: Vec<(BlockIndex, &[u8])> =
            bufs.iter().map(|(b, d)| (*b, d.as_slice())).collect();
        dev.write_blocks(&writes).map(|()| IoOutput::Write)
    } else {
        let indices: Vec<u64> = blocks.iter().map(|&(b, _)| b).collect();
        dev.read_blocks(&indices).map(IoOutput::Read)
    }
}

/// A pass-through device that counts concurrent host-queue registrations
/// (plus its own executing commands) and remembers the high-water mark.
#[derive(Clone)]
struct CountingDevice {
    inner: MemDisk,
    holds: Arc<AtomicUsize>,
    max_holds: Arc<AtomicUsize>,
}

impl CountingDevice {
    fn new(inner: MemDisk) -> Self {
        CountingDevice {
            inner,
            holds: Arc::new(AtomicUsize::new(0)),
            max_holds: Arc::new(AtomicUsize::new(0)),
        }
    }

    fn max_holds(&self) -> usize {
        self.max_holds.load(Ordering::SeqCst)
    }
}

impl BlockDevice for CountingDevice {
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn read_block(&self, index: BlockIndex) -> Result<Vec<u8>, BlockDeviceError> {
        self.inner.read_block(index)
    }

    fn write_block(&self, index: BlockIndex, data: &[u8]) -> Result<(), BlockDeviceError> {
        self.inner.write_block(index, data)
    }

    fn read_blocks(&self, indices: &[BlockIndex]) -> Result<Vec<Vec<u8>>, BlockDeviceError> {
        self.inner.read_blocks(indices)
    }

    fn write_blocks(&self, writes: &[(BlockIndex, &[u8])]) -> Result<(), BlockDeviceError> {
        self.inner.write_blocks(writes)
    }

    fn flush(&self) -> Result<(), BlockDeviceError> {
        self.inner.flush()
    }

    fn host_queue_enter(&self) {
        let now = self.holds.fetch_add(1, Ordering::SeqCst) + 1;
        self.max_holds.fetch_max(now, Ordering::SeqCst);
        self.inner.host_queue_enter();
    }

    fn host_queue_leave(&self) {
        self.holds.fetch_sub(1, Ordering::SeqCst);
        self.inner.host_queue_leave();
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Under any submit/poll interleaving the ring keeps at most
    /// `ring_depth` commands in flight — both by the engine's own count
    /// and by the host-queue registrations the device sees.
    #[test]
    fn ring_never_exceeds_depth_in_flight(
        batches in batches_strategy(24),
        ring in 1usize..9,
        poll_every in 1usize..5,
    ) {
        let device = CountingDevice::new(MemDisk::with_default_timing(DISK_BLOCKS, BS));
        let counter = device.clone();
        let engine = IoEngine::new(device, ring);
        for (i, batch) in batches.iter().enumerate() {
            submit(&engine, batch);
            prop_assert!(engine.in_flight() <= ring, "slot table is bounded");
            prop_assert!(counter.max_holds() <= ring, "device never sees more than the ring");
            if i % poll_every == 0 {
                engine.poll();
            }
        }
        engine.drain();
        prop_assert_eq!(engine.in_flight(), 0);
        prop_assert!(counter.max_holds() <= ring);
    }

    /// For any batch set and any reap order, the engine produces the same
    /// bytes, per-ticket outputs, op mix *and charged time* as running the
    /// batches sequentially on the direct path (on the paper's nexus4
    /// medium, whose charges are depth-insensitive — so this isolates
    /// ordering semantics from the CQE discount).
    #[test]
    fn engine_matches_sequential_for_any_reap_order(
        batches in batches_strategy(12),
        reap_keys in prop::collection::vec(any::<u64>(), 12),
        ring in 1usize..9,
    ) {
        // Reap in the order given by sorting ticket indices by their
        // generated key — an arbitrary permutation of the submissions.
        let mut reap_order: Vec<usize> = (0..batches.len()).collect();
        reap_order.sort_by_key(|&i| reap_keys.get(i).copied().unwrap_or(u64::MAX));
        let engine_disk = MemDisk::with_default_timing(DISK_BLOCKS, BS);
        let direct_disk = MemDisk::with_default_timing(DISK_BLOCKS, BS);
        let engine = IoEngine::new(engine_disk.clone(), ring);

        let tickets: Vec<_> = batches.iter().map(|b| submit(&engine, b)).collect();
        let mut engine_results: Vec<Option<Result<IoOutput, BlockDeviceError>>> =
            (0..batches.len()).map(|_| None).collect();
        for &i in &reap_order {
            engine_results[i] = Some(engine.wait(tickets[i]));
        }

        let direct_results: Vec<_> = batches.iter().map(|b| run_direct(&direct_disk, b)).collect();
        for (got, want) in engine_results.iter().zip(&direct_results) {
            prop_assert_eq!(got.as_ref().expect("reaped"), want, "per-ticket results match");
        }
        prop_assert_eq!(engine_disk.snapshot().as_bytes(), direct_disk.snapshot().as_bytes());
        prop_assert_eq!(engine_disk.stats(), direct_disk.stats(), "op mix and time identical");
        prop_assert_eq!(engine_disk.clock().now(), direct_disk.clock().now());
    }

    /// A depth-1 ring on the queue-capable CQE medium charges bit-identically
    /// to the direct path: with one slot there is never overlap, so the
    /// engine must not manufacture a depth discount.
    #[test]
    fn depth1_ring_charges_bit_identical_to_direct(batches in batches_strategy(12)) {
        let engine_disk = cqe_disk();
        let direct_disk = cqe_disk();
        let engine = IoEngine::new(engine_disk.clone(), 1);
        let tickets: Vec<_> = batches.iter().map(|b| submit(&engine, b)).collect();
        for t in tickets {
            // Already-completed tickets (retired by backpressure) just
            // return their parked result.
            let _ = engine.wait(t);
        }
        for batch in &batches {
            let _ = run_direct(&direct_disk, batch);
        }
        prop_assert_eq!(engine_disk.clock().now(), direct_disk.clock().now(),
            "one slot: charges are bit-identical to the direct path");
        prop_assert_eq!(engine_disk.stats(), direct_disk.stats());
        prop_assert_eq!(engine_disk.snapshot().as_bytes(), direct_disk.snapshot().as_bytes());
    }

    /// Fault-injected batches surface their fail-fast error on the owning
    /// ticket only: every other slot completes exactly as the direct
    /// sequential path would, and the persisted prefix matches too.
    #[test]
    fn faulted_batches_stay_confined_to_their_ticket(
        batches in batches_strategy(12),
        fail_block in 0u64..64,
        fail_writes in any::<bool>(),
    ) {
        let mk = || {
            let disk = MemDisk::with_default_timing(DISK_BLOCKS, BS);
            let mut faults = FaultInjection::default();
            if fail_writes {
                faults.failing_writes.insert(fail_block);
            } else {
                faults.failing_reads.insert(fail_block);
            }
            disk.set_faults(faults);
            disk
        };
        let engine_disk = mk();
        let direct_disk = mk();
        let engine = IoEngine::new(engine_disk.clone(), 4);
        let tickets: Vec<_> = batches.iter().map(|b| submit(&engine, b)).collect();
        let direct_results: Vec<_> = batches.iter().map(|b| run_direct(&direct_disk, b)).collect();
        for (t, want) in tickets.into_iter().zip(&direct_results) {
            prop_assert_eq!(&engine.wait(t), want, "errors confined to the owning ticket");
        }
        prop_assert_eq!(engine_disk.snapshot().as_bytes(), direct_disk.snapshot().as_bytes(),
            "fail-fast prefixes persist identically");
        prop_assert_eq!(engine_disk.stats(), direct_disk.stats());
    }

    /// Engine-driven queue depth equals real slot occupancy — no floor
    /// involved: draining `k` queued batches charges batch `i` at depth
    /// `k - i`, bit-identical to the (test-hook) depth floor pinned to
    /// the same ladder on the direct path.
    #[test]
    fn engine_depth_equals_slot_occupancy(k in 2usize..9, n in 2usize..9) {
        let engine_disk = cqe_disk();
        let floored_disk = cqe_disk();
        let engine = IoEngine::new(engine_disk.clone(), k);
        let data = vec![0x6Bu8; BS];
        // Spaced bases keep each batch head a random op on both paths.
        let batch_at = |i: usize| -> Vec<(BlockIndex, Vec<u8>)> {
            let base = (i * (n + 2)) as u64;
            (0..n as u64).map(|j| (base + j, data.clone())).collect()
        };
        for i in 0..k {
            let owned = batch_at(i);
            let writes: Vec<(BlockIndex, &[u8])> =
                owned.iter().map(|(b, d)| (*b, d.as_slice())).collect();
            engine.submit_write_blocks(&writes);
        }
        for (_, result) in engine.drain() {
            prop_assert!(result.is_ok());
        }
        for i in 0..k {
            // When the engine executed batch i, batches i..k occupied the
            // ring: occupancy k - i. The floor reproduces that exactly.
            floored_disk.set_queue_depth_floor(k - i);
            let owned = batch_at(i);
            let writes: Vec<(BlockIndex, &[u8])> =
                owned.iter().map(|(b, d)| (*b, d.as_slice())).collect();
            floored_disk.write_blocks(&writes).unwrap();
        }
        prop_assert_eq!(engine_disk.clock().now(), floored_disk.clock().now(),
            "slot occupancy is the charged depth");
        prop_assert_eq!(engine_disk.stats(), floored_disk.stats());
    }
}

/// A device whose writes block on an external gate — lets a test hold the
/// engine mid-execution to line up waiters deterministically.
#[derive(Clone)]
struct GatedDevice {
    inner: MemDisk,
    gate: Arc<(Mutex<bool>, Condvar)>,
    execution_blocked: Arc<AtomicBool>,
}

impl GatedDevice {
    fn new(inner: MemDisk) -> Self {
        GatedDevice {
            inner,
            gate: Arc::new((Mutex::new(false), Condvar::new())),
            execution_blocked: Arc::new(AtomicBool::new(false)),
        }
    }

    fn open_gate(&self) {
        *self.gate.0.lock().unwrap() = true;
        self.gate.1.notify_all();
    }

    fn block_on_gate(&self) {
        let (lock, cvar) = &*self.gate;
        let mut open = lock.lock().unwrap();
        while !*open {
            self.execution_blocked.store(true, Ordering::SeqCst);
            open = cvar.wait(open).unwrap();
        }
    }
}

impl BlockDevice for GatedDevice {
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn read_block(&self, index: BlockIndex) -> Result<Vec<u8>, BlockDeviceError> {
        self.inner.read_block(index)
    }

    fn write_block(&self, index: BlockIndex, data: &[u8]) -> Result<(), BlockDeviceError> {
        self.inner.write_block(index, data)
    }

    fn write_blocks(&self, writes: &[(BlockIndex, &[u8])]) -> Result<(), BlockDeviceError> {
        self.block_on_gate();
        self.inner.write_blocks(writes)
    }

    fn host_queue_enter(&self) {
        self.inner.host_queue_enter();
    }

    fn host_queue_leave(&self) {
        self.inner.host_queue_leave();
    }
}

/// Backpressure grants slots in FIFO arrival order: tickets are allocated
/// at grant time, so the earlier-arriving blocked submitter must hold the
/// smaller ticket. Arrival is serialized deterministically — the gate
/// holds the head waiter mid-execution (the engine lock is released
/// during device I/O), and each later thread is spawned only once the
/// previous one is visibly parked in the waiter queue.
#[test]
fn backpressure_grants_slots_in_arrival_order() {
    let device = GatedDevice::new(MemDisk::with_default_timing(DISK_BLOCKS, BS));
    let gate = device.clone();
    let engine = Arc::new(IoEngine::new(device, 1));
    let data = vec![1u8; BS];
    // Plug the single slot; nothing executes at submit time.
    let plug = engine.submit_write_blocks(&[(0, data.as_slice())]);

    let grants = Arc::new(Mutex::new(Vec::new()));
    std::thread::scope(|s| {
        for id in 0..3u64 {
            let engine_ref = Arc::clone(&engine);
            let grants = Arc::clone(&grants);
            let data = data.clone();
            s.spawn(move || {
                let ticket = engine_ref.submit_write_blocks(&[(1 + id, data.as_slice())]);
                grants.lock().unwrap().push((id, ticket));
            });
            if id == 0 {
                // Thread 0 joins the waiter queue, becomes head, and gets
                // stuck executing the plug behind the gate.
                while !gate.execution_blocked.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
            } else {
                // Threads 1, 2 park behind it; wait until each is queued
                // before admitting the next.
                while engine.backpressured() < id as usize + 1 {
                    std::thread::yield_now();
                }
            }
        }
        gate.open_gate();
    });

    let granted = grants.lock().unwrap().clone();
    assert_eq!(granted.len(), 3, "every blocked submitter was woken");
    let mut by_arrival = granted.clone();
    by_arrival.sort_by_key(|&(id, _)| id);
    let tickets: Vec<_> = by_arrival.iter().map(|&(_, t)| t).collect();
    let mut sorted = tickets.clone();
    sorted.sort();
    assert_eq!(tickets, sorted, "slots granted in FIFO arrival order: {granted:?}");

    engine.wait(plug).unwrap();
    for (_, r) in engine.drain() {
        r.unwrap();
    }
}

/// Stress: concurrent submitters over a tiny ring all make progress, the
/// bound holds throughout, and every batch lands.
#[test]
fn concurrent_submitters_all_complete_within_bound() {
    let device = CountingDevice::new(MemDisk::with_default_timing(DISK_BLOCKS, BS));
    let counter = device.clone();
    let engine = Arc::new(IoEngine::new(device, 2));
    let threads = 4u64;
    let per_thread = 16u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let engine = Arc::clone(&engine);
            s.spawn(move || {
                let data = vec![t as u8 + 1; BS];
                for i in 0..per_thread {
                    engine.submit_write_blocks(&[(t * 32 + i, data.as_slice())]);
                }
            });
        }
    });
    let leftovers = engine.drain();
    assert!(leftovers.iter().all(|(_, r)| r.is_ok()));
    assert!(counter.max_holds() <= 2, "bound held under contention");
    assert_eq!(
        counter.inner.stats().total_writes(),
        threads * per_thread,
        "every submitted batch executed exactly once"
    );
}
