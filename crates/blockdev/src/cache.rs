//! [`WriteBackCache`]: a sharded write-back block cache over any
//! [`BlockDevice`].
//!
//! The cache sits between a file system (or the PDE layer) and the thin
//! pool, absorbing foreground writes into memory and landing them on the
//! backing device later as *batched vectored write-back* — the dm-cache /
//! bcache split that takes read-modify-write latency off the foreground
//! path. Layout mirrors the MemDisk shard locks of the concurrency
//! architecture: entries are striped across [`CacheConfig::shards`]
//! independently locked shards, each with its own hash index and
//! [`Lru`](crate::lru::Lru) recency list, so concurrent readers/writers on
//! different stripes never contend.
//!
//! Two contracts carry the design (see DESIGN.md §"Write-back cache &
//! background copier"):
//!
//! * **Flush ordering.** [`WriteBackCache::flush`] writes every dirty
//!   entry back through the backing device's `write_blocks` in ascending
//!   block order and only then forwards the flush. Callers that commit
//!   metadata referencing cached data (the thin pool's journal commit)
//!   flush the cache *first*, so dirty data blocks — and the thin mappings
//!   their write-back allocates — always land before the metadata commit
//!   that references them. The crash-recovery sweep pins this through the
//!   full cached stack.
//! * **World-independence.** Hit/miss, eviction and write-back decisions
//!   depend only on the sequence of block indices and operation kinds —
//!   never on block contents or which volume the cache serves. Identical
//!   traces leave identical [`CacheStats`] and identical backing-device op
//!   mixes (pinned in `tests/deniability.rs`).
//!
//! A capacity of 0 blocks is an exact pass-through: every call forwards
//! directly to the backing device and the cached stack is bit-identical to
//! the direct path (the analogue of the depth-1 ring reassembling the
//! direct path in the engine).

use crate::device::{BlockDevice, BlockDeviceError, BlockIndex};
use crate::lru::Lru;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Tuning for a [`WriteBackCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total cache capacity in blocks across all shards. 0 disables the
    /// cache entirely (exact pass-through).
    pub capacity_blocks: usize,
    /// Number of independently locked shards the index is striped over.
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { capacity_blocks: 0, shards: 8 }
    }
}

impl CacheConfig {
    /// A pass-through configuration (capacity 0).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A cache of `capacity_blocks` with the default shard count.
    pub fn with_capacity(capacity_blocks: usize) -> Self {
        CacheConfig { capacity_blocks, ..Self::default() }
    }
}

/// Monotonic cache counters. Hits and misses telescope: their sum equals
/// the number of block lookups the cache served, and every dirty block is
/// accounted for exactly once as a `writeback` (by eviction or flush).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Block reads served from the cache.
    pub read_hits: u64,
    /// Block reads that went to the backing device.
    pub read_misses: u64,
    /// Block writes absorbed by an existing entry.
    pub write_hits: u64,
    /// Block writes that created a new entry.
    pub write_misses: u64,
    /// Entries evicted to make room (clean or dirty).
    pub evictions: u64,
    /// Dirty blocks written back to the backing device.
    pub writebacks: u64,
    /// Flush calls that reached the backing device.
    pub flushes: u64,
}

impl CacheStats {
    /// Total block lookups (reads + writes) the cache has served.
    pub fn lookups(&self) -> u64 {
        self.read_hits + self.read_misses + self.write_hits + self.write_misses
    }
}

#[derive(Default)]
struct AtomicCacheStats {
    read_hits: AtomicU64,
    read_misses: AtomicU64,
    write_hits: AtomicU64,
    write_misses: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
    flushes: AtomicU64,
}

impl AtomicCacheStats {
    fn snapshot(&self) -> CacheStats {
        CacheStats {
            read_hits: self.read_hits.load(Ordering::Relaxed),
            read_misses: self.read_misses.load(Ordering::Relaxed),
            write_hits: self.write_hits.load(Ordering::Relaxed),
            write_misses: self.write_misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
        }
    }
}

struct Entry {
    data: Vec<u8>,
    dirty: bool,
    /// This entry's slot in the shard's recency list.
    slot: usize,
}

#[derive(Default)]
struct Shard {
    /// block index → cached entry.
    index: HashMap<BlockIndex, Entry>,
    lru: Lru,
}

/// A sharded write-back LRU block cache wrapping any [`BlockDevice`].
///
/// See the module docs for the contracts; construction is cheap and the
/// cache is safe to share across threads (each shard has its own lock).
pub struct WriteBackCache<D: BlockDevice> {
    inner: D,
    config: CacheConfig,
    /// Per-shard capacity: ceil(capacity / shards), so the striped total is
    /// at least the configured capacity.
    shard_capacity: usize,
    shards: Vec<Mutex<Shard>>,
    stats: AtomicCacheStats,
}

impl<D: BlockDevice> WriteBackCache<D> {
    /// Wraps `inner` with a cache shaped by `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` is 0 while the cache is enabled.
    pub fn new(inner: D, config: CacheConfig) -> Self {
        assert!(
            config.capacity_blocks == 0 || config.shards > 0,
            "an enabled cache needs at least one shard"
        );
        let shards = config.shards.max(1);
        let shard_capacity = config.capacity_blocks.div_ceil(shards);
        WriteBackCache {
            inner,
            config,
            shard_capacity,
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            stats: AtomicCacheStats::default(),
        }
    }

    /// The backing device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The configuration in use.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Whether the cache is a pass-through (capacity 0).
    pub fn is_passthrough(&self) -> bool {
        self.config.capacity_blocks == 0
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }

    /// Blocks currently cached (dirty + clean).
    pub fn cached_blocks(&self) -> usize {
        self.shards.iter().map(|s| s.lock().lru.len()).sum()
    }

    /// Blocks currently dirty (absorbed but not yet written back).
    pub fn dirty_blocks(&self) -> usize {
        self.shards.iter().map(|s| s.lock().index.values().filter(|e| e.dirty).count()).sum()
    }

    fn shard_of(&self, index: BlockIndex) -> usize {
        (index % self.shards.len() as u64) as usize
    }

    /// Evicts cold entries from `shard` until it is within capacity,
    /// collecting dirty victims. Returns the dirty `(index, data)` pairs in
    /// eviction order for the caller to write back *after* dropping the
    /// shard lock (lock order: shard → device, never device → shard).
    fn evict_overflow(
        &self,
        shard: &mut Shard,
    ) -> Result<Vec<(BlockIndex, Vec<u8>)>, BlockDeviceError> {
        let mut dirty = Vec::new();
        while shard.index.len() > self.shard_capacity {
            let Some((_, key)) = shard.lru.pop_coldest() else { break };
            let entry = shard.index.remove(&key).ok_or_else(|| BlockDeviceError::Io {
                reason: format!("cache shard LRU/index desync at block {key}"),
            })?;
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            if entry.dirty {
                dirty.push((key, entry.data));
            }
        }
        Ok(dirty)
    }

    /// Writes evicted dirty blocks back as one vectored batch, in ascending
    /// block order (deterministic regardless of hash-map iteration). On a
    /// device fault every block of the batch goes back into its shard as
    /// dirty — the error names no landed prefix, and re-writing an
    /// already-landed block is idempotent — so a failed write-back never
    /// loses data; the next eviction or flush retries it.
    fn write_back(&self, mut blocks: Vec<(BlockIndex, Vec<u8>)>) -> Result<(), BlockDeviceError> {
        if blocks.is_empty() {
            return Ok(());
        }
        blocks.sort_unstable_by_key(|&(b, _)| b);
        let writes: Vec<(BlockIndex, &[u8])> =
            blocks.iter().map(|(b, d)| (*b, d.as_slice())).collect();
        match self.inner.write_blocks(&writes) {
            Ok(()) => {
                self.stats.writebacks.fetch_add(blocks.len() as u64, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                for (b, data) in blocks {
                    let mut shard = self.shards[self.shard_of(b)].lock();
                    if shard.index.contains_key(&b) {
                        // A racing write re-populated the block with newer
                        // data; the evicted value is stale — keep theirs.
                        continue;
                    }
                    // Deliberately no eviction here: the shard may sit one
                    // entry over capacity until the next operation, which
                    // beats recursing into another failing write-back.
                    let slot = shard.lru.insert(b);
                    shard.index.insert(b, Entry { data, dirty: true, slot });
                }
                Err(e)
            }
        }
    }

    /// Removes the dirty flag from flushed entries. Called only after the
    /// write-back batch succeeded; an entry re-dirtied with *different*
    /// data while the batch was in flight stays dirty.
    fn mark_clean(&self, blocks: &[(BlockIndex, Vec<u8>)]) {
        for (b, written) in blocks {
            let mut shard = self.shards[self.shard_of(*b)].lock();
            if let Some(entry) = shard.index.get_mut(b) {
                if entry.data == *written {
                    entry.dirty = false;
                }
            }
        }
    }
}

impl<D: BlockDevice> std::fmt::Debug for WriteBackCache<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteBackCache")
            .field("config", &self.config)
            .field("cached_blocks", &self.cached_blocks())
            .finish_non_exhaustive()
    }
}

impl<D: BlockDevice> BlockDevice for WriteBackCache<D> {
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn read_block(&self, index: BlockIndex) -> Result<Vec<u8>, BlockDeviceError> {
        if self.is_passthrough() {
            return self.inner.read_block(index);
        }
        self.check_index(index)?;
        {
            let mut shard = self.shards[self.shard_of(index)].lock();
            if let Some(entry) = shard.index.get(&index) {
                let slot = entry.slot;
                let data = entry.data.clone();
                shard.lru.touch(slot);
                self.stats.read_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(data);
            }
        }
        // Miss: fetch outside the shard lock, then populate.
        self.stats.read_misses.fetch_add(1, Ordering::Relaxed);
        let data = self.inner.read_block(index)?;
        let evicted = {
            let mut shard = self.shards[self.shard_of(index)].lock();
            // A racing populate may have landed; recency still advances.
            if let Some(entry) = shard.index.get(&index) {
                let slot = entry.slot;
                shard.lru.touch(slot);
                Vec::new()
            } else {
                let slot = shard.lru.insert(index);
                shard.index.insert(index, Entry { data: data.clone(), dirty: false, slot });
                self.evict_overflow(&mut shard)?
            }
        };
        self.write_back(evicted)?;
        Ok(data)
    }

    fn write_block(&self, index: BlockIndex, data: &[u8]) -> Result<(), BlockDeviceError> {
        self.write_blocks(&[(index, data)])
    }

    /// Batched read: hits are served from the shards, misses go down as one
    /// vectored read of exactly the missing indices, and the result order
    /// matches the request (fail-fast on the first bad index, like the
    /// sequential loop).
    fn read_blocks(&self, indices: &[BlockIndex]) -> Result<Vec<Vec<u8>>, BlockDeviceError> {
        if self.is_passthrough() {
            return self.inner.read_blocks(indices);
        }
        let mut out: Vec<Option<Vec<u8>>> = Vec::with_capacity(indices.len());
        let mut misses: Vec<(usize, BlockIndex)> = Vec::new();
        for (i, &index) in indices.iter().enumerate() {
            self.check_index(index)?;
            let mut shard = self.shards[self.shard_of(index)].lock();
            if let Some(entry) = shard.index.get(&index) {
                let slot = entry.slot;
                let data = entry.data.clone();
                shard.lru.touch(slot);
                self.stats.read_hits.fetch_add(1, Ordering::Relaxed);
                out.push(Some(data));
            } else {
                self.stats.read_misses.fetch_add(1, Ordering::Relaxed);
                misses.push((i, index));
                out.push(None);
            }
        }
        if !misses.is_empty() {
            let want: Vec<BlockIndex> = misses.iter().map(|&(_, b)| b).collect();
            let bufs = self.inner.read_blocks(&want)?;
            let mut evicted = Vec::new();
            for (&(i, index), data) in misses.iter().zip(bufs) {
                let mut shard = self.shards[self.shard_of(index)].lock();
                if let Some(entry) = shard.index.get(&index) {
                    let slot = entry.slot;
                    shard.lru.touch(slot);
                } else {
                    let slot = shard.lru.insert(index);
                    shard.index.insert(index, Entry { data: data.clone(), dirty: false, slot });
                    evicted.extend(self.evict_overflow(&mut shard)?);
                }
                out[i] = Some(data);
            }
            self.write_back(evicted)?;
        }
        out.into_iter()
            .map(|b| {
                b.ok_or_else(|| BlockDeviceError::Io {
                    reason: "cache read left an index unresolved".to_string(),
                })
            })
            .collect()
    }

    /// Batched write: the whole batch is absorbed into the shards (marking
    /// entries dirty), then any capacity overflow is evicted and written
    /// back as one vectored batch. Geometry errors fail fast before the
    /// offending pair is absorbed, exactly like the sequential loop.
    fn write_blocks(&self, writes: &[(BlockIndex, &[u8])]) -> Result<(), BlockDeviceError> {
        if self.is_passthrough() {
            return self.inner.write_blocks(writes);
        }
        let mut evicted = Vec::new();
        for &(index, data) in writes {
            self.check_index(index)?;
            self.check_buffer(data)?;
            let mut shard = self.shards[self.shard_of(index)].lock();
            if let Some(entry) = shard.index.get_mut(&index) {
                entry.data.clear();
                entry.data.extend_from_slice(data);
                entry.dirty = true;
                let slot = entry.slot;
                shard.lru.touch(slot);
                self.stats.write_hits.fetch_add(1, Ordering::Relaxed);
            } else {
                let slot = shard.lru.insert(index);
                shard.index.insert(index, Entry { data: data.to_vec(), dirty: true, slot });
                self.stats.write_misses.fetch_add(1, Ordering::Relaxed);
                evicted.extend(self.evict_overflow(&mut shard)?);
            }
        }
        self.write_back(evicted)
    }

    /// Flush contract: every dirty entry is written back (one vectored
    /// batch, ascending block order) *before* the flush is forwarded, so a
    /// metadata commit issued after this call never references data still
    /// sitting in the cache.
    fn flush(&self) -> Result<(), BlockDeviceError> {
        if !self.is_passthrough() {
            let mut dirty: Vec<(BlockIndex, Vec<u8>)> = Vec::new();
            for shard in &self.shards {
                let shard = shard.lock();
                if shard.lru.is_empty() {
                    continue;
                }
                for (&b, entry) in &shard.index {
                    if entry.dirty {
                        dirty.push((b, entry.data.clone()));
                    }
                }
            }
            self.write_back(dirty.clone())?;
            self.mark_clean(&dirty);
            self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.flush()
    }

    fn host_queue_enter(&self) {
        self.inner.host_queue_enter();
    }

    fn host_queue_leave(&self) {
        self.inner.host_queue_leave();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memdisk::MemDisk;

    fn cached(capacity: usize) -> WriteBackCache<MemDisk> {
        WriteBackCache::new(
            MemDisk::with_default_timing(256, 512),
            CacheConfig { capacity_blocks: capacity, shards: 4 },
        )
    }

    #[test]
    fn absorbs_writes_until_flush() {
        let cache = cached(64);
        cache.write_block(3, &vec![0xAA; 512]).unwrap();
        assert_eq!(cache.dirty_blocks(), 1);
        // The backing device has not seen the write yet.
        assert!(cache.inner().snapshot().is_zero_block(3));
        assert_eq!(cache.read_block(3).unwrap(), vec![0xAA; 512]);
        cache.flush().unwrap();
        assert_eq!(cache.dirty_blocks(), 0);
        assert_eq!(cache.inner().read_block(3).unwrap(), vec![0xAA; 512]);
    }

    #[test]
    fn eviction_writes_dirty_victims_back() {
        // Capacity 4 over 4 shards = 1 block per shard: the second write to
        // a shard evicts the first.
        let cache = cached(4);
        cache.write_block(0, &vec![1u8; 512]).unwrap();
        cache.write_block(4, &vec![2u8; 512]).unwrap(); // same shard as 0
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.writebacks, 1);
        assert_eq!(cache.inner().read_block(0).unwrap(), vec![1u8; 512]);
        // Block 4 is still only in the cache.
        assert!(cache.inner().snapshot().is_zero_block(4));
        assert_eq!(cache.read_block(4).unwrap(), vec![2u8; 512]);
    }

    #[test]
    fn passthrough_is_bit_identical_and_stats_free() {
        let direct = MemDisk::with_default_timing(256, 512);
        let cache =
            WriteBackCache::new(MemDisk::with_default_timing(256, 512), CacheConfig::disabled());
        for b in 0..32u64 {
            let data = vec![b as u8; 512];
            direct.write_block(b, &data).unwrap();
            cache.write_block(b, &data).unwrap();
        }
        direct.flush().unwrap();
        cache.flush().unwrap();
        assert_eq!(cache.inner().snapshot().as_bytes(), direct.snapshot().as_bytes());
        assert_eq!(cache.stats(), CacheStats::default());
        assert_eq!(cache.cached_blocks(), 0);
    }

    #[test]
    fn stats_telescope() {
        let cache = cached(8);
        for b in 0..16u64 {
            cache.write_block(b, &vec![b as u8; 512]).unwrap();
        }
        for b in 0..16u64 {
            cache.read_block(b).unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.lookups(), 32);
        assert_eq!(s.read_hits + s.read_misses, 16);
        assert_eq!(s.write_hits + s.write_misses, 16);
    }

    #[test]
    fn batched_reads_mix_hits_and_misses() {
        let cache = cached(64);
        let backing = vec![7u8; 512];
        cache.inner().write_block(9, &backing).unwrap();
        cache.write_block(2, &vec![1u8; 512]).unwrap();
        let bufs = cache.read_blocks(&[2, 9]).unwrap();
        assert_eq!(bufs[0], vec![1u8; 512]);
        assert_eq!(bufs[1], backing);
        let s = cache.stats();
        assert_eq!(s.read_hits, 1);
        assert_eq!(s.read_misses, 1);
    }

    #[test]
    fn geometry_errors_fail_fast() {
        let cache = cached(8);
        assert!(matches!(
            cache.read_block(999),
            Err(BlockDeviceError::OutOfRange { index: 999, .. })
        ));
        assert!(matches!(
            cache.write_block(0, &[0u8; 3]),
            Err(BlockDeviceError::WrongBufferSize { got: 3, .. })
        ));
        assert_eq!(cache.dirty_blocks(), 0, "a failed write must not be absorbed");
    }
}
