//! [`Copier`]: a background relocation daemon with bounded in-flight work.
//!
//! The copier is the kcopyd analogue of this stack: PDE garbage collection
//! and DEFY cleaning hand it relocation/cleaning jobs, and the daemon
//! drains them off the foreground write path. In-flight work is bounded by
//! a configurable depth — the queue holds at most `depth - 1` pending jobs,
//! and a submit into a full queue self-services the oldest job first
//! (exactly how the depth-1 ring of the async engine degenerates to the
//! direct path: at depth 1 the queue holds nothing and every job runs
//! inline at submit, reassembling today's foreground behavior
//! bit-for-bit).
//!
//! Two drain modes:
//!
//! * **Deterministic stepping** ([`Copier::step`] / [`Copier::drain`]):
//!   the caller decides when background work runs, which keeps the
//!   simulated clock charges reproducible. This is the mode the workloads
//!   and benches use.
//! * **Worker thread** ([`Copier::spawn_worker`]): a real thread parks on a
//!   condvar and services jobs as they arrive, for callers that want the
//!   daemon shape end-to-end. Determinism of *contents* is unaffected
//!   (jobs are executed in submission order either way).
//!
//! Job failures are recorded, surfaced by [`Copier::take_error`], and
//! fail-fast on [`Copier::drain`].

use crate::device::{BlockDevice, BlockDeviceError, BlockIndex, SharedDevice};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

/// A unit of background work. Returns the number of blocks it moved (or
/// otherwise processed), purely for accounting.
pub type CopierJob = Box<dyn FnOnce() -> Result<u64, BlockDeviceError> + Send>;

/// Monotonic copier counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CopierStats {
    /// Jobs accepted by [`Copier::submit`].
    pub submitted: u64,
    /// Jobs that ran to completion (successfully or not).
    pub completed: u64,
    /// Jobs that returned an error.
    pub failed: u64,
    /// Blocks moved across all completed jobs.
    pub blocks_moved: u64,
    /// Jobs the submitter had to self-service because the queue was full.
    pub inline_services: u64,
}

#[derive(Default)]
struct State {
    queue: VecDeque<CopierJob>,
    /// First unconsumed job error, fail-fast like a vectored write prefix.
    error: Option<BlockDeviceError>,
    shutdown: bool,
}

/// A bounded background job queue for GC/relocation/cleaning work.
pub struct Copier {
    depth: usize,
    state: Mutex<State>,
    work_ready: Condvar,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    blocks_moved: AtomicU64,
    inline_services: AtomicU64,
}

impl Copier {
    /// A copier of the given depth: at most `depth - 1` jobs may be
    /// pending, so depth 1 runs every job inline at submit.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is 0.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "copier depth must be at least 1");
        Copier {
            depth,
            state: Mutex::new(State::default()),
            work_ready: Condvar::new(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            blocks_moved: AtomicU64::new(0),
            inline_services: AtomicU64::new(0),
        }
    }

    /// The configured depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Jobs currently pending (not yet executed).
    pub fn pending(&self) -> usize {
        self.state.lock().unwrap_or_else(PoisonError::into_inner).queue.len()
    }

    /// A snapshot of the copier counters.
    pub fn stats(&self) -> CopierStats {
        CopierStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            blocks_moved: self.blocks_moved.load(Ordering::Relaxed),
            inline_services: self.inline_services.load(Ordering::Relaxed),
        }
    }

    /// Takes and clears the first recorded job error, if any.
    pub fn take_error(&self) -> Option<BlockDeviceError> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner).error.take()
    }

    fn run_job(&self, job: CopierJob) {
        match job() {
            Ok(moved) => {
                self.blocks_moved.fetch_add(moved, Ordering::Relaxed);
            }
            Err(e) => {
                self.failed.fetch_add(1, Ordering::Relaxed);
                let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                state.error.get_or_insert(e);
            }
        }
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Submits a job. With the queue at capacity (`depth - 1` pending) the
    /// submitter self-services the *oldest* pending job first — bounded
    /// in-flight work means foreground progress, never unbounded deferral.
    /// At depth 1 this executes `job` immediately.
    pub fn submit(&self, job: CopierJob) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        if self.depth == 1 {
            self.inline_services.fetch_add(1, Ordering::Relaxed);
            self.run_job(job);
            return;
        }
        let overflow = {
            let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            state.queue.push_back(job);
            if state.queue.len() > self.depth - 1 {
                state.queue.pop_front()
            } else {
                self.work_ready.notify_one();
                None
            }
        };
        if let Some(job) = overflow {
            self.inline_services.fetch_add(1, Ordering::Relaxed);
            self.run_job(job);
        }
    }

    /// Runs the oldest pending job, if any. Returns whether one ran.
    pub fn step(&self) -> bool {
        let job = self.state.lock().unwrap_or_else(PoisonError::into_inner).queue.pop_front();
        match job {
            Some(job) => {
                self.run_job(job);
                true
            }
            None => false,
        }
    }

    /// Runs every pending job, fail-fast on the first recorded error
    /// (including one left over from an earlier submit/step).
    pub fn drain(&self) -> Result<(), BlockDeviceError> {
        while self.step() {
            if let Some(e) = self.take_error() {
                return Err(e);
            }
        }
        match self.take_error() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Spawns a worker thread that services jobs as they arrive until
    /// [`CopierWorker::shutdown`] (which drains the queue first). The
    /// copier must be shared (`Arc`) with submitters.
    pub fn spawn_worker(self: &Arc<Self>) -> CopierWorker {
        let copier = Arc::clone(self);
        let handle = std::thread::spawn(move || loop {
            let job = {
                let mut state = copier.state.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    if let Some(job) = state.queue.pop_front() {
                        break Some(job);
                    }
                    if state.shutdown {
                        break None;
                    }
                    state = copier.work_ready.wait(state).unwrap_or_else(PoisonError::into_inner);
                }
            };
            match job {
                Some(job) => copier.run_job(job),
                None => return,
            }
        });
        CopierWorker { copier: Arc::clone(self), handle: Some(handle) }
    }
}

impl std::fmt::Debug for Copier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Copier")
            .field("depth", &self.depth)
            .field("pending", &self.pending())
            .finish_non_exhaustive()
    }
}

/// Handle to a running copier worker thread; joining drains the queue.
pub struct CopierWorker {
    copier: Arc<Copier>,
    handle: Option<JoinHandle<()>>,
}

impl CopierWorker {
    /// Signals shutdown and joins the worker after it drains the queue.
    pub fn shutdown(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if let Some(handle) = self.handle.take() {
            {
                let mut state = self.copier.state.lock().unwrap_or_else(PoisonError::into_inner);
                state.shutdown = true;
                self.copier.work_ready.notify_one();
            }
            let _ = handle.join();
            self.copier.state.lock().unwrap_or_else(PoisonError::into_inner).shutdown = false;
        }
    }
}

impl Drop for CopierWorker {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Builds a kcopyd-style copy job: a vectored read of `src` followed by a
/// vectored write to the corresponding `dst` index on `device`, returning
/// the number of blocks moved.
pub fn copy_job(device: SharedDevice, moves: Vec<(BlockIndex, BlockIndex)>) -> CopierJob {
    Box::new(move || {
        if moves.is_empty() {
            return Ok(0);
        }
        let srcs: Vec<BlockIndex> = moves.iter().map(|&(s, _)| s).collect();
        let bufs = device.read_blocks(&srcs)?;
        let writes: Vec<(BlockIndex, &[u8])> =
            moves.iter().zip(&bufs).map(|(&(_, d), buf)| (d, buf.as_slice())).collect();
        device.write_blocks(&writes)?;
        Ok(moves.len() as u64)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memdisk::MemDisk;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn depth_one_runs_inline() {
        let copier = Copier::new(1);
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        copier.submit(Box::new(move || {
            r.fetch_add(1, Ordering::SeqCst);
            Ok(3)
        }));
        assert_eq!(ran.load(Ordering::SeqCst), 1, "depth-1 submit must execute inline");
        assert_eq!(copier.pending(), 0);
        let stats = copier.stats();
        assert_eq!(stats.inline_services, 1);
        assert_eq!(stats.blocks_moved, 3);
    }

    #[test]
    fn jobs_queue_until_stepped_and_run_in_order() {
        let copier = Copier::new(8);
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3u64 {
            let o = Arc::clone(&order);
            copier.submit(Box::new(move || {
                o.lock().unwrap().push(i);
                Ok(0)
            }));
        }
        assert_eq!(copier.pending(), 3);
        assert!(order.lock().unwrap().is_empty(), "no job may run before step");
        copier.drain().unwrap();
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2]);
        assert_eq!(copier.stats().completed, 3);
    }

    #[test]
    fn full_queue_self_services_oldest() {
        // Depth 3 → 2 pending slots; the 3rd submit runs job 0 inline.
        let copier = Copier::new(3);
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3u64 {
            let o = Arc::clone(&order);
            copier.submit(Box::new(move || {
                o.lock().unwrap().push(i);
                Ok(0)
            }));
        }
        assert_eq!(*order.lock().unwrap(), vec![0]);
        assert_eq!(copier.pending(), 2);
        assert_eq!(copier.stats().inline_services, 1);
        copier.drain().unwrap();
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn errors_are_recorded_and_fail_drain() {
        let copier = Copier::new(8);
        copier.submit(Box::new(|| Err(BlockDeviceError::NoSpace)));
        copier.submit(Box::new(|| Ok(1)));
        assert!(matches!(copier.drain(), Err(BlockDeviceError::NoSpace)));
        assert_eq!(copier.stats().failed, 1);
        // Error consumed; the remaining queue still drains.
        copier.drain().unwrap();
        assert_eq!(copier.stats().completed, 2);
    }

    #[test]
    fn copy_job_moves_blocks() {
        let disk: SharedDevice = Arc::new(MemDisk::with_default_timing(64, 512));
        disk.write_block(2, &vec![0xAB; 512]).unwrap();
        disk.write_block(3, &vec![0xCD; 512]).unwrap();
        let copier = Copier::new(4);
        copier.submit(copy_job(Arc::clone(&disk), vec![(2, 10), (3, 11)]));
        copier.drain().unwrap();
        assert_eq!(disk.read_block(10).unwrap(), vec![0xAB; 512]);
        assert_eq!(disk.read_block(11).unwrap(), vec![0xCD; 512]);
        assert_eq!(copier.stats().blocks_moved, 2);
    }

    #[test]
    fn worker_thread_services_jobs() {
        let copier = Arc::new(Copier::new(16));
        let worker = copier.spawn_worker();
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            let r = Arc::clone(&ran);
            copier.submit(Box::new(move || {
                r.fetch_add(1, Ordering::SeqCst);
                Ok(1)
            }));
        }
        worker.shutdown();
        assert_eq!(ran.load(Ordering::SeqCst), 5);
        assert_eq!(copier.stats().blocks_moved, 5);
        assert_eq!(copier.pending(), 0);
    }
}
