//! An index-linked LRU list: the recency order behind each cache shard.
//!
//! The list is intrusive over a slab of nodes addressed by slot index, so
//! promoting an entry to most-recently-used and evicting the coldest are
//! both O(1) with no per-operation allocation — the layout dm-cache and
//! bcache use for their per-shard queues. Slots are handed back to the
//! caller on [`Lru::insert`] and identify the entry in every later call;
//! freed slots are recycled through an internal free list.
//!
//! Recency depends only on the *order* of `insert`/`touch`/`remove` calls,
//! never on any payload: a cache built on this list evicts along a
//! world-independent schedule (see `tests/deniability.rs`).

/// Sentinel for "no slot".
const NIL: usize = usize::MAX;

struct Node {
    /// Toward more-recently-used.
    prev: usize,
    /// Toward less-recently-used.
    next: usize,
    /// The caller's key (a block index), kept so eviction can name it.
    key: u64,
    /// Whether the slot is live (false: on the free list).
    live: bool,
}

/// A fixed-policy least-recently-used list over caller-held slots.
pub struct Lru {
    nodes: Vec<Node>,
    /// Most-recently-used slot.
    head: usize,
    /// Least-recently-used slot.
    tail: usize,
    /// Head of the recycled-slot free list (chained through `next`).
    free: usize,
    len: usize,
}

impl Default for Lru {
    fn default() -> Self {
        Self::new()
    }
}

impl Lru {
    /// An empty list.
    pub fn new() -> Self {
        Lru { nodes: Vec::new(), head: NIL, tail: NIL, free: NIL, len: 0 }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `key` as the most-recently-used entry, returning its slot.
    pub fn insert(&mut self, key: u64) -> usize {
        let slot = if self.free != NIL {
            let slot = self.free;
            self.free = self.nodes[slot].next;
            self.nodes[slot] = Node { prev: NIL, next: NIL, key, live: true };
            slot
        } else {
            self.nodes.push(Node { prev: NIL, next: NIL, key, live: true });
            self.nodes.len() - 1
        };
        self.push_front(slot);
        self.len += 1;
        slot
    }

    /// Promotes `slot` to most-recently-used.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not live.
    pub fn touch(&mut self, slot: usize) {
        assert!(self.nodes[slot].live, "touch of a dead LRU slot");
        if self.head == slot {
            return;
        }
        self.unlink(slot);
        self.push_front(slot);
    }

    /// Removes `slot` from the list, returning its key.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not live.
    pub fn remove(&mut self, slot: usize) -> u64 {
        assert!(self.nodes[slot].live, "remove of a dead LRU slot");
        self.unlink(slot);
        let key = self.nodes[slot].key;
        self.nodes[slot].live = false;
        self.nodes[slot].next = self.free;
        self.free = slot;
        self.len -= 1;
        key
    }

    /// The least-recently-used entry as `(slot, key)`, if any.
    pub fn coldest(&self) -> Option<(usize, u64)> {
        if self.tail == NIL {
            None
        } else {
            Some((self.tail, self.nodes[self.tail].key))
        }
    }

    /// Removes and returns the least-recently-used entry as `(slot, key)`.
    pub fn pop_coldest(&mut self) -> Option<(usize, u64)> {
        let (slot, key) = self.coldest()?;
        self.remove(slot);
        Some((slot, key))
    }

    fn push_front(&mut self, slot: usize) {
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn unlink(&mut self, slot: usize) {
        let Node { prev, next, .. } = self.nodes[slot];
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }
}

impl std::fmt::Debug for Lru {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lru").field("len", &self.len).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Walks the list cold→hot, returning the keys.
    fn order(lru: &Lru) -> Vec<u64> {
        let mut out = Vec::new();
        let mut slot = lru.tail;
        while slot != NIL {
            out.push(lru.nodes[slot].key);
            slot = lru.nodes[slot].prev;
        }
        out
    }

    #[test]
    fn insert_orders_by_recency() {
        let mut lru = Lru::new();
        for k in 0..4 {
            lru.insert(k);
        }
        assert_eq!(lru.len(), 4);
        assert_eq!(order(&lru), vec![0, 1, 2, 3]);
        assert_eq!(lru.coldest().unwrap().1, 0);
    }

    #[test]
    fn touch_promotes_to_hot_end() {
        let mut lru = Lru::new();
        let slots: Vec<usize> = (0..4).map(|k| lru.insert(k)).collect();
        lru.touch(slots[0]);
        assert_eq!(order(&lru), vec![1, 2, 3, 0]);
        // Touching the head is a no-op.
        lru.touch(slots[0]);
        assert_eq!(order(&lru), vec![1, 2, 3, 0]);
        lru.touch(slots[2]);
        assert_eq!(order(&lru), vec![1, 3, 0, 2]);
    }

    #[test]
    fn pop_coldest_evicts_in_lru_order() {
        let mut lru = Lru::new();
        let slots: Vec<usize> = (0..3).map(|k| lru.insert(k)).collect();
        lru.touch(slots[0]);
        assert_eq!(lru.pop_coldest().unwrap().1, 1);
        assert_eq!(lru.pop_coldest().unwrap().1, 2);
        assert_eq!(lru.pop_coldest().unwrap().1, 0);
        assert!(lru.pop_coldest().is_none());
        assert!(lru.is_empty());
    }

    #[test]
    fn removed_slots_are_recycled() {
        let mut lru = Lru::new();
        let a = lru.insert(10);
        let b = lru.insert(20);
        lru.remove(a);
        let c = lru.insert(30);
        assert_eq!(c, a, "freed slot must be reused before the slab grows");
        assert_eq!(lru.len(), 2);
        assert_eq!(order(&lru), vec![20, 30]);
        lru.remove(b);
        lru.remove(c);
        assert!(lru.is_empty());
    }

    #[test]
    #[should_panic(expected = "dead LRU slot")]
    fn touch_after_remove_panics() {
        let mut lru = Lru::new();
        let a = lru.insert(1);
        lru.remove(a);
        lru.touch(a);
    }

    #[test]
    fn single_entry_edge_cases() {
        let mut lru = Lru::new();
        let a = lru.insert(7);
        lru.touch(a);
        assert_eq!(lru.coldest(), Some((a, 7)));
        assert_eq!(lru.remove(a), 7);
        assert!(lru.coldest().is_none());
        // Reuse after full drain.
        let b = lru.insert(8);
        assert_eq!(lru.coldest(), Some((b, 8)));
    }
}
