//! [`DiskSnapshot`]: the adversary's view of the medium.

use crate::device::BlockIndex;

/// A bit-exact, immutable image of a block device at one point in time.
///
/// This is exactly what the paper's multi-snapshot adversary obtains at a
/// checkpoint: full content of the storage medium, with no access to RAM or
/// keys (§III-A). The `mobiceal-adversary` crate consumes pairs of
/// snapshots and tries to detect hidden data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskSnapshot {
    block_size: usize,
    num_blocks: u64,
    data: Vec<u8>,
}

impl DiskSnapshot {
    /// Wraps a raw image.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != num_blocks * block_size`.
    pub fn new(block_size: usize, num_blocks: u64, data: Vec<u8>) -> Self {
        assert_eq!(
            data.len() as u64,
            num_blocks * block_size as u64,
            "image size does not match geometry"
        );
        DiskSnapshot { block_size, num_blocks, data }
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of blocks in the image.
    pub fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    /// Content of block `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn block(&self, index: BlockIndex) -> &[u8] {
        assert!(index < self.num_blocks, "block {index} out of range");
        let start = index as usize * self.block_size;
        &self.data[start..start + self.block_size]
    }

    /// The raw image bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Indices of blocks that differ between two snapshots of the same
    /// device — the multi-snapshot adversary's primary signal.
    ///
    /// # Panics
    ///
    /// Panics if the snapshots have different geometry.
    pub fn changed_blocks(&self, later: &DiskSnapshot) -> Vec<BlockIndex> {
        assert_eq!(self.block_size, later.block_size, "geometry mismatch");
        assert_eq!(self.num_blocks, later.num_blocks, "geometry mismatch");
        (0..self.num_blocks).filter(|&i| self.block(i) != later.block(i)).collect()
    }

    /// Whether block `index` is all zero (never touched on a zero-filled
    /// device).
    pub fn is_zero_block(&self, index: BlockIndex) -> bool {
        self.block(index).iter().all(|&b| b == 0)
    }

    /// Shannon entropy (bits/byte) of block `index`. Encrypted or random
    /// blocks measure close to 8; structured plaintext much lower. Used by
    /// forensic distinguishers.
    pub fn block_entropy(&self, index: BlockIndex) -> f64 {
        let block = self.block(index);
        let mut hist = [0u32; 256];
        for &b in block {
            hist[b as usize] += 1;
        }
        let n = block.len() as f64;
        let mut h = 0.0;
        for &c in hist.iter() {
            if c > 0 {
                let p = c as f64 / n;
                h -= p * p.log2();
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(blocks: &[&[u8]]) -> DiskSnapshot {
        let bs = blocks[0].len();
        let mut data = Vec::new();
        for b in blocks {
            assert_eq!(b.len(), bs);
            data.extend_from_slice(b);
        }
        DiskSnapshot::new(bs, blocks.len() as u64, data)
    }

    #[test]
    fn geometry_and_access() {
        let s = snap(&[&[1, 1], &[2, 2], &[3, 3]]);
        assert_eq!(s.block_size(), 2);
        assert_eq!(s.num_blocks(), 3);
        assert_eq!(s.block(1), &[2, 2]);
        assert_eq!(s.as_bytes().len(), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_block_panics() {
        let s = snap(&[&[0, 0]]);
        let _ = s.block(1);
    }

    #[test]
    #[should_panic(expected = "image size")]
    fn mismatched_image_panics() {
        let _ = DiskSnapshot::new(4, 2, vec![0u8; 7]);
    }

    #[test]
    fn changed_blocks_detects_differences() {
        let a = snap(&[&[0, 0], &[1, 1], &[2, 2]]);
        let b = snap(&[&[0, 0], &[9, 9], &[2, 2]]);
        assert_eq!(a.changed_blocks(&b), vec![1]);
        assert!(a.changed_blocks(&a.clone()).is_empty());
    }

    #[test]
    fn zero_block_detection() {
        let s = snap(&[&[0, 0], &[0, 1]]);
        assert!(s.is_zero_block(0));
        assert!(!s.is_zero_block(1));
    }

    #[test]
    fn entropy_separates_structure_from_noise() {
        // 256-byte blocks: one constant, one a full byte ramp.
        let constant = vec![7u8; 256];
        let ramp: Vec<u8> = (0..=255).collect();
        let mut data = constant.clone();
        data.extend_from_slice(&ramp);
        let s = DiskSnapshot::new(256, 2, data);
        assert!(s.block_entropy(0) < 0.01, "constant block has ~0 entropy");
        assert!((s.block_entropy(1) - 8.0).abs() < 1e-9, "ramp hits 8 bits/byte");
    }
}
