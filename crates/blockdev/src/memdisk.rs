//! [`MemDisk`]: the RAM-backed simulated eMMC device.

use crate::device::{BlockDevice, BlockDeviceError, BlockIndex};
use crate::snapshot::DiskSnapshot;
use crate::stats::DeviceStats;
use mobiceal_sim::{CostModel, EmmcCostModel, OpKind, SimClock};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::Arc;

/// Fault-injection configuration: force specific blocks to fail.
///
/// Used by failure-path tests ("what happens when the medium dies under the
/// thin pool / under MobiCeal metadata?").
#[derive(Debug, Clone, Default)]
pub struct FaultInjection {
    /// Blocks whose reads fail.
    pub failing_reads: HashSet<BlockIndex>,
    /// Blocks whose writes fail.
    pub failing_writes: HashSet<BlockIndex>,
    /// Fail every operation after this many total ops (simulates device
    /// death). `None` disables.
    pub die_after_ops: Option<u64>,
}

struct Inner {
    blocks: Vec<u8>,
    stats: DeviceStats,
    last_block: Option<BlockIndex>,
    faults: FaultInjection,
    total_ops: u64,
}

/// An in-memory block device with eMMC timing, statistics, snapshots and
/// fault injection.
///
/// Cloning the wrapper is cheap and shares the same underlying storage
/// (mirroring how multiple dm targets can open one kernel block device).
///
/// # Example
///
/// ```
/// use mobiceal_blockdev::{BlockDevice, MemDisk};
/// use mobiceal_sim::SimClock;
///
/// let clock = SimClock::new();
/// let disk = MemDisk::new(64, 4096, clock.clone());
/// disk.write_block(0, &vec![1u8; 4096])?;
/// assert!(clock.now().as_nanos() > 0, "writes consume simulated time");
/// # Ok::<(), mobiceal_blockdev::BlockDeviceError>(())
/// ```
#[derive(Clone)]
pub struct MemDisk {
    inner: Arc<Mutex<Inner>>,
    num_blocks: u64,
    block_size: usize,
    clock: SimClock,
    cost: Arc<dyn CostModel>,
}

impl std::fmt::Debug for MemDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemDisk")
            .field("num_blocks", &self.num_blocks)
            .field("block_size", &self.block_size)
            .finish_non_exhaustive()
    }
}

impl MemDisk {
    /// Creates a disk with Nexus 4 eMMC timing on `clock`.
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks == 0` or `block_size == 0`.
    pub fn new(num_blocks: u64, block_size: usize, clock: SimClock) -> Self {
        Self::with_cost_model(num_blocks, block_size, clock, Arc::new(EmmcCostModel::nexus4()))
    }

    /// Creates a disk with Nexus 4 timing and a private clock — convenient
    /// for tests that do not inspect time.
    pub fn with_default_timing(num_blocks: u64, block_size: usize) -> Self {
        Self::new(num_blocks, block_size, SimClock::new())
    }

    /// Creates a disk with an explicit cost model.
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks == 0` or `block_size == 0`.
    pub fn with_cost_model(
        num_blocks: u64,
        block_size: usize,
        clock: SimClock,
        cost: Arc<dyn CostModel>,
    ) -> Self {
        assert!(num_blocks > 0, "device must have at least one block");
        assert!(block_size > 0, "block size must be positive");
        let bytes = usize::try_from(num_blocks)
            .ok()
            .and_then(|n| n.checked_mul(block_size))
            .expect("device too large for memory simulation");
        MemDisk {
            inner: Arc::new(Mutex::new(Inner {
                blocks: vec![0u8; bytes],
                stats: DeviceStats::default(),
                last_block: None,
                faults: FaultInjection::default(),
                total_ops: 0,
            })),
            num_blocks,
            block_size,
            clock,
            cost,
        }
    }

    /// The clock this disk charges time to.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Snapshot of the I/O statistics.
    pub fn stats(&self) -> DeviceStats {
        self.inner.lock().stats
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&self) {
        self.inner.lock().stats = DeviceStats::default();
    }

    /// Installs a fault-injection configuration.
    pub fn set_faults(&self, faults: FaultInjection) {
        self.inner.lock().faults = faults;
    }

    /// Takes a bit-exact image of the medium — what the paper's
    /// multi-snapshot adversary captures at a checkpoint (§III-A).
    pub fn snapshot(&self) -> DiskSnapshot {
        let inner = self.inner.lock();
        DiskSnapshot::new(self.block_size, self.num_blocks, inner.blocks.clone())
    }

    /// Overwrites the whole medium with the given byte (e.g. secure wipe).
    pub fn fill(&self, byte: u8) {
        let mut inner = self.inner.lock();
        inner.blocks.fill(byte);
    }

    /// Overwrites the whole medium with caller-provided content generator,
    /// charging sequential-write time for every block (used for the
    /// initialization step that fills the disk with randomness).
    pub fn fill_with(&self, mut gen: impl FnMut(&mut [u8])) {
        let mut inner = self.inner.lock();
        let bs = self.block_size;
        for i in 0..self.num_blocks {
            let start = i as usize * bs;
            gen(&mut inner.blocks[start..start + bs]);
            let t = self.cost.cost(OpKind::SequentialWrite, bs);
            self.clock.advance(t);
            inner.stats.record(OpKind::SequentialWrite, bs, t);
        }
        inner.last_block = Some(self.num_blocks - 1);
    }

    fn classify(last: Option<BlockIndex>, index: BlockIndex, write: bool) -> OpKind {
        let sequential = matches!(last, Some(prev) if index == prev + 1);
        match (write, sequential) {
            (false, true) => OpKind::SequentialRead,
            (false, false) => OpKind::RandomRead,
            (true, true) => OpKind::SequentialWrite,
            (true, false) => OpKind::RandomWrite,
        }
    }

    fn check_faults(
        inner: &mut Inner,
        index: BlockIndex,
        write: bool,
    ) -> Result<(), BlockDeviceError> {
        inner.total_ops += 1;
        if let Some(limit) = inner.faults.die_after_ops {
            if inner.total_ops > limit {
                return Err(BlockDeviceError::Io {
                    reason: format!("device died after {limit} ops"),
                });
            }
        }
        let failing =
            if write { &inner.faults.failing_writes } else { &inner.faults.failing_reads };
        if failing.contains(&index) {
            return Err(BlockDeviceError::Io {
                reason: format!(
                    "injected {} fault at block {index}",
                    if write { "write" } else { "read" }
                ),
            });
        }
        Ok(())
    }
}

impl BlockDevice for MemDisk {
    fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    fn block_size(&self) -> usize {
        self.block_size
    }

    fn read_block(&self, index: BlockIndex) -> Result<Vec<u8>, BlockDeviceError> {
        self.check_index(index)?;
        let mut inner = self.inner.lock();
        Self::check_faults(&mut inner, index, false)?;
        let op = Self::classify(inner.last_block, index, false);
        inner.last_block = Some(index);
        let t = self.cost.cost(op, self.block_size);
        self.clock.advance(t);
        inner.stats.record(op, self.block_size, t);
        let start = index as usize * self.block_size;
        Ok(inner.blocks[start..start + self.block_size].to_vec())
    }

    fn write_block(&self, index: BlockIndex, data: &[u8]) -> Result<(), BlockDeviceError> {
        self.check_index(index)?;
        self.check_buffer(data)?;
        let mut inner = self.inner.lock();
        Self::check_faults(&mut inner, index, true)?;
        let op = Self::classify(inner.last_block, index, true);
        inner.last_block = Some(index);
        let t = self.cost.cost(op, self.block_size);
        self.clock.advance(t);
        inner.stats.record(op, self.block_size, t);
        let start = index as usize * self.block_size;
        inner.blocks[start..start + self.block_size].copy_from_slice(data);
        Ok(())
    }

    /// Batched read: one lock acquisition and one clock advance for the
    /// whole batch. Per-block costs, statistics, fault checks and
    /// sequential/random classification are identical to issuing the reads
    /// one by one.
    fn read_blocks(&self, indices: &[BlockIndex]) -> Result<Vec<Vec<u8>>, BlockDeviceError> {
        let mut inner = self.inner.lock();
        let mut out = Vec::with_capacity(indices.len());
        let mut total = mobiceal_sim::SimDuration::ZERO;
        let result = (|| {
            for &index in indices {
                self.check_index(index)?;
                Self::check_faults(&mut inner, index, false)?;
                let op = Self::classify(inner.last_block, index, false);
                inner.last_block = Some(index);
                let t = self.cost.cost(op, self.block_size);
                total += t;
                inner.stats.record(op, self.block_size, t);
                let start = index as usize * self.block_size;
                out.push(inner.blocks[start..start + self.block_size].to_vec());
            }
            Ok(())
        })();
        self.clock.advance(total);
        result.map(|()| out)
    }

    /// Batched write: one lock acquisition and one clock advance for the
    /// whole batch; otherwise byte- and stats-identical to the equivalent
    /// sequence of single-block writes (fail-fast, prefix persists).
    fn write_blocks(&self, writes: &[(BlockIndex, &[u8])]) -> Result<(), BlockDeviceError> {
        let mut inner = self.inner.lock();
        let mut total = mobiceal_sim::SimDuration::ZERO;
        let result = (|| {
            for &(index, data) in writes {
                self.check_index(index)?;
                self.check_buffer(data)?;
                Self::check_faults(&mut inner, index, true)?;
                let op = Self::classify(inner.last_block, index, true);
                inner.last_block = Some(index);
                let t = self.cost.cost(op, self.block_size);
                total += t;
                inner.stats.record(op, self.block_size, t);
                let start = index as usize * self.block_size;
                inner.blocks[start..start + self.block_size].copy_from_slice(data);
            }
            Ok(())
        })();
        self.clock.advance(total);
        result
    }

    fn flush(&self) -> Result<(), BlockDeviceError> {
        let mut inner = self.inner.lock();
        let t = self.cost.cost(OpKind::Flush, 0);
        self.clock.advance(t);
        inner.stats.record(OpKind::Flush, 0, t);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_back_what_was_written() {
        let disk = MemDisk::with_default_timing(16, 512);
        let data = vec![0x5Au8; 512];
        disk.write_block(7, &data).unwrap();
        assert_eq!(disk.read_block(7).unwrap(), data);
        assert_eq!(disk.read_block(6).unwrap(), vec![0u8; 512]);
    }

    #[test]
    fn rejects_out_of_range_and_bad_buffers() {
        let disk = MemDisk::with_default_timing(4, 512);
        assert!(matches!(disk.read_block(4), Err(BlockDeviceError::OutOfRange { index: 4, .. })));
        assert!(matches!(
            disk.write_block(0, &[0u8; 100]),
            Err(BlockDeviceError::WrongBufferSize { got: 100, expected: 512 })
        ));
    }

    #[test]
    fn sequential_vs_random_classification() {
        let clock = SimClock::new();
        let disk = MemDisk::new(64, 4096, clock);
        let buf = vec![0u8; 4096];
        disk.write_block(0, &buf).unwrap(); // first op: random (no predecessor)
        disk.write_block(1, &buf).unwrap(); // sequential
        disk.write_block(2, &buf).unwrap(); // sequential
        disk.write_block(10, &buf).unwrap(); // random
        let s = disk.stats();
        assert_eq!(s.seq_writes.ops, 2);
        assert_eq!(s.rand_writes.ops, 2);
    }

    #[test]
    fn writes_cost_more_time_than_reads() {
        let clock = SimClock::new();
        let disk = MemDisk::new(64, 4096, clock.clone());
        let buf = vec![0u8; 4096];
        let (_, w) = clock.measure(|| disk.write_block(1, &buf).unwrap());
        let (_, r) = clock.measure(|| {
            disk.read_block(2).unwrap();
        });
        assert!(w > r, "write {w} should exceed read {r}");
    }

    #[test]
    fn snapshot_is_point_in_time() {
        let disk = MemDisk::with_default_timing(8, 512);
        disk.write_block(3, &vec![9u8; 512]).unwrap();
        let snap = disk.snapshot();
        disk.write_block(3, &vec![7u8; 512]).unwrap();
        assert_eq!(snap.block(3), &vec![9u8; 512][..]);
        assert_eq!(disk.read_block(3).unwrap(), vec![7u8; 512]);
    }

    #[test]
    fn clone_shares_contents_and_stats() {
        let disk = MemDisk::with_default_timing(8, 512);
        let alias = disk.clone();
        disk.write_block(0, &vec![1u8; 512]).unwrap();
        assert_eq!(alias.read_block(0).unwrap(), vec![1u8; 512]);
        assert_eq!(alias.stats().total_writes(), 1);
    }

    #[test]
    fn fill_with_writes_everything_and_charges_time() {
        let clock = SimClock::new();
        let disk = MemDisk::new(32, 512, clock.clone());
        let mut counter = 0u8;
        disk.fill_with(|blk| {
            counter = counter.wrapping_add(1);
            blk.fill(counter);
        });
        assert_eq!(disk.read_block(0).unwrap()[0], 1);
        assert_eq!(disk.read_block(31).unwrap()[0], 32);
        assert!(clock.now().as_nanos() > 0);
        // fill_with counts 32 sequential writes plus the 2 verification reads.
        assert_eq!(disk.stats().total_writes(), 32);
    }

    #[test]
    fn injected_faults_fire() {
        let disk = MemDisk::with_default_timing(8, 512);
        let mut faults = FaultInjection::default();
        faults.failing_reads.insert(2);
        faults.failing_writes.insert(3);
        disk.set_faults(faults);
        assert!(disk.read_block(2).is_err());
        assert!(disk.read_block(1).is_ok());
        assert!(disk.write_block(3, &vec![0u8; 512]).is_err());
        assert!(disk.write_block(4, &vec![0u8; 512]).is_ok());
    }

    #[test]
    fn device_death_after_n_ops() {
        let disk = MemDisk::with_default_timing(8, 512);
        disk.set_faults(FaultInjection { die_after_ops: Some(2), ..Default::default() });
        assert!(disk.read_block(0).is_ok());
        assert!(disk.read_block(1).is_ok());
        assert!(disk.read_block(2).is_err());
        assert!(disk.write_block(0, &vec![0u8; 512]).is_err());
    }

    #[test]
    fn batched_ops_match_sequential_bytes_stats_and_time() {
        let batched = MemDisk::with_default_timing(32, 512);
        let sequential = MemDisk::with_default_timing(32, 512);
        let pattern: Vec<(BlockIndex, Vec<u8>)> =
            [(0u64, 1u8), (1, 2), (2, 3), (17, 4), (5, 5), (6, 6)]
                .iter()
                .map(|&(b, v)| (b, vec![v; 512]))
                .collect();
        let writes: Vec<(BlockIndex, &[u8])> =
            pattern.iter().map(|(b, d)| (*b, d.as_slice())).collect();
        batched.write_blocks(&writes).unwrap();
        for (b, d) in &pattern {
            sequential.write_block(*b, d).unwrap();
        }
        assert_eq!(batched.stats(), sequential.stats(), "same op mix and charged time");
        assert_eq!(batched.clock().now(), sequential.clock().now());
        assert_eq!(batched.snapshot().as_bytes(), sequential.snapshot().as_bytes());

        let indices = [2u64, 3, 9, 10, 11];
        let from_batch = batched.read_blocks(&indices).unwrap();
        let from_loop: Vec<Vec<u8>> =
            indices.iter().map(|&i| sequential.read_block(i).unwrap()).collect();
        assert_eq!(from_batch, from_loop);
        assert_eq!(batched.stats(), sequential.stats());
    }

    #[test]
    fn batched_write_failure_persists_prefix() {
        let disk = MemDisk::with_default_timing(8, 512);
        let mut faults = FaultInjection::default();
        faults.failing_writes.insert(2);
        disk.set_faults(faults);
        let a = vec![1u8; 512];
        let b = vec![2u8; 512];
        let c = vec![3u8; 512];
        let err = disk
            .write_blocks(&[(0, a.as_slice()), (1, b.as_slice()), (2, c.as_slice())])
            .unwrap_err();
        assert!(matches!(err, BlockDeviceError::Io { .. }));
        assert_eq!(disk.read_block(0).unwrap(), a, "prefix before the fault persisted");
        assert_eq!(disk.read_block(1).unwrap(), b);
        // Batched reads fail fast the same way.
        assert!(disk.read_blocks(&[0, 99]).is_err());
    }

    #[test]
    fn reset_stats_clears_counters() {
        let disk = MemDisk::with_default_timing(8, 512);
        disk.write_block(0, &vec![0u8; 512]).unwrap();
        disk.reset_stats();
        assert_eq!(disk.stats().total_writes(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_panics() {
        let _ = MemDisk::with_default_timing(0, 512);
    }
}
