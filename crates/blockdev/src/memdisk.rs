//! [`MemDisk`]: the RAM-backed simulated eMMC device.

use crate::device::{BlockDevice, BlockDeviceError, BlockIndex};
use crate::snapshot::DiskSnapshot;
use crate::stats::DeviceStats;
use mobiceal_sim::{CostModel, EmmcCostModel, OpKind, SimClock, SimDuration};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::Arc;

/// Fault-injection configuration: force specific blocks to fail.
///
/// Used by failure-path tests ("what happens when the medium dies under the
/// thin pool / under MobiCeal metadata?").
#[derive(Debug, Clone, Default)]
pub struct FaultInjection {
    /// Blocks whose reads fail.
    pub failing_reads: HashSet<BlockIndex>,
    /// Blocks whose writes fail.
    pub failing_writes: HashSet<BlockIndex>,
    /// Fail every operation after this many total ops (simulates device
    /// death). `None` disables.
    pub die_after_ops: Option<u64>,
}

struct Inner {
    blocks: Vec<u8>,
    stats: DeviceStats,
    last_block: Option<BlockIndex>,
    faults: FaultInjection,
    total_ops: u64,
}

/// An in-memory block device with eMMC timing, statistics, snapshots and
/// fault injection.
///
/// Cloning the wrapper is cheap and shares the same underlying storage
/// (mirroring how multiple dm targets can open one kernel block device).
///
/// # Example
///
/// ```
/// use mobiceal_blockdev::{BlockDevice, MemDisk};
/// use mobiceal_sim::SimClock;
///
/// let clock = SimClock::new();
/// let disk = MemDisk::new(64, 4096, clock.clone());
/// disk.write_block(0, &vec![1u8; 4096])?;
/// assert!(clock.now().as_nanos() > 0, "writes consume simulated time");
/// # Ok::<(), mobiceal_blockdev::BlockDeviceError>(())
/// ```
#[derive(Clone)]
pub struct MemDisk {
    inner: Arc<Mutex<Inner>>,
    num_blocks: u64,
    block_size: usize,
    clock: SimClock,
    cost: Arc<dyn CostModel>,
}

impl std::fmt::Debug for MemDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemDisk")
            .field("num_blocks", &self.num_blocks)
            .field("block_size", &self.block_size)
            .finish_non_exhaustive()
    }
}

impl MemDisk {
    /// Creates a disk with Nexus 4 eMMC timing on `clock`.
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks == 0` or `block_size == 0`.
    pub fn new(num_blocks: u64, block_size: usize, clock: SimClock) -> Self {
        Self::with_cost_model(num_blocks, block_size, clock, Arc::new(EmmcCostModel::nexus4()))
    }

    /// Creates a disk with Nexus 4 timing and a private clock — convenient
    /// for tests that do not inspect time.
    pub fn with_default_timing(num_blocks: u64, block_size: usize) -> Self {
        Self::new(num_blocks, block_size, SimClock::new())
    }

    /// Creates a disk with an explicit cost model.
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks == 0` or `block_size == 0`.
    pub fn with_cost_model(
        num_blocks: u64,
        block_size: usize,
        clock: SimClock,
        cost: Arc<dyn CostModel>,
    ) -> Self {
        assert!(num_blocks > 0, "device must have at least one block");
        assert!(block_size > 0, "block size must be positive");
        let bytes = usize::try_from(num_blocks)
            .ok()
            .and_then(|n| n.checked_mul(block_size))
            .expect("device too large for memory simulation");
        MemDisk {
            inner: Arc::new(Mutex::new(Inner {
                blocks: vec![0u8; bytes],
                stats: DeviceStats::default(),
                last_block: None,
                faults: FaultInjection::default(),
                total_ops: 0,
            })),
            num_blocks,
            block_size,
            clock,
            cost,
        }
    }

    /// The clock this disk charges time to.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Snapshot of the I/O statistics.
    pub fn stats(&self) -> DeviceStats {
        self.inner.lock().stats
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&self) {
        self.inner.lock().stats = DeviceStats::default();
    }

    /// Installs a fault-injection configuration.
    pub fn set_faults(&self, faults: FaultInjection) {
        self.inner.lock().faults = faults;
    }

    /// Takes a bit-exact image of the medium — what the paper's
    /// multi-snapshot adversary captures at a checkpoint (§III-A).
    pub fn snapshot(&self) -> DiskSnapshot {
        let inner = self.inner.lock();
        DiskSnapshot::new(self.block_size, self.num_blocks, inner.blocks.clone())
    }

    /// Overwrites the whole medium with the given byte (e.g. secure wipe).
    pub fn fill(&self, byte: u8) {
        let mut inner = self.inner.lock();
        inner.blocks.fill(byte);
    }

    /// Overwrites the whole medium with caller-provided content generator
    /// (used for the initialization step that fills the disk with
    /// randomness). A full-disk fill is the most amortizable transfer a
    /// real device sees — one maximal sequential write extent — so it is
    /// charged as a single multi-block command, like any other batch.
    pub fn fill_with(&self, mut gen: impl FnMut(&mut [u8])) {
        let mut inner = self.inner.lock();
        let bs = self.block_size;
        let mut command = (0usize, SimDuration::ZERO);
        let mut ignored = (0usize, SimDuration::ZERO);
        let mut total = SimDuration::ZERO;
        for i in 0..self.num_blocks {
            let start = i as usize * bs;
            gen(&mut inner.blocks[start..start + bs]);
            let t = self.batch_charge(OpKind::SequentialWrite, &mut command, &mut ignored);
            total += t;
            inner.stats.record(OpKind::SequentialWrite, bs, t);
        }
        self.clock.advance(total);
        inner.last_block = Some(self.num_blocks - 1);
    }

    fn classify(last: Option<BlockIndex>, index: BlockIndex, write: bool) -> OpKind {
        let sequential = matches!(last, Some(prev) if index == prev + 1);
        match (write, sequential) {
            (false, true) => OpKind::SequentialRead,
            (false, false) => OpKind::RandomRead,
            (true, true) => OpKind::SequentialWrite,
            (true, false) => OpKind::RandomWrite,
        }
    }

    /// Incremental coster for one batched call: the blocks of a
    /// `read_blocks`/`write_blocks` batch merge into at most two simulated
    /// multi-block commands — one for the sequentially-merging blocks
    /// (CMD23 + CMD25/CMD18) and one packed command for the scattered rest —
    /// so each command's setup is charged once per batch instead of once
    /// per block. Each block's marginal charge telescopes, so the per-block
    /// times recorded in the statistics sum exactly to
    /// [`CostModel::batch_cost`] per command, and a model without
    /// amortization (the default `batch_cost`, or `flat()`) reproduces the
    /// sequential loop's charges bit for bit.
    /// Each command tracks `(blocks so far, cumulative cost so far)` so the
    /// marginal charge needs one cost-model evaluation per block.
    fn batch_charge(
        &self,
        op: OpKind,
        seq: &mut (usize, SimDuration),
        rand: &mut (usize, SimDuration),
    ) -> SimDuration {
        let command = match op {
            OpKind::SequentialRead | OpKind::SequentialWrite => seq,
            OpKind::RandomRead | OpKind::RandomWrite => rand,
            OpKind::Flush => return self.cost.cost(OpKind::Flush, 0),
        };
        command.0 += 1;
        let cumulative = self.cost.batch_cost(op, command.0, command.0 * self.block_size);
        let marginal = cumulative - command.1;
        command.1 = cumulative;
        marginal
    }

    fn check_faults(
        inner: &mut Inner,
        index: BlockIndex,
        write: bool,
    ) -> Result<(), BlockDeviceError> {
        inner.total_ops += 1;
        if let Some(limit) = inner.faults.die_after_ops {
            if inner.total_ops > limit {
                return Err(BlockDeviceError::Io {
                    reason: format!("device died after {limit} ops"),
                });
            }
        }
        let failing =
            if write { &inner.faults.failing_writes } else { &inner.faults.failing_reads };
        if failing.contains(&index) {
            return Err(BlockDeviceError::Io {
                reason: format!(
                    "injected {} fault at block {index}",
                    if write { "write" } else { "read" }
                ),
            });
        }
        Ok(())
    }
}

impl BlockDevice for MemDisk {
    fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    fn block_size(&self) -> usize {
        self.block_size
    }

    fn read_block(&self, index: BlockIndex) -> Result<Vec<u8>, BlockDeviceError> {
        self.check_index(index)?;
        let mut inner = self.inner.lock();
        Self::check_faults(&mut inner, index, false)?;
        let op = Self::classify(inner.last_block, index, false);
        inner.last_block = Some(index);
        let t = self.cost.cost(op, self.block_size);
        self.clock.advance(t);
        inner.stats.record(op, self.block_size, t);
        let start = index as usize * self.block_size;
        Ok(inner.blocks[start..start + self.block_size].to_vec())
    }

    fn write_block(&self, index: BlockIndex, data: &[u8]) -> Result<(), BlockDeviceError> {
        self.check_index(index)?;
        self.check_buffer(data)?;
        let mut inner = self.inner.lock();
        Self::check_faults(&mut inner, index, true)?;
        let op = Self::classify(inner.last_block, index, true);
        inner.last_block = Some(index);
        let t = self.cost.cost(op, self.block_size);
        self.clock.advance(t);
        inner.stats.record(op, self.block_size, t);
        let start = index as usize * self.block_size;
        inner.blocks[start..start + self.block_size].copy_from_slice(data);
        Ok(())
    }

    /// Batched read: one lock acquisition, one clock advance, and
    /// *amortized multi-command* costing for the whole batch — command
    /// setup is charged once per simulated multi-block command (see
    /// [`MemDisk::batch_charge`]) instead of once per block. Bytes
    /// returned, statistics op mix/byte counts, fault checks and
    /// sequential/random classification are identical to issuing the reads
    /// one by one; charged time is less than or equal to the sequential
    /// loop's, with equality for single-block batches and for cost models
    /// without amortization.
    fn read_blocks(&self, indices: &[BlockIndex]) -> Result<Vec<Vec<u8>>, BlockDeviceError> {
        let mut inner = self.inner.lock();
        let mut out = Vec::with_capacity(indices.len());
        let mut total = mobiceal_sim::SimDuration::ZERO;
        let (mut seq, mut rand) = ((0, SimDuration::ZERO), (0, SimDuration::ZERO));
        let result = (|| {
            for &index in indices {
                self.check_index(index)?;
                Self::check_faults(&mut inner, index, false)?;
                let op = Self::classify(inner.last_block, index, false);
                inner.last_block = Some(index);
                let t = self.batch_charge(op, &mut seq, &mut rand);
                total += t;
                inner.stats.record(op, self.block_size, t);
                let start = index as usize * self.block_size;
                out.push(inner.blocks[start..start + self.block_size].to_vec());
            }
            Ok(())
        })();
        self.clock.advance(total);
        result.map(|()| out)
    }

    /// Batched write: one lock acquisition, one clock advance, and
    /// *amortized multi-command* costing for the whole batch (see
    /// [`MemDisk::read_blocks`]); otherwise byte- and op-mix-identical to
    /// the equivalent sequence of single-block writes (fail-fast, prefix
    /// persists, the prefix's amortized time is charged).
    fn write_blocks(&self, writes: &[(BlockIndex, &[u8])]) -> Result<(), BlockDeviceError> {
        let mut inner = self.inner.lock();
        let mut total = mobiceal_sim::SimDuration::ZERO;
        let (mut seq, mut rand) = ((0, SimDuration::ZERO), (0, SimDuration::ZERO));
        let result = (|| {
            for &(index, data) in writes {
                self.check_index(index)?;
                self.check_buffer(data)?;
                Self::check_faults(&mut inner, index, true)?;
                let op = Self::classify(inner.last_block, index, true);
                inner.last_block = Some(index);
                let t = self.batch_charge(op, &mut seq, &mut rand);
                total += t;
                inner.stats.record(op, self.block_size, t);
                let start = index as usize * self.block_size;
                inner.blocks[start..start + self.block_size].copy_from_slice(data);
            }
            Ok(())
        })();
        self.clock.advance(total);
        result
    }

    fn flush(&self) -> Result<(), BlockDeviceError> {
        let mut inner = self.inner.lock();
        let t = self.cost.cost(OpKind::Flush, 0);
        self.clock.advance(t);
        inner.stats.record(OpKind::Flush, 0, t);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_back_what_was_written() {
        let disk = MemDisk::with_default_timing(16, 512);
        let data = vec![0x5Au8; 512];
        disk.write_block(7, &data).unwrap();
        assert_eq!(disk.read_block(7).unwrap(), data);
        assert_eq!(disk.read_block(6).unwrap(), vec![0u8; 512]);
    }

    #[test]
    fn rejects_out_of_range_and_bad_buffers() {
        let disk = MemDisk::with_default_timing(4, 512);
        assert!(matches!(disk.read_block(4), Err(BlockDeviceError::OutOfRange { index: 4, .. })));
        assert!(matches!(
            disk.write_block(0, &[0u8; 100]),
            Err(BlockDeviceError::WrongBufferSize { got: 100, expected: 512 })
        ));
    }

    #[test]
    fn sequential_vs_random_classification() {
        let clock = SimClock::new();
        let disk = MemDisk::new(64, 4096, clock);
        let buf = vec![0u8; 4096];
        disk.write_block(0, &buf).unwrap(); // first op: random (no predecessor)
        disk.write_block(1, &buf).unwrap(); // sequential
        disk.write_block(2, &buf).unwrap(); // sequential
        disk.write_block(10, &buf).unwrap(); // random
        let s = disk.stats();
        assert_eq!(s.seq_writes.ops, 2);
        assert_eq!(s.rand_writes.ops, 2);
    }

    #[test]
    fn writes_cost_more_time_than_reads() {
        let clock = SimClock::new();
        let disk = MemDisk::new(64, 4096, clock.clone());
        let buf = vec![0u8; 4096];
        let (_, w) = clock.measure(|| disk.write_block(1, &buf).unwrap());
        let (_, r) = clock.measure(|| {
            disk.read_block(2).unwrap();
        });
        assert!(w > r, "write {w} should exceed read {r}");
    }

    #[test]
    fn snapshot_is_point_in_time() {
        let disk = MemDisk::with_default_timing(8, 512);
        disk.write_block(3, &vec![9u8; 512]).unwrap();
        let snap = disk.snapshot();
        disk.write_block(3, &vec![7u8; 512]).unwrap();
        assert_eq!(snap.block(3), &vec![9u8; 512][..]);
        assert_eq!(disk.read_block(3).unwrap(), vec![7u8; 512]);
    }

    #[test]
    fn clone_shares_contents_and_stats() {
        let disk = MemDisk::with_default_timing(8, 512);
        let alias = disk.clone();
        disk.write_block(0, &vec![1u8; 512]).unwrap();
        assert_eq!(alias.read_block(0).unwrap(), vec![1u8; 512]);
        assert_eq!(alias.stats().total_writes(), 1);
    }

    #[test]
    fn fill_with_writes_everything_and_charges_time() {
        let clock = SimClock::new();
        let disk = MemDisk::new(32, 512, clock.clone());
        let mut counter = 0u8;
        disk.fill_with(|blk| {
            counter = counter.wrapping_add(1);
            blk.fill(counter);
        });
        assert_eq!(disk.read_block(0).unwrap()[0], 1);
        assert_eq!(disk.read_block(31).unwrap()[0], 32);
        assert!(clock.now().as_nanos() > 0);
        // fill_with counts 32 sequential writes plus the 2 verification reads.
        assert_eq!(disk.stats().total_writes(), 32);
    }

    #[test]
    fn injected_faults_fire() {
        let disk = MemDisk::with_default_timing(8, 512);
        let mut faults = FaultInjection::default();
        faults.failing_reads.insert(2);
        faults.failing_writes.insert(3);
        disk.set_faults(faults);
        assert!(disk.read_block(2).is_err());
        assert!(disk.read_block(1).is_ok());
        assert!(disk.write_block(3, &vec![0u8; 512]).is_err());
        assert!(disk.write_block(4, &vec![0u8; 512]).is_ok());
    }

    #[test]
    fn device_death_after_n_ops() {
        let disk = MemDisk::with_default_timing(8, 512);
        disk.set_faults(FaultInjection { die_after_ops: Some(2), ..Default::default() });
        assert!(disk.read_block(0).is_ok());
        assert!(disk.read_block(1).is_ok());
        assert!(disk.read_block(2).is_err());
        assert!(disk.write_block(0, &vec![0u8; 512]).is_err());
    }

    #[test]
    fn batched_ops_match_sequential_bytes_and_stats_amortizing_time() {
        let batched = MemDisk::with_default_timing(32, 512);
        let sequential = MemDisk::with_default_timing(32, 512);
        let pattern: Vec<(BlockIndex, Vec<u8>)> =
            [(0u64, 1u8), (1, 2), (2, 3), (17, 4), (5, 5), (6, 6)]
                .iter()
                .map(|&(b, v)| (b, vec![v; 512]))
                .collect();
        let writes: Vec<(BlockIndex, &[u8])> =
            pattern.iter().map(|(b, d)| (*b, d.as_slice())).collect();
        batched.write_blocks(&writes).unwrap();
        for (b, d) in &pattern {
            sequential.write_block(*b, d).unwrap();
        }
        assert_eq!(
            batched.stats().without_time(),
            sequential.stats().without_time(),
            "same op mix and bytes"
        );
        // The six writes merge into two simulated commands (one sequential,
        // one packed random), so the batch is strictly cheaper than six
        // single-block commands, and the stats account for exactly the
        // charged time.
        assert!(batched.clock().now() < sequential.clock().now(), "amortization must show");
        assert_eq!(batched.stats().total_time().as_nanos(), batched.clock().now().as_nanos());
        assert_eq!(batched.snapshot().as_bytes(), sequential.snapshot().as_bytes());

        let indices = [2u64, 3, 9, 10, 11];
        let from_batch = batched.read_blocks(&indices).unwrap();
        let from_loop: Vec<Vec<u8>> =
            indices.iter().map(|&i| sequential.read_block(i).unwrap()).collect();
        assert_eq!(from_batch, from_loop);
        assert_eq!(batched.stats().without_time(), sequential.stats().without_time());
    }

    #[test]
    fn batch_of_one_charges_exactly_the_single_block_time() {
        let batched = MemDisk::with_default_timing(32, 512);
        let sequential = MemDisk::with_default_timing(32, 512);
        let d = vec![7u8; 512];
        batched.write_blocks(&[(3, d.as_slice())]).unwrap();
        sequential.write_block(3, &d).unwrap();
        assert_eq!(batched.clock().now(), sequential.clock().now());
        assert_eq!(batched.stats(), sequential.stats());
        batched.read_blocks(&[3]).unwrap();
        sequential.read_block(3).unwrap();
        assert_eq!(batched.clock().now(), sequential.clock().now());
        assert_eq!(batched.stats(), sequential.stats());
    }

    #[test]
    fn flat_cost_model_batches_charge_sequential_time() {
        // The control profile: without command-setup amortization the
        // batched path reproduces the sequential loop's charges exactly.
        let mk = || {
            MemDisk::with_cost_model(
                32,
                512,
                SimClock::new(),
                Arc::new(EmmcCostModel::flat(25_000)),
            )
        };
        let (batched, sequential) = (mk(), mk());
        let pattern: Vec<(BlockIndex, Vec<u8>)> = [(0u64, 1u8), (1, 2), (9, 3), (10, 4)]
            .iter()
            .map(|&(b, v)| (b, vec![v; 512]))
            .collect();
        let writes: Vec<(BlockIndex, &[u8])> =
            pattern.iter().map(|(b, d)| (*b, d.as_slice())).collect();
        batched.write_blocks(&writes).unwrap();
        for (b, d) in &pattern {
            sequential.write_block(*b, d).unwrap();
        }
        assert_eq!(batched.clock().now(), sequential.clock().now());
        assert_eq!(batched.stats(), sequential.stats());
    }

    #[test]
    fn deeper_batches_charge_monotonically_more_time() {
        let mut last = 0u64;
        for depth in [1usize, 4, 16, 64] {
            let disk = MemDisk::with_default_timing(128, 512);
            let data = vec![1u8; 512];
            let writes: Vec<(BlockIndex, &[u8])> =
                (0..depth as u64).map(|b| (b, data.as_slice())).collect();
            disk.write_blocks(&writes).unwrap();
            let t = disk.clock().now().as_nanos();
            assert!(t > last, "depth {depth} must cost more than shallower batches");
            last = t;
        }
    }

    #[test]
    fn batched_write_failure_persists_prefix() {
        let disk = MemDisk::with_default_timing(8, 512);
        let mut faults = FaultInjection::default();
        faults.failing_writes.insert(2);
        disk.set_faults(faults);
        let a = vec![1u8; 512];
        let b = vec![2u8; 512];
        let c = vec![3u8; 512];
        let err = disk
            .write_blocks(&[(0, a.as_slice()), (1, b.as_slice()), (2, c.as_slice())])
            .unwrap_err();
        assert!(matches!(err, BlockDeviceError::Io { .. }));
        assert_eq!(disk.read_block(0).unwrap(), a, "prefix before the fault persisted");
        assert_eq!(disk.read_block(1).unwrap(), b);
        // Batched reads fail fast the same way.
        assert!(disk.read_blocks(&[0, 99]).is_err());
    }

    #[test]
    fn reset_stats_clears_counters() {
        let disk = MemDisk::with_default_timing(8, 512);
        disk.write_block(0, &vec![0u8; 512]).unwrap();
        disk.reset_stats();
        assert_eq!(disk.stats().total_writes(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_panics() {
        let _ = MemDisk::with_default_timing(0, 512);
    }
}
