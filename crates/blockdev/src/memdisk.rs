//! [`MemDisk`]: the RAM-backed simulated eMMC device.
//!
//! # Concurrency architecture
//!
//! The medium is striped across shard locks so that batches from different
//! threads (e.g. two thin volumes writing at once) copy their bytes in
//! parallel:
//!
//! * **Shards** — the block array is partitioned into contiguous runs,
//!   each behind its own mutex. A block's bytes are only ever touched
//!   under its shard lock, so every single-block copy is atomic and
//!   writes to disjoint ranges are byte-equal to any sequential
//!   interleaving of the same batches.
//! * **Command state** — sequential/random classification (`last_block`),
//!   fault injection and the op counter are inherently serial device
//!   state: one short mutex guards them. Each batch *plans* under this
//!   lock — classifying, charging the clock and recording statistics —
//!   then releases it and performs the data copies under the shard locks.
//!   Single-threaded drives therefore charge bit-identically to the old
//!   single-lock device: the plan loop is the same loop.
//! * **Statistics and clock** — [`AtomicDeviceStats`] and the (already
//!   atomic) [`SimClock`] accumulate without locks, so per-op marginal
//!   charges telescope exactly to the clock advance no matter how many
//!   threads charge concurrently.
//! * **Queue depth** — an in-flight counter models the host keeping
//!   several commands outstanding: a batch submitted while `k` others are
//!   in flight charges [`CostModel::batch_cost_at_depth`] at depth `k+1`
//!   (saturating at the profile's hardware queue depth). The counter is
//!   fed two ways: executing commands register themselves for the
//!   duration of the call, and a submission/completion engine
//!   (`mobiceal_blockdev::engine`) registers every queued-but-unexecuted
//!   ring slot via [`BlockDevice::host_queue_enter`], so the depth a
//!   command is charged at equals the genuine ring occupancy it overlaps
//!   with. A lone command — every single-threaded caller without a ring —
//!   observes depth 1 and charges the pre-CQE cost bit for bit.

use crate::device::{BlockDevice, BlockDeviceError, BlockIndex};
use crate::snapshot::DiskSnapshot;
use crate::stats::{AtomicDeviceStats, DeviceStats};
use mobiceal_sim::{CostModel, EmmcCostModel, OpKind, SimClock, SimDuration};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Fault-injection configuration: force specific blocks to fail.
///
/// Used by failure-path tests ("what happens when the medium dies under the
/// thin pool / under MobiCeal metadata?").
#[derive(Debug, Clone, Default)]
pub struct FaultInjection {
    /// Blocks whose reads fail.
    pub failing_reads: HashSet<BlockIndex>,
    /// Blocks whose writes fail.
    pub failing_writes: HashSet<BlockIndex>,
    /// Fail every operation after this many total ops (simulates device
    /// death). `None` disables.
    pub die_after_ops: Option<u64>,
    /// Tear one write mid-block and kill the device (simulates a power cut
    /// inside a program operation). `None` disables.
    pub torn_write: Option<TornWrite>,
}

/// A power cut in the middle of one block program operation: write number
/// `after_writes + 1` (counting every block of every write since
/// [`MemDisk::set_faults`]) persists only its first `keep_bytes` bytes,
/// the operation reports failure, and every subsequent operation fails —
/// the device is dead until the next `set_faults` resets it. The torn
/// write charges no simulated time (the device lost power mid-program).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornWrite {
    /// How many block writes complete untouched before the tear fires.
    pub after_writes: u64,
    /// Bytes of the torn block that reach the medium (clamped to the
    /// block size).
    pub keep_bytes: usize,
}

/// The serial "command engine" state: what a real device's single command
/// decoder sees. Classification and fault accounting depend on global
/// operation order, so they live behind one (short) lock; the data path
/// does not.
struct CmdState {
    last_block: Option<BlockIndex>,
    faults: FaultInjection,
    total_ops: u64,
    /// Block writes seen since the faults were installed (drives
    /// [`TornWrite::after_writes`]).
    writes_seen: u64,
    /// Set when a torn write fires: the device lost power and every
    /// subsequent operation fails until new faults are installed.
    dead: bool,
}

/// How one planned block failed: an ordinary injected error, or a torn
/// write whose partial bytes must still reach the medium.
enum PlannedFault {
    Fail(BlockDeviceError),
    Tear { keep_bytes: usize },
}

/// State shared by every clone of a [`MemDisk`].
struct DiskShared {
    /// The medium, striped into contiguous runs of blocks. Lock order:
    /// ascending shard index (whole-device operations); per-block copies
    /// take exactly one shard lock.
    shards: Box<[Mutex<Vec<u8>>]>,
    stats: AtomicDeviceStats,
    cmd: Mutex<CmdState>,
    /// Commands currently executing or occupying a host queue slot
    /// ([`BlockDevice::host_queue_enter`]), across all threads — the
    /// simulated host controller's occupancy.
    in_flight: AtomicUsize,
    /// Deterministic lower bound on the charged queue depth (default 1).
    /// Test-only: real overlap (threads or the submission engine) drives
    /// depth in production code.
    #[cfg(any(test, feature = "test-hooks"))]
    depth_floor: AtomicUsize,
}

/// How many shard locks to stripe the medium across. More shards mean
/// less false sharing between concurrent batches; 64 keeps the per-disk
/// footprint trivial while comfortably exceeding any realistic worker
/// count.
const SHARD_TARGET: u64 = 64;

/// Decrements the in-flight counter when a command completes (RAII so an
/// early return cannot leak occupancy).
struct InFlight<'a>(&'a AtomicUsize);

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// An in-memory block device with eMMC timing, statistics, snapshots and
/// fault injection.
///
/// Cloning the wrapper is cheap and shares the same underlying storage
/// (mirroring how multiple dm targets can open one kernel block device).
///
/// # Example
///
/// ```
/// use mobiceal_blockdev::{BlockDevice, MemDisk};
/// use mobiceal_sim::SimClock;
///
/// let clock = SimClock::new();
/// let disk = MemDisk::new(64, 4096, clock.clone());
/// disk.write_block(0, &vec![1u8; 4096])?;
/// assert!(clock.now().as_nanos() > 0, "writes consume simulated time");
/// # Ok::<(), mobiceal_blockdev::BlockDeviceError>(())
/// ```
#[derive(Clone)]
pub struct MemDisk {
    shared: Arc<DiskShared>,
    num_blocks: u64,
    block_size: usize,
    /// Blocks per shard (the last shard may be shorter).
    shard_blocks: u64,
    clock: SimClock,
    cost: Arc<dyn CostModel>,
}

impl std::fmt::Debug for MemDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemDisk")
            .field("num_blocks", &self.num_blocks)
            .field("block_size", &self.block_size)
            .finish_non_exhaustive()
    }
}

impl MemDisk {
    /// Creates a disk with Nexus 4 eMMC timing on `clock`.
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks == 0` or `block_size == 0`.
    pub fn new(num_blocks: u64, block_size: usize, clock: SimClock) -> Self {
        Self::with_cost_model(num_blocks, block_size, clock, Arc::new(EmmcCostModel::nexus4()))
    }

    /// Creates a disk with Nexus 4 timing and a private clock — convenient
    /// for tests that do not inspect time.
    pub fn with_default_timing(num_blocks: u64, block_size: usize) -> Self {
        Self::new(num_blocks, block_size, SimClock::new())
    }

    /// Creates a disk with an explicit cost model.
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks == 0` or `block_size == 0`.
    pub fn with_cost_model(
        num_blocks: u64,
        block_size: usize,
        clock: SimClock,
        cost: Arc<dyn CostModel>,
    ) -> Self {
        assert!(num_blocks > 0, "device must have at least one block");
        assert!(block_size > 0, "block size must be positive");
        usize::try_from(num_blocks)
            .ok()
            .and_then(|n| n.checked_mul(block_size))
            // analyzer: allow(panic_freedom, reason = "constructor-time geometry guard beside the existing asserts; fails at setup, never on the I/O path")
            .expect("device too large for memory simulation");
        let shard_blocks = num_blocks.div_ceil(SHARD_TARGET).max(1);
        let shard_count = num_blocks.div_ceil(shard_blocks);
        let shards: Box<[Mutex<Vec<u8>>]> = (0..shard_count)
            .map(|i| {
                let blocks = shard_blocks.min(num_blocks - i * shard_blocks) as usize;
                Mutex::new(vec![0u8; blocks * block_size])
            })
            .collect();
        MemDisk {
            shared: Arc::new(DiskShared {
                shards,
                stats: AtomicDeviceStats::default(),
                cmd: Mutex::new(CmdState {
                    last_block: None,
                    faults: FaultInjection::default(),
                    total_ops: 0,
                    writes_seen: 0,
                    dead: false,
                }),
                in_flight: AtomicUsize::new(0),
                #[cfg(any(test, feature = "test-hooks"))]
                depth_floor: AtomicUsize::new(1),
            }),
            num_blocks,
            block_size,
            shard_blocks,
            clock,
            cost,
        }
    }

    /// The clock this disk charges time to.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Snapshot of the I/O statistics.
    pub fn stats(&self) -> DeviceStats {
        self.shared.stats.snapshot()
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&self) {
        self.shared.stats.reset();
    }

    /// Installs a fault-injection configuration, restarting the torn-write
    /// counter and reviving a device a previous tear killed.
    pub fn set_faults(&self, faults: FaultInjection) {
        let mut cmd = self.shared.cmd.lock();
        cmd.faults = faults;
        cmd.writes_seen = 0;
        cmd.dead = false;
    }

    /// Replaces the entire medium with `image` without charging simulated
    /// time or touching statistics — the crash harness's "reboot from a
    /// captured power-cut image" primitive.
    ///
    /// # Panics
    ///
    /// Panics if the image's geometry differs from the device's.
    pub fn load_image(&self, image: &DiskSnapshot) {
        assert_eq!(image.block_size(), self.block_size, "image block size mismatch");
        assert_eq!(image.num_blocks(), self.num_blocks, "image block count mismatch");
        let mut guards: Vec<_> = self.shared.shards.iter().map(|s| s.lock()).collect();
        let mut offset = 0usize;
        for g in guards.iter_mut() {
            let len = g.len();
            g.copy_from_slice(&image.as_bytes()[offset..offset + len]);
            offset += len;
        }
    }

    /// Pins the minimum queue depth every command is charged at, as if a
    /// driver always kept `floor` commands outstanding (clamped to at
    /// least 1; the cost model further saturates it at its hardware
    /// queue depth, so the default profiles are unaffected).
    ///
    /// **Test hook only** (`cfg(any(test, feature = "test-hooks"))`): it
    /// exists so properties can pin the depth-`d` charge a command *would*
    /// take and compare it against real overlap. Production depth comes
    /// from genuine occupancy — concurrent callers and the submission
    /// engine's ring slots (`mobiceal_blockdev::engine`).
    #[cfg(any(test, feature = "test-hooks"))]
    pub fn set_queue_depth_floor(&self, floor: usize) {
        self.shared.depth_floor.store(floor.max(1), Ordering::SeqCst);
    }

    /// Takes a bit-exact image of the medium — what the paper's
    /// multi-snapshot adversary captures at a checkpoint (§III-A).
    /// Acquires every shard (in ascending order) so the image is a
    /// consistent point-in-time cut even under concurrent writers.
    pub fn snapshot(&self) -> DiskSnapshot {
        let guards: Vec<_> = self.shared.shards.iter().map(|s| s.lock()).collect();
        let mut bytes = Vec::with_capacity(self.num_blocks as usize * self.block_size);
        for g in &guards {
            bytes.extend_from_slice(g);
        }
        DiskSnapshot::new(self.block_size, self.num_blocks, bytes)
    }

    /// Overwrites the whole medium with the given byte (e.g. secure wipe).
    pub fn fill(&self, byte: u8) {
        let guards: Vec<_> = self.shared.shards.iter().map(|s| s.lock()).collect();
        for mut g in guards {
            g.fill(byte);
        }
    }

    /// Overwrites the whole medium with caller-provided content generator
    /// (used for the initialization step that fills the disk with
    /// randomness). A full-disk fill is the most amortizable transfer a
    /// real device sees — one maximal sequential write extent — so it is
    /// charged as a single multi-block command, like any other batch.
    /// Like [`MemDisk::fill`] and [`MemDisk::snapshot`], every shard is
    /// held for the whole operation, so a concurrent observer sees the
    /// fill all-or-nothing.
    pub fn fill_with(&self, mut gen: impl FnMut(&mut [u8])) {
        let bs = self.block_size;
        let _io = self.begin_command();
        let mut guards: Vec<_> = self.shared.shards.iter().map(|s| s.lock()).collect();
        {
            let depth = self.observed_depth();
            let mut cmd = self.shared.cmd.lock();
            let mut command = (0usize, SimDuration::ZERO);
            let mut total = SimDuration::ZERO;
            for _ in 0..self.num_blocks {
                let t = self.batch_charge(OpKind::SequentialWrite, &mut command, depth);
                total += t;
                self.shared.stats.record(OpKind::SequentialWrite, bs, t);
            }
            self.clock.advance(total);
            cmd.last_block = Some(self.num_blocks - 1);
        }
        for g in guards.iter_mut() {
            for block in g.chunks_mut(bs) {
                gen(block);
            }
        }
    }

    fn classify(last: Option<BlockIndex>, index: BlockIndex, write: bool) -> OpKind {
        let sequential = matches!(last, Some(prev) if index == prev + 1);
        match (write, sequential) {
            (false, true) => OpKind::SequentialRead,
            (false, false) => OpKind::RandomRead,
            (true, true) => OpKind::SequentialWrite,
            (true, false) => OpKind::RandomWrite,
        }
    }

    /// Registers one command with the simulated host controller for the
    /// duration of the returned guard.
    fn begin_command(&self) -> InFlight<'_> {
        self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
        InFlight(&self.shared.in_flight)
    }

    /// The queue depth this command is charged at: the controller's
    /// current occupancy (including this command, plus any queued ring
    /// slots registered via [`BlockDevice::host_queue_enter`]). Call after
    /// [`MemDisk::begin_command`]. Test builds additionally respect the
    /// pinned floor.
    fn observed_depth(&self) -> usize {
        let occupancy = self.shared.in_flight.load(Ordering::SeqCst);
        #[cfg(any(test, feature = "test-hooks"))]
        let occupancy = occupancy.max(self.shared.depth_floor.load(Ordering::SeqCst));
        occupancy.max(1)
    }

    /// Incremental coster for one batched call: the blocks of a
    /// `read_blocks`/`write_blocks` batch merge into at most two simulated
    /// multi-block commands — one for the sequentially-merging blocks
    /// (CMD23 + CMD25/CMD18) and one packed command for the scattered rest —
    /// so each command's setup is charged once per batch instead of once
    /// per block, and (on queue-capable profiles) the command's latency
    /// overlaps the other `depth - 1` commands in flight. Each block's
    /// marginal charge telescopes, so the per-block times recorded in the
    /// statistics sum exactly to [`CostModel::batch_cost_at_depth`] per
    /// command, and a model without amortization (the default
    /// `batch_cost`, or `flat()`) driven at depth 1 reproduces the
    /// sequential loop's charges bit for bit.
    /// Each command tracks `(blocks so far, cumulative cost so far)` so the
    /// marginal charge needs one cost-model evaluation per block.
    fn batch_charge(
        &self,
        op: OpKind,
        command: &mut (usize, SimDuration),
        depth: usize,
    ) -> SimDuration {
        if op == OpKind::Flush {
            return self.cost.cost(OpKind::Flush, 0);
        }
        command.0 += 1;
        let cumulative =
            self.cost.batch_cost_at_depth(op, command.0, command.0 * self.block_size, depth);
        let marginal = cumulative - command.1;
        command.1 = cumulative;
        marginal
    }

    fn check_faults(
        cmd: &mut CmdState,
        index: BlockIndex,
        write: bool,
    ) -> Result<(), PlannedFault> {
        if cmd.dead {
            return Err(PlannedFault::Fail(BlockDeviceError::Io {
                reason: "device lost power (torn write)".into(),
            }));
        }
        cmd.total_ops += 1;
        if let Some(limit) = cmd.faults.die_after_ops {
            if cmd.total_ops > limit {
                return Err(PlannedFault::Fail(BlockDeviceError::Io {
                    reason: format!("device died after {limit} ops"),
                }));
            }
        }
        if write {
            cmd.writes_seen += 1;
            if let Some(tear) = cmd.faults.torn_write {
                if cmd.writes_seen == tear.after_writes + 1 {
                    cmd.dead = true;
                    return Err(PlannedFault::Tear { keep_bytes: tear.keep_bytes });
                }
            }
        }
        let failing = if write { &cmd.faults.failing_writes } else { &cmd.faults.failing_reads };
        if failing.contains(&index) {
            return Err(PlannedFault::Fail(BlockDeviceError::Io {
                reason: format!(
                    "injected {} fault at block {index}",
                    if write { "write" } else { "read" }
                ),
            }));
        }
        Ok(())
    }

    /// Plans one batch under the command lock: classifies, fault-checks
    /// and charges every block (at queue depth `depth`) until the first
    /// error, advancing the clock by the telescoped total. Returns the
    /// planned prefix length, the tear (if the batch hit a torn-write
    /// fault: only `keep_bytes` of the block after the prefix reach the
    /// medium, uncharged) and the first error, if any. The data copies
    /// happen *after* this, under the shard locks only; the caller holds
    /// its [`MemDisk::begin_command`] guard across both phases so the
    /// in-flight counter reflects commands whose data is still moving.
    fn plan_batch<'a>(
        &self,
        blocks: impl Iterator<Item = (BlockIndex, Option<&'a [u8]>)>,
        write: bool,
        depth: usize,
    ) -> (usize, Option<usize>, Option<BlockDeviceError>) {
        let mut cmd = self.shared.cmd.lock();
        let (mut seq, mut rand) = ((0, SimDuration::ZERO), (0, SimDuration::ZERO));
        let mut total = SimDuration::ZERO;
        let mut planned = 0usize;
        let mut torn = None;
        let mut error = None;
        for (index, data) in blocks {
            let check = self
                .check_index(index)
                .and_then(|()| data.map_or(Ok(()), |d| self.check_buffer(d)))
                .map_err(PlannedFault::Fail)
                .and_then(|()| Self::check_faults(&mut cmd, index, write));
            match check {
                Err(PlannedFault::Fail(e)) => {
                    error = Some(e);
                    break;
                }
                Err(PlannedFault::Tear { keep_bytes }) => {
                    torn = Some(keep_bytes);
                    error = Some(BlockDeviceError::Io {
                        reason: format!("power cut tore write at block {index}"),
                    });
                    break;
                }
                Ok(()) => {}
            }
            let op = Self::classify(cmd.last_block, index, write);
            cmd.last_block = Some(index);
            let command = match op {
                OpKind::SequentialRead | OpKind::SequentialWrite => &mut seq,
                _ => &mut rand,
            };
            let t = self.batch_charge(op, command, depth);
            total += t;
            self.shared.stats.record(op, self.block_size, t);
            planned += 1;
        }
        self.clock.advance(total);
        (planned, torn, error)
    }

    /// The shard holding `index` and the byte offset of the block inside
    /// that shard's buffer.
    fn locate(&self, index: BlockIndex) -> (usize, usize) {
        let shard = (index / self.shard_blocks) as usize;
        let offset = ((index % self.shard_blocks) as usize) * self.block_size;
        (shard, offset)
    }

    /// Copies `data` into block `index` under its shard lock.
    fn store_block(&self, index: BlockIndex, data: &[u8]) {
        let (shard, offset) = self.locate(index);
        let mut g = self.shared.shards[shard].lock();
        g[offset..offset + self.block_size].copy_from_slice(data);
    }

    /// Torn-write splice: only the first `keep` bytes of `data` reach the
    /// medium; the block's remaining bytes keep their prior content.
    fn store_partial(&self, index: BlockIndex, data: &[u8], keep: usize) {
        let keep = keep.min(self.block_size).min(data.len());
        let (shard, offset) = self.locate(index);
        let mut g = self.shared.shards[shard].lock();
        g[offset..offset + keep].copy_from_slice(&data[..keep]);
    }

    /// Copies block `index` out under its shard lock.
    fn load_block(&self, index: BlockIndex) -> Vec<u8> {
        let (shard, offset) = self.locate(index);
        let g = self.shared.shards[shard].lock();
        g[offset..offset + self.block_size].to_vec()
    }
}

impl BlockDevice for MemDisk {
    fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    fn block_size(&self) -> usize {
        self.block_size
    }

    fn read_block(&self, index: BlockIndex) -> Result<Vec<u8>, BlockDeviceError> {
        let _io = self.begin_command();
        let depth = self.observed_depth();
        let (planned, _, error) = self.plan_batch(std::iter::once((index, None)), false, depth);
        match error {
            Some(e) => Err(e),
            None => {
                debug_assert_eq!(planned, 1);
                Ok(self.load_block(index))
            }
        }
    }

    fn write_block(&self, index: BlockIndex, data: &[u8]) -> Result<(), BlockDeviceError> {
        let _io = self.begin_command();
        let depth = self.observed_depth();
        let (planned, torn, error) =
            self.plan_batch(std::iter::once((index, Some(data))), true, depth);
        if let Some(keep) = torn {
            self.store_partial(index, data, keep);
        }
        match error {
            Some(e) => Err(e),
            None => {
                debug_assert_eq!(planned, 1);
                self.store_block(index, data);
                Ok(())
            }
        }
    }

    /// Batched read: one command-lock acquisition, one clock advance, and
    /// *amortized multi-command* costing for the whole batch — command
    /// setup is charged once per simulated multi-block command (see
    /// [`MemDisk::batch_charge`]) instead of once per block, and its
    /// latency overlaps other in-flight commands on queue-capable
    /// profiles. Bytes returned, statistics op mix/byte counts, fault
    /// checks and sequential/random classification are identical to
    /// issuing the reads one by one; charged time is less than or equal
    /// to the sequential loop's, with equality for single-block batches
    /// and for cost models without amortization. The copies run under the
    /// shard locks, concurrently with other threads' batches.
    fn read_blocks(&self, indices: &[BlockIndex]) -> Result<Vec<Vec<u8>>, BlockDeviceError> {
        let _io = self.begin_command();
        let depth = self.observed_depth();
        let (planned, _, error) =
            self.plan_batch(indices.iter().map(|&index| (index, None)), false, depth);
        let out = indices[..planned].iter().map(|&index| self.load_block(index)).collect();
        match error {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Batched write: one command-lock acquisition, one clock advance, and
    /// *amortized multi-command* costing for the whole batch (see
    /// [`MemDisk::read_blocks`]); otherwise byte- and op-mix-identical to
    /// the equivalent sequence of single-block writes (fail-fast, prefix
    /// persists, the prefix's amortized time is charged).
    fn write_blocks(&self, writes: &[(BlockIndex, &[u8])]) -> Result<(), BlockDeviceError> {
        let _io = self.begin_command();
        let depth = self.observed_depth();
        let (planned, torn, error) =
            self.plan_batch(writes.iter().map(|&(index, data)| (index, Some(data))), true, depth);
        for &(index, data) in &writes[..planned] {
            self.store_block(index, data);
        }
        if let Some(keep) = torn {
            let (index, data) = writes[planned];
            self.store_partial(index, data, keep);
        }
        match error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn flush(&self) -> Result<(), BlockDeviceError> {
        if self.shared.cmd.lock().dead {
            return Err(BlockDeviceError::Io { reason: "device lost power (torn write)".into() });
        }
        let _io = self.begin_command();
        let t = self.cost.cost(OpKind::Flush, 0);
        self.clock.advance(t);
        self.shared.stats.record(OpKind::Flush, 0, t);
        Ok(())
    }

    /// A queued-but-unexecuted command (a submission-engine ring slot)
    /// occupies the host controller exactly like an executing one: later
    /// commands overlap it and are charged at the deeper queue depth.
    fn host_queue_enter(&self) {
        self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
    }

    fn host_queue_leave(&self) {
        self.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_back_what_was_written() {
        let disk = MemDisk::with_default_timing(16, 512);
        let data = vec![0x5Au8; 512];
        disk.write_block(7, &data).unwrap();
        assert_eq!(disk.read_block(7).unwrap(), data);
        assert_eq!(disk.read_block(6).unwrap(), vec![0u8; 512]);
    }

    #[test]
    fn rejects_out_of_range_and_bad_buffers() {
        let disk = MemDisk::with_default_timing(4, 512);
        assert!(matches!(disk.read_block(4), Err(BlockDeviceError::OutOfRange { index: 4, .. })));
        assert!(matches!(
            disk.write_block(0, &[0u8; 100]),
            Err(BlockDeviceError::WrongBufferSize { got: 100, expected: 512 })
        ));
    }

    #[test]
    fn sequential_vs_random_classification() {
        let clock = SimClock::new();
        let disk = MemDisk::new(64, 4096, clock);
        let buf = vec![0u8; 4096];
        disk.write_block(0, &buf).unwrap(); // first op: random (no predecessor)
        disk.write_block(1, &buf).unwrap(); // sequential
        disk.write_block(2, &buf).unwrap(); // sequential
        disk.write_block(10, &buf).unwrap(); // random
        let s = disk.stats();
        assert_eq!(s.seq_writes.ops, 2);
        assert_eq!(s.rand_writes.ops, 2);
    }

    #[test]
    fn writes_cost_more_time_than_reads() {
        let clock = SimClock::new();
        let disk = MemDisk::new(64, 4096, clock.clone());
        let buf = vec![0u8; 4096];
        let (_, w) = clock.measure(|| disk.write_block(1, &buf).unwrap());
        let (_, r) = clock.measure(|| {
            disk.read_block(2).unwrap();
        });
        assert!(w > r, "write {w} should exceed read {r}");
    }

    #[test]
    fn snapshot_is_point_in_time() {
        let disk = MemDisk::with_default_timing(8, 512);
        disk.write_block(3, &vec![9u8; 512]).unwrap();
        let snap = disk.snapshot();
        disk.write_block(3, &vec![7u8; 512]).unwrap();
        assert_eq!(snap.block(3), &vec![9u8; 512][..]);
        assert_eq!(disk.read_block(3).unwrap(), vec![7u8; 512]);
    }

    #[test]
    fn clone_shares_contents_and_stats() {
        let disk = MemDisk::with_default_timing(8, 512);
        let alias = disk.clone();
        disk.write_block(0, &vec![1u8; 512]).unwrap();
        assert_eq!(alias.read_block(0).unwrap(), vec![1u8; 512]);
        assert_eq!(alias.stats().total_writes(), 1);
    }

    #[test]
    fn fill_with_writes_everything_and_charges_time() {
        let clock = SimClock::new();
        let disk = MemDisk::new(32, 512, clock.clone());
        let mut counter = 0u8;
        disk.fill_with(|blk| {
            counter = counter.wrapping_add(1);
            blk.fill(counter);
        });
        assert_eq!(disk.read_block(0).unwrap()[0], 1);
        assert_eq!(disk.read_block(31).unwrap()[0], 32);
        assert!(clock.now().as_nanos() > 0);
        // fill_with counts 32 sequential writes plus the 2 verification reads.
        assert_eq!(disk.stats().total_writes(), 32);
    }

    #[test]
    fn injected_faults_fire() {
        let disk = MemDisk::with_default_timing(8, 512);
        let mut faults = FaultInjection::default();
        faults.failing_reads.insert(2);
        faults.failing_writes.insert(3);
        disk.set_faults(faults);
        assert!(disk.read_block(2).is_err());
        assert!(disk.read_block(1).is_ok());
        assert!(disk.write_block(3, &vec![0u8; 512]).is_err());
        assert!(disk.write_block(4, &vec![0u8; 512]).is_ok());
    }

    #[test]
    fn device_death_after_n_ops() {
        let disk = MemDisk::with_default_timing(8, 512);
        disk.set_faults(FaultInjection { die_after_ops: Some(2), ..Default::default() });
        assert!(disk.read_block(0).is_ok());
        assert!(disk.read_block(1).is_ok());
        assert!(disk.read_block(2).is_err());
        assert!(disk.write_block(0, &vec![0u8; 512]).is_err());
    }

    #[test]
    fn batched_ops_match_sequential_bytes_and_stats_amortizing_time() {
        let batched = MemDisk::with_default_timing(32, 512);
        let sequential = MemDisk::with_default_timing(32, 512);
        let pattern: Vec<(BlockIndex, Vec<u8>)> =
            [(0u64, 1u8), (1, 2), (2, 3), (17, 4), (5, 5), (6, 6)]
                .iter()
                .map(|&(b, v)| (b, vec![v; 512]))
                .collect();
        let writes: Vec<(BlockIndex, &[u8])> =
            pattern.iter().map(|(b, d)| (*b, d.as_slice())).collect();
        batched.write_blocks(&writes).unwrap();
        for (b, d) in &pattern {
            sequential.write_block(*b, d).unwrap();
        }
        assert_eq!(
            batched.stats().without_time(),
            sequential.stats().without_time(),
            "same op mix and bytes"
        );
        // The six writes merge into two simulated commands (one sequential,
        // one packed random), so the batch is strictly cheaper than six
        // single-block commands, and the stats account for exactly the
        // charged time.
        assert!(batched.clock().now() < sequential.clock().now(), "amortization must show");
        assert_eq!(batched.stats().total_time().as_nanos(), batched.clock().now().as_nanos());
        assert_eq!(batched.snapshot().as_bytes(), sequential.snapshot().as_bytes());

        let indices = [2u64, 3, 9, 10, 11];
        let from_batch = batched.read_blocks(&indices).unwrap();
        let from_loop: Vec<Vec<u8>> =
            indices.iter().map(|&i| sequential.read_block(i).unwrap()).collect();
        assert_eq!(from_batch, from_loop);
        assert_eq!(batched.stats().without_time(), sequential.stats().without_time());
    }

    #[test]
    fn batch_of_one_charges_exactly_the_single_block_time() {
        let batched = MemDisk::with_default_timing(32, 512);
        let sequential = MemDisk::with_default_timing(32, 512);
        let d = vec![7u8; 512];
        batched.write_blocks(&[(3, d.as_slice())]).unwrap();
        sequential.write_block(3, &d).unwrap();
        assert_eq!(batched.clock().now(), sequential.clock().now());
        assert_eq!(batched.stats(), sequential.stats());
        batched.read_blocks(&[3]).unwrap();
        sequential.read_block(3).unwrap();
        assert_eq!(batched.clock().now(), sequential.clock().now());
        assert_eq!(batched.stats(), sequential.stats());
    }

    #[test]
    fn flat_cost_model_batches_charge_sequential_time() {
        // The control profile: without command-setup amortization the
        // batched path reproduces the sequential loop's charges exactly.
        let mk = || {
            MemDisk::with_cost_model(
                32,
                512,
                SimClock::new(),
                Arc::new(EmmcCostModel::flat(25_000)),
            )
        };
        let (batched, sequential) = (mk(), mk());
        let pattern: Vec<(BlockIndex, Vec<u8>)> = [(0u64, 1u8), (1, 2), (9, 3), (10, 4)]
            .iter()
            .map(|&(b, v)| (b, vec![v; 512]))
            .collect();
        let writes: Vec<(BlockIndex, &[u8])> =
            pattern.iter().map(|(b, d)| (*b, d.as_slice())).collect();
        batched.write_blocks(&writes).unwrap();
        for (b, d) in &pattern {
            sequential.write_block(*b, d).unwrap();
        }
        assert_eq!(batched.clock().now(), sequential.clock().now());
        assert_eq!(batched.stats(), sequential.stats());
    }

    #[test]
    fn deeper_batches_charge_monotonically_more_time() {
        let mut last = 0u64;
        for depth in [1usize, 4, 16, 64] {
            let disk = MemDisk::with_default_timing(128, 512);
            let data = vec![1u8; 512];
            let writes: Vec<(BlockIndex, &[u8])> =
                (0..depth as u64).map(|b| (b, data.as_slice())).collect();
            disk.write_blocks(&writes).unwrap();
            let t = disk.clock().now().as_nanos();
            assert!(t > last, "depth {depth} must cost more than shallower batches");
            last = t;
        }
    }

    #[test]
    fn batched_write_failure_persists_prefix() {
        let disk = MemDisk::with_default_timing(8, 512);
        let mut faults = FaultInjection::default();
        faults.failing_writes.insert(2);
        disk.set_faults(faults);
        let a = vec![1u8; 512];
        let b = vec![2u8; 512];
        let c = vec![3u8; 512];
        let err = disk
            .write_blocks(&[(0, a.as_slice()), (1, b.as_slice()), (2, c.as_slice())])
            .unwrap_err();
        assert!(matches!(err, BlockDeviceError::Io { .. }));
        assert_eq!(disk.read_block(0).unwrap(), a, "prefix before the fault persisted");
        assert_eq!(disk.read_block(1).unwrap(), b);
        // Batched reads fail fast the same way.
        assert!(disk.read_blocks(&[0, 99]).is_err());
    }

    #[test]
    fn queue_depth_floor_discounts_only_queue_capable_profiles() {
        // The same batch, three ways: depth floor 1 (the default), a deep
        // floor on a CQE profile, and a deep floor on the synchronous
        // nexus4 profile. Only the CQE device gets cheaper, and its charge
        // still telescopes exactly into the statistics.
        let mk = |model: EmmcCostModel| {
            MemDisk::with_cost_model(64, 4096, SimClock::new(), Arc::new(model))
        };
        let data = vec![7u8; 4096];
        let writes: Vec<(BlockIndex, &[u8])> =
            (0..16u64).map(|b| (b * 2, data.as_slice())).collect();

        let baseline = mk(EmmcCostModel::emmc51_cqe());
        baseline.write_blocks(&writes).unwrap();

        let queued = mk(EmmcCostModel::emmc51_cqe());
        queued.set_queue_depth_floor(8);
        queued.write_blocks(&writes).unwrap();
        assert!(
            queued.clock().now() < baseline.clock().now(),
            "overlapped commands must charge less on a CQE device"
        );
        assert_eq!(queued.stats().without_time(), baseline.stats().without_time());
        assert_eq!(queued.stats().total_time().as_nanos(), queued.clock().now().as_nanos());

        let synchronous = mk(EmmcCostModel::nexus4());
        synchronous.set_queue_depth_floor(8);
        synchronous.write_blocks(&writes).unwrap();
        let control = mk(EmmcCostModel::nexus4());
        control.write_blocks(&writes).unwrap();
        assert_eq!(
            synchronous.clock().now(),
            control.clock().now(),
            "a depth-1 medium ignores the queue"
        );
        assert_eq!(synchronous.stats(), control.stats());
    }

    #[test]
    fn host_queue_registrations_drive_charged_depth() {
        // Two queued (unexecuted) host-queue slots plus the executing
        // command itself make occupancy 3, so the direct write charges
        // exactly what a pinned depth floor of 3 charges.
        let mk = || {
            MemDisk::with_cost_model(
                64,
                4096,
                SimClock::new(),
                Arc::new(EmmcCostModel::emmc51_cqe()),
            )
        };
        let data = vec![7u8; 4096];
        let writes: Vec<(BlockIndex, &[u8])> =
            (0..16u64).map(|b| (b * 2, data.as_slice())).collect();

        let queued = mk();
        queued.host_queue_enter();
        queued.host_queue_enter();
        queued.write_blocks(&writes).unwrap();
        queued.host_queue_leave();
        queued.host_queue_leave();

        let floored = mk();
        floored.set_queue_depth_floor(3);
        floored.write_blocks(&writes).unwrap();
        assert_eq!(queued.clock().now(), floored.clock().now());
        assert_eq!(queued.stats(), floored.stats());

        // A balanced enter/leave pair leaves no residue: charges return
        // to the depth-1 baseline.
        let baseline = mk();
        baseline.write_blocks(&writes).unwrap();
        let released = mk();
        released.host_queue_enter();
        released.host_queue_leave();
        released.write_blocks(&writes).unwrap();
        assert_eq!(released.clock().now(), baseline.clock().now());
        assert_eq!(released.stats(), baseline.stats());
    }

    #[test]
    fn concurrent_batches_keep_accounting_exact() {
        // Two threads writing disjoint ranges at the same time on a CQE
        // profile: whatever depths the scheduler produces, the statistics
        // telescope exactly to the clock, the transfer volume matches the
        // sequential twin, and both writers' bytes land. (The charged
        // *time* is schedule-dependent in both directions — in-flight
        // overlap discounts latency, while interleaved classification can
        // turn a batch head sequential→random — so it is deliberately not
        // compared here; the deterministic depth discount is pinned by
        // queue_depth_floor_discounts_only_queue_capable_profiles and the
        // shard_props depth-floor properties.)
        let clock = SimClock::new();
        let disk = MemDisk::with_cost_model(
            256,
            4096,
            clock.clone(),
            Arc::new(EmmcCostModel::emmc51_cqe()),
        );
        let data = vec![3u8; 4096];
        std::thread::scope(|s| {
            for t in 0..2u64 {
                let disk = disk.clone();
                let data = data.clone();
                s.spawn(move || {
                    for round in 0..4u64 {
                        let base = t * 128 + round * 16;
                        let writes: Vec<(BlockIndex, &[u8])> =
                            (0..16).map(|i| (base + i, data.as_slice())).collect();
                        disk.write_blocks(&writes).unwrap();
                    }
                });
            }
        });
        let sequential = MemDisk::with_cost_model(
            256,
            4096,
            SimClock::new(),
            Arc::new(EmmcCostModel::emmc51_cqe()),
        );
        for t in 0..2u64 {
            for round in 0..4u64 {
                let base = t * 128 + round * 16;
                let writes: Vec<(BlockIndex, &[u8])> =
                    (0..16).map(|i| (base + i, data.as_slice())).collect();
                sequential.write_blocks(&writes).unwrap();
            }
        }
        assert_eq!(disk.stats().total_time().as_nanos(), clock.now().as_nanos());
        assert_eq!(disk.stats().bytes_written(), sequential.stats().bytes_written());
        assert_eq!(disk.stats().total_writes(), sequential.stats().total_writes());
        assert_eq!(disk.snapshot().as_bytes(), sequential.snapshot().as_bytes());
    }

    #[test]
    fn snapshot_is_consistent_under_concurrent_writers() {
        // Snapshots hold every shard: a concurrent full-block writer can
        // never be seen half-applied at block granularity.
        let disk = MemDisk::with_default_timing(64, 512);
        std::thread::scope(|s| {
            let writer = disk.clone();
            s.spawn(move || {
                for i in 0..200u64 {
                    let fill = (i % 251) as u8;
                    writer.write_block(i % 64, &vec![fill; 512]).unwrap();
                }
            });
            for _ in 0..20 {
                let snap = disk.snapshot();
                for b in 0..64u64 {
                    let block = snap.block(b);
                    assert!(block.iter().all(|&x| x == block[0]), "torn block {b} in snapshot");
                }
            }
        });
    }

    #[test]
    fn torn_write_persists_prefix_bytes_and_kills_the_device() {
        let clock = SimClock::new();
        let disk = MemDisk::new(8, 512, clock.clone());
        disk.write_block(3, &vec![0xAA; 512]).unwrap();
        let before = clock.now();
        disk.set_faults(FaultInjection {
            torn_write: Some(TornWrite { after_writes: 0, keep_bytes: 100 }),
            ..Default::default()
        });
        assert!(disk.write_block(3, &vec![0xBB; 512]).is_err());
        assert_eq!(clock.now(), before, "the torn write charges no time");
        let snap = disk.snapshot();
        assert_eq!(&snap.block(3)[..100], &[0xBB; 100][..], "kept prefix landed");
        assert_eq!(&snap.block(3)[100..], &[0xAA; 412][..], "tail keeps prior content");
        // The device is dead: reads, writes and flushes all fail.
        assert!(disk.read_block(0).is_err());
        assert!(disk.write_block(0, &vec![0u8; 512]).is_err());
        assert!(disk.flush().is_err());
        // Installing fresh faults revives it.
        disk.set_faults(FaultInjection::default());
        assert!(disk.read_block(0).is_ok());
    }

    #[test]
    fn torn_write_fires_mid_batch_after_counted_writes() {
        let disk = MemDisk::with_default_timing(8, 512);
        disk.set_faults(FaultInjection {
            torn_write: Some(TornWrite { after_writes: 2, keep_bytes: 1 }),
            ..Default::default()
        });
        let d = |v: u8| vec![v; 512];
        let bufs = [d(1), d(2), d(3), d(4)];
        let writes: Vec<(BlockIndex, &[u8])> =
            bufs.iter().enumerate().map(|(i, b)| (i as u64, b.as_slice())).collect();
        assert!(disk.write_blocks(&writes).is_err());
        let snap = disk.snapshot();
        assert_eq!(snap.block(0), &d(1)[..], "writes before the tear persist whole");
        assert_eq!(snap.block(1), &d(2)[..]);
        assert_eq!(snap.block(2)[0], 3, "torn block keeps only one byte");
        assert!(snap.block(2)[1..].iter().all(|&b| b == 0));
        assert!(snap.is_zero_block(3), "writes after the tear never reach the medium");
    }

    #[test]
    fn load_image_replaces_contents_without_charging_time() {
        let clock = SimClock::new();
        let disk = MemDisk::new(8, 512, clock.clone());
        disk.write_block(2, &vec![9u8; 512]).unwrap();
        let image = disk.snapshot();
        disk.write_block(2, &vec![1u8; 512]).unwrap();
        let t = clock.now();
        let stats = disk.stats();
        disk.load_image(&image);
        assert_eq!(clock.now(), t, "load_image is free");
        assert_eq!(disk.stats(), stats);
        assert_eq!(disk.read_block(2).unwrap(), vec![9u8; 512]);
    }

    #[test]
    #[should_panic(expected = "block count mismatch")]
    fn load_image_rejects_wrong_geometry() {
        let disk = MemDisk::with_default_timing(8, 512);
        let other = MemDisk::with_default_timing(4, 512);
        disk.load_image(&other.snapshot());
    }

    #[test]
    fn reset_stats_clears_counters() {
        let disk = MemDisk::with_default_timing(8, 512);
        disk.write_block(0, &vec![0u8; 512]).unwrap();
        disk.reset_stats();
        assert_eq!(disk.stats().total_writes(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_panics() {
        let _ = MemDisk::with_default_timing(0, 512);
    }
}
