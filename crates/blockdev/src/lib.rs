//! Simulated block devices.
//!
//! The bottom of every storage stack in this reproduction is a
//! [`BlockDevice`]: a fixed geometry of equally sized blocks addressed by
//! [`BlockIndex`]. The concrete implementation, [`MemDisk`], keeps the block
//! contents in memory, charges simulated time per operation according to an
//! eMMC [`mobiceal_sim::CostModel`], records per-operation statistics, and —
//! crucially for the paper's threat model — can produce [`DiskSnapshot`]s:
//! bit-exact images of the medium that the multi-snapshot adversary analyses
//! (§III-A of the paper).
//!
//! Layered devices (`dm-crypt`, thin volumes, MobiCeal itself) also implement
//! [`BlockDevice`], so any block-based file system can be deployed on any
//! layer — the paper's "file system friendly" design principle.
//!
//! [`IoEngine`] adds an AHCI/io_uring-style bounded submission/completion
//! ring over any device: one thread keeps up to `ring_depth` batches in
//! flight, and queue-capable cost profiles charge the overlapped commands
//! at the resulting genuine queue depth (see the [`engine`] module docs).
//!
//! # Example
//!
//! ```
//! use mobiceal_blockdev::{BlockDevice, MemDisk};
//!
//! let disk = MemDisk::with_default_timing(128, 4096);
//! disk.write_block(5, &vec![0xAB; 4096])?;
//! assert_eq!(disk.read_block(5)?[0], 0xAB);
//! let snap = disk.snapshot();
//! assert_eq!(snap.block(5)[0], 0xAB);
//! # Ok::<(), mobiceal_blockdev::BlockDeviceError>(())
//! ```

#![forbid(unsafe_code)]

pub mod cache;
pub mod copier;
mod crash;
mod device;
pub mod engine;
mod lru;
mod memdisk;
mod snapshot;
mod stats;

pub use cache::{CacheConfig, CacheStats, WriteBackCache};
pub use copier::{copy_job, Copier, CopierJob, CopierStats, CopierWorker};
pub use crash::CrashDisk;
pub use device::{
    read_blocks_remapped, write_blocks_remapped, BlockDevice, BlockDeviceError, BlockIndex,
    SharedDevice,
};
pub use engine::{Completion, EngineDevice, IoEngine, IoOutput, Ticket, WouldBlock};
pub use memdisk::{FaultInjection, MemDisk, TornWrite};
pub use snapshot::DiskSnapshot;
pub use stats::{AtomicDeviceStats, DeviceStats, OpCounter};
