//! Per-device I/O statistics.

use mobiceal_sim::{OpKind, SimDuration};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counter for one operation class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounter {
    /// Number of operations.
    pub ops: u64,
    /// Total bytes transferred.
    pub bytes: u64,
    /// Total simulated time charged.
    pub time_nanos: u64,
}

impl OpCounter {
    fn record(&mut self, bytes: usize, time: SimDuration) {
        self.ops += 1;
        self.bytes += bytes as u64;
        self.time_nanos += time.as_nanos();
    }

    /// Mean throughput in MB/s over the charged time (0 if no time).
    pub fn throughput_mbps(&self) -> f64 {
        if self.time_nanos == 0 {
            0.0
        } else {
            self.bytes as f64 / (self.time_nanos as f64 / 1e9) / 1e6
        }
    }
}

/// Aggregated I/O statistics for a device.
///
/// Every layer in a stack owns its own `DeviceStats`, so experiments can
/// attribute time and write amplification to the layer that caused it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceStats {
    /// Sequential reads.
    pub seq_reads: OpCounter,
    /// Random reads.
    pub rand_reads: OpCounter,
    /// Sequential writes.
    pub seq_writes: OpCounter,
    /// Random writes.
    pub rand_writes: OpCounter,
    /// Flush operations.
    pub flushes: OpCounter,
}

impl DeviceStats {
    /// Records one operation.
    pub fn record(&mut self, op: OpKind, bytes: usize, time: SimDuration) {
        match op {
            OpKind::SequentialRead => self.seq_reads.record(bytes, time),
            OpKind::RandomRead => self.rand_reads.record(bytes, time),
            OpKind::SequentialWrite => self.seq_writes.record(bytes, time),
            OpKind::RandomWrite => self.rand_writes.record(bytes, time),
            OpKind::Flush => self.flushes.record(bytes, time),
        }
    }

    /// Total read operations.
    pub fn total_reads(&self) -> u64 {
        self.seq_reads.ops + self.rand_reads.ops
    }

    /// Total write operations (excluding flushes).
    pub fn total_writes(&self) -> u64 {
        self.seq_writes.ops + self.rand_writes.ops
    }

    /// Total bytes written (excluding flushes).
    pub fn bytes_written(&self) -> u64 {
        self.seq_writes.bytes + self.rand_writes.bytes
    }

    /// Total bytes read.
    pub fn bytes_read(&self) -> u64 {
        self.seq_reads.bytes + self.rand_reads.bytes
    }

    /// Total simulated time across all op classes.
    pub fn total_time(&self) -> SimDuration {
        SimDuration::from_nanos(
            self.seq_reads.time_nanos
                + self.rand_reads.time_nanos
                + self.seq_writes.time_nanos
                + self.rand_writes.time_nanos
                + self.flushes.time_nanos,
        )
    }

    /// A copy with every charged-time field zeroed.
    ///
    /// Since the amortized multi-command cost model, a batched pipeline
    /// charges *less* time than the equivalent sequence of single-block
    /// operations while still performing the same op mix on the same bytes.
    /// Equivalence tests therefore compare this view when they pin
    /// "same operations, same data" without pinning the timing.
    pub fn without_time(&self) -> DeviceStats {
        fn strip(mut c: OpCounter) -> OpCounter {
            c.time_nanos = 0;
            c
        }
        DeviceStats {
            seq_reads: strip(self.seq_reads),
            rand_reads: strip(self.rand_reads),
            seq_writes: strip(self.seq_writes),
            rand_writes: strip(self.rand_writes),
            flushes: strip(self.flushes),
        }
    }

    /// Difference against an earlier sample (for measuring one workload).
    pub fn delta_since(&self, earlier: &DeviceStats) -> DeviceStats {
        fn sub(a: OpCounter, b: OpCounter) -> OpCounter {
            OpCounter {
                ops: a.ops - b.ops,
                bytes: a.bytes - b.bytes,
                time_nanos: a.time_nanos - b.time_nanos,
            }
        }
        DeviceStats {
            seq_reads: sub(self.seq_reads, earlier.seq_reads),
            rand_reads: sub(self.rand_reads, earlier.rand_reads),
            seq_writes: sub(self.seq_writes, earlier.seq_writes),
            rand_writes: sub(self.rand_writes, earlier.rand_writes),
            flushes: sub(self.flushes, earlier.flushes),
        }
    }
}

/// Lock-free counter for one operation class (see [`AtomicDeviceStats`]).
#[derive(Debug, Default)]
struct AtomicOpCounter {
    ops: AtomicU64,
    bytes: AtomicU64,
    time_nanos: AtomicU64,
}

impl AtomicOpCounter {
    fn record(&self, bytes: usize, time: SimDuration) {
        // Relaxed: the counters are independent monotone sums — readers
        // that need a cross-field invariant (stats ≡ clock) observe them
        // after the writer's charge is complete (join / lock hand-off
        // provides the ordering).
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        self.time_nanos.fetch_add(time.as_nanos(), Ordering::Relaxed);
    }

    fn snapshot(&self) -> OpCounter {
        OpCounter {
            ops: self.ops.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            time_nanos: self.time_nanos.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.ops.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        self.time_nanos.store(0, Ordering::Relaxed);
    }
}

/// Concurrency-safe [`DeviceStats`] accumulator: shared-reference
/// recording over atomic counters, so a sharded device can charge
/// statistics from many threads without a statistics lock. `snapshot()`
/// condenses into the plain [`DeviceStats`] every report consumes.
#[derive(Debug, Default)]
pub struct AtomicDeviceStats {
    seq_reads: AtomicOpCounter,
    rand_reads: AtomicOpCounter,
    seq_writes: AtomicOpCounter,
    rand_writes: AtomicOpCounter,
    flushes: AtomicOpCounter,
}

impl AtomicDeviceStats {
    /// Records one operation (callable from any thread).
    pub fn record(&self, op: OpKind, bytes: usize, time: SimDuration) {
        match op {
            OpKind::SequentialRead => self.seq_reads.record(bytes, time),
            OpKind::RandomRead => self.rand_reads.record(bytes, time),
            OpKind::SequentialWrite => self.seq_writes.record(bytes, time),
            OpKind::RandomWrite => self.rand_writes.record(bytes, time),
            OpKind::Flush => self.flushes.record(bytes, time),
        }
    }

    /// A plain-value copy of the current counters.
    pub fn snapshot(&self) -> DeviceStats {
        DeviceStats {
            seq_reads: self.seq_reads.snapshot(),
            rand_reads: self.rand_reads.snapshot(),
            seq_writes: self.seq_writes.snapshot(),
            rand_writes: self.rand_writes.snapshot(),
            flushes: self.flushes.snapshot(),
        }
    }

    /// Zeroes every counter.
    pub fn reset(&self) {
        self.seq_reads.reset();
        self.rand_reads.reset();
        self.seq_writes.reset();
        self.rand_writes.reset();
        self.flushes.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_stats_match_plain_recording() {
        let atomic = AtomicDeviceStats::default();
        let mut plain = DeviceStats::default();
        let ops = [
            (OpKind::SequentialWrite, 4096usize, 10u64),
            (OpKind::RandomRead, 512, 20),
            (OpKind::Flush, 0, 5),
            (OpKind::SequentialRead, 4096, 7),
            (OpKind::RandomWrite, 512, 9),
        ];
        for &(op, bytes, micros) in &ops {
            atomic.record(op, bytes, SimDuration::from_micros(micros));
            plain.record(op, bytes, SimDuration::from_micros(micros));
        }
        assert_eq!(atomic.snapshot(), plain);
        atomic.reset();
        assert_eq!(atomic.snapshot(), DeviceStats::default());
    }

    #[test]
    fn atomic_stats_lose_nothing_under_contention() {
        let stats = AtomicDeviceStats::default();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let stats = &stats;
                s.spawn(move || {
                    for _ in 0..500 {
                        stats.record(OpKind::RandomWrite, 512, SimDuration::from_nanos(3));
                    }
                });
            }
        });
        let snap = stats.snapshot();
        assert_eq!(snap.rand_writes.ops, 2_000);
        assert_eq!(snap.rand_writes.bytes, 2_000 * 512);
        assert_eq!(snap.rand_writes.time_nanos, 2_000 * 3);
    }

    #[test]
    fn record_buckets_by_kind() {
        let mut s = DeviceStats::default();
        s.record(OpKind::SequentialRead, 4096, SimDuration::from_micros(10));
        s.record(OpKind::RandomWrite, 4096, SimDuration::from_micros(20));
        s.record(OpKind::Flush, 0, SimDuration::from_micros(5));
        assert_eq!(s.total_reads(), 1);
        assert_eq!(s.total_writes(), 1);
        assert_eq!(s.bytes_written(), 4096);
        assert_eq!(s.bytes_read(), 4096);
        assert_eq!(s.flushes.ops, 1);
        assert_eq!(s.total_time(), SimDuration::from_micros(35));
    }

    #[test]
    fn throughput_computation() {
        let mut c = OpCounter::default();
        c.record(1_000_000, SimDuration::from_millis(100)); // 1 MB in 0.1 s = 10 MB/s
        assert!((c.throughput_mbps() - 10.0).abs() < 1e-9);
        assert_eq!(OpCounter::default().throughput_mbps(), 0.0);
    }

    #[test]
    fn without_time_keeps_ops_and_bytes() {
        let mut s = DeviceStats::default();
        s.record(OpKind::SequentialWrite, 4096, SimDuration::from_micros(10));
        s.record(OpKind::RandomRead, 4096, SimDuration::from_micros(20));
        let stripped = s.without_time();
        assert_eq!(stripped.total_writes(), 1);
        assert_eq!(stripped.bytes_read(), 4096);
        assert_eq!(stripped.total_time(), SimDuration::ZERO);
        assert_ne!(s, stripped);
        assert_eq!(stripped, stripped.without_time());
    }

    #[test]
    fn delta_since_isolates_a_window() {
        let mut s = DeviceStats::default();
        s.record(OpKind::SequentialWrite, 100, SimDuration::from_nanos(10));
        let checkpoint = s;
        s.record(OpKind::SequentialWrite, 300, SimDuration::from_nanos(30));
        let d = s.delta_since(&checkpoint);
        assert_eq!(d.seq_writes.ops, 1);
        assert_eq!(d.seq_writes.bytes, 300);
        assert_eq!(d.seq_writes.time_nanos, 30);
    }
}
