//! [`IoEngine`]: a bounded submission/completion engine over any
//! [`BlockDevice`].
//!
//! Modeled on the AHCI command-list / io_uring design: a fixed **slot
//! table** of `ring_depth` entries holds the commands a thread has
//! submitted but not yet reaped, exactly like an AHCI port's command list
//! holds one command header per slot. Submitting occupies a slot and
//! registers the command with the device's host queue
//! ([`BlockDevice::host_queue_enter`]); the device therefore *sees* the
//! ring occupancy and charges commands that execute alongside `k` queued
//! slots at queue depth `k` ([`mobiceal_sim::CostModel::batch_cost_at_depth`],
//! saturating at the profile's hardware queue depth). This is how one
//! thread sustains QD32 on an eMMC 5.1 CQE medium: the depth discount
//! comes from genuine slot overlap, not from worker threads or test
//! hooks.
//!
//! # Execution and completion order
//!
//! Commands **execute in submission order**, strictly one at a time — the
//! device retires its queue oldest-first, as a single flash channel would
//! — while results are **reaped in any order** the caller likes:
//! [`IoEngine::poll`] surfaces the oldest unreaped completion,
//! [`IoEngine::wait`] a specific ticket (completing everything older
//! first, as the device must), and [`IoEngine::drain`] everything
//! outstanding. Because execution order is the submission order
//! regardless of reap order, the bytes on disk, the op mix and the
//! per-ticket results equal the plain sequential
//! `read_blocks`/`write_blocks` loop for any batch set, and a ring of
//! depth 1 charges bit-identically to the direct path. Device I/O runs
//! with the engine's internal lock released, so other threads can submit
//! or reap while a command executes; executions themselves never overlap
//! each other.
//!
//! # Backpressure
//!
//! With every slot in flight, [`IoEngine::submit_read_blocks`] /
//! [`IoEngine::submit_write_blocks`] **block** until a slot frees, and
//! blocked submitters are granted slots in FIFO arrival order. The
//! non-blocking `try_` variants return [`WouldBlock`] instead (also when
//! earlier submitters are already queued, preserving fairness). The head
//! waiter frees a slot itself by retiring the device's oldest in-flight
//! command — a full ring always has one queued or executing — so a single
//! thread can never deadlock on its own ring.
//!
//! # Example
//!
//! ```
//! use mobiceal_blockdev::{IoEngine, IoOutput, MemDisk};
//!
//! let engine = IoEngine::new(MemDisk::with_default_timing(64, 4096), 8);
//! let w = engine.submit_write_blocks(&[(3, &[0xAB; 4096])]);
//! let r = engine.submit_read_blocks(&[3]);
//! engine.wait(w)?; // writes land in submission order, before the read
//! match engine.wait(r)? {
//!     IoOutput::Read(bufs) => assert_eq!(bufs[0][0], 0xAB),
//!     IoOutput::Write => unreachable!(),
//! }
//! # Ok::<(), mobiceal_blockdev::BlockDeviceError>(())
//! ```

use crate::device::{BlockDevice, BlockDeviceError, BlockIndex};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Identifies one submitted batch. Reap its result exactly once via
/// [`IoEngine::wait`], [`IoEngine::poll`] or [`IoEngine::drain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket(u64);

/// The successful payload of a completed submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoOutput {
    /// The buffers of a `submit_read_blocks` batch, in batch order.
    Read(Vec<Vec<u8>>),
    /// A `submit_write_blocks` batch landed.
    Write,
}

/// A reaped completion: which submission, and what it produced. Errors
/// carry the same value the direct `read_blocks`/`write_blocks` call
/// would have returned (fail-fast, prefix persisted), confined to the
/// owning ticket — other slots are unaffected.
pub type Completion = (Ticket, Result<IoOutput, BlockDeviceError>);

/// `try_submit_*` found no free ring slot (or earlier submitters already
/// queued for one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WouldBlock;

impl std::fmt::Display for WouldBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "all ring slots in flight")
    }
}

impl std::error::Error for WouldBlock {}

/// One queued batch, owned until it executes.
enum Request {
    Read(Vec<BlockIndex>),
    Write(Vec<(BlockIndex, Vec<u8>)>),
}

/// A slot table entry: the AHCI command-list analogue. Present while the
/// command is submitted-but-unexecuted.
struct Slot {
    ticket: Ticket,
    request: Request,
}

struct EngineState {
    /// The slot table; `None` = free (or currently executing — the slot
    /// index stays allocated until the I/O finishes).
    slots: Vec<Option<Slot>>,
    /// Free slot indices, reused FIFO.
    free: VecDeque<usize>,
    /// Occupied slot indices in submission order — the device's queue; the
    /// front is the oldest in-flight command and always executes next.
    issued: VecDeque<usize>,
    /// The command currently executing on the device, if any. Executions
    /// are strictly serial; everyone else parks until it completes.
    executing: Option<Ticket>,
    /// Executed-but-unreaped results, in device (execution) order.
    completed: VecDeque<Completion>,
    next_ticket: u64,
    /// FIFO queue of submitters blocked on a full ring (by arrival
    /// sequence number); only the front may take the next free slot.
    waiters: VecDeque<u64>,
    next_waiter: u64,
}

/// A bounded submission/completion ring over a [`BlockDevice`]. See the
/// [module docs](self) for the model.
pub struct IoEngine<D: BlockDevice> {
    device: D,
    ring_depth: usize,
    state: Mutex<EngineState>,
    /// Signaled whenever a slot frees, an execution completes or a waiter
    /// is granted — every parked loop re-checks on it.
    progress: Condvar,
}

impl<D: BlockDevice> IoEngine<D> {
    /// Creates an engine with `ring_depth` slots over `device`.
    ///
    /// # Panics
    ///
    /// Panics if `ring_depth == 0`.
    pub fn new(device: D, ring_depth: usize) -> Self {
        assert!(ring_depth > 0, "ring must have at least one slot");
        IoEngine {
            device,
            ring_depth,
            state: Mutex::new(EngineState {
                slots: (0..ring_depth).map(|_| None).collect(),
                free: (0..ring_depth).collect(),
                issued: VecDeque::with_capacity(ring_depth),
                executing: None,
                completed: VecDeque::new(),
                next_ticket: 0,
                waiters: VecDeque::new(),
                next_waiter: 0,
            }),
            progress: Condvar::new(),
        }
    }

    /// The device the ring feeds. Direct calls on it bypass the ring (but
    /// still overlap the queued slots in the device's depth accounting).
    pub fn device(&self) -> &D {
        &self.device
    }

    /// Number of slots in the ring.
    pub fn ring_depth(&self) -> usize {
        self.ring_depth
    }

    /// Commands submitted but not yet completed (queued or executing).
    pub fn in_flight(&self) -> usize {
        let st = self.lock();
        st.issued.len() + usize::from(st.executing.is_some())
    }

    /// Completions executed but not yet reaped.
    pub fn pending_completions(&self) -> usize {
        self.lock().completed.len()
    }

    /// Submitters currently blocked waiting for a slot.
    pub fn backpressured(&self) -> usize {
        self.lock().waiters.len()
    }

    /// Submits a vectored read of `indices`; blocks while the ring is
    /// full. The batch executes with [`BlockDevice::read_blocks`]
    /// semantics when its turn in the device queue comes.
    pub fn submit_read_blocks(&self, indices: &[BlockIndex]) -> Ticket {
        self.submit(Request::Read(indices.to_vec()))
    }

    /// Submits a vectored write; blocks while the ring is full. The data
    /// is copied into the slot (the ring owns it until execution); the
    /// batch executes with [`BlockDevice::write_blocks`] semantics.
    pub fn submit_write_blocks(&self, writes: &[(BlockIndex, &[u8])]) -> Ticket {
        self.submit(Request::Write(writes.iter().map(|&(i, d)| (i, d.to_vec())).collect()))
    }

    /// Non-blocking [`IoEngine::submit_read_blocks`].
    ///
    /// # Errors
    ///
    /// [`WouldBlock`] when every slot is in flight or blocked submitters
    /// are already queued ahead.
    pub fn try_submit_read_blocks(&self, indices: &[BlockIndex]) -> Result<Ticket, WouldBlock> {
        self.try_submit(Request::Read(indices.to_vec()))
    }

    /// Non-blocking [`IoEngine::submit_write_blocks`].
    ///
    /// # Errors
    ///
    /// [`WouldBlock`] when every slot is in flight or blocked submitters
    /// are already queued ahead.
    pub fn try_submit_write_blocks(
        &self,
        writes: &[(BlockIndex, &[u8])],
    ) -> Result<Ticket, WouldBlock> {
        self.try_submit(Request::Write(writes.iter().map(|&(i, d)| (i, d.to_vec())).collect()))
    }

    /// Surfaces the oldest unreaped completion, executing the device's
    /// oldest in-flight command if none is ready (and waiting out another
    /// thread's in-progress execution). `None` when the engine is idle.
    pub fn poll(&self) -> Option<Completion> {
        let mut st = self.lock();
        loop {
            if let Some(done) = st.completed.pop_front() {
                return Some(done);
            }
            if st.issued.is_empty() {
                st.executing?;
                st = self.park(st);
                continue;
            }
            if st.executing.is_some() {
                st = self.park(st);
                continue;
            }
            let (_st, done) = self.execute_oldest(st);
            return Some(done);
        }
    }

    /// Reaps `ticket`, executing every older in-flight command first (the
    /// device retires its queue in order); their results stay parked for
    /// later [`IoEngine::poll`]/[`IoEngine::wait`]/[`IoEngine::drain`]
    /// calls.
    ///
    /// # Errors
    ///
    /// The error the batch's direct `read_blocks`/`write_blocks` call
    /// produced, if any.
    ///
    /// # Panics
    ///
    /// Panics if `ticket` was never issued by this engine or was already
    /// reaped.
    pub fn wait(&self, ticket: Ticket) -> Result<IoOutput, BlockDeviceError> {
        let mut st = self.lock();
        loop {
            if let Some(pos) = st.completed.iter().position(|(t, _)| *t == ticket) {
                let (_, result) = st.completed.remove(pos).ok_or_else(|| BlockDeviceError::Io {
                    reason: "completion vanished under the engine lock".to_string(),
                })?;
                return result;
            }
            if st.executing == Some(ticket) {
                st = self.park(st);
                continue;
            }
            let queued =
                st.issued.iter().any(|&i| st.slots[i].as_ref().is_some_and(|s| s.ticket == ticket));
            assert!(
                queued || st.executing.is_some(),
                "ticket not in flight: never issued by this engine or already reaped"
            );
            if st.executing.is_some() {
                st = self.park(st);
                continue;
            }
            let (st2, done) = self.execute_oldest(st);
            st = st2;
            if done.0 == ticket {
                return done.1;
            }
            st.completed.push_back(done);
        }
    }

    /// Executes everything in flight and returns every unreaped
    /// completion, in device (execution) order.
    pub fn drain(&self) -> Vec<Completion> {
        let mut st = self.lock();
        loop {
            if st.executing.is_some() {
                st = self.park(st);
                continue;
            }
            if st.issued.is_empty() {
                break;
            }
            let (st2, done) = self.execute_oldest(st);
            st = st2;
            st.completed.push_back(done);
        }
        st.completed.drain(..).collect()
    }

    fn lock(&self) -> MutexGuard<'_, EngineState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn park<'a>(&'a self, st: MutexGuard<'a, EngineState>) -> MutexGuard<'a, EngineState> {
        self.progress.wait(st).unwrap_or_else(PoisonError::into_inner)
    }

    fn submit(&self, request: Request) -> Ticket {
        let mut st = self.lock();
        let idx = if st.waiters.is_empty() { st.free.pop_front() } else { None };
        let idx = match idx {
            Some(idx) => idx,
            None => {
                let my = st.next_waiter;
                st.next_waiter += 1;
                st.waiters.push_back(my);
                let idx = loop {
                    if st.waiters.front() != Some(&my) {
                        st = self.park(st);
                        continue;
                    }
                    if let Some(idx) = st.free.pop_front() {
                        st.waiters.pop_front();
                        break idx;
                    }
                    if st.executing.is_some() {
                        // The in-progress execution will free its slot.
                        st = self.park(st);
                        continue;
                    }
                    // Head waiter with a full ring: free a slot by retiring
                    // the device's oldest in-flight command and parking its
                    // result. Guarantees progress even single-threaded — a
                    // full, idle ring always has a queued command.
                    let (st2, done) = self.execute_oldest(st);
                    st = st2;
                    st.completed.push_back(done);
                };
                // A freed slot may remain for the next waiter in line.
                self.progress.notify_all();
                idx
            }
        };
        self.occupy(&mut st, idx, request)
    }

    fn try_submit(&self, request: Request) -> Result<Ticket, WouldBlock> {
        let mut st = self.lock();
        if !st.waiters.is_empty() {
            return Err(WouldBlock);
        }
        match st.free.pop_front() {
            Some(idx) => Ok(self.occupy(&mut st, idx, request)),
            None => Err(WouldBlock),
        }
    }

    /// Installs `request` in the already-claimed free slot `idx` and
    /// registers it with the device's host queue.
    fn occupy(&self, st: &mut EngineState, idx: usize, request: Request) -> Ticket {
        let ticket = Ticket(st.next_ticket);
        st.next_ticket += 1;
        // From submission until execution the command occupies a host
        // queue slot: commands that execute meanwhile overlap it and are
        // charged at the deeper queue depth.
        self.device.host_queue_enter();
        st.slots[idx] = Some(Slot { ticket, request });
        st.issued.push_back(idx);
        ticket
    }

    /// Executes the device's oldest in-flight command, releasing the
    /// engine lock for the duration of the device I/O (executions stay
    /// strictly serial via `executing`). Caller guarantees a command is
    /// queued and none is executing. Returns the reacquired guard and the
    /// completion; the slot is freed and `progress` notified.
    fn execute_oldest<'a>(
        &'a self,
        mut st: MutexGuard<'a, EngineState>,
    ) -> (MutexGuard<'a, EngineState>, Completion) {
        debug_assert!(st.executing.is_none(), "executions never overlap");
        // analyzer: allow(panic_freedom, reason = "every caller checks `issued` is non-empty under the same lock acquisition")
        let idx = st.issued.pop_front().expect("an in-flight command");
        // analyzer: allow(panic_freedom, reason = "slots[idx] is installed by occupy() and taken only here; `issued` holds each idx exactly once")
        let slot = st.slots[idx].take().expect("issued slot occupied");
        st.executing = Some(slot.ticket);
        drop(st);
        // The command leaves the host queue to execute; the device's own
        // in-flight accounting takes over, so it is charged at exactly
        // the ring occupancy it overlapped with (its own slot included).
        self.device.host_queue_leave();
        let result = match &slot.request {
            Request::Read(indices) => self.device.read_blocks(indices).map(IoOutput::Read),
            Request::Write(writes) => {
                let refs: Vec<(BlockIndex, &[u8])> =
                    writes.iter().map(|(i, d)| (*i, d.as_slice())).collect();
                self.device.write_blocks(&refs).map(|()| IoOutput::Write)
            }
        };
        let mut st = self.lock();
        st.executing = None;
        st.free.push_back(idx);
        self.progress.notify_all();
        (st, (slot.ticket, result))
    }
}

impl<D: BlockDevice> Drop for IoEngine<D> {
    /// Dropping the engine abandons in-flight commands: they are released
    /// from the host queue without executing or charging time. Reap (or
    /// [`IoEngine::drain`]) before dropping if the I/O must land.
    fn drop(&mut self) {
        let st = self.state.get_mut().unwrap_or_else(PoisonError::into_inner);
        for _ in 0..st.issued.len() {
            self.device.host_queue_leave();
        }
    }
}

impl<D: BlockDevice> std::fmt::Debug for IoEngine<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoEngine").field("ring_depth", &self.ring_depth).finish_non_exhaustive()
    }
}

/// A synchronous façade over a shared ring: every `read_blocks`/
/// `write_blocks` call is submitted and waited on inline, so the I/O of a
/// layer that only speaks [`BlockDevice`] (a file system, a baseline
/// stack) executes at whatever queue depth the ring's *other* in-flight
/// slots create. Single-block calls ride one-element batches.
#[derive(Debug)]
pub struct EngineDevice<D: BlockDevice>(pub std::sync::Arc<IoEngine<D>>);

impl<D: BlockDevice> EngineDevice<D> {
    fn reap_read(&self, ticket: Ticket) -> Result<Vec<Vec<u8>>, BlockDeviceError> {
        match self.0.wait(ticket)? {
            IoOutput::Read(bufs) => Ok(bufs),
            IoOutput::Write => {
                Err(BlockDeviceError::Io { reason: "read ticket completed as a write".to_string() })
            }
        }
    }
}

impl<D: BlockDevice> BlockDevice for EngineDevice<D> {
    fn num_blocks(&self) -> u64 {
        self.0.device().num_blocks()
    }

    fn block_size(&self) -> usize {
        self.0.device().block_size()
    }

    fn read_block(&self, index: BlockIndex) -> Result<Vec<u8>, BlockDeviceError> {
        let ticket = self.0.submit_read_blocks(&[index]);
        let mut bufs = self.reap_read(ticket)?;
        bufs.pop().ok_or_else(|| BlockDeviceError::Io {
            reason: "engine returned no buffer for a one-block read".to_string(),
        })
    }

    fn write_block(&self, index: BlockIndex, data: &[u8]) -> Result<(), BlockDeviceError> {
        let ticket = self.0.submit_write_blocks(&[(index, data)]);
        self.0.wait(ticket).map(|_| ())
    }

    fn read_blocks(&self, indices: &[BlockIndex]) -> Result<Vec<Vec<u8>>, BlockDeviceError> {
        let ticket = self.0.submit_read_blocks(indices);
        self.reap_read(ticket)
    }

    fn write_blocks(&self, writes: &[(BlockIndex, &[u8])]) -> Result<(), BlockDeviceError> {
        let ticket = self.0.submit_write_blocks(writes);
        self.0.wait(ticket).map(|_| ())
    }

    /// Flushes the backing device directly. This façade waits out each of
    /// its own submissions inline, so it never has ring slots of its own
    /// in flight to order against.
    fn flush(&self) -> Result<(), BlockDeviceError> {
        self.0.device().flush()
    }

    fn host_queue_enter(&self) {
        self.0.device().host_queue_enter();
    }

    fn host_queue_leave(&self) {
        self.0.device().host_queue_leave();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memdisk::{FaultInjection, MemDisk};
    use mobiceal_sim::{EmmcCostModel, SimClock};
    use std::sync::Arc;

    fn cqe_disk(blocks: u64) -> MemDisk {
        MemDisk::with_cost_model(
            blocks,
            512,
            SimClock::new(),
            Arc::new(EmmcCostModel::emmc51_cqe()),
        )
    }

    #[test]
    fn submit_wait_round_trips_data() {
        let engine = IoEngine::new(MemDisk::with_default_timing(16, 512), 4);
        let data = vec![0x5Au8; 512];
        let w = engine.submit_write_blocks(&[(3, data.as_slice()), (4, data.as_slice())]);
        let r = engine.submit_read_blocks(&[3, 4]);
        assert_eq!(engine.in_flight(), 2);
        assert_eq!(engine.wait(r).unwrap(), IoOutput::Read(vec![data.clone(), data.clone()]));
        // Waiting on the read executed the older write first; its result
        // is parked.
        assert_eq!(engine.in_flight(), 0);
        assert_eq!(engine.pending_completions(), 1);
        assert_eq!(engine.wait(w).unwrap(), IoOutput::Write);
        assert_eq!(engine.pending_completions(), 0);
    }

    #[test]
    fn poll_surfaces_completions_in_device_order() {
        let engine = IoEngine::new(MemDisk::with_default_timing(16, 512), 4);
        let data = vec![1u8; 512];
        let t0 = engine.submit_write_blocks(&[(0, data.as_slice())]);
        let t1 = engine.submit_read_blocks(&[0]);
        let t2 = engine.submit_read_blocks(&[1]);
        assert_eq!(engine.poll().unwrap().0, t0);
        assert_eq!(engine.poll().unwrap().0, t1);
        assert_eq!(engine.poll().unwrap().0, t2);
        assert!(engine.poll().is_none(), "idle engine polls None");
    }

    #[test]
    fn drain_returns_everything_outstanding() {
        let engine = IoEngine::new(MemDisk::with_default_timing(16, 512), 8);
        let data = vec![2u8; 512];
        let tickets: Vec<Ticket> =
            (0..5u64).map(|i| engine.submit_write_blocks(&[(i, data.as_slice())])).collect();
        let done = engine.drain();
        assert_eq!(done.iter().map(|(t, _)| *t).collect::<Vec<_>>(), tickets);
        assert!(done.iter().all(|(_, r)| r.is_ok()));
        assert_eq!(engine.in_flight(), 0);
        assert!(engine.drain().is_empty());
    }

    #[test]
    fn try_submit_reports_would_block_on_full_ring() {
        let engine = IoEngine::new(MemDisk::with_default_timing(16, 512), 2);
        let data = vec![3u8; 512];
        engine.try_submit_write_blocks(&[(0, data.as_slice())]).unwrap();
        engine.try_submit_read_blocks(&[0]).unwrap();
        assert_eq!(engine.try_submit_read_blocks(&[1]), Err(WouldBlock));
        assert!(engine.poll().is_some());
        engine.try_submit_read_blocks(&[1]).unwrap();
    }

    #[test]
    fn blocking_submit_self_serves_on_full_ring() {
        // Single-threaded: a blocking submit on a full ring retires the
        // oldest command itself instead of deadlocking.
        let engine = IoEngine::new(cqe_disk(64), 2);
        let data = vec![4u8; 512];
        let t0 = engine.submit_write_blocks(&[(0, data.as_slice())]);
        let _t1 = engine.submit_write_blocks(&[(1, data.as_slice())]);
        let _t2 = engine.submit_write_blocks(&[(2, data.as_slice())]);
        assert_eq!(engine.in_flight(), 2, "oldest command was retired to make room");
        assert_eq!(engine.pending_completions(), 1);
        assert_eq!(engine.poll().unwrap().0, t0);
        engine.drain();
    }

    #[test]
    #[should_panic(expected = "ticket not in flight")]
    fn waiting_twice_panics() {
        let engine = IoEngine::new(MemDisk::with_default_timing(16, 512), 2);
        let t = engine.submit_read_blocks(&[0]);
        engine.wait(t).unwrap();
        let _ = engine.wait(t);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_depth_ring_panics() {
        let _ = IoEngine::new(MemDisk::with_default_timing(16, 512), 0);
    }

    #[test]
    fn dropping_engine_releases_host_queue_holds() {
        let disk = cqe_disk(64);
        let data = vec![5u8; 512];
        {
            let engine = IoEngine::new(disk.clone(), 8);
            engine.submit_write_blocks(&[(0, data.as_slice())]);
            engine.submit_write_blocks(&[(1, data.as_slice())]);
            // Dropped with two commands in flight: abandoned, unexecuted.
        }
        assert_eq!(disk.clock().now().as_nanos(), 0, "abandoned commands charge nothing");
        // No residual holds: a fresh direct write charges the depth-1 cost.
        let twin = cqe_disk(64);
        disk.write_blocks(&[(2, data.as_slice())]).unwrap();
        twin.write_blocks(&[(2, data.as_slice())]).unwrap();
        assert_eq!(disk.clock().now(), twin.clock().now());
    }

    #[test]
    fn errors_surface_on_the_owning_ticket_only() {
        let disk = MemDisk::with_default_timing(16, 512);
        let mut faults = FaultInjection::default();
        faults.failing_writes.insert(5);
        disk.set_faults(faults);
        let engine = IoEngine::new(disk, 4);
        let data = vec![6u8; 512];
        let ok_before = engine.submit_write_blocks(&[(0, data.as_slice())]);
        let bad = engine.submit_write_blocks(&[(4, data.as_slice()), (5, data.as_slice())]);
        let ok_after = engine.submit_write_blocks(&[(1, data.as_slice())]);
        assert_eq!(engine.wait(ok_before).unwrap(), IoOutput::Write);
        assert!(matches!(engine.wait(bad), Err(BlockDeviceError::Io { .. })));
        assert_eq!(engine.wait(ok_after).unwrap(), IoOutput::Write, "other slots unpoisoned");
        // Fail-fast prefix of the bad batch persisted, like the direct path.
        let r = engine.submit_read_blocks(&[4]);
        assert_eq!(engine.wait(r).unwrap(), IoOutput::Read(vec![data.clone()]));
    }

    #[test]
    fn engine_device_facade_round_trips() {
        let engine = Arc::new(IoEngine::new(MemDisk::with_default_timing(16, 512), 4));
        let dev = EngineDevice(engine.clone());
        let data = vec![7u8; 512];
        dev.write_block(2, &data).unwrap();
        assert_eq!(dev.read_block(2).unwrap(), data);
        dev.write_blocks(&[(3, data.as_slice()), (4, data.as_slice())]).unwrap();
        assert_eq!(dev.read_blocks(&[3, 4]).unwrap(), vec![data.clone(), data.clone()]);
        dev.flush().unwrap();
        assert_eq!(dev.num_blocks(), 16);
        assert_eq!(dev.block_size(), 512);
        assert_eq!(engine.in_flight(), 0, "the façade reaps everything inline");
    }
}
