//! The [`BlockDevice`] trait and its error type.

use std::fmt;
use std::sync::Arc;

/// Index of a block on a device, starting at 0.
pub type BlockIndex = u64;

/// Errors surfaced by block-device operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockDeviceError {
    /// Access beyond the end of the device.
    OutOfRange {
        /// The offending block index.
        index: BlockIndex,
        /// Total number of blocks on the device.
        num_blocks: u64,
    },
    /// Buffer length does not match the device's block size.
    WrongBufferSize {
        /// Length supplied by the caller.
        got: usize,
        /// Block size required by the device.
        expected: usize,
    },
    /// Simulated medium failure (fault injection).
    Io {
        /// Human-readable cause.
        reason: String,
    },
    /// The device (or the volume it backs) has no free capacity left.
    NoSpace,
    /// The operation is not supported by this device/layer.
    Unsupported {
        /// What was attempted.
        what: String,
    },
    /// Cryptographic verification failed (wrong key/password).
    BadKey,
    /// On-disk metadata is corrupt or from an incompatible layout.
    CorruptMetadata {
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for BlockDeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockDeviceError::OutOfRange { index, num_blocks } => {
                write!(f, "block {index} out of range (device has {num_blocks} blocks)")
            }
            BlockDeviceError::WrongBufferSize { got, expected } => {
                write!(f, "buffer of {got} bytes does not match block size {expected}")
            }
            BlockDeviceError::Io { reason } => write!(f, "i/o error: {reason}"),
            BlockDeviceError::NoSpace => write!(f, "no space left on device"),
            BlockDeviceError::Unsupported { what } => write!(f, "unsupported operation: {what}"),
            BlockDeviceError::BadKey => write!(f, "cryptographic verification failed"),
            BlockDeviceError::CorruptMetadata { detail } => {
                write!(f, "corrupt metadata: {detail}")
            }
        }
    }
}

impl std::error::Error for BlockDeviceError {}

/// A fixed-geometry array of blocks: the substrate every storage layer in
/// the reproduction stacks on.
///
/// Implementations take `&self`; interior mutability (with locking where
/// needed) keeps stacking ergonomic, mirroring how kernel block devices are
/// shared between layers.
pub trait BlockDevice: Send + Sync {
    /// Number of addressable blocks.
    fn num_blocks(&self) -> u64;

    /// Size of each block in bytes.
    fn block_size(&self) -> usize;

    /// Reads block `index` into a fresh buffer.
    ///
    /// # Errors
    ///
    /// [`BlockDeviceError::OutOfRange`] if `index >= num_blocks()`, or a
    /// layer-specific error.
    fn read_block(&self, index: BlockIndex) -> Result<Vec<u8>, BlockDeviceError>;

    /// Writes `data` (exactly `block_size()` bytes) to block `index`.
    ///
    /// # Errors
    ///
    /// [`BlockDeviceError::OutOfRange`], [`BlockDeviceError::WrongBufferSize`],
    /// or a layer-specific error.
    fn write_block(&self, index: BlockIndex, data: &[u8]) -> Result<(), BlockDeviceError>;

    /// Reads every block in `indices`, returning the buffers in the same
    /// order.
    ///
    /// Semantically identical to calling [`BlockDevice::read_block`] once
    /// per index, in order, failing fast on the first error. Layers
    /// override this to take per-batch rather than per-block costs (one
    /// lock acquisition, one mapping-table pass, one metadata commit);
    /// the returned bytes are always the same as the sequential loop's.
    ///
    /// # Errors
    ///
    /// The error the first failing single-block read would have returned.
    fn read_blocks(&self, indices: &[BlockIndex]) -> Result<Vec<Vec<u8>>, BlockDeviceError> {
        indices.iter().map(|&index| self.read_block(index)).collect()
    }

    /// Writes each `(index, data)` pair, in order.
    ///
    /// Semantically identical to calling [`BlockDevice::write_block`] once
    /// per pair, in order, failing fast on the first error — on failure,
    /// pairs before the failing one are written and the rest are not.
    /// Layers override this to batch the pipeline (see
    /// [`BlockDevice::read_blocks`]); on success, bytes on disk always
    /// match the sequential loop's.
    ///
    /// Allocating layers may *refine* the failure path: a thin volume
    /// rolls back every mapping it freshly allocated for a failed batch
    /// (safety over prefix-persistence — a mapping must never point at
    /// storage whose data did not land). Such refinements are documented
    /// on the override; callers handling a failed batch should retry the
    /// whole batch rather than assume a persisted prefix.
    ///
    /// # Errors
    ///
    /// The error the first failing single-block write would have returned.
    fn write_blocks(&self, writes: &[(BlockIndex, &[u8])]) -> Result<(), BlockDeviceError> {
        for &(index, data) in writes {
            self.write_block(index, data)?;
        }
        Ok(())
    }

    /// Flushes caches / commits metadata. Default: no-op.
    ///
    /// # Errors
    ///
    /// Layer-specific.
    fn flush(&self) -> Result<(), BlockDeviceError> {
        Ok(())
    }

    /// Total capacity in bytes.
    fn capacity_bytes(&self) -> u64 {
        self.num_blocks() * self.block_size() as u64
    }

    /// Convenience: validates an index against the geometry.
    ///
    /// # Errors
    ///
    /// [`BlockDeviceError::OutOfRange`] when out of bounds.
    fn check_index(&self, index: BlockIndex) -> Result<(), BlockDeviceError> {
        if index >= self.num_blocks() {
            Err(BlockDeviceError::OutOfRange { index, num_blocks: self.num_blocks() })
        } else {
            Ok(())
        }
    }

    /// Convenience: validates a buffer against the block size.
    ///
    /// # Errors
    ///
    /// [`BlockDeviceError::WrongBufferSize`] when mismatched.
    fn check_buffer(&self, data: &[u8]) -> Result<(), BlockDeviceError> {
        if data.len() != self.block_size() {
            Err(BlockDeviceError::WrongBufferSize { got: data.len(), expected: self.block_size() })
        } else {
            Ok(())
        }
    }

    /// Registers one queued-but-not-yet-executing command against the
    /// device's host queue.
    ///
    /// This is the hook a submission/completion engine (see
    /// `mobiceal_blockdev::engine`) uses to make queue-depth charging
    /// reflect real ring occupancy: a command occupies a host queue slot
    /// from submission until it executes, and while it is registered the
    /// device charges commands that execute alongside it at the deeper
    /// depth (`CostModel::batch_cost_at_depth`). Pure pass-through layers
    /// forward the call to their backing device so the registration lands
    /// on the medium that models the queue; the default is a no-op for
    /// devices with no queue model. Every call must be balanced by exactly
    /// one [`BlockDevice::host_queue_leave`].
    fn host_queue_enter(&self) {}

    /// Releases one [`BlockDevice::host_queue_enter`] registration — called
    /// when the queued command starts executing (the device's own
    /// in-flight accounting takes over) or is abandoned unexecuted.
    fn host_queue_leave(&self) {}
}

/// Forwards a vectored read through an index-remapping layer (dm-linear,
/// header-shifting volume views): the whole valid prefix goes down as one
/// batch; an out-of-range index mid-batch reads the prefix first and then
/// surfaces [`BlockDeviceError::OutOfRange`], preserving sequential
/// fail-fast semantics.
///
/// # Errors
///
/// The backing device's error, or `OutOfRange` against `num_blocks`.
pub fn read_blocks_remapped<D: BlockDevice + ?Sized>(
    backing: &D,
    indices: &[BlockIndex],
    num_blocks: u64,
    map: impl Fn(BlockIndex) -> BlockIndex,
) -> Result<Vec<Vec<u8>>, BlockDeviceError> {
    let bad = indices.iter().position(|&i| i >= num_blocks);
    let valid = &indices[..bad.unwrap_or(indices.len())];
    let mapped: Vec<BlockIndex> = valid.iter().map(|&i| map(i)).collect();
    let bufs = backing.read_blocks(&mapped)?;
    match bad {
        Some(pos) => Err(BlockDeviceError::OutOfRange { index: indices[pos], num_blocks }),
        None => Ok(bufs),
    }
}

/// Forwards a vectored write through an index-remapping layer; the valid
/// prefix lands as one batch before an out-of-range index errors (see
/// [`read_blocks_remapped`]).
///
/// # Errors
///
/// The backing device's error, or `OutOfRange` against `num_blocks`.
pub fn write_blocks_remapped<D: BlockDevice + ?Sized>(
    backing: &D,
    writes: &[(BlockIndex, &[u8])],
    num_blocks: u64,
    map: impl Fn(BlockIndex) -> BlockIndex,
) -> Result<(), BlockDeviceError> {
    let bad = writes.iter().position(|&(i, _)| i >= num_blocks);
    let valid = &writes[..bad.unwrap_or(writes.len())];
    let mapped: Vec<(BlockIndex, &[u8])> = valid.iter().map(|&(i, d)| (map(i), d)).collect();
    backing.write_blocks(&mapped)?;
    match bad {
        Some(pos) => Err(BlockDeviceError::OutOfRange { index: writes[pos].0, num_blocks }),
        None => Ok(()),
    }
}

/// A reference-counted device handle, the currency of device stacking.
pub type SharedDevice = Arc<dyn BlockDevice>;

impl<T: BlockDevice + ?Sized> BlockDevice for Arc<T> {
    fn num_blocks(&self) -> u64 {
        (**self).num_blocks()
    }

    fn block_size(&self) -> usize {
        (**self).block_size()
    }

    fn read_block(&self, index: BlockIndex) -> Result<Vec<u8>, BlockDeviceError> {
        (**self).read_block(index)
    }

    fn write_block(&self, index: BlockIndex, data: &[u8]) -> Result<(), BlockDeviceError> {
        (**self).write_block(index, data)
    }

    fn read_blocks(&self, indices: &[BlockIndex]) -> Result<Vec<Vec<u8>>, BlockDeviceError> {
        (**self).read_blocks(indices)
    }

    fn write_blocks(&self, writes: &[(BlockIndex, &[u8])]) -> Result<(), BlockDeviceError> {
        (**self).write_blocks(writes)
    }

    fn flush(&self) -> Result<(), BlockDeviceError> {
        (**self).flush()
    }

    fn host_queue_enter(&self) {
        (**self).host_queue_enter();
    }

    fn host_queue_leave(&self) {
        (**self).host_queue_leave();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TinyDev;

    impl BlockDevice for TinyDev {
        fn num_blocks(&self) -> u64 {
            4
        }

        fn block_size(&self) -> usize {
            8
        }

        fn read_block(&self, index: BlockIndex) -> Result<Vec<u8>, BlockDeviceError> {
            self.check_index(index)?;
            Ok(vec![index as u8; 8])
        }

        fn write_block(&self, index: BlockIndex, data: &[u8]) -> Result<(), BlockDeviceError> {
            self.check_index(index)?;
            self.check_buffer(data)?;
            Ok(())
        }
    }

    #[test]
    fn default_helpers() {
        let dev = TinyDev;
        assert_eq!(dev.capacity_bytes(), 32);
        assert!(dev.check_index(3).is_ok());
        assert_eq!(
            dev.check_index(4),
            Err(BlockDeviceError::OutOfRange { index: 4, num_blocks: 4 })
        );
        assert!(dev.check_buffer(&[0; 8]).is_ok());
        assert!(dev.check_buffer(&[0; 7]).is_err());
        assert!(dev.flush().is_ok());
    }

    #[test]
    fn arc_passthrough() {
        let dev: SharedDevice = Arc::new(TinyDev);
        assert_eq!(dev.num_blocks(), 4);
        assert_eq!(dev.read_block(2).unwrap(), vec![2u8; 8]);
        assert!(dev.write_block(1, &[0; 8]).is_ok());
        assert!(dev.write_block(9, &[0; 8]).is_err());
        assert_eq!(dev.read_blocks(&[0, 3]).unwrap(), vec![vec![0u8; 8], vec![3u8; 8]]);
        assert!(dev.write_blocks(&[(0, &[0; 8]), (3, &[1; 8])]).is_ok());
    }

    #[test]
    fn default_vectored_ops_mirror_single_block_ops() {
        let dev = TinyDev;
        let bufs = dev.read_blocks(&[2, 0, 2]).unwrap();
        assert_eq!(bufs, vec![vec![2u8; 8], vec![0u8; 8], vec![2u8; 8]]);
        assert!(dev.read_blocks(&[]).unwrap().is_empty());
        // Fail-fast on the first bad index, exactly like the loop would.
        assert_eq!(
            dev.read_blocks(&[1, 7]),
            Err(BlockDeviceError::OutOfRange { index: 7, num_blocks: 4 })
        );
        assert!(dev.write_blocks(&[(0, &[1u8; 8]), (1, &[2u8; 8])]).is_ok());
        assert_eq!(
            dev.write_blocks(&[(0, &[1u8; 8]), (9, &[2u8; 8])]),
            Err(BlockDeviceError::OutOfRange { index: 9, num_blocks: 4 })
        );
        assert_eq!(
            dev.write_blocks(&[(0, &[1u8; 7])]),
            Err(BlockDeviceError::WrongBufferSize { got: 7, expected: 8 })
        );
    }

    #[test]
    fn error_display() {
        let samples: Vec<(BlockDeviceError, &str)> = vec![
            (BlockDeviceError::OutOfRange { index: 9, num_blocks: 4 }, "out of range"),
            (BlockDeviceError::WrongBufferSize { got: 1, expected: 8 }, "block size"),
            (BlockDeviceError::Io { reason: "bad sector".into() }, "bad sector"),
            (BlockDeviceError::NoSpace, "no space"),
            (BlockDeviceError::Unsupported { what: "trim".into() }, "trim"),
            (BlockDeviceError::BadKey, "verification"),
            (BlockDeviceError::CorruptMetadata { detail: "magic".into() }, "magic"),
        ];
        for (err, needle) in samples {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
