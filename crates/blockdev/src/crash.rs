//! [`CrashDisk`]: a power-cut capture harness for crash-recovery testing.
//!
//! Crash consistency claims ("the pool recovers exactly the last committed
//! transaction") need to hold at *every* write boundary, not just the ones
//! a hand-picked fault schedule happens to hit. `CrashDisk` wraps a
//! [`MemDisk`], records a base snapshot plus the bytes of every block write
//! that succeeds, and can then reconstruct the exact persisted image as of
//! any intermediate write — including images where the final write is torn
//! mid-block. A test runs its workload once, then replays recovery against
//! each of the `write_points() + 1` images (and any torn variants) to
//! enumerate every possible power-cut outcome of that history.
//!
//! The wrapper delegates whole batches to the inner disk, so amortized
//! multi-command charging, statistics and classification are identical to
//! running on the bare [`MemDisk`].

use crate::device::{BlockDevice, BlockDeviceError, BlockIndex};
use crate::memdisk::MemDisk;
use crate::snapshot::DiskSnapshot;
use parking_lot::Mutex;

/// The write history: the image before the workload plus every block write
/// that reached the medium, in device order.
struct CrashLog {
    base: DiskSnapshot,
    events: Vec<(BlockIndex, Vec<u8>)>,
}

/// A [`BlockDevice`] that captures the persisted image at every write
/// boundary of the workload run on it.
///
/// # Example
///
/// ```
/// use mobiceal_blockdev::{BlockDevice, CrashDisk, MemDisk};
///
/// let disk = CrashDisk::new(MemDisk::with_default_timing(8, 512));
/// disk.write_block(1, &vec![0xAA; 512])?;
/// disk.write_block(2, &vec![0xBB; 512])?;
/// assert_eq!(disk.write_points(), 2);
/// // Power cut after the first write: block 1 landed, block 2 did not.
/// let image = disk.image_at(1);
/// assert_eq!(image.block(1)[0], 0xAA);
/// assert!(image.is_zero_block(2));
/// # Ok::<(), mobiceal_blockdev::BlockDeviceError>(())
/// ```
pub struct CrashDisk {
    inner: MemDisk,
    log: Mutex<CrashLog>,
}

impl CrashDisk {
    /// Wraps `inner`, capturing its current contents as the base image
    /// (crash point 0).
    pub fn new(inner: MemDisk) -> Self {
        let base = inner.snapshot();
        CrashDisk { inner, log: Mutex::new(CrashLog { base, events: Vec::new() }) }
    }

    /// The wrapped disk (for clocks, statistics, faults).
    pub fn inner(&self) -> &MemDisk {
        &self.inner
    }

    /// How many block writes have succeeded since construction. Crash
    /// points `0..=write_points()` are valid arguments to
    /// [`CrashDisk::image_at`]; point `k` is the image after the first `k`
    /// writes.
    pub fn write_points(&self) -> usize {
        self.log.lock().events.len()
    }

    /// The block that write number `k` (0-based) targeted.
    ///
    /// # Panics
    ///
    /// Panics if `k >= write_points()`.
    pub fn write_target(&self, k: usize) -> BlockIndex {
        self.log.lock().events[k].0
    }

    /// The persisted image as of a power cut after exactly `k` block
    /// writes: the base image plus the first `k` recorded writes.
    ///
    /// # Panics
    ///
    /// Panics if `k > write_points()`.
    pub fn image_at(&self, k: usize) -> DiskSnapshot {
        self.build_image(k, None)
    }

    /// The persisted image as of a power cut *inside* write `k` (0-based):
    /// the first `k` writes land whole, and only the first `keep_bytes`
    /// bytes of write `k` reach the medium — a torn block program.
    ///
    /// # Panics
    ///
    /// Panics if `k >= write_points()`.
    pub fn image_at_torn(&self, k: usize, keep_bytes: usize) -> DiskSnapshot {
        self.build_image(k, Some(keep_bytes))
    }

    fn build_image(&self, k: usize, torn: Option<usize>) -> DiskSnapshot {
        let log = self.log.lock();
        if torn.is_some() {
            assert!(k < log.events.len(), "torn write {k} out of range");
        } else {
            assert!(k <= log.events.len(), "crash point {k} out of range");
        }
        let bs = log.base.block_size();
        let mut bytes = log.base.as_bytes().to_vec();
        for (index, data) in &log.events[..k] {
            let offset = *index as usize * bs;
            bytes[offset..offset + bs].copy_from_slice(data);
        }
        if let Some(keep) = torn {
            let keep = keep.min(bs);
            let (index, data) = &log.events[k];
            let offset = *index as usize * bs;
            bytes[offset..offset + keep].copy_from_slice(&data[..keep]);
        }
        DiskSnapshot::new(bs, log.base.num_blocks(), bytes)
    }
}

impl std::fmt::Debug for CrashDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrashDisk")
            .field("inner", &self.inner)
            .field("write_points", &self.write_points())
            .finish()
    }
}

impl BlockDevice for CrashDisk {
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn read_block(&self, index: BlockIndex) -> Result<Vec<u8>, BlockDeviceError> {
        self.inner.read_block(index)
    }

    fn write_block(&self, index: BlockIndex, data: &[u8]) -> Result<(), BlockDeviceError> {
        self.inner.write_block(index, data)?;
        self.log.lock().events.push((index, data.to_vec()));
        Ok(())
    }

    fn read_blocks(&self, indices: &[BlockIndex]) -> Result<Vec<Vec<u8>>, BlockDeviceError> {
        self.inner.read_blocks(indices)
    }

    /// Delegates the whole batch (keeping amortized charging), then logs
    /// each block as one write boundary — a power cut can land between any
    /// two blocks of a batch, exactly like the sequential loop.
    fn write_blocks(&self, writes: &[(BlockIndex, &[u8])]) -> Result<(), BlockDeviceError> {
        self.inner.write_blocks(writes)?;
        let mut log = self.log.lock();
        for &(index, data) in writes {
            log.events.push((index, data.to_vec()));
        }
        Ok(())
    }

    fn flush(&self) -> Result<(), BlockDeviceError> {
        self.inner.flush()
    }

    fn host_queue_enter(&self) {
        self.inner.host_queue_enter();
    }

    fn host_queue_leave(&self) {
        self.inner.host_queue_leave();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harness(blocks: u64) -> CrashDisk {
        CrashDisk::new(MemDisk::with_default_timing(blocks, 512))
    }

    #[test]
    fn images_enumerate_every_write_boundary() {
        let disk = harness(8);
        let d = |v: u8| vec![v; 512];
        disk.write_block(0, &d(1)).unwrap();
        let pair = [(2u64, d(2)), (5, d(3))];
        let writes: Vec<(BlockIndex, &[u8])> =
            pair.iter().map(|(b, v)| (*b, v.as_slice())).collect();
        disk.write_blocks(&writes).unwrap();
        assert_eq!(disk.write_points(), 3);
        assert_eq!(disk.write_target(1), 2);

        assert!(disk.image_at(0).is_zero_block(0), "point 0 is the base image");
        let mid = disk.image_at(2);
        assert_eq!(mid.block(0), &d(1)[..]);
        assert_eq!(mid.block(2), &d(2)[..]);
        assert!(mid.is_zero_block(5), "the third write is not yet persisted at point 2");
        assert_eq!(
            disk.image_at(3).as_bytes(),
            disk.inner().snapshot().as_bytes(),
            "the final point is the live medium"
        );
    }

    #[test]
    fn torn_images_splice_partial_blocks() {
        let disk = harness(4);
        disk.write_block(1, &vec![0xAA; 512]).unwrap();
        disk.write_block(1, &vec![0xBB; 512]).unwrap();
        let torn = disk.image_at_torn(1, 64);
        assert_eq!(&torn.block(1)[..64], &[0xBB; 64][..]);
        assert_eq!(&torn.block(1)[64..], &[0xAA; 448][..]);
        // keep_bytes clamps to the block size.
        assert_eq!(disk.image_at_torn(1, 4096).block(1), &[0xBB; 512][..]);
    }

    #[test]
    fn rebuilt_image_boots_a_fresh_disk() {
        let disk = harness(8);
        disk.write_block(3, &vec![7u8; 512]).unwrap();
        disk.write_block(4, &vec![8u8; 512]).unwrap();
        let image = disk.image_at(1);
        let reborn = MemDisk::with_default_timing(8, 512);
        reborn.load_image(&image);
        assert_eq!(reborn.read_block(3).unwrap(), vec![7u8; 512]);
        assert!(reborn.read_block(4).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn failed_writes_are_not_write_boundaries() {
        let disk = harness(4);
        assert!(disk.write_block(99, &vec![0u8; 512]).is_err());
        assert_eq!(disk.write_points(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn image_beyond_history_panics() {
        let disk = harness(4);
        let _ = disk.image_at(1);
    }
}
