//! **Ablation (design §IV-A Q1/Q2)**: sweep the dummy-write parameters —
//! rate λ and trigger modulus x — and report the trade-off between
//! throughput overhead and space amplification.
//!
//! The paper picks λ = 1 and x = 50: this bench shows the knee of the
//! curve those defaults sit on. Smaller λ (bigger bursts) buys a wider
//! deniability envelope at a steep overhead; larger x barely changes the
//! (bounded-below-½) trigger probability.
//!
//! Run with: `cargo bench -p mobiceal-bench --bench ablation_dummy`

use mobiceal::{MobiCeal, MobiCealConfig};
use mobiceal_blockdev::{BlockDevice, MemDisk, SharedDevice};
use mobiceal_sim::SimClock;
use mobiceal_workloads::{render_table, Cell, Table};
use std::sync::Arc;

const BLOCKS: u64 = 16384;
const BS: usize = 4096;
const WRITES: u64 = 2000;

struct SweepPoint {
    write_mbps: f64,
    dummy_blocks_per_public: f64,
    trigger_rate: f64,
}

fn run_point(lambda: f64, x: u32, seed: u64) -> SweepPoint {
    let clock = SimClock::new();
    let disk = Arc::new(MemDisk::new(BLOCKS, BS, clock.clone()));
    let config = MobiCealConfig {
        num_volumes: 6,
        lambda,
        x,
        pbkdf2_iterations: 4,
        metadata_blocks: 128,
        ..Default::default()
    };
    let mc = MobiCeal::initialize(
        disk as SharedDevice,
        clock.clone(),
        config,
        "decoy",
        &["hidden"],
        seed,
    )
    .expect("init");
    let public = mc.unlock_public("decoy").expect("unlock");
    let buf = vec![0x11u8; BS];
    let t0 = clock.now();
    for i in 0..WRITES {
        public.write_block(i, &buf).expect("write");
    }
    let elapsed = clock.now() - t0;
    let stats = mc.dummy_stats();
    SweepPoint {
        write_mbps: (WRITES as usize * BS) as f64 / elapsed.as_secs_f64() / 1e6,
        dummy_blocks_per_public: stats.blocks_written as f64 / stats.trigger_checks as f64,
        trigger_rate: stats.bursts as f64 / stats.trigger_checks as f64,
    }
}

/// Averages a point over several stored_rand regimes (seeds), since one
/// regime's trigger threshold is a single secret draw.
fn averaged(lambda: f64, x: u32) -> SweepPoint {
    let n = 8;
    let mut acc = SweepPoint { write_mbps: 0.0, dummy_blocks_per_public: 0.0, trigger_rate: 0.0 };
    for s in 0..n {
        let p = run_point(lambda, x, 9000 + s);
        acc.write_mbps += p.write_mbps;
        acc.dummy_blocks_per_public += p.dummy_blocks_per_public;
        acc.trigger_rate += p.trigger_rate;
    }
    SweepPoint {
        write_mbps: acc.write_mbps / n as f64,
        dummy_blocks_per_public: acc.dummy_blocks_per_public / n as f64,
        trigger_rate: acc.trigger_rate / n as f64,
    }
}

fn main() {
    let mut lambda_table = Table::new(
        "Dummy-write ablation: rate parameter λ (x = 50, 2000 public writes, 8 regimes)",
        &["lambda", "write MB/s", "dummy blocks / public write", "trigger rate"],
    );
    for lambda in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let p = averaged(lambda, 50);
        lambda_table.push_row(vec![
            Cell::Num(lambda),
            Cell::Num(p.write_mbps),
            Cell::Num(p.dummy_blocks_per_public),
            Cell::Num(p.trigger_rate),
        ]);
    }
    println!("{}", render_table(&lambda_table));

    let mut x_table = Table::new(
        "Dummy-write ablation: trigger modulus x (λ = 1)",
        &["x", "write MB/s", "dummy blocks / public write", "trigger rate"],
    );
    for x in [10, 25, 50, 100, 200] {
        let p = averaged(1.0, x);
        x_table.push_row(vec![
            Cell::Int(x as u64),
            Cell::Num(p.write_mbps),
            Cell::Num(p.dummy_blocks_per_public),
            Cell::Num(p.trigger_rate),
        ]);
    }
    println!("{}", render_table(&x_table));
    println!(
        "paper defaults: lambda=1, x=50 — mean one dummy block per burst, \
         trigger probability bounded below 50% (empirically ~25%)"
    );
}
