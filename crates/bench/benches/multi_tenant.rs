//! Wall-clock benchmark of the `multi_tenant` workload: the same four
//! tenant streams (public + hidden volumes + SimFs) executed two ways —
//! thread-per-tenant (1, 2 and 4 worker threads) and engine-driven (one
//! thread round-robining per-tenant `IoEngine` rings at queue depth 1, 4,
//! 8 and 32).
//!
//! On a multi-core host the sharded MemDisk, the split thin-pool locks and
//! the CQE queue-depth model let the N-worker runs beat the 1-worker run
//! in wall clock (and, on the CQE medium, in simulated time). The engine
//! sweep shows the same simulated-time overlap from a single thread: ring
//! occupancy, not thread count, is what the medium's command queue sees.
//! On a 1-vCPU container the wall-clock numbers show parity — see the
//! labeled recordings in EXPERIMENTS.md and BENCH_fig4.json.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mobiceal_workloads::MultiTenantWorkload;

fn bench_multi_tenant(c: &mut Criterion) {
    let workload = MultiTenantWorkload::default();
    // One untimed run per variant reports the simulated-time side, which
    // criterion's wall-clock statistics cannot show.
    for workers in [1usize, 2, 4] {
        let r = workload.run(workers).expect("multi-tenant run");
        println!(
            "multi_tenant/workers={}: simulated {} for {} MiB ({} host CPUs)",
            r.workers,
            r.simulated,
            r.bytes_written >> 20,
            r.host_cpus
        );
    }
    for qd in [1usize, 4, 8, 32] {
        let r = workload.run_engine(qd).expect("multi-tenant engine run");
        println!(
            "multi_tenant/engine_qd={}: simulated {} for {} MiB ({} host CPUs, 1 thread)",
            r.ring_depth,
            r.simulated,
            r.bytes_written >> 20,
            r.host_cpus
        );
    }

    let mut group = c.benchmark_group("multi_tenant");
    let bytes = {
        let r = workload.run(1).expect("probe run");
        r.bytes_written
    };
    group.throughput(Throughput::Bytes(bytes));
    for workers in [1usize, 2, 4] {
        group.bench_function(&format!("workers_{workers}"), |b| {
            b.iter(|| workload.run(workers).expect("multi-tenant run"))
        });
    }
    for qd in [1usize, 4, 8, 32] {
        group.bench_function(&format!("engine_qd_{qd}"), |b| {
            b.iter(|| workload.run_engine(qd).expect("multi-tenant engine run"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_multi_tenant
}
criterion_main!(benches);
