//! Criterion micro-benchmarks of the substrate primitives: AES sector
//! modes, SHA-256/PBKDF2, ChaCha20 noise generation, bitmap allocation and
//! the two allocators, and WoORAM write amplification.
//!
//! These measure *real* CPU time of this implementation (unlike the
//! table/figure benches, which measure simulated device time).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use mobiceal_crypto::{
    pbkdf2_hmac_sha256, sha256, Aes256, CbcEssiv, ChaCha20Rng, SectorCipher, Xts,
};
use mobiceal_thinp::{Allocator, Bitmap, RandomAllocator, SequentialAllocator};
use std::collections::HashSet;

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    let sector = vec![0xABu8; 4096];
    group.throughput(Throughput::Bytes(4096));

    let essiv = CbcEssiv::with_essiv_key(Aes256::new(&[1u8; 32]), &sha256(&[1u8; 32]));
    group.bench_function("aes256_cbc_essiv_encrypt_4k", |b| {
        b.iter(|| essiv.encrypt_sector(7, &sector))
    });

    let xts = Xts::new(Aes256::new(&[2u8; 32]), Aes256::new(&[3u8; 32]));
    group.bench_function("aes256_xts_encrypt_4k", |b| b.iter(|| xts.encrypt_sector(7, &sector)));

    group.bench_function("sha256_4k", |b| b.iter(|| sha256(&sector)));

    group.bench_function("chacha20_noise_4k", |b| {
        let mut rng = ChaCha20Rng::from_u64_seed(1);
        let mut buf = vec![0u8; 4096];
        b.iter(|| rng.fill_bytes(&mut buf))
    });
    group.finish();

    c.bench_function("pbkdf2_sha256_2000iters", |b| {
        let mut out = [0u8; 32];
        b.iter(|| pbkdf2_hmac_sha256(b"password", b"salt", 2000, &mut out))
    });
}

fn bench_allocators(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocator");
    let make_bitmap = || {
        let mut bm = Bitmap::new(65536);
        for i in (0..65536).step_by(3) {
            bm.set(i);
        }
        bm
    };
    group.bench_function("sequential_allocate", |b| {
        b.iter_batched(
            || (make_bitmap(), SequentialAllocator::new(), HashSet::new()),
            |(bm, mut alloc, reserved)| alloc.allocate(&bm, &reserved),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("random_allocate", |b| {
        b.iter_batched(
            || (make_bitmap(), RandomAllocator::with_seed(5), HashSet::new()),
            |(bm, mut alloc, reserved)| alloc.allocate(&bm, &reserved),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("bitmap_nth_free", |b| {
        let bm = make_bitmap();
        b.iter(|| bm.nth_free(10_000))
    });
    group.finish();
}

fn bench_oram(c: &mut Criterion) {
    use mobiceal_baselines::HiveWoOram;
    use mobiceal_blockdev::{BlockDevice, MemDisk};
    use mobiceal_sim::SimClock;
    use std::sync::Arc;

    c.bench_function("hive_woram_logical_write_4k", |b| {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(600, 4096, clock.clone()));
        let oram = HiveWoOram::new(disk, clock, 256, [9u8; 64], 1).expect("oram");
        let buf = vec![1u8; 4096];
        let mut i = 0u64;
        b.iter(|| {
            oram.write_block(i % 256, &buf).expect("write");
            i += 1;
        })
    });
}

/// The batched-vs-single delta of the vectored I/O pipeline: the same 64
/// 4 KiB blocks (one dd chunk) pushed through the full unlocked MobiCeal
/// stack as one `write_blocks` batch vs. 64 `write_block` calls.
fn bench_batched_io(c: &mut Criterion) {
    use mobiceal::{MobiCeal, MobiCealConfig, UnlockedVolume};
    use mobiceal_blockdev::{BlockDevice, MemDisk};
    use mobiceal_sim::SimClock;
    use std::sync::Arc;

    fn unlocked(seed: u64) -> UnlockedVolume {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(16384, 4096, clock.clone()));
        let config = MobiCealConfig {
            num_volumes: 5,
            pbkdf2_iterations: 4,
            metadata_blocks: 64,
            ..MobiCealConfig::default()
        };
        let mc = MobiCeal::initialize(disk, clock, config, "decoy", &["hidden"], seed)
            .expect("initialize");
        mc.unlock_public("decoy").expect("unlock")
    }

    let mut group = c.benchmark_group("stack_write_64x4k");
    group.throughput(Throughput::Bytes(64 * 4096));
    group.bench_function("batched_write_blocks", |b| {
        let vol = unlocked(1);
        let data = vec![0xA5u8; 4096];
        let mut base = 0u64;
        b.iter(|| {
            let writes: Vec<(u64, &[u8])> =
                (0..64).map(|i| ((base + i) % 8000, data.as_slice())).collect();
            vol.write_blocks(&writes).expect("batched write");
            base += 64;
        })
    });
    group.bench_function("sequential_write_block", |b| {
        let vol = unlocked(2);
        let data = vec![0xA5u8; 4096];
        let mut base = 0u64;
        b.iter(|| {
            for i in 0..64 {
                vol.write_block((base + i) % 8000, &data).expect("single write");
            }
            base += 64;
        })
    });
    group.finish();
}

/// The batched-vs-single delta of the *baseline* stacks: one HIVE shuffle
/// pass over 16 logical writes vs. 16 single-write passes, and one DEFY
/// 64-append extent vs. 64 single appends (real CPU time; the simulated
/// per-batch savings are recorded in BENCH_fig4.json).
fn bench_baseline_batch(c: &mut Criterion) {
    use mobiceal_baselines::{DefyLite, HiveWoOram};
    use mobiceal_blockdev::{BlockDevice, MemDisk};
    use mobiceal_sim::SimClock;
    use std::sync::Arc;

    let mut group = c.benchmark_group("baseline_batch");
    group.throughput(Throughput::Bytes(16 * 4096));
    group.bench_function("hive_batched_16x4k", |b| {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(600, 4096, clock.clone()));
        let oram = HiveWoOram::new(disk, clock, 256, [9u8; 64], 1).expect("oram");
        let data = vec![1u8; 4096];
        let mut base = 0u64;
        b.iter(|| {
            let batch: Vec<(u64, &[u8])> =
                (0..16).map(|i| ((base + i) % 256, data.as_slice())).collect();
            oram.write_blocks(&batch).expect("batched write");
            base += 16;
        })
    });
    group.bench_function("hive_sequential_16x4k", |b| {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(600, 4096, clock.clone()));
        let oram = HiveWoOram::new(disk, clock, 256, [9u8; 64], 2).expect("oram");
        let data = vec![1u8; 4096];
        let mut base = 0u64;
        b.iter(|| {
            for i in 0..16 {
                oram.write_block((base + i) % 256, &data).expect("single write");
            }
            base += 16;
        })
    });
    group.finish();

    let mut group = c.benchmark_group("baseline_batch_defy");
    group.throughput(Throughput::Bytes(64 * 4096));
    group.bench_function("defy_batched_64x4k", |b| {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(16384, 4096, clock.clone()));
        let defy = DefyLite::new(disk, clock, 4096, [5u8; 32]).expect("defy");
        let data = vec![1u8; 4096];
        let mut base = 0u64;
        b.iter(|| {
            let batch: Vec<(u64, &[u8])> =
                (0..64).map(|i| ((base + i) % 4096, data.as_slice())).collect();
            defy.write_blocks(&batch).expect("batched write");
            base += 64;
        })
    });
    group.bench_function("defy_sequential_64x4k", |b| {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(16384, 4096, clock.clone()));
        let defy = DefyLite::new(disk, clock, 4096, [5u8; 32]).expect("defy");
        let data = vec![1u8; 4096];
        let mut base = 0u64;
        b.iter(|| {
            for i in 0..64 {
                defy.write_block((base + i) % 4096, &data).expect("single write");
            }
            base += 64;
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_crypto, bench_allocators, bench_oram, bench_batched_io, bench_baseline_batch
}
criterion_main!(benches);
