//! **Table II**: initialization, booting and mode-switching times for
//! Android FDE, MobiPluto and MobiCeal.
//!
//! Paper values (means, Nexus 4):
//!
//! | flow                | Android FDE | MobiPluto  | MobiCeal |
//! |---------------------|-------------|------------|----------|
//! | initialization      | 18min23s    | 37min2s    | 2min16s  |
//! | booting (decoy pwd) | 0.29s       | 1.36s      | 1.68s    |
//! | switch into hidden  | n/a         | 68s        | 9.27s    |
//! | switch out of hidden| n/a         | 64s        | 63s      |
//!
//! Android FDE and MobiPluto flows are reconstructed from the same step
//! costs ([`AndroidTimingModel`]) MobiCeal's phone model uses; MobiCeal's
//! flows run the full state machine on the real (simulated) stack.
//!
//! Run with: `cargo bench -p mobiceal-bench --bench table2_timing`

use mobiceal::MobiCealConfig;
use mobiceal_android::{AndroidPhone, AndroidTimingModel};
use mobiceal_bench::{human_secs, mean_sigma, repeat_stat};
use mobiceal_sim::SimClock;
use mobiceal_workloads::{render_table, Cell, Table};

const REPEATS: u32 = 10;

fn fast_config() -> MobiCealConfig {
    MobiCealConfig {
        num_volumes: 6,
        pbkdf2_iterations: 4,
        metadata_blocks: 64,
        ..Default::default()
    }
}

/// Android FDE flows assembled from the step model.
fn fde_times(t: &AndroidTimingModel) -> (f64, f64) {
    // Initialization: in-place encryption of the whole partition + reboot.
    let init = t.fde_inplace_encrypt() + t.full_reboot;
    // Boot: PBKDF2 + dm-crypt setup + mount.
    let cpu = mobiceal_sim::CpuCostModel::nexus4();
    let boot = cpu.pbkdf2_cost() + t.dm_crypt_setup + t.mount;
    (init.as_secs_f64(), boot.as_secs_f64())
}

/// MobiPluto flows assembled from the step model (2 thin volumes; mode
/// switching requires a reboot both ways).
fn mobipluto_times(t: &AndroidTimingModel) -> (f64, f64, f64, f64) {
    let cpu = mobiceal_sim::CpuCostModel::nexus4();
    let init = t.full_random_fill() + t.lvm_setup + t.mkfs + t.full_reboot;
    let boot = cpu.pbkdf2_cost()
        + t.thin_pool_activation
        + t.per_volume_activation * 2
        + t.dm_crypt_setup
        + t.mount;
    let switch_in = t.full_reboot.as_secs_f64() + boot.as_secs_f64() + 5.0; // + user re-entry
    let switch_out = t.full_reboot.as_secs_f64() + boot.as_secs_f64();
    (init.as_secs_f64(), boot.as_secs_f64(), switch_in, switch_out)
}

fn main() {
    let timing = AndroidTimingModel::nexus4();

    // MobiCeal: measured on the full state machine.
    let init = repeat_stat(REPEATS, |i| {
        let mut phone = AndroidPhone::new(SimClock::new(), 4096, 4096, fast_config());
        phone.initialize_mobiceal("decoy", &["hidden"], 50 + i as u64).expect("init").as_secs_f64()
    });
    let boot = repeat_stat(REPEATS, |i| {
        let mut phone = AndroidPhone::new(SimClock::new(), 4096, 4096, fast_config());
        phone.initialize_mobiceal("decoy", &["hidden"], 100 + i as u64).expect("init");
        phone.enter_boot_password("decoy").expect("boot").as_secs_f64()
    });
    let switch_in = repeat_stat(REPEATS, |i| {
        let mut phone = AndroidPhone::new(SimClock::new(), 4096, 4096, fast_config());
        phone.initialize_mobiceal("decoy", &["hidden"], 200 + i as u64).expect("init");
        phone.enter_boot_password("decoy").expect("boot");
        phone.switch_to_hidden("hidden").expect("switch").as_secs_f64()
    });
    let switch_out = repeat_stat(REPEATS, |i| {
        let mut phone = AndroidPhone::new(SimClock::new(), 4096, 4096, fast_config());
        phone.initialize_mobiceal("decoy", &["hidden"], 300 + i as u64).expect("init");
        phone.enter_boot_password("decoy").expect("boot");
        phone.switch_to_hidden("hidden").expect("switch");
        let out = phone.exit_hidden_mode().as_secs_f64();
        out + phone.enter_boot_password("decoy").expect("boot").as_secs_f64()
    });

    let (fde_init, fde_boot) = fde_times(&timing);
    let (mp_init, mp_boot, mp_in, mp_out) = mobipluto_times(&timing);

    let mut table = Table::new(
        "Table II: initialization, booting and switching times",
        &["system", "initialization", "booting (decoy)", "switch in", "switch out"],
    );
    table.push_row(vec![
        "Android FDE".into(),
        Cell::Text(human_secs(fde_init)),
        Cell::Text(human_secs(fde_boot)),
        "N/A".into(),
        "N/A".into(),
    ]);
    table.push_row(vec![
        "MobiPluto".into(),
        Cell::Text(human_secs(mp_init)),
        Cell::Text(human_secs(mp_boot)),
        Cell::Text(human_secs(mp_in)),
        Cell::Text(human_secs(mp_out)),
    ]);
    table.push_row(vec![
        "MobiCeal".into(),
        Cell::Text(format!("{} ({})", human_secs(init.mean()), mean_sigma(&init))),
        Cell::Text(format!("{} ({})", human_secs(boot.mean()), mean_sigma(&boot))),
        Cell::Text(format!("{} ({})", human_secs(switch_in.mean()), mean_sigma(&switch_in))),
        Cell::Text(format!("{} ({})", human_secs(switch_out.mean()), mean_sigma(&switch_out))),
    ]);
    println!("{}", render_table(&table));
    println!(
        "paper: FDE 18min23s/0.29s; MobiPluto 37min2s/1.36s/68s/64s; \
         MobiCeal 2min16s/1.68s/9.27s/63s"
    );
}
