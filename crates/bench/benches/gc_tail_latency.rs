//! Foreground write tail latency under GC pressure — the PR 8 headline.
//!
//! The `gc_tail` workload drives an open-loop write stream (fixed
//! simulated-time arrival schedule) against the public volume while GC
//! passes fire mid-stream, two ways:
//!
//! - **inline** (the seed path): no cache, each pass re-verifies hidden
//!   mode (a full PBKDF2 unlock) and runs its discards + commit between
//!   two arrivals. The unlucky writes queue behind the whole pass.
//! - **background** (PR 8): a write-back cache absorbs the stream, hidden
//!   mode is proven once per session, and each pass submits chunked
//!   discard jobs plus one flush+commit job to the copier, stepped at
//!   most once between arrivals.
//!
//! The simulated-time distributions are deterministic; criterion times
//! the host-side cost of the runs themselves.
//!
//! Run with: `cargo bench -p mobiceal-bench --bench gc_tail_latency`

use criterion::{criterion_group, criterion_main, Criterion};
use mobiceal_workloads::GcTailWorkload;

fn bench_gc_tail(c: &mut Criterion) {
    let workload = GcTailWorkload::default();

    // The deterministic simulated-time report — this is what
    // BENCH_fig4.json records and the workload's regression test pins.
    let inline = workload.run_inline().expect("inline run");
    let background = workload.run_background(256, 8, 16).expect("background run");
    for (name, r) in [("inline", &inline), ("background", &background)] {
        println!(
            "gc_tail/{name}: p50 {} ns, p99 {} ns, max {} ns, mean {:.0} ns \
             ({} writes, {} GC passes, {} blocks reclaimed)",
            r.p50_ns, r.p99_ns, r.max_ns, r.mean_ns, r.writes, r.gc_passes, r.blocks_reclaimed
        );
    }
    println!(
        "gc_tail/p99_drop: {:.1}x (inline {} ns -> background {} ns)",
        inline.p99_ns as f64 / background.p99_ns.max(1) as f64,
        inline.p99_ns,
        background.p99_ns
    );

    let mut group = c.benchmark_group("gc_tail");
    group.bench_function("inline", |b| b.iter(|| workload.run_inline().expect("inline run")));
    group.bench_function("background", |b| {
        b.iter(|| workload.run_background(256, 8, 16).expect("background run"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_gc_tail
}
criterion_main!(benches);
