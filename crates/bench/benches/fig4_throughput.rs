//! **Figure 4**: sequential throughput (dd and Bonnie++) across the five
//! configurations — Android FDE, A-T-P, A-T-H, MC-P, MC-H.
//!
//! Paper values (Nexus 4, KB/s, read off the bars): Android dd-Write ≈
//! 15–16 MB/s and dd-Read ≈ 27 MB/s; thin volumes cost ~18 % on reads and
//! little on writes; MobiCeal's modified kernel costs ~18 % on writes and
//! little extra on reads. Bonnie++ mirrors dd.
//!
//! Run with: `cargo bench -p mobiceal-bench --bench fig4_throughput`

use mobiceal_bench::repeat_stat;
use mobiceal_workloads::{
    build_stack, render_table, BonnieWorkload, Cell, DdWorkload, StackConfig, Table,
};

const REPEATS: u32 = 10;
const DISK_BLOCKS: u64 = 16384; // 64 MiB at 4 KiB

fn main() {
    let dd = DdWorkload { file_bytes: 8 * 1024 * 1024, chunk_bytes: 256 * 1024 };
    let bonnie = BonnieWorkload { file_bytes: 6 * 1024 * 1024, ..Default::default() };

    let mut table = Table::new(
        "Fig. 4: average sequential throughput in KB/s (mean over 10 runs)",
        &["config", "dd-Write", "dd-Read", "B-Write", "B-Read", "B-Rewrite"],
    );
    let mut dd_write_means = std::collections::HashMap::new();
    let mut dd_read_means = std::collections::HashMap::new();
    for config in StackConfig::all() {
        let dd_write = repeat_stat(REPEATS, |i| {
            let stack = build_stack(config, DISK_BLOCKS, 1000 + i as u64).expect("stack");
            dd.run(stack.device.clone(), &stack.clock).expect("dd run").write_kbps
        });
        let dd_read = repeat_stat(REPEATS, |i| {
            let stack = build_stack(config, DISK_BLOCKS, 1000 + i as u64).expect("stack");
            dd.run(stack.device.clone(), &stack.clock).expect("dd run").read_kbps
        });
        let bon = repeat_stat(REPEATS, |i| {
            let stack = build_stack(config, DISK_BLOCKS, 2000 + i as u64).expect("stack");
            bonnie.run(stack.device.clone(), &stack.clock).expect("bonnie run").block_write_kbps
        });
        let bon_read = repeat_stat(REPEATS, |i| {
            let stack = build_stack(config, DISK_BLOCKS, 2000 + i as u64).expect("stack");
            bonnie.run(stack.device.clone(), &stack.clock).expect("bonnie run").block_read_kbps
        });
        let bon_rw = repeat_stat(REPEATS, |i| {
            let stack = build_stack(config, DISK_BLOCKS, 2000 + i as u64).expect("stack");
            bonnie.run(stack.device.clone(), &stack.clock).expect("bonnie run").rewrite_kbps
        });
        dd_write_means.insert(config.label(), dd_write.mean());
        dd_read_means.insert(config.label(), dd_read.mean());
        table.push_row(vec![
            config.label().into(),
            Cell::Num(dd_write.mean()),
            Cell::Num(dd_read.mean()),
            Cell::Num(bon.mean()),
            Cell::Num(bon_read.mean()),
            Cell::Num(bon_rw.mean()),
        ]);
    }
    println!("{}", render_table(&table));

    // The two headline ratios the paper calls out in §VI-B, computed from
    // the 10-run means (one stored_rand regime per run).
    println!(
        "write: MobiCeal kernel modifications cost {:.1}% vs Android FDE (paper: ~18%)",
        (1.0 - dd_write_means["MC-P"] / dd_write_means["Android"]) * 100.0
    );
    println!(
        "read:  thin-volume layer costs {:.1}% vs Android FDE (paper: ~18%)",
        (1.0 - dd_read_means["A-T-P"] / dd_read_means["Android"]) * 100.0
    );
}
