//! Commit-latency microbenches of the journaled thin-pool metadata.
//!
//! The journaled commit path writes one journal record plus the
//! superblock — I/O proportional to the *transaction*, not the metadata.
//! The seed behaviour (re-serialize and rewrite the full metadata payload
//! on every commit) survives as the checkpoint path, so the two are
//! directly comparable on the same pool state: a single-mapping commit and
//! a 64-extent random-shaped burst, journaled vs full-cut.
//!
//! Criterion times the real CPU work; the simulated report below the
//! groups shows what the metadata device itself charges (bytes written and
//! simulated time per commit), which is what the regression test
//! `commit_cost_scales_with_transaction_not_metadata` pins.
//!
//! Run with: `cargo bench -p mobiceal-bench --bench commit_latency`

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mobiceal_blockdev::{BlockDevice, MemDisk, SharedDevice};
use mobiceal_sim::SimClock;
use mobiceal_thinp::{AllocStrategy, PoolConfig, ThinPool};
use std::sync::Arc;

const BS: usize = 4096;

struct Setup {
    pool: ThinPool,
    clock: SimClock,
    meta: Arc<MemDisk>,
}

/// A pool carrying a baseline of committed state plus `mappings` fresh
/// dirty mappings at virtual `stride` (stride 2 keeps every mapping its
/// own extent: the virtual side never merges).
fn dirty_pool(mappings: u64, stride: u64) -> Setup {
    let clock = SimClock::new();
    let data = Arc::new(MemDisk::new(4096, BS, clock.clone()));
    let meta = Arc::new(MemDisk::new(64, BS, clock.clone()));
    let pool = ThinPool::create_seeded(
        data as SharedDevice,
        meta.clone() as SharedDevice,
        PoolConfig::new(1),
        AllocStrategy::Sequential,
        7,
    )
    .unwrap();
    pool.create_volume(1, 2048).unwrap();
    let vol = pool.open_volume(1).unwrap();
    let payload = vec![0xAB; BS];
    // Committed baseline of 512 *fragmented* mappings (virtual stride 2, so
    // nothing merges): the realistic worst case the random allocator
    // produces, and real payload for the full-cut path to rewrite.
    for i in 0..512u64 {
        vol.write_block(1024 + i * 2, &payload).unwrap();
    }
    pool.commit().unwrap();
    for i in 0..mappings {
        vol.write_block(i * stride, &payload).unwrap();
    }
    Setup { pool, clock, meta }
}

fn bench_commit_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit_latency");
    group.bench_function("single_mapping_journaled", |b| {
        b.iter_batched(|| dirty_pool(1, 1), |s| s.pool.commit().unwrap(), BatchSize::SmallInput)
    });
    group.bench_function("burst_64_extents_journaled", |b| {
        b.iter_batched(|| dirty_pool(64, 2), |s| s.pool.commit().unwrap(), BatchSize::SmallInput)
    });
    group.bench_function("single_mapping_full_cut", |b| {
        b.iter_batched(|| dirty_pool(1, 1), |s| s.pool.checkpoint().unwrap(), BatchSize::SmallInput)
    });
    group.bench_function("burst_64_extents_full_cut", |b| {
        b.iter_batched(
            || dirty_pool(64, 2),
            |s| s.pool.checkpoint().unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.finish();

    // Simulated device cost of the same four commits, deterministic.
    println!();
    println!("commit_latency: simulated metadata-device cost per commit");
    println!("{:<28} {:>10} {:>14} {:>14}", "variant", "path", "meta bytes", "simulated us");
    for (label, mappings, stride) in [("single_mapping", 1u64, 1u64), ("burst_64_extents", 64, 2)] {
        for (path, full_cut) in [("journal", false), ("full-cut", true)] {
            let s = dirty_pool(mappings, stride);
            let before = s.meta.stats();
            let t0 = s.clock.now();
            if full_cut {
                s.pool.checkpoint().unwrap();
            } else {
                s.pool.commit().unwrap();
            }
            let micros = (s.clock.now() - t0).as_nanos() as f64 / 1_000.0;
            let bytes = s.meta.stats().delta_since(&before).bytes_written();
            println!("{label:<28} {path:>10} {bytes:>14} {micros:>14.1}");
        }
    }
}

criterion_group!(benches, bench_commit_latency);
criterion_main!(benches);
