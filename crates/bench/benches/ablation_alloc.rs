//! **Ablation (design §IV-B)**: sequential vs random block allocation.
//!
//! The paper argues sequential allocation leaks through physical layout:
//! "an adversary can observe that seven data blocks are allocated between
//! D_v1" — i.e. a hidden burst forms a long physically-consecutive run that
//! no bounded dummy budget explains. This bench runs the run-length
//! distinguisher against a MobiCeal variant with the stock sequential
//! allocator and against real MobiCeal (random allocation).
//!
//! Expected: the distinguisher convicts the sequential variant and is blind
//! against random allocation.
//!
//! Run with: `cargo bench -p mobiceal-bench --bench ablation_alloc`

use mobiceal_adversary::{
    run_distinguisher_game, GameConfig, GameWorld, Observation, SequentialRunDistinguisher,
};
use mobiceal_blockdev::{BlockDevice, MemDisk};
use mobiceal_crypto::ChaCha20Rng;
use mobiceal_sim::SimClock;
use mobiceal_thinp::{AllocStrategy, PoolConfig, ThinPool};
use mobiceal_workloads::{render_table, Cell, Table};
use std::sync::Arc;

const DISK_BLOCKS: u64 = 4096;
const BS: usize = 4096;

/// A bare-pool world isolating only the allocation strategy: volume 1 is
/// public, volume 2 hidden (when present), no encryption layer (the
/// distinguisher works on layout, not content).
struct AllocWorld {
    disk: Arc<MemDisk>,
    pool: Arc<ThinPool>,
    with_hidden: bool,
    pub_cursor: u64,
    hid_cursor: u64,
    payload: ChaCha20Rng,
}

impl AllocWorld {
    fn build(strategy: AllocStrategy, seed: u64, with_hidden: bool) -> Self {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(DISK_BLOCKS, BS, clock.clone()));
        let meta: mobiceal_blockdev::SharedDevice = Arc::new(MemDisk::new(256, BS, clock.clone()));
        let pool = Arc::new(
            ThinPool::create_seeded(
                disk.clone() as mobiceal_blockdev::SharedDevice,
                meta,
                PoolConfig::new(2),
                strategy,
                seed,
            )
            .expect("pool"),
        );
        pool.create_volume(1, DISK_BLOCKS).expect("public");
        pool.create_volume(2, DISK_BLOCKS).expect("hidden");
        AllocWorld {
            disk,
            pool,
            with_hidden,
            pub_cursor: 0,
            hid_cursor: 0,
            payload: ChaCha20Rng::from_u64_seed(seed ^ 0xA110C),
        }
    }
}

impl GameWorld for AllocWorld {
    fn public_write(&mut self, blocks: u64) {
        let vol = self.pool.open_volume(1).expect("open public");
        let mut buf = vec![0u8; BS];
        for _ in 0..blocks {
            self.payload.fill_bytes(&mut buf);
            vol.write_block(self.pub_cursor % DISK_BLOCKS, &buf).expect("write");
            self.pub_cursor += 1;
        }
    }

    fn hidden_write(&mut self, blocks: u64) {
        if !self.with_hidden {
            return;
        }
        let vol = self.pool.open_volume(2).expect("open hidden");
        let mut buf = vec![0u8; BS];
        for _ in 0..blocks {
            self.payload.fill_bytes(&mut buf);
            vol.write_block(self.hid_cursor % DISK_BLOCKS, &buf).expect("write");
            self.hid_cursor += 1;
        }
    }

    fn observe(&self) -> Observation {
        Observation {
            snapshot: self.disk.snapshot(),
            metadata: Some(self.pool.metadata_view()),
            logs: Vec::new(),
        }
    }
}

fn main() {
    let cfg = GameConfig {
        rounds: 50,
        events_per_round: 8,
        public_blocks: (2, 10),
        hidden_blocks: (8, 24), // bursty hidden writes: the leaky pattern
        hidden_event_prob: 0.5,
    };
    let d = SequentialRunDistinguisher { public_volume: 1, data_region_start: 0, min_run: 6 };

    let mut table = Table::new(
        "Allocation-strategy ablation: run-length distinguisher (50 rounds)",
        &["allocator", "accuracy", "advantage", "blind?"],
    );
    for (label, strategy) in [
        ("sequential (stock dm-thin)", AllocStrategy::Sequential),
        ("random (MobiCeal §IV-B)", AllocStrategy::Random),
    ] {
        let r = run_distinguisher_game(
            |seed, hidden| AllocWorld::build(strategy, seed, hidden),
            &d,
            &cfg,
            0xA110,
        );
        table.push_row(vec![
            label.into(),
            Cell::Num(r.accuracy),
            Cell::Num(r.advantage),
            Cell::Text(if r.is_blind() { "yes" } else { "NO (layout leaks)" }.into()),
        ]);
    }
    println!("{}", render_table(&table));
    println!("paper: random allocation is what makes dummy-write accounting deniable");
}
