//! Raw sector-cipher throughput: real MB/s of the T-table AES core through
//! the CBC-ESSIV and XTS sector modes, single-sector and batched-parallel
//! through `DmCrypt`, plus the byte-wise reference core for the speedup
//! ratio. These are *wall-clock* numbers (like `micro`'s `crypto` group);
//! simulated timing in the experiments is charged by `CpuCostModel` and
//! does not depend on any of this.
//!
//! Recorded numbers live in `EXPERIMENTS.md` and `BENCH_crypto.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mobiceal_blockdev::{BlockDevice, MemDisk};
use mobiceal_crypto::{
    reference::ReferenceAes, sha256, Aes256, BlockCipher, CbcEssiv, SectorCipher, Xts,
};
use mobiceal_dm::DmCrypt;
use mobiceal_sim::SimClock;
use std::sync::Arc;

const SECTOR: usize = 4096;
const BATCH: usize = 64;

/// Single 4 KiB sector encrypt/decrypt, in place, per mode — and the
/// byte-wise reference core on the same workload for the speedup ratio.
fn bench_sector_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto_throughput");
    group.throughput(Throughput::Bytes(SECTOR as u64));

    let essiv = CbcEssiv::with_essiv_key(Aes256::new(&[1u8; 32]), &sha256(&[1u8; 32]));
    let xts = Xts::new(Aes256::new(&[2u8; 32]), Aes256::new(&[3u8; 32]));
    let mut buf = vec![0xABu8; SECTOR];

    group.bench_function("essiv_encrypt_4k", |b| {
        b.iter(|| essiv.encrypt_sector_in_place(7, &mut buf))
    });
    group.bench_function("essiv_decrypt_4k", |b| {
        b.iter(|| essiv.decrypt_sector_in_place(7, &mut buf))
    });
    group.bench_function("xts_encrypt_4k", |b| b.iter(|| xts.encrypt_sector_in_place(7, &mut buf)));
    group.bench_function("xts_decrypt_4k", |b| b.iter(|| xts.decrypt_sector_in_place(7, &mut buf)));

    // The pre-T-table baseline: same modes over the byte-wise FIPS core.
    let ref_essiv = CbcEssiv::with_essiv_key(ReferenceAes::new(&[1u8; 32]), &sha256(&[1u8; 32]));
    let ref_xts = Xts::new(ReferenceAes::new(&[2u8; 32]), ReferenceAes::new(&[3u8; 32]));
    group.bench_function("reference_essiv_encrypt_4k", |b| {
        b.iter(|| ref_essiv.encrypt_sector_in_place(7, &mut buf))
    });
    group.bench_function("reference_xts_encrypt_4k", |b| {
        b.iter(|| ref_xts.encrypt_sector_in_place(7, &mut buf))
    });
    group.finish();
}

/// Raw block-ladder throughput at each lane occupancy: runs of 1, 4, 8 and
/// 64 blocks hit the single-block path, the 4-wide ladder, the 8-wide
/// ladder and the 8-wide steady state respectively, so the sweep shows how
/// much of the AESENC latency each rung hides. The forced-software run
/// pins the portable T-table fallback's cost on the same workload.
fn bench_lane_widths(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto_lane_width");
    let aes = Aes256::new(&[4u8; 32]);
    let mut soft = Aes256::new(&[4u8; 32]);
    soft.force_software();
    for blocks in [1usize, 4, 8, 64] {
        let mut buf = vec![0x3Cu8; blocks * 16];
        group.throughput(Throughput::Bytes((blocks * 16) as u64));
        group.bench_function(format!("aesni_{blocks}x16").as_str(), |b| {
            b.iter(|| aes.encrypt_blocks(&mut buf))
        });
    }
    let mut buf = vec![0x3Cu8; 64 * 16];
    group.throughput(Throughput::Bytes((64 * 16) as u64));
    group.bench_function("software_64x16", |b| b.iter(|| soft.encrypt_blocks(&mut buf)));
    group.finish();
}

/// A 64×4 KiB batch through `DmCrypt` over a MemDisk: the batched-parallel
/// crypto path vs. the same batch pinned to one thread.
fn bench_batched_parallel(c: &mut Criterion) {
    fn crypt(parallel: bool) -> (Arc<MemDisk>, DmCrypt) {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(2 * BATCH as u64, SECTOR, clock));
        let dm = DmCrypt::new_essiv(disk.clone(), &[9u8; 32]);
        let dm = if parallel { dm } else { dm.sequential() };
        (disk, dm)
    }

    let mut group = c.benchmark_group("crypto_batch_64x4k");
    group.throughput(Throughput::Bytes((BATCH * SECTOR) as u64));
    let data = vec![0x5Au8; SECTOR];

    for (label, parallel) in [("write_parallel", true), ("write_sequential", false)] {
        group.bench_function(label, |b| {
            let (_disk, dm) = crypt(parallel);
            let writes: Vec<(u64, &[u8])> =
                (0..BATCH as u64).map(|i| (i, data.as_slice())).collect();
            b.iter(|| dm.write_blocks(&writes).expect("write batch"))
        });
    }
    for (label, parallel) in [("read_parallel", true), ("read_sequential", false)] {
        group.bench_function(label, |b| {
            let (_disk, dm) = crypt(parallel);
            let writes: Vec<(u64, &[u8])> =
                (0..BATCH as u64).map(|i| (i, data.as_slice())).collect();
            dm.write_blocks(&writes).expect("prefill");
            let indices: Vec<u64> = (0..BATCH as u64).collect();
            b.iter(|| dm.read_blocks(&indices).expect("read batch"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sector_modes, bench_lane_widths, bench_batched_parallel
}
criterion_main!(benches);
