//! **Security-game experiment** (empirical counterpart of §III-C /
//! Theorem VI.2): distinguisher advantage against MobiCeal vs the
//! MobiPluto-class baseline, plus the §IV-D side-channel check.
//!
//! Expected shape: every distinguisher is statistically blind against
//! MobiCeal (advantage ≈ 0, CI covering ½), while snapshot differencing
//! breaks MobiPluto with accuracy ≈ 1. The side-channel grep breaks a
//! HIVE/DEFY-style configuration that shares logs between modes, but not
//! MobiCeal's tmpfs-isolated hidden mode.
//!
//! Run with: `cargo bench -p mobiceal-bench --bench security_game`

use mobiceal::MobiCealConfig;
use mobiceal_adversary::{
    run_distinguisher_game, ChangedFreeSpaceDistinguisher, Distinguisher, DummyBudgetDistinguisher,
    EntropyAnomalyDistinguisher, GameConfig, SequentialRunDistinguisher, SideChannelDistinguisher,
};
use mobiceal_android::AndroidPhone;
use mobiceal_baselines::worlds::{MobiCealWorld, MobiPlutoWorld, WORLD_DISK_BLOCKS};
use mobiceal_sim::SimClock;
use mobiceal_workloads::{render_table, Cell, Table};

fn game_config() -> GameConfig {
    GameConfig {
        rounds: 60,
        events_per_round: 10,
        public_blocks: (4, 24),
        hidden_blocks: (2, 12),
        hidden_event_prob: 0.5,
    }
}

fn main() {
    let cfg = game_config();
    let mut table = Table::new(
        "Empirical multi-snapshot game: distinguisher accuracy (60 rounds, 95% CI)",
        &["distinguisher", "system", "accuracy", "advantage", "blind?"],
    );

    let distinguishers: Vec<Box<dyn Distinguisher>> = vec![
        Box::new(ChangedFreeSpaceDistinguisher {
            public_volume: 1,
            data_region_start: MobiCealWorld::data_region_start(),
            data_region_blocks: MobiCealWorld::data_region_blocks(),
        }),
        Box::new(DummyBudgetDistinguisher {
            public_volume: 1,
            lambda: MobiCealWorld::lambda(),
            safety_sigmas: 4.0,
        }),
        Box::new(SequentialRunDistinguisher {
            public_volume: 1,
            data_region_start: MobiCealWorld::data_region_start(),
            min_run: 8,
        }),
        Box::new(EntropyAnomalyDistinguisher {
            public_volume: 1,
            data_region_start: MobiCealWorld::data_region_start(),
            entropy_floor: 7.0,
        }),
    ];

    for d in &distinguishers {
        let r = run_distinguisher_game(MobiCealWorld::build, d.as_ref(), &cfg, 0xCEA1);
        table.push_row(vec![
            d.name().into(),
            "MobiCeal".into(),
            Cell::Num(r.accuracy),
            Cell::Num(r.advantage),
            Cell::Text(if r.is_blind() { "yes" } else { "NO" }.into()),
        ]);
    }
    // The classic attack against the legacy baseline.
    let d = ChangedFreeSpaceDistinguisher {
        public_volume: 1,
        data_region_start: 64,
        data_region_blocks: WORLD_DISK_BLOCKS - 64 - 4,
    };
    let r = run_distinguisher_game(MobiPlutoWorld::build, &d, &cfg, 0xCEA1);
    table.push_row(vec![
        d.name().into(),
        "MobiPluto".into(),
        Cell::Num(r.accuracy),
        Cell::Num(r.advantage),
        Cell::Text(if r.is_blind() { "yes" } else { "NO (broken)" }.into()),
    ]);
    println!("{}", render_table(&table));

    // §IV-D side channel: protected vs unprotected phone.
    let side = SideChannelDistinguisher::default();
    let mut side_table = Table::new(
        "Side-channel attack (grep public logs after a hidden session)",
        &["configuration", "hidden traces found?"],
    );
    for (label, protected) in
        [("MobiCeal (tmpfs isolation)", true), ("HIVE/DEFY-style shared logs", false)]
    {
        let cfg = MobiCealConfig {
            num_volumes: 6,
            pbkdf2_iterations: 4,
            metadata_blocks: 64,
            ..Default::default()
        };
        let mut phone = AndroidPhone::new(SimClock::new(), 4096, 4096, cfg);
        if !protected {
            phone = phone.without_side_channel_protection();
        }
        phone.initialize_mobiceal("decoy", &["hidden"], 77).expect("init");
        phone.enter_boot_password("decoy").expect("boot");
        phone.switch_to_hidden("hidden").expect("switch");
        phone.record_activity("opened secret_dossier.pdf in hidden volume");
        phone.exit_hidden_mode();
        let obs = mobiceal_adversary::Observation {
            snapshot: phone.snapshot(),
            metadata: None,
            logs: phone.logs().persistent().to_vec(),
        };
        let found = side.decide(&[obs]);
        side_table.push_row(vec![
            label.into(),
            Cell::Text(if found { "YES (deniability compromised)" } else { "no" }.into()),
        ]);
    }
    println!("{}", render_table(&side_table));
}
