//! **Table I**: overhead comparison between the three systems that defend
//! against multi-snapshot adversaries — DEFY, HIVE, MobiCeal — each in its
//! own original test environment (the paper stresses the environments
//! differ and only the *overheads* are comparable). Row computation lives
//! in `mobiceal_workloads::table1` (shared with the calibration band
//! tests); every stack is driven with the same 64-block vectored chunks as
//! the paper's `dd`, so the baselines amortize per-command setup exactly
//! like MobiCeal does.
//!
//! Run with: `cargo bench -p mobiceal-bench --bench table1_overhead`

use mobiceal_workloads::{defy_row, hive_row, mobiceal_row, render_table, Cell, Table};

fn main() {
    let mut table = Table::new(
        "Table I: overhead comparison (sequential write, each system in its own environment)",
        &["system", "Ext4 (MB/s)", "Encrypted (MB/s)", "overhead", "paper overhead"],
    );
    for (name, row, paper) in [
        ("DEFY", defy_row(), 93.75),
        ("HIVE", hive_row(), 99.55),
        ("MobiCeal", mobiceal_row(), 22.05),
    ] {
        table.push_row(vec![
            name.into(),
            Cell::Num(row.base_mbps),
            Cell::Num(row.encrypted_mbps),
            Cell::Pct(row.overhead() * 100.0),
            Cell::Pct(paper),
        ]);
    }
    println!("{}", render_table(&table));
    println!(
        "shape check: HIVE overhead > DEFY overhead > MobiCeal overhead, \
         and only MobiCeal stays below 40%"
    );
}
