//! **Table I**: overhead comparison between the three systems that defend
//! against multi-snapshot adversaries — DEFY, HIVE, MobiCeal — each in its
//! own original test environment (the paper stresses the environments
//! differ and only the *overheads* are comparable):
//!
//! | system   | environment                  | paper Ext4 | paper encrypted | paper overhead |
//! |----------|------------------------------|-----------:|----------------:|---------------:|
//! | DEFY     | Ubuntu + nandsim RAM disk    |  800 MB/s  |      50 MB/s    | 93.75 %        |
//! | HIVE     | Arch + Samsung 840 EVO SSD   |  216 MB/s  |    0.97 MB/s    | 99.55 %        |
//! | MobiCeal | Android 4.2.2 + Nexus 4 eMMC | 19.5 MB/s  |    15.2 MB/s    | 22.05 %        |
//!
//! Run with: `cargo bench -p mobiceal-bench --bench table1_overhead`

use mobiceal_baselines::{DefyLite, HiveWoOram};
use mobiceal_blockdev::{BlockDevice, MemDisk, SharedDevice};
use mobiceal_sim::{EmmcCostModel, SimClock};
use mobiceal_workloads::{build_stack, render_table, Cell, DdWorkload, StackConfig, Table};
use std::sync::Arc;

const BLOCKS: u64 = 16384;
const BS: usize = 4096;

/// Sequential-write throughput of `dev` in MB/s over `n` blocks.
fn seq_write_mbps(dev: &dyn BlockDevice, clock: &SimClock, n: u64) -> f64 {
    let buf = vec![0xA5u8; BS];
    let t0 = clock.now();
    for i in 0..n {
        dev.write_block(i, &buf).expect("write");
    }
    dev.flush().expect("flush");
    let elapsed = clock.now() - t0;
    (n as usize * BS) as f64 / elapsed.as_secs_f64() / 1e6
}

fn defy_row() -> (f64, f64) {
    // DEFY's environment: nandsim RAM disk, where raw writes are nearly
    // free and crypto dominates.
    let clock = SimClock::new();
    let raw = Arc::new(MemDisk::with_cost_model(
        BLOCKS,
        BS,
        clock.clone(),
        Arc::new(EmmcCostModel::nandsim_ramdisk()),
    ));
    let base = seq_write_mbps(&*raw, &clock, 2048);

    let clock2 = SimClock::new();
    let disk: SharedDevice = Arc::new(MemDisk::with_cost_model(
        BLOCKS,
        BS,
        clock2.clone(),
        Arc::new(EmmcCostModel::nandsim_ramdisk()),
    ));
    let defy = DefyLite::new(disk, clock2.clone(), 4096, [7u8; 32]).expect("defy");
    let enc = seq_write_mbps(&defy, &clock2, 2048);
    (base, enc)
}

fn hive_row() -> (f64, f64) {
    // HIVE's environment: Samsung 840 EVO SSD.
    let clock = SimClock::new();
    let raw = Arc::new(MemDisk::with_cost_model(
        BLOCKS,
        BS,
        clock.clone(),
        Arc::new(EmmcCostModel::ssd_840evo()),
    ));
    let base = seq_write_mbps(&*raw, &clock, 2048);

    let clock2 = SimClock::new();
    let disk: SharedDevice = Arc::new(MemDisk::with_cost_model(
        BLOCKS,
        BS,
        clock2.clone(),
        Arc::new(EmmcCostModel::ssd_840evo()),
    ));
    let oram = HiveWoOram::new(disk, clock2.clone(), 4096, [9u8; 64], 3).expect("hive");
    let enc = seq_write_mbps(&oram, &clock2, 2048);
    (base, enc)
}

fn mobiceal_row() -> (f64, f64) {
    // MobiCeal's environment: Nexus 4 eMMC, measured through Ext4 (SimFs)
    // as the paper does.
    let dd = DdWorkload { file_bytes: 8 * 1024 * 1024, chunk_bytes: 256 * 1024 };
    // Baseline: plain SimFs ("Ext4") directly on the eMMC.
    let clock = SimClock::new();
    let raw: SharedDevice = Arc::new(MemDisk::new(BLOCKS, BS, clock.clone()));
    let base = dd.run(raw, &clock).expect("dd raw").write_mbps();

    let stack = build_stack(StackConfig::MobiCealPublic, BLOCKS, 5).expect("stack");
    let enc = dd.run(stack.device.clone(), &stack.clock).expect("dd mc").write_mbps();
    (base, enc)
}

fn main() {
    let mut table = Table::new(
        "Table I: overhead comparison (sequential write, each system in its own environment)",
        &["system", "Ext4 (MB/s)", "Encrypted (MB/s)", "overhead", "paper overhead"],
    );
    for (name, (base, enc), paper) in [
        ("DEFY", defy_row(), 93.75),
        ("HIVE", hive_row(), 99.55),
        ("MobiCeal", mobiceal_row(), 22.05),
    ] {
        table.push_row(vec![
            name.into(),
            Cell::Num(base),
            Cell::Num(enc),
            Cell::Pct((1.0 - enc / base) * 100.0),
            Cell::Pct(paper),
        ]);
    }
    println!("{}", render_table(&table));
    println!(
        "shape check: HIVE overhead > DEFY overhead > MobiCeal overhead, \
         and only MobiCeal stays below 40%"
    );
}
