//! Shared plumbing for the experiment benches.
//!
//! Each `benches/*.rs` target regenerates one table or figure from the
//! paper (see `DESIGN.md` §4 for the index). This library holds the pieces
//! they share: repeated-run statistics and result formatting helpers.

#![forbid(unsafe_code)]

use mobiceal_sim::RunningStat;

/// Runs `f` `repeats` times (the paper repeats every measurement 10×) and
/// returns mean/σ statistics of its f64 output.
pub fn repeat_stat(repeats: u32, mut f: impl FnMut(u32) -> f64) -> RunningStat {
    let mut stat = RunningStat::new();
    for i in 0..repeats {
        stat.push(f(i));
    }
    stat
}

/// Formats a mean±σ pair the way Table II prints them.
pub fn mean_sigma(stat: &RunningStat) -> String {
    format!("{:.2}±{:.2}", stat.mean(), stat.sample_std_dev())
}

/// Formats seconds as `XminYs` / `X.XXs` like the paper's Table II.
pub fn human_secs(secs: f64) -> String {
    if secs >= 60.0 {
        format!("{}min{:.0}s", (secs / 60.0) as u64, secs % 60.0)
    } else {
        format!("{secs:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeat_stat_counts() {
        let s = repeat_stat(10, |i| i as f64);
        assert_eq!(s.count(), 10);
        assert!((s.mean() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn formatting() {
        assert_eq!(human_secs(9.27), "9.27s");
        assert_eq!(human_secs(136.0), "2min16s");
        let s = repeat_stat(3, |_| 2.0);
        assert_eq!(mean_sigma(&s), "2.00±0.00");
    }
}
