//! Block-based file systems for the MobiCeal reproduction.
//!
//! MobiCeal's key practicality claim is being **file system friendly**
//! (§IV-A): because the PDE lives in the block layer, *any* block-based file
//! system can be deployed on a MobiCeal volume unchanged. To demonstrate
//! that — and to drive the paper's `dd`/Bonnie++ workloads through a
//! realistic write path — this crate provides two file systems that run on
//! any [`mobiceal_blockdev::BlockDevice`]:
//!
//! * [`SimFs`] — an ext4-like design: block/inode bitmaps, inode table with
//!   direct/indirect/double-indirect pointers, and a locality-seeking block
//!   allocator. Writes exhibit the spatial locality the paper's footnote 3
//!   describes ("writes performed by a file system usually exhibit a certain
//!   level of spatial locality"), which is exactly the signal MobiCeal's
//!   random physical allocation must mask.
//! * [`FatFs`] — a FAT-like design: a file allocation table with strictly
//!   first-fit-from-zero allocation, modelling the sequential-write file
//!   systems (FAT32) that the original hidden-volume technique relied on.
//!
//! Both implement the same [`FileSystem`] trait used by the workload
//! generators in `mobiceal-workloads`.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use mobiceal_blockdev::MemDisk;
//! use mobiceal_fs::{FileSystem, SimFs};
//!
//! let disk = Arc::new(MemDisk::with_default_timing(1024, 4096));
//! let mut fs = SimFs::format(disk)?;
//! fs.create("hello.txt")?;
//! fs.write("hello.txt", 0, b"hi there")?;
//! assert_eq!(fs.read("hello.txt", 0, 8)?, b"hi there");
//! # Ok::<(), mobiceal_fs::FsError>(())
//! ```

#![forbid(unsafe_code)]

mod fatfs;
mod fs_trait;
mod simfs;

pub use fatfs::FatFs;
pub use fs_trait::{FileSystem, FsError};
pub use simfs::SimFs;
