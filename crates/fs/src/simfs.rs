//! [`SimFs`]: an ext4-like file system.
//!
//! On-disk layout:
//!
//! ```text
//! block 0        superblock
//! blocks 1..     block bitmap
//! blocks ..      inode table (256-byte inodes, names embedded)
//! blocks ..      data region (file blocks + indirect pointer blocks)
//! ```
//!
//! Files are addressed by 10 direct pointers, one indirect and one
//! double-indirect pointer block, giving ~1 GiB per file at 4 KiB blocks.
//! The block allocator is a roving first-fit — like ext4's goal-based
//! allocator it produces spatially local writes, which is the access
//! pattern MobiCeal's random physical allocation must hide (§IV-B).
//! Metadata (superblock, bitmap, inode table) is cached in memory and
//! written back on [`FileSystem::sync`], modelling the page cache.
//!
//! Data writes and the metadata write-back each land as one vectored
//! `write_blocks` batch, so when the device below is a `DmCrypt` target the
//! whole batch is encrypted in place (and thread-sharded when deep enough)
//! with no per-sector allocation — the file system itself never re-buffers
//! full-block writes.

use crate::fs_trait::{FileSystem, FsError};
use mobiceal_blockdev::SharedDevice;

const MAGIC: &[u8; 8] = b"SIMFS001";
const INODE_SIZE: usize = 256;
const NAME_MAX: usize = 39;
const DIRECT_PTRS: usize = 10;

#[derive(Debug, Clone, PartialEq, Eq)]
struct Inode {
    used: bool,
    name: String,
    size: u64,
    direct: [u64; DIRECT_PTRS],
    indirect: u64,
    dindirect: u64,
}

impl Inode {
    fn empty() -> Self {
        Inode {
            used: false,
            name: String::new(),
            size: 0,
            direct: [0; DIRECT_PTRS],
            indirect: 0,
            dindirect: 0,
        }
    }

    fn encode(&self, out: &mut [u8]) {
        out.fill(0);
        out[0] = self.used as u8;
        let name = self.name.as_bytes();
        out[1] = name.len() as u8;
        out[2..2 + name.len()].copy_from_slice(name);
        out[48..56].copy_from_slice(&self.size.to_le_bytes());
        for (i, p) in self.direct.iter().enumerate() {
            out[56 + i * 8..64 + i * 8].copy_from_slice(&p.to_le_bytes());
        }
        out[136..144].copy_from_slice(&self.indirect.to_le_bytes());
        out[144..152].copy_from_slice(&self.dindirect.to_le_bytes());
    }

    fn decode(data: &[u8]) -> Result<Self, FsError> {
        let bad = |d: &str| FsError::NotFormatted { detail: d.into() };
        if data.len() < INODE_SIZE {
            return Err(bad("short inode"));
        }
        let used = match data[0] {
            0 => false,
            1 => true,
            _ => return Err(bad("bad inode kind")),
        };
        let name_len = data[1] as usize;
        if name_len > NAME_MAX {
            return Err(bad("bad inode name length"));
        }
        let name = String::from_utf8(data[2..2 + name_len].to_vec())
            .map_err(|_| bad("non-utf8 inode name"))?;
        let size = u64::from_le_bytes(data[48..56].try_into().unwrap());
        let mut direct = [0u64; DIRECT_PTRS];
        for (i, p) in direct.iter_mut().enumerate() {
            *p = u64::from_le_bytes(data[56 + i * 8..64 + i * 8].try_into().unwrap());
        }
        let indirect = u64::from_le_bytes(data[136..144].try_into().unwrap());
        let dindirect = u64::from_le_bytes(data[144..152].try_into().unwrap());
        Ok(Inode { used, name, size, direct, indirect, dindirect })
    }
}

/// An ext4-like file system over any block device. See the module docs.
pub struct SimFs {
    dev: SharedDevice,
    block_size: usize,
    total_blocks: u64,
    inode_count: u32,
    bitmap_start: u64,
    bitmap_blocks: u32,
    itable_start: u64,
    itable_blocks: u32,
    data_start: u64,
    // Cached metadata (the "page cache").
    bitmap: Vec<u8>,
    inodes: Vec<Inode>,
    alloc_cursor: u64,
    meta_dirty: bool,
    // Indirect pointer blocks, cached like ext4 keeps them in the page
    // cache; written back on sync.
    ptr_cache: std::collections::HashMap<u64, Vec<u8>>,
    ptr_dirty: std::collections::HashSet<u64>,
}

impl std::fmt::Debug for SimFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimFs")
            .field("total_blocks", &self.total_blocks)
            .field("inode_count", &self.inode_count)
            .finish_non_exhaustive()
    }
}

impl SimFs {
    /// Formats `dev` with a fresh, empty file system.
    ///
    /// Inode count defaults to 1 inode per 64 data blocks (min 64).
    ///
    /// # Errors
    ///
    /// Fails if the device is too small (needs ~16 blocks minimum) or on
    /// device errors.
    pub fn format(dev: SharedDevice) -> Result<Self, FsError> {
        let inode_count = (dev.num_blocks() / 64).clamp(64, 4096) as u32;
        Self::format_with_inodes(dev, inode_count)
    }

    /// Formats with an explicit inode budget.
    ///
    /// # Errors
    ///
    /// Fails if the device is too small for the metadata or on device
    /// errors.
    pub fn format_with_inodes(dev: SharedDevice, inode_count: u32) -> Result<Self, FsError> {
        let block_size = dev.block_size();
        if block_size < 512 {
            return Err(FsError::NotFormatted { detail: "block size below 512".into() });
        }
        let total_blocks = dev.num_blocks();
        let bitmap_blocks = (total_blocks.div_ceil(8)).div_ceil(block_size as u64) as u32;
        let inodes_per_block = (block_size / INODE_SIZE) as u32;
        let itable_blocks = inode_count.div_ceil(inodes_per_block);
        let bitmap_start = 1u64;
        let itable_start = bitmap_start + bitmap_blocks as u64;
        let data_start = itable_start + itable_blocks as u64;
        if data_start + 8 > total_blocks {
            return Err(FsError::NotFormatted { detail: "device too small".into() });
        }
        let mut fs = SimFs {
            dev,
            block_size,
            total_blocks,
            inode_count,
            bitmap_start,
            bitmap_blocks,
            itable_start,
            itable_blocks,
            data_start,
            bitmap: vec![0u8; bitmap_blocks as usize * block_size],
            inodes: vec![Inode::empty(); inode_count as usize],
            alloc_cursor: data_start,
            meta_dirty: true,
            ptr_cache: std::collections::HashMap::new(),
            ptr_dirty: std::collections::HashSet::new(),
        };
        // Reserve the metadata region in the bitmap.
        for b in 0..data_start {
            fs.bitmap_set(b, true);
        }
        fs.sync()?;
        Ok(fs)
    }

    /// Mounts an existing file system.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFormatted`] if the superblock is invalid, or device
    /// errors.
    pub fn mount(dev: SharedDevice) -> Result<Self, FsError> {
        let bad = |d: &str| FsError::NotFormatted { detail: d.into() };
        let sb = dev.read_block(0)?;
        if &sb[..8] != MAGIC {
            return Err(bad("bad magic"));
        }
        let block_size = u32::from_le_bytes(sb[8..12].try_into().unwrap()) as usize;
        if block_size != dev.block_size() {
            return Err(bad("block size mismatch"));
        }
        let total_blocks = u64::from_le_bytes(sb[12..20].try_into().unwrap());
        if total_blocks != dev.num_blocks() {
            return Err(bad("geometry mismatch"));
        }
        let inode_count = u32::from_le_bytes(sb[20..24].try_into().unwrap());
        let bitmap_start = u64::from_le_bytes(sb[24..32].try_into().unwrap());
        let bitmap_blocks = u32::from_le_bytes(sb[32..36].try_into().unwrap());
        let itable_start = u64::from_le_bytes(sb[36..44].try_into().unwrap());
        let itable_blocks = u32::from_le_bytes(sb[44..48].try_into().unwrap());
        let data_start = u64::from_le_bytes(sb[48..56].try_into().unwrap());
        if data_start > total_blocks {
            return Err(bad("data region beyond device"));
        }
        // Load bitmap and inode table with one vectored read each.
        let bitmap_indices: Vec<u64> =
            (0..bitmap_blocks as u64).map(|i| bitmap_start + i).collect();
        let mut bitmap = Vec::with_capacity(bitmap_blocks as usize * block_size);
        for block in dev.read_blocks(&bitmap_indices)? {
            bitmap.extend_from_slice(&block);
        }
        let inodes_per_block = block_size / INODE_SIZE;
        let itable_indices: Vec<u64> =
            (0..itable_blocks as u64).map(|i| itable_start + i).collect();
        let mut inodes = Vec::with_capacity(inode_count as usize);
        'outer: for block in dev.read_blocks(&itable_indices)? {
            for j in 0..inodes_per_block {
                if inodes.len() == inode_count as usize {
                    break 'outer;
                }
                inodes.push(Inode::decode(&block[j * INODE_SIZE..(j + 1) * INODE_SIZE])?);
            }
        }
        Ok(SimFs {
            dev,
            block_size,
            total_blocks,
            inode_count,
            bitmap_start,
            bitmap_blocks,
            itable_start,
            itable_blocks,
            data_start,
            bitmap,
            inodes,
            alloc_cursor: data_start,
            meta_dirty: false,
            ptr_cache: std::collections::HashMap::new(),
            ptr_dirty: std::collections::HashSet::new(),
        })
    }

    /// Blocks available for new data.
    pub fn free_blocks(&self) -> u64 {
        (self.data_start..self.total_blocks).filter(|&b| !self.bitmap_get(b)).count() as u64
    }

    /// The device's block size.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    fn bitmap_get(&self, block: u64) -> bool {
        self.bitmap[(block / 8) as usize] & (1 << (block % 8)) != 0
    }

    fn bitmap_set(&mut self, block: u64, val: bool) {
        let byte = (block / 8) as usize;
        let mask = 1u8 << (block % 8);
        if val {
            self.bitmap[byte] |= mask;
        } else {
            self.bitmap[byte] &= !mask;
        }
        self.meta_dirty = true;
    }

    /// Roving first-fit allocation: search from the cursor, wrap once.
    fn alloc_block(&mut self) -> Result<u64, FsError> {
        let ranges = [(self.alloc_cursor, self.total_blocks), (self.data_start, self.alloc_cursor)];
        for (lo, hi) in ranges {
            for b in lo..hi {
                if !self.bitmap_get(b) {
                    self.bitmap_set(b, true);
                    self.alloc_cursor = b + 1;
                    return Ok(b);
                }
            }
        }
        Err(FsError::NoSpace)
    }

    fn free_block(&mut self, block: u64) {
        debug_assert!(block >= self.data_start);
        self.bitmap_set(block, false);
    }

    fn find_inode(&self, name: &str) -> Option<usize> {
        self.inodes.iter().position(|i| i.used && i.name == name)
    }

    fn ptrs_per_block(&self) -> u64 {
        (self.block_size / 8) as u64
    }

    fn max_file_blocks(&self) -> u64 {
        DIRECT_PTRS as u64 + self.ptrs_per_block() + self.ptrs_per_block() * self.ptrs_per_block()
    }

    fn ptr_block_mut(&mut self, ptr_block: u64) -> Result<&mut Vec<u8>, FsError> {
        if !self.ptr_cache.contains_key(&ptr_block) {
            let block = self.dev.read_block(ptr_block)?;
            self.ptr_cache.insert(ptr_block, block);
        }
        Ok(self.ptr_cache.get_mut(&ptr_block).expect("just inserted"))
    }

    fn read_ptr(&mut self, ptr_block: u64, slot: u64) -> Result<u64, FsError> {
        let block = self.ptr_block_mut(ptr_block)?;
        let off = slot as usize * 8;
        Ok(u64::from_le_bytes(block[off..off + 8].try_into().unwrap()))
    }

    fn write_ptr(&mut self, ptr_block: u64, slot: u64, value: u64) -> Result<(), FsError> {
        let block = self.ptr_block_mut(ptr_block)?;
        let off = slot as usize * 8;
        block[off..off + 8].copy_from_slice(&value.to_le_bytes());
        self.ptr_dirty.insert(ptr_block);
        self.meta_dirty = true;
        Ok(())
    }

    /// Registers a freshly allocated, zeroed pointer block in the cache.
    fn fresh_ptr_block(&mut self, ptr_block: u64) {
        self.ptr_cache.insert(ptr_block, vec![0u8; self.block_size]);
        self.ptr_dirty.insert(ptr_block);
        self.meta_dirty = true;
    }

    /// Physical block backing file-block `fbn`, allocating structure if
    /// `allocate` and the slot is a hole. Returns 0 for unallocated holes
    /// when not allocating.
    fn map_block(&mut self, ino: usize, fbn: u64, allocate: bool) -> Result<u64, FsError> {
        let p = self.ptrs_per_block();
        if fbn < DIRECT_PTRS as u64 {
            let cur = self.inodes[ino].direct[fbn as usize];
            if cur != 0 || !allocate {
                return Ok(cur);
            }
            let b = self.alloc_block()?;
            self.inodes[ino].direct[fbn as usize] = b;
            self.meta_dirty = true;
            return Ok(b);
        }
        let fbn1 = fbn - DIRECT_PTRS as u64;
        if fbn1 < p {
            let mut ind = self.inodes[ino].indirect;
            if ind == 0 {
                if !allocate {
                    return Ok(0);
                }
                ind = self.alloc_block()?;
                self.fresh_ptr_block(ind);
                self.inodes[ino].indirect = ind;
                self.meta_dirty = true;
            }
            let cur = self.read_ptr(ind, fbn1)?;
            if cur != 0 || !allocate {
                return Ok(cur);
            }
            let b = self.alloc_block()?;
            self.write_ptr(ind, fbn1, b)?;
            return Ok(b);
        }
        let fbn2 = fbn1 - p;
        if fbn2 >= p * p {
            return Err(FsError::FileTooLarge);
        }
        let mut dind = self.inodes[ino].dindirect;
        if dind == 0 {
            if !allocate {
                return Ok(0);
            }
            dind = self.alloc_block()?;
            self.fresh_ptr_block(dind);
            self.inodes[ino].dindirect = dind;
            self.meta_dirty = true;
        }
        let (outer, inner) = (fbn2 / p, fbn2 % p);
        let mut mid = self.read_ptr(dind, outer)?;
        if mid == 0 {
            if !allocate {
                return Ok(0);
            }
            mid = self.alloc_block()?;
            self.fresh_ptr_block(mid);
            self.write_ptr(dind, outer, mid)?;
        }
        let cur = self.read_ptr(mid, inner)?;
        if cur != 0 || !allocate {
            return Ok(cur);
        }
        let b = self.alloc_block()?;
        self.write_ptr(mid, inner, b)?;
        Ok(b)
    }

    fn release_ptr_block(&mut self, block: u64) {
        self.ptr_cache.remove(&block);
        self.ptr_dirty.remove(&block);
        self.free_block(block);
    }

    fn release_file_blocks(&mut self, ino: usize) -> Result<(), FsError> {
        let inode = self.inodes[ino].clone();
        for &b in inode.direct.iter().filter(|&&b| b != 0) {
            self.free_block(b);
        }
        let p = self.ptrs_per_block();
        if inode.indirect != 0 {
            for slot in 0..p {
                let b = self.read_ptr(inode.indirect, slot)?;
                if b != 0 {
                    self.free_block(b);
                }
            }
            self.release_ptr_block(inode.indirect);
        }
        if inode.dindirect != 0 {
            for outer in 0..p {
                let mid = self.read_ptr(inode.dindirect, outer)?;
                if mid != 0 {
                    for inner in 0..p {
                        let b = self.read_ptr(mid, inner)?;
                        if b != 0 {
                            self.free_block(b);
                        }
                    }
                    self.release_ptr_block(mid);
                }
            }
            self.release_ptr_block(inode.dindirect);
        }
        Ok(())
    }
}

impl FileSystem for SimFs {
    fn create(&mut self, name: &str) -> Result<(), FsError> {
        if name.len() > NAME_MAX {
            return Err(FsError::NameTooLong { name: name.into() });
        }
        if self.find_inode(name).is_some() {
            return Err(FsError::AlreadyExists { name: name.into() });
        }
        let slot = self.inodes.iter().position(|i| !i.used).ok_or(FsError::NoSpace)?;
        self.inodes[slot] = Inode { used: true, name: name.to_string(), ..Inode::empty() };
        self.meta_dirty = true;
        Ok(())
    }

    fn write(&mut self, name: &str, offset: u64, data: &[u8]) -> Result<(), FsError> {
        let ino = self.find_inode(name).ok_or_else(|| FsError::NotFound { name: name.into() })?;
        let bs = self.block_size as u64;
        let end = offset + data.len() as u64;
        if end.div_ceil(bs) > self.max_file_blocks() {
            return Err(FsError::FileTooLarge);
        }
        // Pass 1: resolve/allocate the physical block of every piece. On
        // NoSpace mid-file the already-mapped prefix still lands on the
        // device (below) before the error surfaces, like the sequential
        // loop; the file size only grows on full success.
        struct Piece {
            phys: u64,
            in_block: usize,
            data_off: usize,
            take: usize,
            was_mapped: bool,
        }
        let mut pieces: Vec<Piece> = Vec::with_capacity(data.len() / self.block_size + 2);
        let mut alloc_error = None;
        let mut written = 0usize;
        while written < data.len() {
            let pos = offset + written as u64;
            let fbn = pos / bs;
            let in_block = (pos % bs) as usize;
            let take = (self.block_size - in_block).min(data.len() - written);
            // Any failure resolving this piece (probe read of a pointer
            // block, allocation) still lands the resolved prefix below,
            // exactly as the sequential loop had already written it.
            let resolved = self
                .map_block(ino, fbn, false)
                .and_then(|cur| self.map_block(ino, fbn, true).map(|phys| (phys, cur != 0)));
            match resolved {
                Ok((phys, was_mapped)) => {
                    pieces.push(Piece { phys, in_block, data_off: written, take, was_mapped })
                }
                Err(e) => {
                    alloc_error = Some(e);
                    break;
                }
            }
            written += take;
        }
        // Pass 2: one vectored read for every partial block that needs
        // read-modify-write.
        let rmw_phys: Vec<u64> = pieces
            .iter()
            .filter(|p| p.take != self.block_size && p.was_mapped)
            .map(|p| p.phys)
            .collect();
        let mut rmw_bufs = self.dev.read_blocks(&rmw_phys)?.into_iter();
        // Pass 3: assemble the batch and land it in one vectored write.
        let buffers: Vec<Option<Vec<u8>>> = pieces
            .iter()
            .map(|p| {
                if p.take == self.block_size {
                    None // full block: write the caller's bytes in place
                } else {
                    // Partial block: splice into the old contents, or into
                    // zeros for a fresh block (never read back whatever a
                    // previously freed block contained).
                    let mut block = if p.was_mapped {
                        rmw_bufs.next().expect("one buffer per rmw piece")
                    } else {
                        vec![0u8; self.block_size]
                    };
                    block[p.in_block..p.in_block + p.take]
                        .copy_from_slice(&data[p.data_off..p.data_off + p.take]);
                    Some(block)
                }
            })
            .collect();
        let writes: Vec<(u64, &[u8])> = pieces
            .iter()
            .zip(&buffers)
            .map(|(p, buf)| match buf {
                Some(block) => (p.phys, block.as_slice()),
                None => (p.phys, &data[p.data_off..p.data_off + p.take]),
            })
            .collect();
        self.dev.write_blocks(&writes)?;
        if let Some(e) = alloc_error {
            return Err(e);
        }
        if end > self.inodes[ino].size {
            self.inodes[ino].size = end;
            self.meta_dirty = true;
        }
        Ok(())
    }

    fn read(&mut self, name: &str, offset: u64, len: usize) -> Result<Vec<u8>, FsError> {
        let ino = self.find_inode(name).ok_or_else(|| FsError::NotFound { name: name.into() })?;
        let size = self.inodes[ino].size;
        if offset > size {
            return Err(FsError::BadOffset { offset, size });
        }
        let len = len.min((size - offset) as usize);
        let bs = self.block_size as u64;
        // Pass 1: resolve every piece's mapping (0 = hole).
        let mut pieces: Vec<(u64, usize, usize)> = Vec::new(); // (phys, in_block, take)
        let mut resolved = 0usize;
        while resolved < len {
            let pos = offset + resolved as u64;
            let fbn = pos / bs;
            let in_block = (pos % bs) as usize;
            let take = (self.block_size - in_block).min(len - resolved);
            let phys = self.map_block(ino, fbn, false)?;
            pieces.push((phys, in_block, take));
            resolved += take;
        }
        // Pass 2: one vectored read for all mapped pieces; holes are zeros.
        let mapped: Vec<u64> = pieces.iter().filter(|p| p.0 != 0).map(|p| p.0).collect();
        let mut bufs = self.dev.read_blocks(&mapped)?.into_iter();
        let mut out = Vec::with_capacity(len);
        for (phys, in_block, take) in pieces {
            if phys == 0 {
                out.extend(std::iter::repeat_n(0u8, take)); // hole
            } else {
                let block = bufs.next().expect("one buffer per mapped piece");
                out.extend_from_slice(&block[in_block..in_block + take]);
            }
        }
        Ok(out)
    }

    fn file_size(&self, name: &str) -> Result<u64, FsError> {
        let ino = self.find_inode(name).ok_or_else(|| FsError::NotFound { name: name.into() })?;
        Ok(self.inodes[ino].size)
    }

    fn delete(&mut self, name: &str) -> Result<(), FsError> {
        let ino = self.find_inode(name).ok_or_else(|| FsError::NotFound { name: name.into() })?;
        self.release_file_blocks(ino)?;
        self.inodes[ino] = Inode::empty();
        self.meta_dirty = true;
        Ok(())
    }

    fn list(&self) -> Vec<String> {
        self.inodes.iter().filter(|i| i.used).map(|i| i.name.clone()).collect()
    }

    fn sync(&mut self) -> Result<(), FsError> {
        if !self.meta_dirty {
            return Ok(());
        }
        // Superblock.
        let mut sb = vec![0u8; self.block_size];
        sb[..8].copy_from_slice(MAGIC);
        sb[8..12].copy_from_slice(&(self.block_size as u32).to_le_bytes());
        sb[12..20].copy_from_slice(&self.total_blocks.to_le_bytes());
        sb[20..24].copy_from_slice(&self.inode_count.to_le_bytes());
        sb[24..32].copy_from_slice(&self.bitmap_start.to_le_bytes());
        sb[32..36].copy_from_slice(&self.bitmap_blocks.to_le_bytes());
        sb[36..44].copy_from_slice(&self.itable_start.to_le_bytes());
        sb[44..48].copy_from_slice(&self.itable_blocks.to_le_bytes());
        sb[48..56].copy_from_slice(&self.data_start.to_le_bytes());
        // The whole metadata write-back — superblock, bitmap, inode table
        // and dirty indirect pointer blocks — lands in one vectored write.
        let inodes_per_block = self.block_size / INODE_SIZE;
        let itable: Vec<Vec<u8>> = (0..self.itable_blocks as u64)
            .map(|i| {
                let mut block = vec![0u8; self.block_size];
                for j in 0..inodes_per_block {
                    let idx = i as usize * inodes_per_block + j;
                    if idx < self.inodes.len() {
                        self.inodes[idx].encode(&mut block[j * INODE_SIZE..(j + 1) * INODE_SIZE]);
                    }
                }
                block
            })
            .collect();
        // Keep ptr_dirty intact until the write-back lands: a failed sync
        // must leave the dirty set (and meta_dirty) in place so a retry
        // writes everything, not just the sb/bitmap/itable. Sorted, because
        // HashSet order is randomly seeded per process and the simulated
        // cost of the batch depends on block order (sequential vs random):
        // an unsorted write-back would charge different virtual time on
        // identical runs.
        let mut dirty: Vec<u64> = self.ptr_dirty.iter().copied().collect();
        dirty.sort_unstable();
        let mut writes: Vec<(u64, &[u8])> =
            Vec::with_capacity(1 + self.bitmap_blocks as usize + itable.len() + dirty.len());
        writes.push((0, sb.as_slice()));
        for i in 0..self.bitmap_blocks as u64 {
            let lo = i as usize * self.block_size;
            writes.push((self.bitmap_start + i, &self.bitmap[lo..lo + self.block_size]));
        }
        for (i, block) in itable.iter().enumerate() {
            writes.push((self.itable_start + i as u64, block.as_slice()));
        }
        for b in &dirty {
            let block = self.ptr_cache.get(b).expect("dirty block must be cached");
            writes.push((*b, block.as_slice()));
        }
        self.dev.write_blocks(&writes)?;
        self.dev.flush()?;
        self.ptr_dirty.clear();
        self.meta_dirty = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobiceal_blockdev::{BlockDevice, FaultInjection, MemDisk};
    use std::sync::Arc;

    fn fs_with(blocks: u64) -> SimFs {
        SimFs::format(Arc::new(MemDisk::with_default_timing(blocks, 4096))).unwrap()
    }

    #[test]
    fn create_write_read_roundtrip() {
        let mut fs = fs_with(256);
        fs.create("a.bin").unwrap();
        let data: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        fs.write("a.bin", 0, &data).unwrap();
        assert_eq!(fs.read("a.bin", 0, 10_000).unwrap(), data);
        assert_eq!(fs.file_size("a.bin").unwrap(), 10_000);
    }

    #[test]
    fn partial_and_unaligned_io() {
        let mut fs = fs_with(256);
        fs.create("f").unwrap();
        fs.write("f", 0, &[1u8; 100]).unwrap();
        fs.write("f", 50, &[2u8; 100]).unwrap(); // overlap
        let out = fs.read("f", 0, 150).unwrap();
        assert_eq!(&out[..50], &[1u8; 50][..]);
        assert_eq!(&out[50..150], &[2u8; 100][..]);
        // Cross-block unaligned write.
        fs.write("f", 4090, &[9u8; 20]).unwrap();
        assert_eq!(fs.read("f", 4090, 20).unwrap(), vec![9u8; 20]);
    }

    #[test]
    fn sparse_files_read_zeros_in_holes() {
        let mut fs = fs_with(256);
        fs.create("sparse").unwrap();
        fs.write("sparse", 100_000, b"end").unwrap();
        assert_eq!(fs.file_size("sparse").unwrap(), 100_003);
        let hole = fs.read("sparse", 5_000, 64).unwrap();
        assert_eq!(hole, vec![0u8; 64]);
        assert_eq!(fs.read("sparse", 100_000, 3).unwrap(), b"end");
    }

    #[test]
    fn large_file_through_indirect_blocks() {
        // > 10 direct blocks (40 KiB) and > indirect range to touch
        // double-indirect: indirect covers 512 blocks = 2 MiB at 4 KiB.
        let mut fs = fs_with(2048);
        fs.create("big").unwrap();
        let chunk = vec![0xCDu8; 64 * 1024];
        let total = 3 * 1024 * 1024u64; // 3 MiB
        let mut off = 0u64;
        while off < total {
            fs.write("big", off, &chunk).unwrap();
            off += chunk.len() as u64;
        }
        assert_eq!(fs.file_size("big").unwrap(), total);
        // Spot-check reads across the pointer-level boundaries.
        for probe in [0u64, 39 * 1024, 41 * 1024, 2 * 1024 * 1024 + 123_456] {
            assert_eq!(fs.read("big", probe, 16).unwrap(), vec![0xCD; 16], "probe {probe}");
        }
    }

    #[test]
    fn delete_frees_space_for_reuse() {
        let mut fs = fs_with(128);
        let before = fs.free_blocks();
        fs.create("tmp").unwrap();
        fs.write("tmp", 0, &vec![1u8; 200_000]).unwrap();
        assert!(fs.free_blocks() < before);
        fs.delete("tmp").unwrap();
        assert_eq!(fs.free_blocks(), before);
        assert!(matches!(fs.read("tmp", 0, 1), Err(FsError::NotFound { .. })));
    }

    #[test]
    fn fills_disk_then_no_space() {
        let mut fs = fs_with(64); // tiny disk
        fs.create("filler").unwrap();
        let mut off = 0u64;
        let chunk = vec![7u8; 4096];
        let err = loop {
            match fs.write("filler", off, &chunk) {
                Ok(()) => off += 4096,
                Err(e) => break e,
            }
        };
        assert_eq!(err, FsError::NoSpace);
        // Existing data still readable.
        assert_eq!(fs.read("filler", 0, 16).unwrap(), vec![7u8; 16]);
    }

    #[test]
    fn mount_after_sync_sees_files() {
        let disk = Arc::new(MemDisk::with_default_timing(256, 4096));
        let mut fs = SimFs::format(disk.clone()).unwrap();
        fs.create("persist").unwrap();
        fs.write("persist", 0, b"durable data").unwrap();
        fs.sync().unwrap();
        drop(fs);
        let mut fs2 = SimFs::mount(disk).unwrap();
        assert_eq!(fs2.list(), vec!["persist".to_string()]);
        assert_eq!(fs2.read("persist", 0, 12).unwrap(), b"durable data");
    }

    #[test]
    fn unsynced_metadata_is_lost_on_remount() {
        let disk = Arc::new(MemDisk::with_default_timing(256, 4096));
        let mut fs = SimFs::format(disk.clone()).unwrap();
        fs.create("ghost").unwrap();
        // No sync.
        drop(fs);
        let fs2 = SimFs::mount(disk).unwrap();
        assert!(fs2.list().is_empty());
    }

    #[test]
    fn failed_sync_retries_indirect_pointer_blocks() {
        // A transient device fault during sync must not lose the dirty
        // pointer-block set: the retry has to write them or remount reads
        // stale pointers.
        let disk = Arc::new(MemDisk::with_default_timing(256, 4096));
        let mut fs = SimFs::format(disk.clone()).unwrap();
        fs.create("big").unwrap();
        // Past the 10 direct pointers so an indirect pointer block exists.
        fs.write("big", 0, &vec![0x5Au8; 12 * 4096]).unwrap();
        let mut faults = FaultInjection::default();
        faults.failing_writes.insert(0); // superblock write fails
        disk.set_faults(faults);
        assert!(fs.sync().is_err());
        disk.set_faults(FaultInjection::default());
        fs.sync().unwrap(); // retry must write the pointer blocks too
        drop(fs);
        let mut fs2 = SimFs::mount(disk).unwrap();
        assert_eq!(fs2.read("big", 11 * 4096, 16).unwrap(), vec![0x5A; 16]);
    }

    #[test]
    fn mount_rejects_foreign_device() {
        let disk = Arc::new(MemDisk::with_default_timing(64, 4096));
        assert!(matches!(SimFs::mount(disk), Err(FsError::NotFormatted { .. })));
    }

    #[test]
    fn name_rules() {
        let mut fs = fs_with(128);
        let long = "x".repeat(NAME_MAX + 1);
        assert!(matches!(fs.create(&long), Err(FsError::NameTooLong { .. })));
        fs.create("dup").unwrap();
        assert!(matches!(fs.create("dup"), Err(FsError::AlreadyExists { .. })));
    }

    #[test]
    fn read_past_eof_is_error_but_short_read_ok() {
        let mut fs = fs_with(128);
        fs.create("f").unwrap();
        fs.write("f", 0, b"12345").unwrap();
        assert!(matches!(fs.read("f", 6, 1), Err(FsError::BadOffset { .. })));
        assert_eq!(fs.read("f", 3, 100).unwrap(), b"45"); // short read
        assert_eq!(fs.read("f", 5, 10).unwrap(), b""); // at EOF
    }

    #[test]
    fn many_files_create_stat_delete_churn() {
        let mut fs = fs_with(512);
        for i in 0..60 {
            fs.create(&format!("file_{i:04}")).unwrap();
            fs.write(&format!("file_{i:04}"), 0, &vec![i as u8; 1000]).unwrap();
        }
        assert_eq!(fs.list().len(), 60);
        for i in (0..60).step_by(2) {
            fs.delete(&format!("file_{i:04}")).unwrap();
        }
        assert_eq!(fs.list().len(), 30);
        for i in (1..60).step_by(2) {
            assert_eq!(fs.file_size(&format!("file_{i:04}")).unwrap(), 1000);
        }
    }

    #[test]
    fn writes_show_spatial_locality() {
        // The allocator hands out mostly-contiguous runs — the property the
        // paper's footnote 3 attributes to real file systems. Check that the
        // blocks a 40-block file occupies form one contiguous extent.
        let disk = Arc::new(MemDisk::with_default_timing(512, 4096));
        let mut fs = SimFs::format(disk.clone()).unwrap();
        let data_start = fs.data_start;
        fs.create("seq").unwrap();
        fs.write("seq", 0, &vec![1u8; 40 * 4096]).unwrap();
        fs.sync().unwrap();
        let snap = disk.snapshot();
        let touched: Vec<u64> =
            (data_start..disk.num_blocks()).filter(|&b| !snap.is_zero_block(b)).collect();
        assert!(touched.len() >= 40);
        let span = touched.last().unwrap() - touched.first().unwrap() + 1;
        assert_eq!(
            span,
            touched.len() as u64,
            "file blocks should form one contiguous extent: {touched:?}"
        );
    }

    #[test]
    fn inode_exhaustion() {
        let disk = Arc::new(MemDisk::with_default_timing(512, 4096));
        let mut fs = SimFs::format_with_inodes(disk, 4).unwrap();
        for i in 0..4 {
            fs.create(&format!("f{i}")).unwrap();
        }
        assert!(matches!(fs.create("one-too-many"), Err(FsError::NoSpace)));
    }
}
