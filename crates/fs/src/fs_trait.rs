//! The [`FileSystem`] trait and error type shared by both file systems.

use mobiceal_blockdev::BlockDeviceError;
use std::fmt;

/// Errors from file-system operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// No file with that name.
    NotFound {
        /// The missing name.
        name: String,
    },
    /// A file with that name already exists.
    AlreadyExists {
        /// The conflicting name.
        name: String,
    },
    /// Out of data blocks, inodes, or directory space.
    NoSpace,
    /// File name exceeds the on-disk limit.
    NameTooLong {
        /// The offending name.
        name: String,
    },
    /// Read past the end of a file.
    BadOffset {
        /// Requested offset.
        offset: u64,
        /// Current file size.
        size: u64,
    },
    /// File would exceed the maximum size addressable by one inode.
    FileTooLarge,
    /// The device does not contain this file system (bad magic / geometry).
    NotFormatted {
        /// Detail for diagnostics.
        detail: String,
    },
    /// Underlying device error.
    Device(BlockDeviceError),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound { name } => write!(f, "file not found: {name}"),
            FsError::AlreadyExists { name } => write!(f, "file already exists: {name}"),
            FsError::NoSpace => write!(f, "no space left"),
            FsError::NameTooLong { name } => write!(f, "file name too long: {name}"),
            FsError::BadOffset { offset, size } => {
                write!(f, "offset {offset} beyond file size {size}")
            }
            FsError::FileTooLarge => write!(f, "file exceeds maximum addressable size"),
            FsError::NotFormatted { detail } => write!(f, "not a valid file system: {detail}"),
            FsError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for FsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FsError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BlockDeviceError> for FsError {
    fn from(e: BlockDeviceError) -> Self {
        FsError::Device(e)
    }
}

/// A minimal flat-namespace file system over a block device.
///
/// Rich enough to run the paper's measurement workloads (`dd`-style bulk
/// I/O; Bonnie++-style create/stat/delete churn) and the example apps.
pub trait FileSystem {
    /// Creates an empty file.
    ///
    /// # Errors
    ///
    /// [`FsError::AlreadyExists`], [`FsError::NameTooLong`],
    /// [`FsError::NoSpace`], or device errors.
    fn create(&mut self, name: &str) -> Result<(), FsError>;

    /// Writes `data` at byte `offset`, extending the file as needed.
    /// Writing beyond EOF zero-fills the gap.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`], [`FsError::NoSpace`],
    /// [`FsError::FileTooLarge`], or device errors.
    fn write(&mut self, name: &str, offset: u64, data: &[u8]) -> Result<(), FsError>;

    /// Reads `len` bytes at `offset`. Short reads at EOF return fewer bytes.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`], [`FsError::BadOffset`] if `offset` is past
    /// EOF, or device errors.
    fn read(&mut self, name: &str, offset: u64, len: usize) -> Result<Vec<u8>, FsError>;

    /// Current size of the file in bytes.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`].
    fn file_size(&self, name: &str) -> Result<u64, FsError>;

    /// Removes a file and frees its blocks.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] or device errors.
    fn delete(&mut self, name: &str) -> Result<(), FsError>;

    /// Names of all files.
    fn list(&self) -> Vec<String>;

    /// Flushes cached metadata to the device.
    ///
    /// # Errors
    ///
    /// Device errors.
    fn sync(&mut self) -> Result<(), FsError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let cases: Vec<(FsError, &str)> = vec![
            (FsError::NotFound { name: "a".into() }, "not found"),
            (FsError::AlreadyExists { name: "a".into() }, "exists"),
            (FsError::NoSpace, "no space"),
            (FsError::NameTooLong { name: "x".into() }, "too long"),
            (FsError::BadOffset { offset: 9, size: 3 }, "offset 9"),
            (FsError::FileTooLarge, "maximum"),
            (FsError::NotFormatted { detail: "magic".into() }, "magic"),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
        let dev_err = FsError::from(BlockDeviceError::NoSpace);
        assert!(std::error::Error::source(&dev_err).is_some());
    }
}
