//! [`FatFs`]: a FAT-like file system with strictly sequential allocation.
//!
//! Models the FAT32-class file systems that the original hidden-volume PDE
//! technique targeted (Mobiflage, §VII-A of the paper): cluster chains in a
//! file allocation table, and allocation that always takes the **lowest**
//! free cluster, so data fills the disk front-to-back. On a hidden-volume
//! design this is what keeps the public volume away from the hidden tail of
//! the disk — and on MobiCeal it is just another workload whose locality the
//! random allocator hides.
//!
//! On-disk layout:
//!
//! ```text
//! block 0        superblock
//! blocks 1..     FAT (one u32 entry per data cluster)
//! blocks ..      root directory table (fixed entry count)
//! blocks ..      data clusters
//! ```

use crate::fs_trait::{FileSystem, FsError};
use mobiceal_blockdev::SharedDevice;

const MAGIC: &[u8; 8] = b"FATSIM01";
const NAME_MAX: usize = 27;
const DIRENT_SIZE: usize = 40;
/// FAT entry marking a free cluster.
const FAT_FREE: u32 = 0;
/// FAT entry terminating a chain.
const FAT_EOC: u32 = u32::MAX;

#[derive(Debug, Clone, PartialEq, Eq)]
struct DirEntry {
    used: bool,
    name: String,
    size: u64,
    first_cluster: u32,
}

impl DirEntry {
    fn empty() -> Self {
        DirEntry { used: false, name: String::new(), size: 0, first_cluster: 0 }
    }

    // Layout: [0]=used [1]=name_len [2..30]=name [30..34]=first_cluster
    // [34..40]=size (48-bit).
    fn encode(&self, out: &mut [u8]) {
        out.fill(0);
        out[0] = self.used as u8;
        let name = self.name.as_bytes();
        out[1] = name.len() as u8;
        out[2..2 + name.len()].copy_from_slice(name);
        out[30..34].copy_from_slice(&self.first_cluster.to_le_bytes());
        out[34..40].copy_from_slice(&self.size.to_le_bytes()[..6]);
    }

    fn decode(data: &[u8]) -> Result<Self, FsError> {
        let bad = |d: &str| FsError::NotFormatted { detail: d.into() };
        if data.len() < DIRENT_SIZE {
            return Err(bad("short dirent"));
        }
        let used = data[0] == 1;
        let name_len = data[1] as usize;
        if name_len > NAME_MAX {
            return Err(bad("bad dirent name length"));
        }
        let name = String::from_utf8(data[2..2 + name_len].to_vec())
            .map_err(|_| bad("non-utf8 dirent name"))?;
        let first_cluster = u32::from_le_bytes(data[30..34].try_into().unwrap());
        let mut size_bytes = [0u8; 8];
        size_bytes[..6].copy_from_slice(&data[34..40]);
        let size = u64::from_le_bytes(size_bytes);
        Ok(DirEntry { used, name, size, first_cluster })
    }
}

/// A FAT-like file system over any block device. See the module docs.
pub struct FatFs {
    dev: SharedDevice,
    block_size: usize,
    total_blocks: u64,
    fat_start: u64,
    fat_blocks: u32,
    dir_start: u64,
    dir_blocks: u32,
    data_start: u64,
    /// Cluster `c` occupies device block `data_start + c - 1`
    /// (cluster numbers start at 1; 0 means "none").
    cluster_count: u32,
    fat: Vec<u32>,
    dir: Vec<DirEntry>,
    meta_dirty: bool,
}

impl std::fmt::Debug for FatFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FatFs")
            .field("total_blocks", &self.total_blocks)
            .field("cluster_count", &self.cluster_count)
            .finish_non_exhaustive()
    }
}

impl FatFs {
    /// Formats `dev` with an empty FAT file system (128 root entries).
    ///
    /// # Errors
    ///
    /// Fails if the device is too small or on device errors.
    pub fn format(dev: SharedDevice) -> Result<Self, FsError> {
        Self::format_with_entries(dev, 128)
    }

    /// Formats with a custom root-directory capacity.
    ///
    /// # Errors
    ///
    /// Fails if the device is too small or on device errors.
    pub fn format_with_entries(dev: SharedDevice, dir_entries: u32) -> Result<Self, FsError> {
        let block_size = dev.block_size();
        if block_size < 512 {
            return Err(FsError::NotFormatted { detail: "block size below 512".into() });
        }
        let total_blocks = dev.num_blocks();
        // Estimate cluster count ignoring metadata, then iterate once.
        let mut cluster_count = total_blocks.saturating_sub(1) as u32;
        for _ in 0..4 {
            let fat_blocks = ((cluster_count as u64 + 1) * 4).div_ceil(block_size as u64) as u32;
            let dir_blocks =
                (dir_entries as u64 * DIRENT_SIZE as u64).div_ceil(block_size as u64) as u32;
            let data_start = 1 + fat_blocks as u64 + dir_blocks as u64;
            if data_start >= total_blocks {
                return Err(FsError::NotFormatted { detail: "device too small".into() });
            }
            cluster_count = (total_blocks - data_start) as u32;
        }
        let fat_blocks = ((cluster_count as u64 + 1) * 4).div_ceil(block_size as u64) as u32;
        let dir_blocks =
            (dir_entries as u64 * DIRENT_SIZE as u64).div_ceil(block_size as u64) as u32;
        let fat_start = 1;
        let dir_start = fat_start + fat_blocks as u64;
        let data_start = dir_start + dir_blocks as u64;
        let mut fs = FatFs {
            dev,
            block_size,
            total_blocks,
            fat_start,
            fat_blocks,
            dir_start,
            dir_blocks,
            data_start,
            cluster_count,
            fat: vec![FAT_FREE; cluster_count as usize + 1],
            dir: vec![DirEntry::empty(); dir_entries as usize],
            meta_dirty: true,
        };
        fs.sync()?;
        Ok(fs)
    }

    /// Mounts an existing FAT file system.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFormatted`] on a bad superblock, or device errors.
    pub fn mount(dev: SharedDevice) -> Result<Self, FsError> {
        let bad = |d: &str| FsError::NotFormatted { detail: d.into() };
        let sb = dev.read_block(0)?;
        if &sb[..8] != MAGIC {
            return Err(bad("bad magic"));
        }
        let block_size = u32::from_le_bytes(sb[8..12].try_into().unwrap()) as usize;
        if block_size != dev.block_size() {
            return Err(bad("block size mismatch"));
        }
        let total_blocks = u64::from_le_bytes(sb[12..20].try_into().unwrap());
        if total_blocks != dev.num_blocks() {
            return Err(bad("geometry mismatch"));
        }
        let cluster_count = u32::from_le_bytes(sb[20..24].try_into().unwrap());
        let fat_start = u64::from_le_bytes(sb[24..32].try_into().unwrap());
        let fat_blocks = u32::from_le_bytes(sb[32..36].try_into().unwrap());
        let dir_start = u64::from_le_bytes(sb[36..44].try_into().unwrap());
        let dir_blocks = u32::from_le_bytes(sb[44..48].try_into().unwrap());
        let data_start = u64::from_le_bytes(sb[48..56].try_into().unwrap());
        let dir_entries = u32::from_le_bytes(sb[56..60].try_into().unwrap());
        if data_start > total_blocks || data_start + cluster_count as u64 > total_blocks + 1 {
            return Err(bad("bad geometry"));
        }
        // FAT.
        let mut fat_bytes = Vec::with_capacity(fat_blocks as usize * block_size);
        for i in 0..fat_blocks as u64 {
            fat_bytes.extend_from_slice(&dev.read_block(fat_start + i)?);
        }
        let mut fat = Vec::with_capacity(cluster_count as usize + 1);
        for i in 0..=cluster_count as usize {
            fat.push(u32::from_le_bytes(fat_bytes[i * 4..i * 4 + 4].try_into().unwrap()));
        }
        // Directory.
        let mut dir_bytes = Vec::with_capacity(dir_blocks as usize * block_size);
        for i in 0..dir_blocks as u64 {
            dir_bytes.extend_from_slice(&dev.read_block(dir_start + i)?);
        }
        let mut dir = Vec::with_capacity(dir_entries as usize);
        for i in 0..dir_entries as usize {
            dir.push(DirEntry::decode(&dir_bytes[i * DIRENT_SIZE..(i + 1) * DIRENT_SIZE])?);
        }
        Ok(FatFs {
            dev,
            block_size,
            total_blocks,
            fat_start,
            fat_blocks,
            dir_start,
            dir_blocks,
            data_start,
            cluster_count,
            fat,
            dir,
            meta_dirty: false,
        })
    }

    /// Free clusters remaining.
    pub fn free_clusters(&self) -> u32 {
        self.fat[1..].iter().filter(|&&e| e == FAT_FREE).count() as u32
    }

    fn cluster_block(&self, cluster: u32) -> u64 {
        debug_assert!(cluster >= 1 && cluster <= self.cluster_count);
        self.data_start + cluster as u64 - 1
    }

    /// Lowest-numbered free cluster: the strictly sequential policy.
    fn alloc_cluster(&mut self) -> Result<u32, FsError> {
        for c in 1..=self.cluster_count as usize {
            if self.fat[c] == FAT_FREE {
                self.fat[c] = FAT_EOC;
                self.meta_dirty = true;
                return Ok(c as u32);
            }
        }
        Err(FsError::NoSpace)
    }

    fn find_entry(&self, name: &str) -> Option<usize> {
        self.dir.iter().position(|e| e.used && e.name == name)
    }

    /// Cluster holding file-block `fbn`, extending the chain if `allocate`.
    ///
    /// Freshly materialised clusters are zeroed on the device: FAT has no
    /// holes, and a reused cluster must not leak the bytes of a previously
    /// deleted file into a sparse extension.
    fn map_cluster(&mut self, entry: usize, fbn: u64, allocate: bool) -> Result<u32, FsError> {
        let mut cluster = self.dir[entry].first_cluster;
        if cluster == 0 {
            if !allocate {
                return Ok(0);
            }
            cluster = self.alloc_cluster()?;
            self.dev.write_block(self.cluster_block(cluster), &vec![0u8; self.block_size])?;
            self.dir[entry].first_cluster = cluster;
            self.meta_dirty = true;
        }
        for _ in 0..fbn {
            let next = self.fat[cluster as usize];
            if next == FAT_EOC {
                if !allocate {
                    return Ok(0);
                }
                let fresh = self.alloc_cluster()?;
                self.dev.write_block(self.cluster_block(fresh), &vec![0u8; self.block_size])?;
                self.fat[cluster as usize] = fresh;
                cluster = fresh;
            } else {
                cluster = next;
            }
        }
        Ok(cluster)
    }
}

impl FileSystem for FatFs {
    fn create(&mut self, name: &str) -> Result<(), FsError> {
        if name.len() > NAME_MAX {
            return Err(FsError::NameTooLong { name: name.into() });
        }
        if self.find_entry(name).is_some() {
            return Err(FsError::AlreadyExists { name: name.into() });
        }
        let slot = self.dir.iter().position(|e| !e.used).ok_or(FsError::NoSpace)?;
        self.dir[slot] = DirEntry { used: true, name: name.to_string(), size: 0, first_cluster: 0 };
        self.meta_dirty = true;
        Ok(())
    }

    fn write(&mut self, name: &str, offset: u64, data: &[u8]) -> Result<(), FsError> {
        let entry = self.find_entry(name).ok_or_else(|| FsError::NotFound { name: name.into() })?;
        let bs = self.block_size as u64;
        let mut written = 0usize;
        while written < data.len() {
            let pos = offset + written as u64;
            let fbn = pos / bs;
            let in_block = (pos % bs) as usize;
            let take = (self.block_size - in_block).min(data.len() - written);
            let cluster = self.map_cluster(entry, fbn, true)?;
            let block_idx = self.cluster_block(cluster);
            if in_block == 0 && take == self.block_size {
                self.dev.write_block(block_idx, &data[written..written + take])?;
            } else {
                let mut block = self.dev.read_block(block_idx)?;
                block[in_block..in_block + take].copy_from_slice(&data[written..written + take]);
                self.dev.write_block(block_idx, &block)?;
            }
            written += take;
        }
        let end = offset + data.len() as u64;
        if end > self.dir[entry].size {
            self.dir[entry].size = end;
            self.meta_dirty = true;
        }
        Ok(())
    }

    fn read(&mut self, name: &str, offset: u64, len: usize) -> Result<Vec<u8>, FsError> {
        let entry = self.find_entry(name).ok_or_else(|| FsError::NotFound { name: name.into() })?;
        let size = self.dir[entry].size;
        if offset > size {
            return Err(FsError::BadOffset { offset, size });
        }
        let len = len.min((size - offset) as usize);
        let bs = self.block_size as u64;
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            let pos = offset + out.len() as u64;
            let fbn = pos / bs;
            let in_block = (pos % bs) as usize;
            let take = (self.block_size - in_block).min(len - out.len());
            let cluster = self.map_cluster(entry, fbn, false)?;
            if cluster == 0 {
                out.extend(std::iter::repeat_n(0u8, take));
            } else {
                let block = self.dev.read_block(self.cluster_block(cluster))?;
                out.extend_from_slice(&block[in_block..in_block + take]);
            }
        }
        Ok(out)
    }

    fn file_size(&self, name: &str) -> Result<u64, FsError> {
        let entry = self.find_entry(name).ok_or_else(|| FsError::NotFound { name: name.into() })?;
        Ok(self.dir[entry].size)
    }

    fn delete(&mut self, name: &str) -> Result<(), FsError> {
        let entry = self.find_entry(name).ok_or_else(|| FsError::NotFound { name: name.into() })?;
        let mut cluster = self.dir[entry].first_cluster;
        while cluster != 0 && cluster != FAT_EOC {
            let next = self.fat[cluster as usize];
            self.fat[cluster as usize] = FAT_FREE;
            cluster = next;
        }
        self.dir[entry] = DirEntry::empty();
        self.meta_dirty = true;
        Ok(())
    }

    fn list(&self) -> Vec<String> {
        self.dir.iter().filter(|e| e.used).map(|e| e.name.clone()).collect()
    }

    fn sync(&mut self) -> Result<(), FsError> {
        if !self.meta_dirty {
            return Ok(());
        }
        let mut sb = vec![0u8; self.block_size];
        sb[..8].copy_from_slice(MAGIC);
        sb[8..12].copy_from_slice(&(self.block_size as u32).to_le_bytes());
        sb[12..20].copy_from_slice(&self.total_blocks.to_le_bytes());
        sb[20..24].copy_from_slice(&self.cluster_count.to_le_bytes());
        sb[24..32].copy_from_slice(&self.fat_start.to_le_bytes());
        sb[32..36].copy_from_slice(&self.fat_blocks.to_le_bytes());
        sb[36..44].copy_from_slice(&self.dir_start.to_le_bytes());
        sb[44..48].copy_from_slice(&self.dir_blocks.to_le_bytes());
        sb[48..56].copy_from_slice(&self.data_start.to_le_bytes());
        sb[56..60].copy_from_slice(&(self.dir.len() as u32).to_le_bytes());
        self.dev.write_block(0, &sb)?;
        // FAT.
        let mut fat_bytes = vec![0u8; self.fat_blocks as usize * self.block_size];
        for (i, &e) in self.fat.iter().enumerate() {
            fat_bytes[i * 4..i * 4 + 4].copy_from_slice(&e.to_le_bytes());
        }
        for i in 0..self.fat_blocks as u64 {
            let lo = i as usize * self.block_size;
            self.dev.write_block(self.fat_start + i, &fat_bytes[lo..lo + self.block_size])?;
        }
        // Directory.
        let mut dir_bytes = vec![0u8; self.dir_blocks as usize * self.block_size];
        for (i, e) in self.dir.iter().enumerate() {
            e.encode(&mut dir_bytes[i * DIRENT_SIZE..(i + 1) * DIRENT_SIZE]);
        }
        for i in 0..self.dir_blocks as u64 {
            let lo = i as usize * self.block_size;
            self.dev.write_block(self.dir_start + i, &dir_bytes[lo..lo + self.block_size])?;
        }
        self.dev.flush()?;
        self.meta_dirty = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobiceal_blockdev::MemDisk;
    use std::sync::Arc;

    fn fs_with(blocks: u64) -> FatFs {
        FatFs::format(Arc::new(MemDisk::with_default_timing(blocks, 4096))).unwrap()
    }

    #[test]
    fn basic_roundtrip() {
        let mut fs = fs_with(128);
        fs.create("doc").unwrap();
        let data: Vec<u8> = (0..20_000).map(|i| (i % 255) as u8).collect();
        fs.write("doc", 0, &data).unwrap();
        assert_eq!(fs.read("doc", 0, 20_000).unwrap(), data);
        assert_eq!(fs.file_size("doc").unwrap(), 20_000);
    }

    #[test]
    fn allocation_is_strictly_sequential_from_front() {
        let disk = Arc::new(MemDisk::with_default_timing(128, 4096));
        let mut fs = FatFs::format(disk.clone()).unwrap();
        fs.create("a").unwrap();
        fs.write("a", 0, &vec![1u8; 5 * 4096]).unwrap();
        // First free cluster is 1 → blocks data_start..data_start+5.
        let snap = disk.snapshot();
        let ds = fs.data_start;
        for i in 0..5 {
            assert!(!snap.is_zero_block(ds + i), "cluster {i} should be written");
        }
        assert!(snap.is_zero_block(ds + 5));
    }

    #[test]
    fn deleted_clusters_are_reused_lowest_first() {
        let mut fs = fs_with(128);
        fs.create("a").unwrap();
        fs.write("a", 0, &vec![1u8; 3 * 4096]).unwrap();
        fs.create("b").unwrap();
        fs.write("b", 0, &vec![2u8; 4096]).unwrap();
        let free_before = fs.free_clusters();
        fs.delete("a").unwrap();
        assert_eq!(fs.free_clusters(), free_before + 3);
        fs.create("c").unwrap();
        fs.write("c", 0, &vec![3u8; 4096]).unwrap();
        // c must reuse cluster 1 (lowest), not extend past b.
        assert_eq!(fs.dir[fs.find_entry("c").unwrap()].first_cluster, 1);
    }

    #[test]
    fn chain_traversal_across_many_clusters() {
        let mut fs = fs_with(256);
        fs.create("long").unwrap();
        let total = 50 * 4096;
        fs.write("long", 0, &vec![0xEE; total]).unwrap();
        assert_eq!(fs.read("long", (total - 10) as u64, 10).unwrap(), vec![0xEE; 10]);
    }

    #[test]
    fn no_space_when_full() {
        let mut fs = fs_with(32);
        fs.create("fill").unwrap();
        let mut off = 0u64;
        let err = loop {
            match fs.write("fill", off, &vec![1u8; 4096]) {
                Ok(()) => off += 4096,
                Err(e) => break e,
            }
        };
        assert_eq!(err, FsError::NoSpace);
    }

    #[test]
    fn persistence_roundtrip() {
        let disk = Arc::new(MemDisk::with_default_timing(128, 4096));
        let mut fs = FatFs::format(disk.clone()).unwrap();
        fs.create("keep").unwrap();
        fs.write("keep", 0, b"fat data").unwrap();
        fs.sync().unwrap();
        drop(fs);
        let mut fs2 = FatFs::mount(disk).unwrap();
        assert_eq!(fs2.read("keep", 0, 8).unwrap(), b"fat data");
    }

    #[test]
    fn mount_rejects_simfs_device() {
        let disk = Arc::new(MemDisk::with_default_timing(128, 4096));
        let _simfs = crate::SimFs::format(disk.clone()).unwrap();
        assert!(matches!(FatFs::mount(disk), Err(FsError::NotFormatted { .. })));
    }

    #[test]
    fn directory_capacity_enforced() {
        let disk = Arc::new(MemDisk::with_default_timing(128, 4096));
        let mut fs = FatFs::format_with_entries(disk, 3).unwrap();
        for i in 0..3 {
            fs.create(&format!("f{i}")).unwrap();
        }
        assert!(matches!(fs.create("f3"), Err(FsError::NoSpace)));
    }

    #[test]
    fn sparse_write_zero_fills() {
        let mut fs = fs_with(128);
        fs.create("s").unwrap();
        fs.write("s", 10_000, b"tail").unwrap();
        // FAT has no holes: clusters are materialised.
        assert_eq!(fs.read("s", 0, 4).unwrap(), vec![0u8; 4]);
        assert_eq!(fs.read("s", 10_000, 4).unwrap(), b"tail");
    }

    #[test]
    fn dirent_codec_roundtrip() {
        let e = DirEntry { used: true, name: "hello.txt".into(), size: 123_456, first_cluster: 77 };
        let mut buf = [0u8; DIRENT_SIZE];
        e.encode(&mut buf);
        assert_eq!(DirEntry::decode(&buf).unwrap(), e);
    }
}
