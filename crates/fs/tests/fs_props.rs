//! Property-based tests: both file systems against a reference model.

use mobiceal_blockdev::{MemDisk, SharedDevice};
use mobiceal_fs::{FatFs, FileSystem, FsError, SimFs};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum FsOp {
    Create { name: u8 },
    Write { name: u8, offset: u16, len: u16, fill: u8 },
    Read { name: u8, offset: u16, len: u16 },
    Delete { name: u8 },
    Sync,
}

fn op_strategy() -> impl Strategy<Value = FsOp> {
    prop_oneof![
        2 => (0u8..6).prop_map(|name| FsOp::Create { name }),
        4 => (0u8..6, 0u16..5000, 0u16..3000, any::<u8>())
            .prop_map(|(name, offset, len, fill)| FsOp::Write { name, offset, len, fill }),
        3 => (0u8..6, 0u16..6000, 0u16..3000)
            .prop_map(|(name, offset, len)| FsOp::Read { name, offset, len }),
        1 => (0u8..6).prop_map(|name| FsOp::Delete { name }),
        1 => Just(FsOp::Sync),
    ]
}

/// Reference model: file name -> byte vector.
fn check_fs(fs: &mut dyn FileSystem, ops: &[FsOp]) -> Result<(), TestCaseError> {
    let mut model: HashMap<String, Vec<u8>> = HashMap::new();
    for op in ops {
        match *op {
            FsOp::Create { name } => {
                let name = format!("file{name}");
                let result = fs.create(&name);
                if let std::collections::hash_map::Entry::Vacant(e) = model.entry(name) {
                    prop_assert!(result.is_ok());
                    e.insert(Vec::new());
                } else {
                    prop_assert!(
                        matches!(result, Err(FsError::AlreadyExists { .. })),
                        "expected AlreadyExists, got {:?}",
                        result
                    );
                }
            }
            FsOp::Write { name, offset, len, fill } => {
                let name = format!("file{name}");
                let data = vec![fill; len as usize];
                let result = fs.write(&name, offset as u64, &data);
                match model.get_mut(&name) {
                    Some(content) => {
                        prop_assert!(result.is_ok(), "write failed: {result:?}");
                        let end = offset as usize + len as usize;
                        if content.len() < end {
                            content.resize(end, 0);
                        }
                        content[offset as usize..end].copy_from_slice(&data);
                    }
                    None => prop_assert!(
                        matches!(result, Err(FsError::NotFound { .. })),
                        "expected NotFound, got {:?}",
                        result
                    ),
                }
            }
            FsOp::Read { name, offset, len } => {
                let name = format!("file{name}");
                let result = fs.read(&name, offset as u64, len as usize);
                match model.get(&name) {
                    Some(content) => {
                        if offset as usize > content.len() {
                            prop_assert!(
                                matches!(result, Err(FsError::BadOffset { .. })),
                                "expected BadOffset, got {:?}",
                                result
                            );
                        } else {
                            let end = (offset as usize + len as usize).min(content.len());
                            prop_assert_eq!(result.unwrap(), &content[offset as usize..end]);
                        }
                    }
                    None => prop_assert!(
                        matches!(result, Err(FsError::NotFound { .. })),
                        "expected NotFound, got {:?}",
                        result
                    ),
                }
            }
            FsOp::Delete { name } => {
                let name = format!("file{name}");
                let result = fs.delete(&name);
                if model.remove(&name).is_some() {
                    prop_assert!(result.is_ok());
                } else {
                    prop_assert!(
                        matches!(result, Err(FsError::NotFound { .. })),
                        "expected NotFound, got {:?}",
                        result
                    );
                }
            }
            FsOp::Sync => prop_assert!(fs.sync().is_ok()),
        }
    }
    // Final consistency sweep.
    let mut listed = fs.list();
    listed.sort();
    let mut expected: Vec<String> = model.keys().cloned().collect();
    expected.sort();
    prop_assert_eq!(listed, expected);
    for (name, content) in &model {
        prop_assert_eq!(fs.file_size(name).unwrap(), content.len() as u64);
        if !content.is_empty() {
            prop_assert_eq!(&fs.read(name, 0, content.len()).unwrap(), content);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn simfs_matches_model(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let disk: SharedDevice = Arc::new(MemDisk::with_default_timing(1024, 4096));
        let mut fs = SimFs::format(disk).unwrap();
        check_fs(&mut fs, &ops)?;
    }

    #[test]
    fn fatfs_matches_model(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let disk: SharedDevice = Arc::new(MemDisk::with_default_timing(1024, 4096));
        let mut fs = FatFs::format(disk).unwrap();
        check_fs(&mut fs, &ops)?;
    }

    #[test]
    fn simfs_persistence_after_sync(
        files in prop::collection::vec((0u8..5, 1u16..5000, any::<u8>()), 1..6),
    ) {
        let disk = Arc::new(MemDisk::with_default_timing(1024, 4096));
        {
            let mut fs = SimFs::format(disk.clone() as SharedDevice).unwrap();
            for (i, &(_, len, fill)) in files.iter().enumerate() {
                let name = format!("p{i}");
                fs.create(&name).unwrap();
                fs.write(&name, 0, &vec![fill; len as usize]).unwrap();
            }
            fs.sync().unwrap();
        }
        let mut fs = SimFs::mount(disk as SharedDevice).unwrap();
        for (i, &(_, len, fill)) in files.iter().enumerate() {
            let name = format!("p{i}");
            prop_assert_eq!(fs.read(&name, 0, len as usize).unwrap(), vec![fill; len as usize]);
        }
    }
}
