//! Garbage collection of dummy-write space (§IV-D).
//!
//! Dummy data accumulates and would eventually fill the disk. MobiCeal
//! reclaims it with two safeguards from the paper:
//!
//! 1. **Hidden-mode only**: only in hidden mode does the system know which
//!    volumes are truly dummy, so hidden data is never collected. We model
//!    this by requiring a verified hidden password.
//! 2. **Random partial reclamation**: collecting *all* dummy space would
//!    let the adversary identify hidden data as the randomness that
//!    survives GC. Instead a random fraction is reclaimed — large with high
//!    probability (we sample `p = f^{1/4}`, mean ≈ 0.8) — so surviving
//!    noise remains plausible.

use crate::device::MobiCeal;
use crate::error::MobiCealError;
use mobiceal_crypto::ChaCha20Rng;

/// Outcome of one garbage-collection pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcReport {
    /// Volumes examined (all non-public, non-hidden volumes).
    pub dummy_volumes: u32,
    /// Blocks mapped by those volumes before the pass.
    pub blocks_before: u64,
    /// Blocks reclaimed.
    pub blocks_reclaimed: u64,
    /// The sampled reclamation fraction.
    pub fraction: f64,
}

impl MobiCeal {
    /// Runs one GC pass. `hidden_passwords` must contain every hidden
    /// password in use: the first is verified to prove hidden mode, and all
    /// of them identify volumes that must never be collected.
    ///
    /// # Errors
    ///
    /// [`MobiCealError::NotInHiddenMode`] if no password verifies;
    /// device errors from discards.
    pub fn garbage_collect(
        &self,
        hidden_passwords: &[&str],
        seed: u64,
    ) -> Result<GcReport, MobiCealError> {
        // Prove hidden mode: at least one hidden password must verify.
        let mut protected = vec![1u32]; // the public volume
        let mut any_verified = false;
        for pwd in hidden_passwords {
            match self.unlock_hidden(pwd) {
                Ok(vol) => {
                    protected.push(vol.volume_id());
                    any_verified = true;
                }
                Err(MobiCealError::BadPassword) => {}
                Err(other) => return Err(other),
            }
        }
        if !any_verified {
            return Err(MobiCealError::NotInHiddenMode);
        }

        let mut rng = ChaCha20Rng::from_u64_seed(seed);
        // Large-with-high-probability fraction: p = f^(1/4), f ~ U(0,1).
        let fraction = rng.next_f64().powf(0.25);

        let view = self.metadata_view();
        let mut report =
            GcReport { dummy_volumes: 0, blocks_before: 0, blocks_reclaimed: 0, fraction };
        for (&id, vol) in &view.volumes {
            if protected.contains(&id) {
                continue;
            }
            report.dummy_volumes += 1;
            // Keep vblock 0 (the init-time noise header) so the uniform
            // one-block footprint of §IV-C is preserved.
            let candidates: Vec<u64> = vol.mappings.keys().filter(|&v| v != 0).collect();
            report.blocks_before += candidates.len() as u64;
            let reclaim_count = (candidates.len() as f64 * fraction).floor() as usize;
            // Reclaim a uniformly random subset of that size.
            let mut indices: Vec<u64> = candidates;
            for i in (1..indices.len()).rev() {
                let j = rng.next_below(i as u64 + 1) as usize;
                indices.swap(i, j);
            }
            // One batched discard (single pool-lock pass) per volume
            // instead of a lock round-trip per reclaimed block.
            let victims = &indices[..reclaim_count];
            self.pool().discard_many(id, victims)?;
            report.blocks_reclaimed += victims.len() as u64;
        }
        self.pool().commit()?;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use crate::config::MobiCealConfig;
    use crate::device::MobiCeal;
    use crate::error::MobiCealError;
    use mobiceal_blockdev::{BlockDevice, MemDisk};
    use mobiceal_sim::SimClock;
    use std::sync::Arc;

    fn fast_config() -> MobiCealConfig {
        MobiCealConfig {
            num_volumes: 5,
            pbkdf2_iterations: 4,
            metadata_blocks: 64,
            ..MobiCealConfig::default()
        }
    }

    fn device_with_dummy_traffic(seed: u64) -> MobiCeal {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(8192, 4096, clock.clone()));
        let mc =
            MobiCeal::initialize(disk, clock, fast_config(), "decoy", &["hidden-a"], seed).unwrap();
        let public = mc.unlock_public("decoy").unwrap();
        for i in 0..600 {
            public.write_block(i, &vec![1u8; 4096]).unwrap();
        }
        mc
    }

    #[test]
    fn gc_requires_a_hidden_password() {
        let mc = device_with_dummy_traffic(1);
        assert_eq!(
            mc.garbage_collect(&["not-a-password"], 7).unwrap_err(),
            MobiCealError::NotInHiddenMode
        );
        assert!(mc.garbage_collect(&["hidden-a"], 7).is_ok());
    }

    #[test]
    fn gc_reclaims_a_partial_fraction() {
        let mc = device_with_dummy_traffic(2);
        let before = mc.metadata_view();
        let dummy_before: u64 = before
            .volumes
            .keys()
            .filter(|&&v| v != 1 && v != mc.volume_index_for("hidden-a"))
            .map(|&v| before.mapped_blocks(v))
            .sum();
        let report = mc.garbage_collect(&["hidden-a"], 3).unwrap();
        assert!(report.blocks_reclaimed > 0, "{report:?}");
        assert!(
            report.blocks_reclaimed < dummy_before,
            "GC must never reclaim all dummy space: {report:?}"
        );
        assert!((0.0..=1.0).contains(&report.fraction));
    }

    #[test]
    fn gc_never_touches_hidden_or_public_data() {
        let mc = device_with_dummy_traffic(3);
        let hidden = mc.unlock_hidden("hidden-a").unwrap();
        for i in 0..50 {
            hidden.write_block(i, &vec![0xDD; 4096]).unwrap();
        }
        let public = mc.unlock_public("decoy").unwrap();
        mc.garbage_collect(&["hidden-a"], 4).unwrap();
        for i in 0..50 {
            assert_eq!(hidden.read_block(i).unwrap(), vec![0xDD; 4096], "hidden block {i}");
        }
        assert_eq!(public.read_block(0).unwrap(), vec![1u8; 4096]);
    }

    #[test]
    fn gc_frees_pool_space() {
        let mc = device_with_dummy_traffic(4);
        let free_before = mc.free_blocks();
        let report = mc.garbage_collect(&["hidden-a"], 5).unwrap();
        assert_eq!(mc.free_blocks(), free_before + report.blocks_reclaimed);
    }

    #[test]
    fn gc_preserves_uniform_header_footprint() {
        let mc = device_with_dummy_traffic(5);
        mc.garbage_collect(&["hidden-a"], 6).unwrap();
        let view = mc.metadata_view();
        for v in 2..=5 {
            assert!(view.mapped_blocks(v) >= 1, "volume {v} lost its header block");
        }
    }

    #[test]
    fn repeated_gc_converges_without_emptying() {
        let mc = device_with_dummy_traffic(6);
        for round in 0..5 {
            let _ = mc.garbage_collect(&["hidden-a"], 100 + round).unwrap();
        }
        let view = mc.metadata_view();
        for v in 2..=5 {
            assert!(view.mapped_blocks(v) >= 1, "volume {v} emptied after repeated GC");
        }
    }
}
