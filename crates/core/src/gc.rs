//! Garbage collection of dummy-write space (§IV-D).
//!
//! Dummy data accumulates and would eventually fill the disk. MobiCeal
//! reclaims it with two safeguards from the paper:
//!
//! 1. **Hidden-mode only**: only in hidden mode does the system know which
//!    volumes are truly dummy, so hidden data is never collected. We model
//!    this by requiring a verified hidden password.
//! 2. **Random partial reclamation**: collecting *all* dummy space would
//!    let the adversary identify hidden data as the randomness that
//!    survives GC. Instead a random fraction is reclaimed — large with high
//!    probability (we sample `p = f^{1/4}`, mean ≈ 0.8) — so surviving
//!    noise remains plausible.

use crate::device::MobiCeal;
use crate::error::MobiCealError;
use mobiceal_blockdev::Copier;
use mobiceal_crypto::ChaCha20Rng;
use std::sync::Arc;

/// Outcome of one garbage-collection pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcReport {
    /// Volumes examined (all non-public, non-hidden volumes).
    pub dummy_volumes: u32,
    /// Blocks mapped by those volumes before the pass.
    pub blocks_before: u64,
    /// Blocks reclaimed.
    pub blocks_reclaimed: u64,
    /// The sampled reclamation fraction.
    pub fraction: f64,
}

/// Proof of hidden mode for repeated GC passes.
///
/// Verifying hidden mode means a full PBKDF2 unlock per password —
/// tens of milliseconds of modeled CPU time. The password-taking entry
/// points ([`MobiCeal::garbage_collect`] and friends) re-prove it on
/// *every* pass, which is exactly the kind of work PR 8 takes off the
/// foreground path: a session established once (at hidden-mode entry,
/// where the unlock already happened) carries the protected-volume set,
/// and per-pass planning becomes pure in-memory sampling.
#[derive(Debug, Clone)]
pub struct GcSession {
    /// Volume ids GC must never touch: the public volume plus every
    /// volume a verified hidden password unlocked.
    protected: Vec<u32>,
}

/// A GC plan: the pass report plus per-volume `(volume id, victim
/// physical blocks)` discard lists.
type GcPlan = (GcReport, Vec<(u32, Vec<u64>)>);

impl MobiCeal {
    /// Verifies hidden mode once and returns a reusable [`GcSession`].
    /// Charges the PBKDF2 unlock cost per password — here, not per pass.
    ///
    /// # Errors
    ///
    /// [`MobiCealError::NotInHiddenMode`] if no password verifies.
    pub fn begin_gc_session(&self, hidden_passwords: &[&str]) -> Result<GcSession, MobiCealError> {
        let mut protected = vec![1u32]; // the public volume
        let mut any_verified = false;
        for pwd in hidden_passwords {
            match self.unlock_hidden(pwd) {
                Ok(vol) => {
                    protected.push(vol.volume_id());
                    any_verified = true;
                }
                Err(MobiCealError::BadPassword) => {}
                Err(other) => return Err(other),
            }
        }
        if !any_verified {
            return Err(MobiCealError::NotInHiddenMode);
        }
        Ok(GcSession { protected })
    }

    /// Runs one GC pass. `hidden_passwords` must contain every hidden
    /// password in use: the first is verified to prove hidden mode, and all
    /// of them identify volumes that must never be collected.
    ///
    /// # Errors
    ///
    /// [`MobiCealError::NotInHiddenMode`] if no password verifies;
    /// device errors from discards.
    pub fn garbage_collect(
        &self,
        hidden_passwords: &[&str],
        seed: u64,
    ) -> Result<GcReport, MobiCealError> {
        let (report, discards) = self.plan_gc(hidden_passwords, seed)?;
        for (id, victims) in &discards {
            // One batched discard (single pool-lock pass) per volume
            // instead of a lock round-trip per reclaimed block.
            self.pool().discard_many(*id, victims)?;
        }
        // Through MobiCeal::commit so any write-back caches flush ahead of
        // the metadata commit (identical to pool.commit() while the cache
        // knob is off).
        self.commit()?;
        Ok(report)
    }

    /// Like [`MobiCeal::garbage_collect`], but the discards and the commit
    /// run as background jobs on `copier` instead of inline. Verification
    /// and victim planning stay on the caller (they are cheap and fix the
    /// report deterministically); the device work — per-volume discard
    /// batches of at most `chunk_blocks`, then a flush-caches + commit job
    /// — drains as the copier is stepped, so foreground writes never stall
    /// behind a reclamation pass. The report reflects what the submitted
    /// jobs will reclaim; job errors surface from `copier.drain()`.
    ///
    /// # Errors
    ///
    /// [`MobiCealError::NotInHiddenMode`] if no password verifies.
    pub fn garbage_collect_background(
        &self,
        hidden_passwords: &[&str],
        seed: u64,
        copier: &Copier,
        chunk_blocks: usize,
    ) -> Result<GcReport, MobiCealError> {
        let (report, discards) = self.plan_gc(hidden_passwords, seed)?;
        self.submit_gc_jobs(discards, copier, chunk_blocks);
        Ok(report)
    }

    /// Like [`MobiCeal::garbage_collect`] with a pre-verified
    /// [`GcSession`]: planning is pure in-memory sampling, so the only
    /// foreground cost of an inline pass is the discards plus the commit.
    ///
    /// # Errors
    ///
    /// Device errors from discards or the commit.
    pub fn garbage_collect_in_session(
        &self,
        session: &GcSession,
        seed: u64,
    ) -> Result<GcReport, MobiCealError> {
        let (report, discards) = self.plan_gc_session(session, seed);
        for (id, victims) in &discards {
            self.pool().discard_many(*id, victims)?;
        }
        self.commit()?;
        Ok(report)
    }

    /// The fully backgrounded pass: a pre-verified [`GcSession`] plus
    /// copier-submitted device work. Nothing on the foreground path but
    /// the in-memory victim sampling and the job submissions themselves.
    ///
    /// # Errors
    ///
    /// None at submit time beyond planning; job errors surface from
    /// `copier.drain()`.
    pub fn garbage_collect_background_in_session(
        &self,
        session: &GcSession,
        seed: u64,
        copier: &Copier,
        chunk_blocks: usize,
    ) -> Result<GcReport, MobiCealError> {
        let (report, discards) = self.plan_gc_session(session, seed);
        self.submit_gc_jobs(discards, copier, chunk_blocks);
        Ok(report)
    }

    /// Shared GC front half: proves hidden mode, samples the reclamation
    /// fraction, and picks the victim blocks per dummy volume. Pure
    /// planning — no discards are issued.
    fn plan_gc(&self, hidden_passwords: &[&str], seed: u64) -> Result<GcPlan, MobiCealError> {
        let session = self.begin_gc_session(hidden_passwords)?;
        Ok(self.plan_gc_session(&session, seed))
    }

    /// The sampling half of planning, on an already-proven session:
    /// samples the reclamation fraction and picks victim blocks per dummy
    /// volume. In-memory only — no unlocks, no device I/O.
    fn plan_gc_session(&self, session: &GcSession, seed: u64) -> GcPlan {
        let protected = &session.protected;
        let mut rng = ChaCha20Rng::from_u64_seed(seed);
        // Large-with-high-probability fraction: p = f^(1/4), f ~ U(0,1).
        let fraction = rng.next_f64().powf(0.25);

        let view = self.metadata_view();
        let mut report =
            GcReport { dummy_volumes: 0, blocks_before: 0, blocks_reclaimed: 0, fraction };
        let mut discards = Vec::new();
        for (&id, vol) in &view.volumes {
            if protected.contains(&id) {
                continue;
            }
            report.dummy_volumes += 1;
            // Keep vblock 0 (the init-time noise header) so the uniform
            // one-block footprint of §IV-C is preserved.
            let candidates: Vec<u64> = vol.mappings.keys().filter(|&v| v != 0).collect();
            report.blocks_before += candidates.len() as u64;
            let reclaim_count = (candidates.len() as f64 * fraction).floor() as usize;
            // Reclaim a uniformly random subset of that size.
            let mut indices: Vec<u64> = candidates;
            for i in (1..indices.len()).rev() {
                let j = rng.next_below(i as u64 + 1) as usize;
                indices.swap(i, j);
            }
            indices.truncate(reclaim_count);
            report.blocks_reclaimed += indices.len() as u64;
            discards.push((id, indices));
        }
        (report, discards)
    }

    /// Submits a planned pass's device work to `copier`: per-volume
    /// discard batches of at most `chunk_blocks`, then one flush-caches +
    /// commit job, in the same ordering [`MobiCeal::commit`] enforces.
    fn submit_gc_jobs(&self, discards: Vec<(u32, Vec<u64>)>, copier: &Copier, chunk_blocks: usize) {
        let chunk = chunk_blocks.max(1);
        for (id, victims) in discards {
            for part in victims.chunks(chunk) {
                let pool = Arc::clone(self.pool());
                let part = part.to_vec();
                copier.submit(Box::new(move || {
                    let n = part.len() as u64;
                    pool.discard_many(id, &part)?;
                    Ok(n)
                }));
            }
        }
        let pool = Arc::clone(self.pool());
        copier.submit(Box::new(move || {
            // A bare pool commit, deliberately *without* flushing the
            // write-back caches: this job persists the discards, and every
            // mapping the journal can contain at this point had its data
            // written before the mapping existed (eviction write-back goes
            // through the normal pool write path), so the PR 4/PR 7
            // ordering contract holds without touching foreground dirty
            // data. Absorbed-but-unflushed writes have no metadata
            // referencing them; their durability point stays the caller's
            // own `MobiCeal::commit`, exactly as it was before the pass.
            pool.commit()?;
            Ok(0)
        }));
    }
}

#[cfg(test)]
mod tests {
    use crate::config::MobiCealConfig;
    use crate::device::MobiCeal;
    use crate::error::MobiCealError;
    use mobiceal_blockdev::{BlockDevice, MemDisk};
    use mobiceal_sim::SimClock;
    use std::sync::Arc;

    fn fast_config() -> MobiCealConfig {
        MobiCealConfig {
            num_volumes: 5,
            pbkdf2_iterations: 4,
            metadata_blocks: 64,
            ..MobiCealConfig::default()
        }
    }

    fn device_with_dummy_traffic(seed: u64) -> MobiCeal {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(8192, 4096, clock.clone()));
        let mc =
            MobiCeal::initialize(disk, clock, fast_config(), "decoy", &["hidden-a"], seed).unwrap();
        let public = mc.unlock_public("decoy").unwrap();
        for i in 0..600 {
            public.write_block(i, &vec![1u8; 4096]).unwrap();
        }
        mc
    }

    #[test]
    fn gc_requires_a_hidden_password() {
        let mc = device_with_dummy_traffic(1);
        assert_eq!(
            mc.garbage_collect(&["not-a-password"], 7).unwrap_err(),
            MobiCealError::NotInHiddenMode
        );
        assert!(mc.garbage_collect(&["hidden-a"], 7).is_ok());
    }

    #[test]
    fn gc_reclaims_a_partial_fraction() {
        let mc = device_with_dummy_traffic(2);
        let before = mc.metadata_view();
        let dummy_before: u64 = before
            .volumes
            .keys()
            .filter(|&&v| v != 1 && v != mc.volume_index_for("hidden-a"))
            .map(|&v| before.mapped_blocks(v))
            .sum();
        let report = mc.garbage_collect(&["hidden-a"], 3).unwrap();
        assert!(report.blocks_reclaimed > 0, "{report:?}");
        assert!(
            report.blocks_reclaimed < dummy_before,
            "GC must never reclaim all dummy space: {report:?}"
        );
        assert!((0.0..=1.0).contains(&report.fraction));
    }

    #[test]
    fn gc_never_touches_hidden_or_public_data() {
        let mc = device_with_dummy_traffic(3);
        let hidden = mc.unlock_hidden("hidden-a").unwrap();
        for i in 0..50 {
            hidden.write_block(i, &vec![0xDD; 4096]).unwrap();
        }
        let public = mc.unlock_public("decoy").unwrap();
        mc.garbage_collect(&["hidden-a"], 4).unwrap();
        for i in 0..50 {
            assert_eq!(hidden.read_block(i).unwrap(), vec![0xDD; 4096], "hidden block {i}");
        }
        assert_eq!(public.read_block(0).unwrap(), vec![1u8; 4096]);
    }

    #[test]
    fn gc_frees_pool_space() {
        let mc = device_with_dummy_traffic(4);
        let free_before = mc.free_blocks();
        let report = mc.garbage_collect(&["hidden-a"], 5).unwrap();
        assert_eq!(mc.free_blocks(), free_before + report.blocks_reclaimed);
    }

    #[test]
    fn gc_preserves_uniform_header_footprint() {
        let mc = device_with_dummy_traffic(5);
        mc.garbage_collect(&["hidden-a"], 6).unwrap();
        let view = mc.metadata_view();
        for v in 2..=5 {
            assert!(view.mapped_blocks(v) >= 1, "volume {v} lost its header block");
        }
    }

    #[test]
    fn background_gc_matches_inline_gc_exactly() {
        // Same seed, same device history: the copier-driven pass must plan
        // the identical report and, once drained, leave the identical
        // mapped-block footprint — backgrounding changes *when* the work
        // runs, never *what* it does.
        let inline_mc = device_with_dummy_traffic(8);
        let inline_report = inline_mc.garbage_collect(&["hidden-a"], 42).unwrap();

        let bg_mc = device_with_dummy_traffic(8);
        let copier = mobiceal_blockdev::Copier::new(16);
        let bg_report = bg_mc.garbage_collect_background(&["hidden-a"], 42, &copier, 8).unwrap();
        assert_eq!(bg_report, inline_report);
        // Nothing reclaimed yet: the work is queued, not run.
        assert!(copier.pending() > 0);
        copier.drain().unwrap();
        let inline_view = inline_mc.metadata_view();
        let bg_view = bg_mc.metadata_view();
        for v in 1..=5 {
            assert_eq!(
                bg_view.mapped_blocks(v),
                inline_view.mapped_blocks(v),
                "volume {v} footprint diverged"
            );
        }
        assert_eq!(bg_mc.free_blocks(), inline_mc.free_blocks());
        assert_eq!(copier.stats().blocks_moved, bg_report.blocks_reclaimed);
    }

    #[test]
    fn background_gc_still_requires_hidden_mode() {
        let mc = device_with_dummy_traffic(9);
        let copier = mobiceal_blockdev::Copier::new(4);
        assert_eq!(
            mc.garbage_collect_background(&["nope"], 1, &copier, 8).unwrap_err(),
            MobiCealError::NotInHiddenMode
        );
        assert_eq!(copier.pending(), 0, "a refused pass must queue nothing");
    }

    #[test]
    fn session_pass_matches_password_pass_exactly() {
        // Same device history, same seed: a session-based pass must plan
        // and execute identically to the password-taking entry point — the
        // session only moves the verification cost, never the decisions.
        let by_password = device_with_dummy_traffic(12);
        let report_a = by_password.garbage_collect(&["hidden-a"], 55).unwrap();

        let by_session = device_with_dummy_traffic(12);
        let session = by_session.begin_gc_session(&["hidden-a"]).unwrap();
        let report_b = by_session.garbage_collect_in_session(&session, 55).unwrap();
        assert_eq!(report_a, report_b);
        assert_eq!(by_password.free_blocks(), by_session.free_blocks());

        // And the backgrounded session variant, drained, lands in the same
        // place again.
        let by_bg = device_with_dummy_traffic(12);
        let session = by_bg.begin_gc_session(&["hidden-a"]).unwrap();
        let copier = mobiceal_blockdev::Copier::new(8);
        let report_c =
            by_bg.garbage_collect_background_in_session(&session, 55, &copier, 8).unwrap();
        assert_eq!(report_c, report_a);
        copier.drain().unwrap();
        assert_eq!(by_bg.free_blocks(), by_password.free_blocks());
    }

    #[test]
    fn session_charges_verification_once_not_per_pass() {
        // The point of the session: PBKDF2 verification charges simulated
        // CPU time at begin_gc_session, and repeated passes charge none of
        // it again. Two password passes must charge strictly more than a
        // session plus two session passes on an identical device.
        let clock_pwd = SimClock::new();
        let disk = Arc::new(MemDisk::new(8192, 4096, clock_pwd.clone()));
        let mc_pwd = MobiCeal::initialize(
            disk,
            clock_pwd.clone(),
            fast_config(),
            "decoy",
            &["hidden-a"],
            13,
        )
        .unwrap();
        let clock_sess = SimClock::new();
        let disk = Arc::new(MemDisk::new(8192, 4096, clock_sess.clone()));
        let mc_sess = MobiCeal::initialize(
            disk,
            clock_sess.clone(),
            fast_config(),
            "decoy",
            &["hidden-a"],
            13,
        )
        .unwrap();
        for mc in [&mc_pwd, &mc_sess] {
            let public = mc.unlock_public("decoy").unwrap();
            for i in 0..600 {
                public.write_block(i, &vec![1u8; 4096]).unwrap();
            }
        }
        let session = mc_sess.begin_gc_session(&["hidden-a"]).unwrap();
        let t_pwd = clock_pwd.now();
        let t_sess = clock_sess.now();
        mc_pwd.garbage_collect(&["hidden-a"], 21).unwrap();
        mc_pwd.garbage_collect(&["hidden-a"], 22).unwrap();
        mc_sess.garbage_collect_in_session(&session, 21).unwrap();
        mc_sess.garbage_collect_in_session(&session, 22).unwrap();
        let pwd_cost = (clock_pwd.now() - t_pwd).as_nanos();
        let sess_cost = (clock_sess.now() - t_sess).as_nanos();
        assert!(
            pwd_cost > sess_cost,
            "per-pass verification must cost extra: {pwd_cost} vs {sess_cost} ns"
        );
    }

    #[test]
    fn session_requires_a_hidden_password() {
        let mc = device_with_dummy_traffic(14);
        assert_eq!(mc.begin_gc_session(&["wrong"]).unwrap_err(), MobiCealError::NotInHiddenMode);
    }

    #[test]
    fn repeated_gc_converges_without_emptying() {
        let mc = device_with_dummy_traffic(6);
        for round in 0..5 {
            let _ = mc.garbage_collect(&["hidden-a"], 100 + round).unwrap();
        }
        let view = mc.metadata_view();
        for v in 2..=5 {
            assert!(view.mapped_blocks(v) >= 1, "volume {v} emptied after repeated GC");
        }
    }
}
