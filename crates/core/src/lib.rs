//! MobiCeal: block-layer plausibly deniable encryption against
//! multi-snapshot adversaries (Chang et al., DSN 2018).
//!
//! This crate is the paper's primary contribution, rebuilt in userspace
//! Rust over the substrates in this workspace:
//!
//! * **Dummy writes** (§IV-B): when a public write allocates a fresh block,
//!   a burst of `m ~ Exp(λ)` blocks of cryptographic noise is written — with
//!   probability at most 50 %, gated by `rand ≤ stored_rand mod x` — into a
//!   randomly chosen dummy volume. Snapshot-to-snapshot changes caused by
//!   hidden data are therefore explainable as dummy traffic.
//! * **Random allocation** (§IV-B, §V-A): the thin pool allocates every
//!   block uniformly at random, destroying the spatial-locality signature
//!   that would otherwise expose "public block followed by a run of hidden
//!   blocks".
//! * **Multi-level deniability** (§IV-C): `n` thin volumes; `V1` is public,
//!   each hidden password selects `V_k` with
//!   `k = (PBKDF2(pwd‖salt) mod (n-1)) + 2`, all remaining volumes are
//!   dummy. Without a hidden password, hidden and dummy volumes are
//!   indistinguishable.
//! * **Encryption footer** (§IV-C, §V-B): the last 16 KiB stores the salt
//!   and the decoy-password-encrypted master key. Decrypting that
//!   ciphertext with a *hidden* password deterministically yields that
//!   volume's hidden key, so no extra (observable) key material exists.
//! * **Mode switching** (§IV-D): one-way fast switch from public to hidden
//!   mode; hidden→public requires a reboot so RAM holds no residue. The
//!   timing costs live in `mobiceal-android`.
//! * **Dummy-space garbage collection** (§IV-D): reclaims a random fraction
//!   of dummy blocks, only ever in hidden mode (so hidden blocks are never
//!   victims).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use mobiceal::{MobiCeal, MobiCealConfig};
//! use mobiceal_blockdev::{BlockDevice, MemDisk};
//! use mobiceal_sim::SimClock;
//!
//! let clock = SimClock::new();
//! let disk = Arc::new(MemDisk::new(4096, 4096, clock.clone()));
//! let mc = MobiCeal::initialize(
//!     disk.clone(),
//!     clock,
//!     MobiCealConfig::default(),
//!     "decoy-password",
//!     &["hidden-password"],
//!     7,
//! )?;
//!
//! // Daily use: the public volume. Dummy noise rides along automatically.
//! let public = mc.unlock_public("decoy-password")?;
//! public.write_block(0, &vec![1u8; 4096])?;
//!
//! // Emergency: fast-switch into the hidden volume.
//! let hidden = mc.unlock_hidden("hidden-password")?;
//! hidden.write_block(0, &vec![2u8; 4096])?;
//!
//! // Coercion: the decoy password decrypts the public volume; nothing
//! // distinguishes the hidden volume from a dummy volume.
//! assert!(mc.unlock_public("decoy-password").is_ok());
//! assert!(mc.unlock_hidden("wrong-guess").is_err());
//! # Ok::<(), mobiceal::MobiCealError>(())
//! ```

#![forbid(unsafe_code)]

mod config;
mod cover;
mod device;
mod dummy;
mod error;
mod footer;
mod gc;
mod pde_volume;

pub use config::MobiCealConfig;
pub use cover::CoverDiscipline;
pub use device::{DeviceLayout, MobiCeal, UnlockedVolume, VolumeRole, THIN_READ_LOOKUP};
pub use dummy::{DummyStats, DummyWriter};
pub use error::MobiCealError;
pub use footer::{EncryptionFooter, FOOTER_BYTES};
pub use gc::{GcReport, GcSession};
pub use pde_volume::PdeVolume;
