//! The encryption footer (last 16 KiB of the userdata partition).
//!
//! Android FDE stores the encrypted master key and the PBKDF2 salt in a
//! footer at the end of the partition (§II-A of the paper). MobiCeal reuses
//! it unchanged — which matters for deniability, because the footer of a
//! MobiCeal device is byte-indistinguishable from a stock FDE footer.
//!
//! The key trick (§V-B): the footer holds `C = E_{KDF(decoy_pwd)}(master)`.
//! * Decrypting `C` with the **decoy** password recovers the real master
//!   key for the public volume.
//! * Decrypting `C` with a **hidden** password yields a *different but
//!   deterministic* byte string — which MobiCeal simply uses as that hidden
//!   volume's key. No hidden-key ciphertext is ever stored, so there is
//!   nothing for the adversary to count.

use crate::error::MobiCealError;
use mobiceal_crypto::{pbkdf2_hmac_sha256, Aes256, BlockCipher, ChaCha20Rng};

/// Size of the footer region in bytes (Android uses the last 16 KiB).
pub const FOOTER_BYTES: usize = 16 * 1024;

const MAGIC: &[u8; 8] = b"MCFOOTR1";

/// Decoded contents of the encryption footer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncryptionFooter {
    /// PBKDF2 salt (also drives hidden-volume index derivation, §IV-C).
    pub salt: [u8; 16],
    /// The master key encrypted under the decoy-password-derived KEK
    /// (two AES blocks, ECB over the 32-byte key like Android's cryptfs).
    pub encrypted_master_key: [u8; 32],
    /// PBKDF2 iteration count recorded at initialization.
    pub kdf_iterations: u32,
}

impl EncryptionFooter {
    /// Creates a footer for a fresh device: generates a random salt and
    /// master key, and returns `(footer, master_key)`.
    pub fn create(
        rng: &mut ChaCha20Rng,
        decoy_password: &str,
        kdf_iterations: u32,
    ) -> (Self, [u8; 32]) {
        let salt = rng.gen_nonce16();
        let master_key = rng.gen_key();
        let footer = Self::with_salt(salt, &master_key, decoy_password, kdf_iterations);
        (footer, master_key)
    }

    /// Creates a footer with a caller-chosen salt (used when re-salting to
    /// resolve hidden-volume index collisions).
    pub fn with_salt(
        salt: [u8; 16],
        master_key: &[u8; 32],
        decoy_password: &str,
        kdf_iterations: u32,
    ) -> Self {
        let kek = derive_kek(decoy_password, &salt, kdf_iterations);
        let encrypted_master_key = aes256_keyblob_encrypt(&kek, master_key);
        EncryptionFooter { salt, encrypted_master_key, kdf_iterations }
    }

    /// Derives the volume key that `password` unlocks. For the decoy
    /// password this is the true master key; for any other password it is a
    /// deterministic pseudorandom key (used as the hidden key, §V-B).
    pub fn derive_key(&self, password: &str) -> [u8; 32] {
        let kek = derive_kek(password, &self.salt, self.kdf_iterations);
        aes256_keyblob_decrypt(&kek, &self.encrypted_master_key)
    }

    /// Hidden-volume index for `password`:
    /// `k = (PBKDF2(pwd ‖ salt) mod (n-1)) + 2` (§IV-C).
    ///
    /// # Panics
    ///
    /// Panics if `num_volumes < 3`.
    pub fn hidden_volume_index(&self, password: &str, num_volumes: u32) -> u32 {
        assert!(num_volumes >= 3, "need at least 3 volumes");
        let mut digest = [0u8; 8];
        pbkdf2_hmac_sha256(password.as_bytes(), &self.salt, self.kdf_iterations, &mut digest);
        let h = u64::from_le_bytes(digest);
        ((h % (num_volumes as u64 - 1)) + 2) as u32
    }

    /// Serializes into a [`FOOTER_BYTES`]-sized buffer (zero-padded, like
    /// the mostly-empty real footer).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; FOOTER_BYTES];
        out[..8].copy_from_slice(MAGIC);
        out[8..24].copy_from_slice(&self.salt);
        out[24..56].copy_from_slice(&self.encrypted_master_key);
        out[56..60].copy_from_slice(&self.kdf_iterations.to_le_bytes());
        out
    }

    /// Parses a footer region.
    ///
    /// # Errors
    ///
    /// [`MobiCealError::NotInitialized`] if the magic is absent or the
    /// region is too short.
    pub fn from_bytes(data: &[u8]) -> Result<Self, MobiCealError> {
        if data.len() < 60 {
            return Err(MobiCealError::NotInitialized { detail: "footer too short".into() });
        }
        if &data[..8] != MAGIC {
            return Err(MobiCealError::NotInitialized { detail: "no footer magic".into() });
        }
        let mut salt = [0u8; 16];
        salt.copy_from_slice(&data[8..24]);
        let mut encrypted_master_key = [0u8; 32];
        encrypted_master_key.copy_from_slice(&data[24..56]);
        let kdf_iterations = data[56..60]
            .try_into()
            .map(u32::from_le_bytes)
            .map_err(|_| MobiCealError::NotInitialized { detail: "short kdf field".into() })?;
        if kdf_iterations == 0 {
            return Err(MobiCealError::NotInitialized { detail: "zero kdf iterations".into() });
        }
        Ok(EncryptionFooter { salt, encrypted_master_key, kdf_iterations })
    }
}

fn derive_kek(password: &str, salt: &[u8; 16], iterations: u32) -> [u8; 32] {
    let mut kek = [0u8; 32];
    pbkdf2_hmac_sha256(password.as_bytes(), salt, iterations, &mut kek);
    kek
}

fn aes256_keyblob_encrypt(kek: &[u8; 32], key: &[u8; 32]) -> [u8; 32] {
    let aes = Aes256::new(kek);
    let mut out = [0u8; 32];
    for (i, chunk) in key.chunks(16).enumerate() {
        let mut block = [0u8; 16];
        block.copy_from_slice(chunk);
        aes.encrypt_block(&mut block);
        out[i * 16..(i + 1) * 16].copy_from_slice(&block);
    }
    out
}

fn aes256_keyblob_decrypt(kek: &[u8; 32], blob: &[u8; 32]) -> [u8; 32] {
    let aes = Aes256::new(kek);
    let mut out = [0u8; 32];
    for (i, chunk) in blob.chunks(16).enumerate() {
        let mut block = [0u8; 16];
        block.copy_from_slice(chunk);
        aes.decrypt_block(&mut block);
        out[i * 16..(i + 1) * 16].copy_from_slice(&block);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> ChaCha20Rng {
        ChaCha20Rng::from_u64_seed(11)
    }

    #[test]
    fn decoy_password_recovers_master_key() {
        let (footer, master) = EncryptionFooter::create(&mut rng(), "decoy", 16);
        assert_eq!(footer.derive_key("decoy"), master);
    }

    #[test]
    fn other_passwords_get_deterministic_distinct_keys() {
        let (footer, master) = EncryptionFooter::create(&mut rng(), "decoy", 16);
        let h1 = footer.derive_key("hidden-one");
        let h2 = footer.derive_key("hidden-two");
        assert_ne!(h1, master);
        assert_ne!(h2, master);
        assert_ne!(h1, h2);
        assert_eq!(h1, footer.derive_key("hidden-one"), "derivation is deterministic");
    }

    #[test]
    fn serialization_roundtrip_and_size() {
        let (footer, _) = EncryptionFooter::create(&mut rng(), "p", 16);
        let bytes = footer.to_bytes();
        assert_eq!(bytes.len(), FOOTER_BYTES);
        assert_eq!(EncryptionFooter::from_bytes(&bytes).unwrap(), footer);
    }

    #[test]
    fn from_bytes_rejects_uninitialized_region() {
        assert!(EncryptionFooter::from_bytes(&[0u8; FOOTER_BYTES]).is_err());
        assert!(EncryptionFooter::from_bytes(&[0u8; 10]).is_err());
    }

    #[test]
    fn hidden_index_in_range_and_salt_dependent() {
        let (footer, _) = EncryptionFooter::create(&mut rng(), "decoy", 16);
        for n in [3u32, 6, 17] {
            for pwd in ["a", "b", "c", "longer password!"] {
                let k = footer.hidden_volume_index(pwd, n);
                assert!((2..=n).contains(&k), "k={k} out of range for n={n}");
            }
        }
        // A different salt moves the index for at least one of a few
        // passwords (overwhelmingly likely).
        let (footer2, _) =
            EncryptionFooter::create(&mut ChaCha20Rng::from_u64_seed(99), "decoy", 16);
        let moved = ["a", "b", "c", "d", "e", "f"]
            .iter()
            .any(|p| footer.hidden_volume_index(p, 16) != footer2.hidden_volume_index(p, 16));
        assert!(moved);
    }

    #[test]
    fn footer_mostly_zero_like_android() {
        // Beyond the 60 metadata bytes the footer is zero padding, like the
        // real 16 KiB crypto footer.
        let (footer, _) = EncryptionFooter::create(&mut rng(), "p", 16);
        let bytes = footer.to_bytes();
        assert!(bytes[60..].iter().all(|&b| b == 0));
    }

    #[test]
    fn keyblob_roundtrip() {
        let kek = [3u8; 32];
        let key = [9u8; 32];
        let blob = aes256_keyblob_encrypt(&kek, &key);
        assert_ne!(blob, key);
        assert_eq!(aes256_keyblob_decrypt(&kek, &blob), key);
    }
}
