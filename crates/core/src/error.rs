//! MobiCeal's error type.

use mobiceal_blockdev::BlockDeviceError;
use std::fmt;

/// Errors surfaced by the MobiCeal device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MobiCealError {
    /// A password failed verification (decoy at boot, hidden at switch).
    BadPassword,
    /// The configuration is unusable (e.g. fewer than 3 volumes).
    BadConfig {
        /// What is wrong.
        detail: String,
    },
    /// The disk is too small for the requested layout.
    DiskTooSmall {
        /// Blocks required.
        required: u64,
        /// Blocks available.
        available: u64,
    },
    /// Hidden passwords collide onto the same volume index even after
    /// re-salting.
    VolumeCollision,
    /// Operation requires hidden mode (e.g. garbage collection).
    NotInHiddenMode,
    /// The device does not hold a MobiCeal layout.
    NotInitialized {
        /// Detail for diagnostics.
        detail: String,
    },
    /// Underlying storage error.
    Device(BlockDeviceError),
}

impl fmt::Display for MobiCealError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MobiCealError::BadPassword => write!(f, "password verification failed"),
            MobiCealError::BadConfig { detail } => write!(f, "bad configuration: {detail}"),
            MobiCealError::DiskTooSmall { required, available } => {
                write!(f, "disk too small: need {required} blocks, have {available}")
            }
            MobiCealError::VolumeCollision => {
                write!(f, "hidden passwords collide on a volume index")
            }
            MobiCealError::NotInHiddenMode => {
                write!(f, "operation is only permitted in hidden mode")
            }
            MobiCealError::NotInitialized { detail } => {
                write!(f, "device not initialized for MobiCeal: {detail}")
            }
            MobiCealError::Device(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for MobiCealError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MobiCealError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BlockDeviceError> for MobiCealError {
    fn from(e: BlockDeviceError) -> Self {
        MobiCealError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<(MobiCealError, &str)> = vec![
            (MobiCealError::BadPassword, "verification failed"),
            (MobiCealError::BadConfig { detail: "n too small".into() }, "n too small"),
            (MobiCealError::DiskTooSmall { required: 10, available: 5 }, "10"),
            (MobiCealError::VolumeCollision, "collide"),
            (MobiCealError::NotInHiddenMode, "hidden mode"),
            (MobiCealError::NotInitialized { detail: "magic".into() }, "magic"),
            (MobiCealError::Device(BlockDeviceError::NoSpace), "no space"),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }

    #[test]
    fn device_error_has_source() {
        let e = MobiCealError::from(BlockDeviceError::BadKey);
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&MobiCealError::BadPassword).is_none());
    }
}
