//! MobiCeal configuration.

use mobiceal_sim::SimDuration;

/// Tunables of the MobiCeal scheme, with defaults matching the paper's
/// prototype (§IV-B, §V-A).
#[derive(Debug, Clone, PartialEq)]
pub struct MobiCealConfig {
    /// Total number of thin volumes `n` (public + hidden + dummy). The
    /// paper's extended scheme creates these up front; `V1` is public.
    pub num_volumes: u32,
    /// Rate parameter λ of the exponential dummy-burst size. The paper uses
    /// λ = 1 ("each dummy write will be allocated one free block on
    /// average").
    pub lambda: f64,
    /// The trigger modulus `x`: a dummy burst fires iff
    /// `rand ≤ stored_rand mod x` with `rand` uniform in `[1, 2x]`, keeping
    /// the trigger probability below 50 %. The paper fixes x = 50.
    pub x: u32,
    /// PBKDF2 iteration count for password-derived keys. Android 4.2 used
    /// 2000; tests may lower it.
    pub pbkdf2_iterations: u32,
    /// How often `stored_rand` is refreshed (the prototype refreshes at
    /// most hourly, from `jiffies` at write time; §V-A).
    pub stored_rand_refresh: SimDuration,
    /// Blocks reserved for pool metadata at the front of the disk
    /// (the "metadata part" of Fig. 3).
    pub metadata_blocks: u64,
    /// Explicit dm-crypt batch parallelism for unlocked volumes:
    /// `Some((workers, min_sectors))` forwards to
    /// [`mobiceal_dm::DmCrypt::with_parallelism`] — shard crypto batches of
    /// at least `min_sectors` sectors across up to `workers` threads —
    /// while `None` keeps dm-crypt's byte-aware default policy.
    /// `workers` must be positive and `min_sectors` at least
    /// [`mobiceal_dm::MIN_PARALLEL_SECTORS`] ([`MobiCealConfig::validate`]
    /// rejects values the crypt layer would silently clamp). Parallelism only changes host wall-clock
    /// speed; ciphertext and simulated-clock charges are identical either
    /// way.
    pub crypt_parallelism: Option<(usize, usize)>,
    /// Write-back cache capacity in blocks for each unlocked volume
    /// (plaintext side, above dm-crypt). 0 disables the cache: every
    /// unlocked volume is then bit-identical to the direct path. Workload
    /// configs turn this on; the calibrated nexus4 paths keep the default
    /// off so Fig. 4 / Table 1 rows are untouched.
    pub cache_blocks: usize,
    /// Shard count for each volume's write-back cache (striped like the
    /// MemDisk shard locks). Ignored while `cache_blocks` is 0.
    pub cache_shards: usize,
    /// Depth of the background copier that drains GC/cleaning work: the
    /// queue holds `copier_depth - 1` pending jobs. Depth 1 runs every job
    /// inline at submit — exactly today's foreground behavior.
    pub copier_depth: usize,
}

impl Default for MobiCealConfig {
    fn default() -> Self {
        MobiCealConfig {
            num_volumes: 6,
            lambda: 1.0,
            x: 50,
            pbkdf2_iterations: 64, // scaled down from Android's 2000 for simulation speed
            stored_rand_refresh: SimDuration::from_secs(3600),
            metadata_blocks: 256,
            crypt_parallelism: None,
            cache_blocks: 0,
            cache_shards: 8,
            copier_depth: 1,
        }
    }
}

impl MobiCealConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_volumes < 3 {
            return Err(format!(
                "need at least 3 volumes (public, hidden, dummy), got {}",
                self.num_volumes
            ));
        }
        if self.lambda.is_nan() || self.lambda <= 0.0 {
            return Err(format!("lambda must be positive, got {}", self.lambda));
        }
        if self.x == 0 {
            return Err("x must be positive".into());
        }
        if self.pbkdf2_iterations == 0 {
            return Err("pbkdf2 iterations must be positive".into());
        }
        if self.metadata_blocks < 8 {
            return Err(format!("metadata region too small: {}", self.metadata_blocks));
        }
        if let Some((workers, min_sectors)) = self.crypt_parallelism {
            if workers == 0 {
                return Err("crypt_parallelism workers must be positive".into());
            }
            if min_sectors < mobiceal_dm::MIN_PARALLEL_SECTORS {
                return Err(format!(
                    "crypt_parallelism min_sectors must be at least {} \
                     (dm-crypt's sharding floor), got {min_sectors}",
                    mobiceal_dm::MIN_PARALLEL_SECTORS
                ));
            }
        }
        if self.cache_blocks > 0 && self.cache_shards == 0 {
            return Err("an enabled write-back cache needs at least one shard".into());
        }
        if self.copier_depth == 0 {
            return Err("copier depth must be at least 1 (1 = inline)".into());
        }
        Ok(())
    }

    /// The cache shape this configuration asks for (capacity 0 when the
    /// cache is disabled).
    pub fn cache_config(&self) -> mobiceal_blockdev::CacheConfig {
        mobiceal_blockdev::CacheConfig {
            capacity_blocks: self.cache_blocks,
            shards: self.cache_shards.max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_paper_shaped() {
        let c = MobiCealConfig::default();
        c.validate().unwrap();
        assert_eq!(c.x, 50, "paper fixes x at 50");
        assert_eq!(c.lambda, 1.0, "paper uses lambda = 1");
        assert_eq!(c.stored_rand_refresh, SimDuration::from_secs(3600), "hourly refresh");
    }

    #[test]
    fn validation_catches_bad_values() {
        let base = MobiCealConfig::default();
        let cases = [
            MobiCealConfig { num_volumes: 2, ..base.clone() },
            MobiCealConfig { lambda: 0.0, ..base.clone() },
            MobiCealConfig { lambda: -1.0, ..base.clone() },
            MobiCealConfig { x: 0, ..base.clone() },
            MobiCealConfig { pbkdf2_iterations: 0, ..base.clone() },
            MobiCealConfig { metadata_blocks: 2, ..base.clone() },
            MobiCealConfig { crypt_parallelism: Some((0, 8)), ..base.clone() },
            MobiCealConfig { crypt_parallelism: Some((4, 1)), ..base.clone() },
            MobiCealConfig { cache_blocks: 64, cache_shards: 0, ..base.clone() },
            MobiCealConfig { copier_depth: 0, ..base.clone() },
        ];
        for c in cases {
            assert!(c.validate().is_err(), "{c:?} should be invalid");
        }
    }

    #[test]
    fn crypt_parallelism_round_trips() {
        // The knob defaults off, survives struct-update round-trips, and
        // validates when set to a sane worker count.
        assert_eq!(MobiCealConfig::default().crypt_parallelism, None);
        let c = MobiCealConfig { crypt_parallelism: Some((4, 8)), ..Default::default() };
        c.validate().unwrap();
        let copy = MobiCealConfig { ..c.clone() };
        assert_eq!(copy, c);
        assert_eq!(copy.crypt_parallelism, Some((4, 8)));
        // Forcing the sequential path is a valid explicit configuration.
        MobiCealConfig { crypt_parallelism: Some((1, 2)), ..Default::default() }
            .validate()
            .unwrap();
    }

    #[test]
    fn cache_defaults_off_and_inline() {
        // The default configuration must reassemble today's direct path:
        // no cache, depth-1 (inline) copier.
        let c = MobiCealConfig::default();
        assert_eq!(c.cache_blocks, 0);
        assert_eq!(c.copier_depth, 1);
        assert_eq!(c.cache_config().capacity_blocks, 0);
        // A workload-shaped config validates and carries its shape through.
        let on = MobiCealConfig {
            cache_blocks: 128,
            cache_shards: 4,
            copier_depth: 8,
            ..Default::default()
        };
        on.validate().unwrap();
        assert_eq!(
            on.cache_config(),
            mobiceal_blockdev::CacheConfig { capacity_blocks: 128, shards: 4 }
        );
    }
}
