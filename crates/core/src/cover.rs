//! Cover-write discipline (§IV-B's behavioural mitigation).
//!
//! The residual leak in the dummy-write design: the adversary can bound the
//! dummy traffic explainable by the observed public traffic, so "a very
//! large file in the hidden volume" without public cover is detectable.
//! The paper's advice: *"we recommend that the user should store a file
//! with approximately equal size in the public volume after storing a
//! large file in the hidden volume."*
//!
//! [`CoverDiscipline`] turns that advice into an accountable policy: it
//! tracks the hidden-write debt accumulated since the last cover and tells
//! the caller (an app, a sync daemon, the example binaries) how much public
//! data to write so the dummy-budget distinguisher stays blind.

/// Tracks how much public cover traffic the user still owes for their
/// hidden writes.
///
/// # Example
///
/// ```
/// use mobiceal::CoverDiscipline;
///
/// let mut cover = CoverDiscipline::new(1.0);
/// cover.record_hidden_write(100);          // a large hidden file
/// assert_eq!(cover.outstanding_cover(), 100);
/// cover.record_public_write(60);           // partial cover so far
/// assert_eq!(cover.outstanding_cover(), 40);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CoverDiscipline {
    /// Public blocks owed per hidden block written ("approximately equal
    /// size" → 1.0).
    ratio: f64,
    owed: f64,
}

impl CoverDiscipline {
    /// Creates a discipline owing `ratio` public blocks per hidden block.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not finite and positive.
    pub fn new(ratio: f64) -> Self {
        assert!(ratio.is_finite() && ratio > 0.0, "ratio must be positive");
        CoverDiscipline { ratio, owed: 0.0 }
    }

    /// The paper's recommendation: equal-size cover.
    pub fn paper_recommendation() -> Self {
        CoverDiscipline::new(1.0)
    }

    /// Records `blocks` of hidden writes: the debt grows.
    pub fn record_hidden_write(&mut self, blocks: u64) {
        self.owed += blocks as f64 * self.ratio;
    }

    /// Records `blocks` of ordinary public writes: the debt shrinks (any
    /// public traffic counts as cover — the adversary cannot tell cover
    /// from organic use).
    pub fn record_public_write(&mut self, blocks: u64) {
        self.owed = (self.owed - blocks as f64).max(0.0);
    }

    /// Public blocks that still need to be written before the next
    /// checkpoint to keep the dummy-budget account balanced.
    pub fn outstanding_cover(&self) -> u64 {
        self.owed.ceil() as u64
    }

    /// Whether the account is balanced (safe to present the device).
    pub fn is_balanced(&self) -> bool {
        self.outstanding_cover() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debt_accumulates_and_drains() {
        let mut c = CoverDiscipline::paper_recommendation();
        assert!(c.is_balanced());
        c.record_hidden_write(50);
        assert_eq!(c.outstanding_cover(), 50);
        assert!(!c.is_balanced());
        c.record_public_write(20);
        assert_eq!(c.outstanding_cover(), 30);
        c.record_public_write(100);
        assert!(c.is_balanced());
    }

    #[test]
    fn surplus_public_traffic_does_not_go_negative() {
        let mut c = CoverDiscipline::new(1.0);
        c.record_public_write(1000);
        assert_eq!(c.outstanding_cover(), 0);
        c.record_hidden_write(10);
        assert_eq!(c.outstanding_cover(), 10, "old surplus is not banked");
    }

    #[test]
    fn ratio_scales_the_debt() {
        let mut generous = CoverDiscipline::new(2.0);
        generous.record_hidden_write(10);
        assert_eq!(generous.outstanding_cover(), 20);
        let mut thrifty = CoverDiscipline::new(0.5);
        thrifty.record_hidden_write(10);
        assert_eq!(thrifty.outstanding_cover(), 5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_ratio_rejected() {
        let _ = CoverDiscipline::new(0.0);
    }
}
