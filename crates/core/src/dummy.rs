//! The dummy-write mechanism (§IV-B, §V-A).
//!
//! Every public write that allocates a fresh block consults the
//! [`DummyWriter`]:
//!
//! 1. **Trigger**: fire iff `rand ≤ stored_rand mod x`, where `rand` is
//!    uniform in `[1, 2x]` — so the trigger probability is always below
//!    50 % and, because `stored_rand` is secret and periodically refreshed,
//!    the adversary cannot learn the trigger pattern.
//! 2. **Burst size**: `m = round(-ln(1-f)/λ)` with `f ~ U(0,1)` —
//!    exponentially distributed with a wide variance, which is what makes
//!    large hidden writes deniable. Rounding keeps the paper's stated mean
//!    ("each dummy write will be allocated one free block on average" for
//!    λ = 1: `E[round(Exp(1))] ≈ 0.96`); a burst that rounds to zero
//!    simply writes nothing.
//! 3. **Target volume**: `j = (stored_rand mod (n-1)) + 2` — a pseudorandom
//!    dummy/hidden-indexed volume (§IV-C).
//! 4. **Payload**: CSPRNG noise, indistinguishable from the dm-crypt
//!    ciphertext of real data without a key.
//!
//! `stored_rand` refreshes at most once per [`refresh_interval`] and only
//! when a write happens — mirroring the prototype, which samples `jiffies`
//! on the write path (§V-A).
//!
//! [`refresh_interval`]: DummyWriter::new

use mobiceal_crypto::ChaCha20Rng;
use mobiceal_sim::{SimClock, SimDuration, SimInstant};

/// Counters describing dummy-write activity, used by experiments to account
/// for overhead and by the deniability analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DummyStats {
    /// Public allocations that consulted the trigger.
    pub trigger_checks: u64,
    /// Trigger checks that fired a burst.
    pub bursts: u64,
    /// Total dummy blocks written.
    pub blocks_written: u64,
    /// Dummy blocks that could not be placed (pool or volume full).
    pub blocks_dropped: u64,
    /// Times `stored_rand` was refreshed.
    pub refreshes: u64,
}

/// The dummy-write decision engine. One instance lives inside each
/// [`crate::MobiCeal`] device.
pub struct DummyWriter {
    rng: ChaCha20Rng,
    clock: SimClock,
    x: u32,
    lambda: f64,
    num_volumes: u32,
    refresh_interval: SimDuration,
    stored_rand: u64,
    last_refresh: SimInstant,
    stats: DummyStats,
}

impl std::fmt::Debug for DummyWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DummyWriter")
            .field("x", &self.x)
            .field("lambda", &self.lambda)
            .field("num_volumes", &self.num_volumes)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

/// A burst of dummy writes to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DummyBurst {
    /// Number of noise blocks to write.
    pub blocks: u64,
    /// The volume index `j` receiving the noise.
    pub target_volume: u32,
}

impl DummyWriter {
    /// Creates a dummy writer.
    ///
    /// # Panics
    ///
    /// Panics if `x == 0`, `lambda <= 0` or `num_volumes < 3`.
    pub fn new(
        mut rng: ChaCha20Rng,
        clock: SimClock,
        x: u32,
        lambda: f64,
        num_volumes: u32,
        refresh_interval: SimDuration,
    ) -> Self {
        assert!(x > 0, "x must be positive");
        assert!(lambda > 0.0, "lambda must be positive");
        assert!(num_volumes >= 3, "need at least 3 volumes");
        let stored_rand = rng.next_u64();
        let last_refresh = clock.now();
        DummyWriter {
            rng,
            clock,
            x,
            lambda,
            num_volumes,
            refresh_interval,
            stored_rand,
            last_refresh,
            stats: DummyStats::default(),
        }
    }

    /// Consults the trigger for one public allocation. Returns the burst to
    /// perform, if any. Also refreshes `stored_rand` when it is stale
    /// (write-driven refresh, §V-A).
    pub fn on_public_allocation(&mut self) -> Option<DummyBurst> {
        self.stats.trigger_checks += 1;
        let now = self.clock.now();
        if now.duration_since(self.last_refresh) >= self.refresh_interval {
            self.stored_rand = self.rng.next_u64();
            self.last_refresh = now;
            self.stats.refreshes += 1;
        }
        // rand uniform in [1, 2x]; fire iff rand <= stored_rand mod x.
        let rand = self.rng.next_range(1, 2 * self.x as u64);
        let threshold = self.stored_rand % self.x as u64;
        if rand > threshold {
            return None;
        }
        self.stats.bursts += 1;
        let blocks = self.sample_burst_size();
        let target_volume = ((self.stored_rand % (self.num_volumes as u64 - 1)) + 2) as u32;
        Some(DummyBurst { blocks, target_volume })
    }

    /// Samples `m = round(-ln(1-f)/λ)` (may be zero).
    fn sample_burst_size(&mut self) -> u64 {
        let f = self.rng.next_f64(); // in [0, 1)
        let m = -(1.0 - f).ln() / self.lambda;
        m.round() as u64
    }

    /// Generates one block of dummy noise.
    pub fn noise_block(&mut self, block_size: usize) -> Vec<u8> {
        let mut buf = vec![0u8; block_size];
        self.rng.fill_bytes(&mut buf);
        buf
    }

    /// Generates a whole burst of noise blocks in one call — the CSPRNG
    /// stream is identical to `count` successive [`DummyWriter::noise_block`]
    /// calls, but the caller takes the writer lock once per burst instead
    /// of once per block.
    pub fn noise_blocks(&mut self, block_size: usize, count: u64) -> Vec<Vec<u8>> {
        (0..count).map(|_| self.noise_block(block_size)).collect()
    }

    /// Records that `written` noise blocks landed and `dropped` could not.
    pub fn record_outcome(&mut self, written: u64, dropped: u64) {
        self.stats.blocks_written += written;
        self.stats.blocks_dropped += dropped;
    }

    /// Activity counters so far.
    pub fn stats(&self) -> DummyStats {
        self.stats
    }

    /// The current (secret) `stored_rand`; exposed for white-box tests and
    /// the security-game simulator, never to the adversary.
    pub fn stored_rand(&self) -> u64 {
        self.stored_rand
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn writer(seed: u64, x: u32, lambda: f64, n: u32) -> (DummyWriter, SimClock) {
        let clock = SimClock::new();
        let w = DummyWriter::new(
            ChaCha20Rng::from_u64_seed(seed),
            clock.clone(),
            x,
            lambda,
            n,
            SimDuration::from_secs(3600),
        );
        (w, clock)
    }

    #[test]
    fn trigger_rate_stays_below_half() {
        // Across many stored_rand regimes (forced refreshes), the overall
        // trigger rate must stay below 50 %.
        let (mut w, clock) = writer(1, 50, 1.0, 6);
        let mut fired = 0u64;
        let total = 20_000u64;
        for i in 0..total {
            if i % 100 == 0 {
                clock.advance(SimDuration::from_secs(3600)); // force refresh
            }
            if w.on_public_allocation().is_some() {
                fired += 1;
            }
        }
        let rate = fired as f64 / total as f64;
        assert!(rate < 0.5, "trigger rate {rate}");
        assert!(rate > 0.05, "trigger should fire sometimes, rate {rate}");
    }

    #[test]
    fn trigger_rate_approximates_quarter_on_average() {
        // threshold = stored_rand mod x is ~U[0,x); rand ~U[1,2x];
        // P(fire) = E[threshold]/2x ≈ 1/4 on average over regimes.
        let (mut w, clock) = writer(2, 50, 1.0, 6);
        let mut fired = 0u64;
        let total = 40_000u64;
        for i in 0..total {
            if i % 50 == 0 {
                clock.advance(SimDuration::from_secs(3600));
            }
            if w.on_public_allocation().is_some() {
                fired += 1;
            }
        }
        let rate = fired as f64 / total as f64;
        assert!((0.17..0.33).contains(&rate), "average rate {rate} should be near 1/4");
    }

    #[test]
    fn burst_sizes_follow_exponential_shape() {
        let (mut w, _clock) = writer(3, 50, 1.0, 6);
        let samples: Vec<u64> = (0..20_000).map(|_| w.sample_burst_size()).collect();
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        // round(Exp(1)) has mean e^{-1/2}/(1-e^{-1}) ≈ 0.96 — the paper's
        // "one free block on average" for λ = 1.
        assert!((0.85..1.1).contains(&mean), "mean burst {mean}");
        let max = *samples.iter().max().unwrap();
        assert!(max >= 6, "wide variance expected, max {max}");
        let zeros = samples.iter().filter(|&&m| m == 0).count();
        assert!(zeros > 0, "some bursts legitimately round to zero");
    }

    #[test]
    fn larger_lambda_means_smaller_bursts() {
        let (mut w1, _) = writer(4, 50, 0.5, 6);
        let (mut w2, _) = writer(4, 50, 4.0, 6);
        let mean = |w: &mut DummyWriter| {
            (0..5000).map(|_| w.sample_burst_size()).sum::<u64>() as f64 / 5000.0
        };
        assert!(mean(&mut w1) > mean(&mut w2));
    }

    #[test]
    fn target_volume_in_dummy_range_and_stable_per_regime() {
        let (mut w, _clock) = writer(5, 50, 1.0, 8);
        let mut targets = std::collections::HashSet::new();
        for _ in 0..2000 {
            if let Some(b) = w.on_public_allocation() {
                assert!((2..=8).contains(&b.target_volume));
                targets.insert(b.target_volume);
            }
        }
        // Within one stored_rand regime the target is fixed (j depends only
        // on stored_rand).
        assert_eq!(targets.len(), 1, "one regime, one target: {targets:?}");
    }

    #[test]
    fn target_volume_varies_across_regimes() {
        let (mut w, clock) = writer(6, 50, 1.0, 8);
        let mut targets = std::collections::HashSet::new();
        for _ in 0..200 {
            clock.advance(SimDuration::from_secs(3600));
            for _ in 0..50 {
                if let Some(b) = w.on_public_allocation() {
                    targets.insert(b.target_volume);
                }
            }
        }
        assert!(targets.len() > 1, "targets should move across regimes: {targets:?}");
    }

    #[test]
    fn stored_rand_refreshes_on_schedule_only() {
        let (mut w, clock) = writer(7, 50, 1.0, 6);
        let initial = w.stored_rand();
        for _ in 0..100 {
            w.on_public_allocation();
        }
        assert_eq!(w.stored_rand(), initial, "no refresh before the interval");
        clock.advance(SimDuration::from_secs(3601));
        w.on_public_allocation();
        assert_ne!(w.stored_rand(), initial, "refresh after the interval");
        assert_eq!(w.stats().refreshes, 1);
    }

    #[test]
    fn noise_blocks_are_high_entropy_and_distinct() {
        let (mut w, _clock) = writer(8, 50, 1.0, 6);
        let a = w.noise_block(4096);
        let b = w.noise_block(4096);
        assert_ne!(a, b);
        let mut hist = [0u32; 256];
        for &byte in &a {
            hist[byte as usize] += 1;
        }
        assert!(hist.iter().filter(|&&c| c > 0).count() > 200, "noise uses most byte values");
    }

    #[test]
    fn stats_accumulate() {
        let (mut w, _clock) = writer(9, 50, 1.0, 6);
        for _ in 0..100 {
            if let Some(b) = w.on_public_allocation() {
                w.record_outcome(b.blocks, 0);
            }
        }
        let s = w.stats();
        assert_eq!(s.trigger_checks, 100);
        assert!(s.bursts <= 100);
    }

    #[test]
    #[should_panic(expected = "x must be positive")]
    fn zero_x_panics() {
        let clock = SimClock::new();
        let _ = DummyWriter::new(
            ChaCha20Rng::from_u64_seed(0),
            clock,
            0,
            1.0,
            6,
            SimDuration::from_secs(1),
        );
    }
}
