//! [`PdeVolume`]: the public volume wrapper that rides dummy writes along.
//!
//! In the prototype this logic lives inside the modified `dm-thin` kernel
//! target (§V-A); here it is a [`BlockDevice`] wrapper over the public thin
//! volume. Whenever a write allocates a *fresh* block ("when a data block
//! is allocated to the public volume to store data", §IV-B), the dummy
//! writer is consulted, and any resulting burst of noise blocks is appended
//! to the chosen dummy/hidden-indexed volume through the shared pool.

use crate::dummy::DummyWriter;
use mobiceal_blockdev::{BlockDevice, BlockDeviceError, BlockIndex};
use mobiceal_sim::{CpuCostModel, SimClock};
use mobiceal_thinp::{ThinPool, ThinVolume};
use parking_lot::Mutex;
use std::sync::Arc;

/// The public thin volume with the dummy-write hook attached.
pub struct PdeVolume {
    inner: ThinVolume,
    pool: Arc<ThinPool>,
    dummy: Arc<Mutex<DummyWriter>>,
    cpu: CpuCostModel,
    clock: SimClock,
}

impl std::fmt::Debug for PdeVolume {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PdeVolume").field("volume", &self.inner.id()).finish_non_exhaustive()
    }
}

impl PdeVolume {
    /// Wraps the public volume.
    pub fn new(
        inner: ThinVolume,
        pool: Arc<ThinPool>,
        dummy: Arc<Mutex<DummyWriter>>,
        cpu: CpuCostModel,
        clock: SimClock,
    ) -> Self {
        PdeVolume { inner, pool, dummy, cpu, clock }
    }

    fn run_dummy_burst(&self) {
        let burst = self.dummy.lock().on_public_allocation();
        let Some(burst) = burst else { return };
        let block_size = self.pool.block_size();
        let mut written = 0u64;
        let mut dropped = 0u64;
        for _ in 0..burst.blocks {
            let noise = self.dummy.lock().noise_block(block_size);
            // Generating cryptographic noise costs CPU time on the phone.
            self.clock.advance(self.cpu.rng_cost(block_size));
            match self.pool.append_block(burst.target_volume, &noise) {
                Ok(_) => written += 1,
                Err(_) => {
                    // Pool or volume exhausted: the dummy block is simply
                    // not written. GC will eventually free space (§IV-D).
                    dropped += 1;
                    break;
                }
            }
        }
        self.dummy.lock().record_outcome(written, dropped);
    }
}

impl BlockDevice for PdeVolume {
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn read_block(&self, index: BlockIndex) -> Result<Vec<u8>, BlockDeviceError> {
        self.inner.read_block(index)
    }

    fn write_block(&self, index: BlockIndex, data: &[u8]) -> Result<(), BlockDeviceError> {
        let fresh = self.inner.mapping(index).is_none();
        self.inner.write_block(index, data)?;
        if fresh {
            self.run_dummy_burst();
        }
        Ok(())
    }

    fn flush(&self) -> Result<(), BlockDeviceError> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobiceal_blockdev::MemDisk;
    use mobiceal_crypto::ChaCha20Rng;
    use mobiceal_sim::SimDuration;
    use mobiceal_thinp::{AllocStrategy, PoolConfig};

    fn setup(seed: u64) -> (Arc<ThinPool>, PdeVolume, SimClock) {
        let clock = SimClock::new();
        let data: mobiceal_blockdev::SharedDevice =
            Arc::new(MemDisk::new(2048, 512, clock.clone()));
        let meta: mobiceal_blockdev::SharedDevice =
            Arc::new(MemDisk::new(128, 512, clock.clone()));
        let pool = Arc::new(
            ThinPool::create_seeded(data, meta, PoolConfig::new(6), AllocStrategy::Random, seed)
                .unwrap(),
        );
        let public = pool.create_volume(1, 2048).unwrap();
        for v in 2..=6 {
            pool.create_volume(v, 2048).unwrap();
        }
        let dummy = Arc::new(Mutex::new(DummyWriter::new(
            ChaCha20Rng::from_u64_seed(seed),
            clock.clone(),
            50,
            1.0,
            6,
            SimDuration::from_secs(3600),
        )));
        let pde =
            PdeVolume::new(public, pool.clone(), dummy, CpuCostModel::nexus4(), clock.clone());
        (pool, pde, clock)
    }

    #[test]
    fn data_roundtrips_through_the_hook() {
        let (_pool, pde, _clock) = setup(1);
        pde.write_block(10, &vec![0xAB; 512]).unwrap();
        assert_eq!(pde.read_block(10).unwrap(), vec![0xAB; 512]);
    }

    #[test]
    fn fresh_allocations_spawn_dummy_blocks() {
        // A single stored_rand regime can legitimately have trigger
        // probability 0 (threshold = stored_rand mod x = 0), so check that
        // dummy traffic appears for a clear majority of seeds.
        let mut seeds_with_traffic = 0;
        for seed in 0..8 {
            let (pool, pde, _clock) = setup(seed);
            for i in 0..300 {
                pde.write_block(i, &vec![1u8; 512]).unwrap();
            }
            assert_eq!(pool.volume_mapped_blocks(1), 300);
            if pool.allocated_blocks() > 300 {
                seeds_with_traffic += 1;
            }
        }
        assert!(
            seeds_with_traffic >= 5,
            "dummy traffic should appear for most regimes, got {seeds_with_traffic}/8"
        );
    }

    #[test]
    fn overwrites_do_not_spawn_dummies() {
        let (pool, pde, _clock) = setup(3);
        for i in 0..50 {
            pde.write_block(i, &vec![1u8; 512]).unwrap();
        }
        let after_first_pass = pool.allocated_blocks();
        for _ in 0..5 {
            for i in 0..50 {
                pde.write_block(i, &vec![2u8; 512]).unwrap();
            }
        }
        assert_eq!(
            pool.allocated_blocks(),
            after_first_pass,
            "overwrites allocate nothing and trigger nothing"
        );
    }

    #[test]
    fn dummy_blocks_land_in_non_public_volumes() {
        // Scan seeds for one whose regime fires, then check placement.
        for seed in 0..16 {
            let (pool, pde, _clock) = setup(seed);
            for i in 0..300 {
                pde.write_block(i, &vec![1u8; 512]).unwrap();
            }
            assert_eq!(pool.volume_mapped_blocks(1), 300);
            let dummy_total: u64 = (2..=6).map(|v| pool.volume_mapped_blocks(v)).sum();
            if dummy_total > 0 {
                return; // noise landed outside the public volume, as required
            }
        }
        panic!("no seed produced dummy traffic in non-public volumes");
    }

    #[test]
    fn pool_exhaustion_drops_dummies_but_not_data() {
        // Small pool: public writes must keep succeeding while dummy
        // appends silently drop once space is tight.
        let clock = SimClock::new();
        let data: mobiceal_blockdev::SharedDevice =
            Arc::new(MemDisk::new(64, 512, clock.clone()));
        let meta: mobiceal_blockdev::SharedDevice =
            Arc::new(MemDisk::new(128, 512, clock.clone()));
        let pool = Arc::new(
            ThinPool::create_seeded(data, meta, PoolConfig::new(3), AllocStrategy::Random, 5)
                .unwrap(),
        );
        let public = pool.create_volume(1, 64).unwrap();
        pool.create_volume(2, 64).unwrap();
        pool.create_volume(3, 64).unwrap();
        let dummy = Arc::new(Mutex::new(DummyWriter::new(
            ChaCha20Rng::from_u64_seed(5),
            clock.clone(),
            50,
            1.0,
            3,
            SimDuration::from_secs(3600),
        )));
        let pde = PdeVolume::new(
            public,
            pool.clone(),
            dummy.clone(),
            CpuCostModel::free(),
            clock.clone(),
        );
        let mut write_errors = 0;
        for i in 0..40 {
            if pde.write_block(i, &vec![1u8; 512]).is_err() {
                write_errors += 1;
            }
        }
        assert_eq!(write_errors, 0, "40 public writes fit in a 64-block pool");
        assert!(pool.allocated_blocks() <= 64);
    }
}
