//! [`PdeVolume`]: the public volume wrapper that rides dummy writes along.
//!
//! In the prototype this logic lives inside the modified `dm-thin` kernel
//! target (§V-A); here it is a [`BlockDevice`] wrapper over the public thin
//! volume. Whenever a write allocates a *fresh* block ("when a data block
//! is allocated to the public volume to store data", §IV-B), the dummy
//! writer is consulted, and any resulting burst of noise blocks is appended
//! to the chosen dummy/hidden-indexed volume through the shared pool.

use crate::dummy::DummyWriter;
use mobiceal_blockdev::{BlockDevice, BlockDeviceError, BlockIndex};
use mobiceal_sim::{CpuCostModel, SimClock};
use mobiceal_thinp::{ThinPool, ThinVolume};
use parking_lot::Mutex;
use std::sync::Arc;

/// The public thin volume with the dummy-write hook attached.
pub struct PdeVolume {
    inner: ThinVolume,
    pool: Arc<ThinPool>,
    dummy: Arc<Mutex<DummyWriter>>,
    cpu: CpuCostModel,
    clock: SimClock,
}

impl std::fmt::Debug for PdeVolume {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PdeVolume").field("volume", &self.inner.id()).finish_non_exhaustive()
    }
}

impl PdeVolume {
    /// Wraps the public volume.
    pub fn new(
        inner: ThinVolume,
        pool: Arc<ThinPool>,
        dummy: Arc<Mutex<DummyWriter>>,
        cpu: CpuCostModel,
        clock: SimClock,
    ) -> Self {
        PdeVolume { inner, pool, dummy, cpu, clock }
    }

    fn run_dummy_burst(&self) {
        let burst = self.dummy.lock().on_public_allocation();
        let Some(burst) = burst else { return };
        self.land_bursts(&[burst]);
    }

    /// Lands one or more dummy bursts. Each burst's noise is generated in
    /// one writer-lock acquisition and lands via **one** vectored
    /// [`ThinPool::append_blocks`] call — the whole `m ~ Exp(λ)` burst
    /// crosses the blockdev → dm → thinp stack once instead of `m` times.
    fn land_bursts(&self, bursts: &[crate::dummy::DummyBurst]) {
        let block_size = self.pool.block_size();
        for burst in bursts {
            if burst.blocks == 0 {
                self.dummy.lock().record_outcome(0, 0);
                continue;
            }
            // Don't generate (or charge CPU time for) noise that cannot
            // possibly land: the sequential loop stopped at the first
            // failed append, charging written+1 blocks, so cap generation
            // at the append headroom (pool free space and target-volume
            // virtual space) plus that one probe block.
            let headroom = self.pool.append_headroom(burst.target_volume).saturating_add(1);
            let generate = burst.blocks.min(headroom);
            let noise = self.dummy.lock().noise_blocks(block_size, generate);
            // Generating cryptographic noise costs CPU time on the phone.
            self.clock.advance(self.cpu.rng_cost(block_size) * generate);
            let refs: Vec<&[u8]> = noise.iter().map(Vec::as_slice).collect();
            let (written, dropped) = match self.pool.append_blocks(burst.target_volume, &refs) {
                // Pool or volume exhausted: surplus dummy blocks are simply
                // not written. GC will eventually free space (§IV-D).
                Ok(written) if written < burst.blocks => (written, 1),
                Ok(written) => (written, 0),
                Err(_) => (0, 1),
            };
            self.dummy.lock().record_outcome(written, dropped);
        }
    }
}

impl BlockDevice for PdeVolume {
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn read_block(&self, index: BlockIndex) -> Result<Vec<u8>, BlockDeviceError> {
        self.inner.read_block(index)
    }

    fn write_block(&self, index: BlockIndex, data: &[u8]) -> Result<(), BlockDeviceError> {
        let fresh = self.inner.mapping(index).is_none();
        self.inner.write_block(index, data)?;
        if fresh {
            self.run_dummy_burst();
        }
        Ok(())
    }

    fn read_blocks(&self, indices: &[BlockIndex]) -> Result<Vec<Vec<u8>>, BlockDeviceError> {
        self.inner.read_blocks(indices)
    }

    /// Batched write with the dummy-write hook: the public data lands via
    /// one vectored write through the thin volume, then the trigger is
    /// consulted once per fresh allocation *that landed* — the same number
    /// of checks, in batch order, as the sequential path (which triggers
    /// after each successful write and stops at the first failure) — and
    /// all resulting bursts land as batched appends. Dummy noise therefore
    /// follows the public batch instead of interleaving it block-by-block;
    /// trigger statistics are distributed identically to the sequential
    /// path.
    fn write_blocks(&self, writes: &[(BlockIndex, &[u8])]) -> Result<(), BlockDeviceError> {
        let indices: Vec<BlockIndex> = writes.iter().map(|&(index, _)| index).collect();
        // One locked pass classifies freshness for the whole batch.
        let fresh: std::collections::HashSet<BlockIndex> = self
            .inner
            .mappings_many(&indices)
            .iter()
            .zip(&indices)
            .filter(|(mapping, _)| mapping.is_none())
            .map(|(_, &index)| index)
            .collect();
        let result = self.inner.write_blocks(writes);
        // On a mid-batch failure the thin volume persists the allocated
        // prefix; consult the trigger for exactly the fresh blocks that
        // landed (now mapped), as the sequential loop would have.
        let landed: std::collections::HashSet<BlockIndex> = if result.is_ok() {
            fresh.clone()
        } else {
            self.inner
                .mappings_many(&indices)
                .iter()
                .zip(&indices)
                .filter(|(mapping, _)| mapping.is_some())
                .map(|(_, &index)| index)
                .collect()
        };
        // One trigger consultation per landed fresh allocation, in batch
        // order (duplicates within the batch allocate once and check once).
        let mut seen = std::collections::HashSet::new();
        let mut bursts = Vec::new();
        {
            let mut dummy = self.dummy.lock();
            for &index in &indices {
                if fresh.contains(&index) && landed.contains(&index) && seen.insert(index) {
                    if let Some(burst) = dummy.on_public_allocation() {
                        bursts.push(burst);
                    }
                }
            }
        }
        self.land_bursts(&bursts);
        result
    }

    fn flush(&self) -> Result<(), BlockDeviceError> {
        self.inner.flush()
    }

    fn host_queue_enter(&self) {
        self.inner.host_queue_enter();
    }

    fn host_queue_leave(&self) {
        self.inner.host_queue_leave();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobiceal_blockdev::MemDisk;
    use mobiceal_crypto::ChaCha20Rng;
    use mobiceal_sim::SimDuration;
    use mobiceal_thinp::{AllocStrategy, PoolConfig};

    fn setup(seed: u64) -> (Arc<ThinPool>, PdeVolume, SimClock) {
        let clock = SimClock::new();
        let data: mobiceal_blockdev::SharedDevice =
            Arc::new(MemDisk::new(2048, 512, clock.clone()));
        let meta: mobiceal_blockdev::SharedDevice = Arc::new(MemDisk::new(128, 512, clock.clone()));
        let pool = Arc::new(
            ThinPool::create_seeded(data, meta, PoolConfig::new(6), AllocStrategy::Random, seed)
                .unwrap(),
        );
        let public = pool.create_volume(1, 2048).unwrap();
        for v in 2..=6 {
            pool.create_volume(v, 2048).unwrap();
        }
        let dummy = Arc::new(Mutex::new(DummyWriter::new(
            ChaCha20Rng::from_u64_seed(seed),
            clock.clone(),
            50,
            1.0,
            6,
            SimDuration::from_secs(3600),
        )));
        let pde =
            PdeVolume::new(public, pool.clone(), dummy, CpuCostModel::nexus4(), clock.clone());
        (pool, pde, clock)
    }

    #[test]
    fn data_roundtrips_through_the_hook() {
        let (_pool, pde, _clock) = setup(1);
        pde.write_block(10, &vec![0xAB; 512]).unwrap();
        assert_eq!(pde.read_block(10).unwrap(), vec![0xAB; 512]);
    }

    #[test]
    fn fresh_allocations_spawn_dummy_blocks() {
        // A single stored_rand regime can legitimately have trigger
        // probability 0 (threshold = stored_rand mod x = 0), so check that
        // dummy traffic appears for a clear majority of seeds.
        let mut seeds_with_traffic = 0;
        for seed in 0..8 {
            let (pool, pde, _clock) = setup(seed);
            for i in 0..300 {
                pde.write_block(i, &vec![1u8; 512]).unwrap();
            }
            assert_eq!(pool.volume_mapped_blocks(1), 300);
            if pool.allocated_blocks() > 300 {
                seeds_with_traffic += 1;
            }
        }
        assert!(
            seeds_with_traffic >= 5,
            "dummy traffic should appear for most regimes, got {seeds_with_traffic}/8"
        );
    }

    #[test]
    fn overwrites_do_not_spawn_dummies() {
        let (pool, pde, _clock) = setup(3);
        for i in 0..50 {
            pde.write_block(i, &vec![1u8; 512]).unwrap();
        }
        let after_first_pass = pool.allocated_blocks();
        for _ in 0..5 {
            for i in 0..50 {
                pde.write_block(i, &vec![2u8; 512]).unwrap();
            }
        }
        assert_eq!(
            pool.allocated_blocks(),
            after_first_pass,
            "overwrites allocate nothing and trigger nothing"
        );
    }

    #[test]
    fn dummy_blocks_land_in_non_public_volumes() {
        // Scan seeds for one whose regime fires, then check placement.
        for seed in 0..16 {
            let (pool, pde, _clock) = setup(seed);
            for i in 0..300 {
                pde.write_block(i, &vec![1u8; 512]).unwrap();
            }
            assert_eq!(pool.volume_mapped_blocks(1), 300);
            let dummy_total: u64 = (2..=6).map(|v| pool.volume_mapped_blocks(v)).sum();
            if dummy_total > 0 {
                return; // noise landed outside the public volume, as required
            }
        }
        panic!("no seed produced dummy traffic in non-public volumes");
    }

    #[test]
    fn batched_writes_roundtrip_and_trigger_once_per_fresh_block() {
        let (pool, pde, _clock) = setup(21);
        let blocks: Vec<(u64, Vec<u8>)> = (0..100u64).map(|i| (i, vec![i as u8; 512])).collect();
        let batch: Vec<(u64, &[u8])> = blocks.iter().map(|(b, d)| (*b, d.as_slice())).collect();
        pde.write_blocks(&batch).unwrap();
        for (b, d) in &blocks {
            assert_eq!(&pde.read_block(*b).unwrap(), d);
        }
        assert_eq!(pool.volume_mapped_blocks(1), 100);
        let stats = pde.dummy.lock().stats();
        assert_eq!(stats.trigger_checks, 100, "one trigger check per fresh block");
        // Overwriting the same range in a batch triggers nothing new.
        pde.write_blocks(&batch).unwrap();
        assert_eq!(pde.dummy.lock().stats().trigger_checks, 100);
        // Duplicates within one batch allocate once and check once.
        let dup = vec![0xABu8; 512];
        pde.write_blocks(&[(200, dup.as_slice()), (200, dup.as_slice())]).unwrap();
        assert_eq!(pde.dummy.lock().stats().trigger_checks, 101);
    }

    #[test]
    fn batched_and_sequential_writes_produce_same_dummy_traffic_stats() {
        // Trigger accounting must match the sequential path check-for-check
        // (the draws differ — noise generation is deferred past the
        // trigger loop — but the counts are identical).
        let (pool_a, pde_a, _ca) = setup(33);
        let (pool_b, pde_b, _cb) = setup(33);
        let blocks: Vec<(u64, Vec<u8>)> = (0..200u64).map(|i| (i, vec![1u8; 512])).collect();
        let batch: Vec<(u64, &[u8])> = blocks.iter().map(|(b, d)| (*b, d.as_slice())).collect();
        pde_a.write_blocks(&batch).unwrap();
        for (b, d) in &blocks {
            pde_b.write_block(*b, d).unwrap();
        }
        assert_eq!(pool_a.volume_mapped_blocks(1), pool_b.volume_mapped_blocks(1));
        let sa = pde_a.dummy.lock().stats();
        let sb = pde_b.dummy.lock().stats();
        assert_eq!(sa.trigger_checks, sb.trigger_checks);
    }

    #[test]
    fn pool_exhaustion_drops_dummies_but_not_data() {
        // Small pool: public writes must keep succeeding while dummy
        // appends silently drop once space is tight.
        let clock = SimClock::new();
        let data: mobiceal_blockdev::SharedDevice = Arc::new(MemDisk::new(64, 512, clock.clone()));
        let meta: mobiceal_blockdev::SharedDevice = Arc::new(MemDisk::new(128, 512, clock.clone()));
        let pool = Arc::new(
            ThinPool::create_seeded(data, meta, PoolConfig::new(3), AllocStrategy::Random, 5)
                .unwrap(),
        );
        let public = pool.create_volume(1, 64).unwrap();
        pool.create_volume(2, 64).unwrap();
        pool.create_volume(3, 64).unwrap();
        let dummy = Arc::new(Mutex::new(DummyWriter::new(
            ChaCha20Rng::from_u64_seed(5),
            clock.clone(),
            50,
            1.0,
            3,
            SimDuration::from_secs(3600),
        )));
        let pde = PdeVolume::new(
            public,
            pool.clone(),
            dummy.clone(),
            CpuCostModel::free(),
            clock.clone(),
        );
        let mut write_errors = 0;
        for i in 0..40 {
            if pde.write_block(i, &vec![1u8; 512]).is_err() {
                write_errors += 1;
            }
        }
        assert_eq!(write_errors, 0, "40 public writes fit in a 64-block pool");
        assert!(pool.allocated_blocks() <= 64);
    }
}
