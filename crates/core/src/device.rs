//! The assembled MobiCeal device: layout, initialization, boot, switching.

use crate::config::MobiCealConfig;
use crate::dummy::{DummyStats, DummyWriter};
use crate::error::MobiCealError;
use crate::footer::{EncryptionFooter, FOOTER_BYTES};
use crate::pde_volume::PdeVolume;
use mobiceal_blockdev::{
    BlockDevice, BlockDeviceError, BlockIndex, CacheStats, SharedDevice, WriteBackCache,
};
use mobiceal_crypto::{Aes256, CbcEssiv, ChaCha20Rng, SectorCipher};
use mobiceal_dm::DmLinear;
use mobiceal_sim::{CpuCostModel, SimClock};
use mobiceal_thinp::{AllocStrategy, MetadataView, PoolConfig, ThinPool};
use parking_lot::Mutex;
use std::sync::Arc;

const HEADER_MAGIC: &[u8; 8] = b"MCVOLHDR";

/// Per-read mapping-lookup cost of the thin layer (the dm-thin btree walk;
/// Fig. 4 attributes ~18 % sequential-read overhead to it).
pub const THIN_READ_LOOKUP: mobiceal_sim::SimDuration = mobiceal_sim::SimDuration::from_micros(26);

/// The role a volume plays, as known to the *user* (the adversary cannot
/// tell [`VolumeRole::Hidden`] apart from a dummy volume).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VolumeRole {
    /// The daily-use volume (`V1`), unlocked by the decoy password.
    Public,
    /// A deniable volume, unlocked by one of the hidden passwords.
    Hidden,
}

/// How the userdata partition is carved up (Fig. 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceLayout {
    /// Device block size in bytes.
    pub block_size: usize,
    /// Blocks of pool metadata at the front.
    pub metadata_blocks: u64,
    /// Data-region blocks in the middle.
    pub data_blocks: u64,
    /// Blocks of encryption footer at the end (16 KiB worth).
    pub footer_blocks: u64,
}

impl DeviceLayout {
    /// Computes the layout for a disk, or an error if it cannot fit.
    fn for_disk(disk: &dyn BlockDevice, config: &MobiCealConfig) -> Result<Self, MobiCealError> {
        let block_size = disk.block_size();
        let footer_blocks = (FOOTER_BYTES as u64).div_ceil(block_size as u64);
        let required = config.metadata_blocks + footer_blocks + 64;
        if disk.num_blocks() < required {
            return Err(MobiCealError::DiskTooSmall { required, available: disk.num_blocks() });
        }
        Ok(DeviceLayout {
            block_size,
            metadata_blocks: config.metadata_blocks,
            data_blocks: disk.num_blocks() - config.metadata_blocks - footer_blocks,
            footer_blocks,
        })
    }

    /// First block of the footer region.
    fn footer_start(&self) -> u64 {
        self.metadata_blocks + self.data_blocks
    }
}

/// The MobiCeal block-layer PDE device.
///
/// See the crate docs for the full picture and an end-to-end example.
pub struct MobiCeal {
    disk: SharedDevice,
    clock: SimClock,
    config: MobiCealConfig,
    layout: DeviceLayout,
    pool: Arc<ThinPool>,
    footer: EncryptionFooter,
    dummy: Arc<Mutex<DummyWriter>>,
    cpu: CpuCostModel,
    /// Write-back caches handed out with unlocked volumes, tracked weakly
    /// so [`MobiCeal::commit`] can flush dirty data ahead of the metadata
    /// commit (the flush-ordering contract; empty while the cache knob is
    /// off). Shared (`Arc`) so background copier jobs can flush it too.
    caches: CacheList,
}

/// Weak handles to the live unlocked-volume caches.
type CacheList = Arc<Mutex<Vec<std::sync::Weak<VolumeCache>>>>;

/// Flushes every live cache in `caches`, dropping dead entries. Free
/// function so copier jobs (which cannot borrow the device) can share the
/// flush-before-commit ordering with [`MobiCeal::commit`].
pub(crate) fn flush_cache_list(caches: &CacheList) -> Result<(), BlockDeviceError> {
    let mut caches = caches.lock();
    caches.retain(|w| w.strong_count() > 0);
    for weak in caches.iter() {
        if let Some(cache) = weak.upgrade() {
            cache.flush()?;
        }
    }
    Ok(())
}

/// The concrete cache type wrapped around an unlocked volume's dm-crypt
/// layer: it caches *plaintext* above the cipher, so hits skip both the
/// crypto charge and the thin lookup.
type VolumeCache = WriteBackCache<mobiceal_dm::DmCrypt>;

impl std::fmt::Debug for MobiCeal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MobiCeal")
            .field("layout", &self.layout)
            .field("num_volumes", &self.config.num_volumes)
            .finish_non_exhaustive()
    }
}

impl MobiCeal {
    /// Initializes a device: formats the pool, creates the `n` volumes,
    /// writes the footer and every volume's header block, and commits.
    ///
    /// This is the `vdc cryptfs pde wipe` flow of §V-B. The previous disk
    /// contents are destroyed.
    ///
    /// # Errors
    ///
    /// Configuration, capacity, collision ([`MobiCealError::VolumeCollision`]
    /// if hidden passwords cannot be given distinct volumes), or device
    /// errors.
    pub fn initialize(
        disk: SharedDevice,
        clock: SimClock,
        config: MobiCealConfig,
        decoy_password: &str,
        hidden_passwords: &[&str],
        seed: u64,
    ) -> Result<Self, MobiCealError> {
        config.validate().map_err(|detail| MobiCealError::BadConfig { detail })?;
        if hidden_passwords.len() as u32 > config.num_volumes - 2 {
            return Err(MobiCealError::BadConfig {
                detail: format!(
                    "{} hidden passwords cannot fit in {} volumes",
                    hidden_passwords.len(),
                    config.num_volumes
                ),
            });
        }
        let layout = DeviceLayout::for_disk(&disk, &config)?;
        let mut rng = ChaCha20Rng::from_u64_seed(seed);
        let cpu = CpuCostModel::nexus4();

        // Resolve the footer salt so every hidden password lands on a
        // distinct volume index ("If different hidden volumes result in the
        // same k, another random salt will be chosen", §IV-C).
        let master_key = rng.gen_key();
        let mut footer = None;
        'salt: for _ in 0..64 {
            let salt = rng.gen_nonce16();
            let candidate = EncryptionFooter::with_salt(
                salt,
                &master_key,
                decoy_password,
                config.pbkdf2_iterations,
            );
            let mut seen = std::collections::HashSet::new();
            for pwd in hidden_passwords {
                if !seen.insert(candidate.hidden_volume_index(pwd, config.num_volumes)) {
                    continue 'salt;
                }
            }
            footer = Some(candidate);
            break;
        }
        let footer = footer.ok_or(MobiCealError::VolumeCollision)?;

        // Carve the disk (Fig. 3): metadata | data | footer.
        let meta_dev: SharedDevice =
            Arc::new(DmLinear::new(disk.clone(), 0, layout.metadata_blocks)?);
        let data_dev: SharedDevice =
            Arc::new(DmLinear::new(disk.clone(), layout.metadata_blocks, layout.data_blocks)?);

        // The modified thin pool: random allocation (§V-A).
        let pool = Arc::new(ThinPool::create_seeded(
            data_dev,
            meta_dev,
            PoolConfig::new(config.num_volumes),
            AllocStrategy::Random,
            rng.next_u64(),
        )?);
        pool.set_read_overhead(clock.clone(), THIN_READ_LOOKUP);
        // n thin volumes, all fully over-provisioned (thin volumes cost
        // nothing until written, §II-C).
        for v in 1..=config.num_volumes {
            pool.create_volume(v, layout.data_blocks)?;
        }

        // Write the footer region.
        write_footer(&disk, &layout, &footer)?;

        // Charge the PBKDF2 derivations performed during init.
        clock.advance(cpu.pbkdf2_cost());

        // Volume headers at vblock 0: a password-check block for the public
        // and each hidden volume; plain noise for every dummy volume, so the
        // mapped-block pattern is identical across all non-public volumes.
        let hidden_indices: Vec<u32> = hidden_passwords
            .iter()
            .map(|p| footer.hidden_volume_index(p, config.num_volumes))
            .collect();
        {
            let public = pool.open_volume(1)?;
            let key = footer.derive_key(decoy_password);
            clock.advance(cpu.pbkdf2_cost());
            public.write_block(0, &header_block(&key, decoy_password, layout.block_size))?;
        }
        for v in 2..=config.num_volumes {
            let vol = pool.open_volume(v)?;
            if let Some(pos) = hidden_indices.iter().position(|&k| k == v) {
                let pwd = hidden_passwords[pos];
                let key = footer.derive_key(pwd);
                clock.advance(cpu.pbkdf2_cost());
                vol.write_block(0, &header_block(&key, pwd, layout.block_size))?;
            } else {
                let mut noise = vec![0u8; layout.block_size];
                rng.fill_bytes(&mut noise);
                clock.advance(cpu.rng_cost(layout.block_size));
                vol.write_block(0, &noise)?;
            }
        }
        pool.commit()?;

        let dummy = Arc::new(Mutex::new(DummyWriter::new(
            ChaCha20Rng::from_u64_seed(rng.next_u64()),
            clock.clone(),
            config.x,
            config.lambda,
            config.num_volumes,
            config.stored_rand_refresh,
        )));
        Ok(MobiCeal {
            disk,
            clock,
            config,
            layout,
            pool,
            footer,
            dummy,
            cpu,
            caches: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// Opens an initialized device (the boot path, §V-B).
    ///
    /// # Errors
    ///
    /// [`MobiCealError::NotInitialized`] if the footer or pool metadata is
    /// absent/corrupt.
    pub fn open(
        disk: SharedDevice,
        clock: SimClock,
        config: MobiCealConfig,
        seed: u64,
    ) -> Result<Self, MobiCealError> {
        config.validate().map_err(|detail| MobiCealError::BadConfig { detail })?;
        let layout = DeviceLayout::for_disk(&disk, &config)?;
        let footer = read_footer(&disk, &layout)?;
        let meta_dev: SharedDevice =
            Arc::new(DmLinear::new(disk.clone(), 0, layout.metadata_blocks)?);
        let data_dev: SharedDevice =
            Arc::new(DmLinear::new(disk.clone(), layout.metadata_blocks, layout.data_blocks)?);
        let mut rng = ChaCha20Rng::from_u64_seed(seed);
        let pool = Arc::new(
            ThinPool::open(
                data_dev,
                meta_dev,
                PoolConfig::new(config.num_volumes),
                AllocStrategy::Random,
                rng.next_u64(),
            )
            .map_err(|e| match e {
                BlockDeviceError::CorruptMetadata { detail } => {
                    MobiCealError::NotInitialized { detail }
                }
                other => MobiCealError::Device(other),
            })?,
        );
        pool.set_read_overhead(clock.clone(), THIN_READ_LOOKUP);
        if pool.volume_ids().len() as u32 != config.num_volumes {
            return Err(MobiCealError::NotInitialized {
                detail: format!(
                    "pool has {} volumes, config expects {}",
                    pool.volume_ids().len(),
                    config.num_volumes
                ),
            });
        }
        let cpu = CpuCostModel::nexus4();
        let dummy = Arc::new(Mutex::new(DummyWriter::new(
            ChaCha20Rng::from_u64_seed(rng.next_u64()),
            clock.clone(),
            config.x,
            config.lambda,
            config.num_volumes,
            config.stored_rand_refresh,
        )));
        Ok(MobiCeal {
            disk,
            clock,
            config,
            layout,
            pool,
            footer,
            dummy,
            cpu,
            caches: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// Unlocks the public volume with the decoy password (pre-boot
    /// authentication, §V-B). The returned device has the dummy-write hook
    /// attached and dm-crypt on top.
    ///
    /// # Errors
    ///
    /// [`MobiCealError::BadPassword`] if verification fails.
    pub fn unlock_public(&self, password: &str) -> Result<UnlockedVolume, MobiCealError> {
        let key = self.footer.derive_key(password);
        self.clock.advance(self.cpu.pbkdf2_cost());
        let raw = self.pool.open_volume(1)?;
        verify_header(&raw, &key, password, self.layout.block_size)?;
        let pde = PdeVolume::new(
            raw,
            Arc::clone(&self.pool),
            Arc::clone(&self.dummy),
            self.cpu.clone(),
            self.clock.clone(),
        );
        let crypt = self.configure_crypt(
            mobiceal_dm::DmCrypt::new_essiv(Arc::new(pde), &key)
                .with_timing(self.clock.clone(), self.cpu.clone()),
        );
        Ok(self.assemble_unlocked(crypt, VolumeRole::Public, 1))
    }

    /// Unlocks a hidden volume with a hidden password (the screen-lock
    /// switching path, §V-B/§V-C). No dummy-write hook: hidden writes are
    /// covered by the dummy traffic of public operation.
    ///
    /// # Errors
    ///
    /// [`MobiCealError::BadPassword`] if verification fails (including when
    /// `password` happens to index a dummy volume).
    pub fn unlock_hidden(&self, password: &str) -> Result<UnlockedVolume, MobiCealError> {
        let k = self.footer.hidden_volume_index(password, self.config.num_volumes);
        let key = self.footer.derive_key(password);
        self.clock.advance(self.cpu.pbkdf2_cost());
        let raw = self.pool.open_volume(k)?;
        verify_header(&raw, &key, password, self.layout.block_size)?;
        let crypt = self.configure_crypt(
            mobiceal_dm::DmCrypt::new_essiv(Arc::new(raw), &key)
                .with_timing(self.clock.clone(), self.cpu.clone()),
        );
        Ok(self.assemble_unlocked(crypt, VolumeRole::Hidden, k))
    }

    /// Tops the decrypted stack off with the configured write-back cache
    /// (when `cache_blocks > 0`) and packages it as an [`UnlockedVolume`].
    /// Enabled caches are tracked weakly so [`MobiCeal::commit`] can flush
    /// them ahead of the metadata commit.
    fn assemble_unlocked(
        &self,
        crypt: mobiceal_dm::DmCrypt,
        role: VolumeRole,
        volume_id: u32,
    ) -> UnlockedVolume {
        let data_blocks = self.layout.data_blocks - 1;
        if self.config.cache_blocks > 0 {
            let cache = Arc::new(WriteBackCache::new(crypt, self.config.cache_config()));
            self.caches.lock().push(Arc::downgrade(&cache));
            UnlockedVolume {
                inner: cache.clone(),
                cache: Some(cache),
                role,
                volume_id,
                data_blocks,
            }
        } else {
            UnlockedVolume { inner: Arc::new(crypt), cache: None, role, volume_id, data_blocks }
        }
    }

    /// Applies the configured dm-crypt batch-parallelism knob (ROADMAP:
    /// `with_parallelism` wired through [`MobiCealConfig`]). `None` keeps
    /// dm-crypt's byte-aware default sharding policy.
    fn configure_crypt(&self, crypt: mobiceal_dm::DmCrypt) -> mobiceal_dm::DmCrypt {
        match self.config.crypt_parallelism {
            Some((workers, min_sectors)) => crypt.with_parallelism(workers, min_sectors),
            None => crypt,
        }
    }

    /// Commits pool metadata (called by Vold on clean unmount/shutdown).
    ///
    /// Ordering contract: every live write-back cache is flushed *before*
    /// the pool commit, so dirty data blocks — and the thin mappings their
    /// write-back allocates — are on the device before the superblock that
    /// references them (the same data-before-metadata ordering the crash
    /// sweep pins on the uncached stack).
    ///
    /// # Errors
    ///
    /// Metadata-device I/O errors.
    pub fn commit(&self) -> Result<(), MobiCealError> {
        self.flush_caches()?;
        Ok(self.pool.commit()?)
    }

    /// Flushes every live unlocked-volume cache (dropped volumes fall out
    /// of the list). A no-op while the cache knob is off.
    pub fn flush_caches(&self) -> Result<(), MobiCealError> {
        Ok(flush_cache_list(&self.caches)?)
    }

    /// The device layout in use.
    pub fn layout(&self) -> DeviceLayout {
        self.layout
    }

    /// The configuration in use.
    pub fn config(&self) -> &MobiCealConfig {
        &self.config
    }

    /// The clock this device charges time to.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Dummy-write counters.
    pub fn dummy_stats(&self) -> DummyStats {
        self.dummy.lock().stats()
    }

    /// The pool metadata exactly as the adversary can read it (§IV-B:
    /// "the system keeps the metadata in a known location and the adversary
    /// can have access to them").
    pub fn metadata_view(&self) -> MetadataView {
        self.pool.metadata_view()
    }

    /// Free blocks left in the shared pool.
    pub fn free_blocks(&self) -> u64 {
        self.pool.free_blocks()
    }

    /// The shared thin pool (for GC and experiments).
    pub(crate) fn pool(&self) -> &Arc<ThinPool> {
        &self.pool
    }

    /// The footer (white-box access for experiments; on the real device it
    /// is world-readable anyway).
    pub fn footer(&self) -> &EncryptionFooter {
        &self.footer
    }

    /// Hidden-volume index a password would select (does not verify it).
    pub fn volume_index_for(&self, password: &str) -> u32 {
        self.footer.hidden_volume_index(password, self.config.num_volumes)
    }

    /// The raw userdata device this MobiCeal instance sits on (what the
    /// adversary images at a checkpoint).
    pub fn disk(&self) -> &SharedDevice {
        &self.disk
    }
}

/// An unlocked, decrypted view of a volume: what gets mounted at `/data`.
///
/// Block 0 of the underlying thin volume is the (encrypted) header, so this
/// device exposes blocks `1..` shifted down by one.
#[derive(Clone)]
pub struct UnlockedVolume {
    inner: Arc<dyn BlockDevice>,
    /// The typed cache handle when the volume is cached (`inner` then
    /// points at the same object), for stats and explicit flushes.
    cache: Option<Arc<VolumeCache>>,
    role: VolumeRole,
    volume_id: u32,
    data_blocks: u64,
}

impl std::fmt::Debug for UnlockedVolume {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UnlockedVolume")
            .field("role", &self.role)
            .field("volume_id", &self.volume_id)
            .finish_non_exhaustive()
    }
}

impl UnlockedVolume {
    /// The role the user unlocked this volume as.
    pub fn role(&self) -> VolumeRole {
        self.role
    }

    /// The thin-volume id backing this session.
    pub fn volume_id(&self) -> u32 {
        self.volume_id
    }

    /// Whether a write-back cache sits on top of this volume.
    pub fn is_cached(&self) -> bool {
        self.cache.is_some()
    }

    /// Cache counters, when the volume is cached.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Dirty blocks waiting in this volume's cache (0 when uncached).
    pub fn cache_dirty_blocks(&self) -> usize {
        self.cache.as_ref().map_or(0, |c| c.dirty_blocks())
    }
}

impl BlockDevice for UnlockedVolume {
    fn num_blocks(&self) -> u64 {
        self.data_blocks
    }

    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn read_block(&self, index: BlockIndex) -> Result<Vec<u8>, BlockDeviceError> {
        self.check_index(index)?;
        self.inner.read_block(index + 1)
    }

    fn write_block(&self, index: BlockIndex, data: &[u8]) -> Result<(), BlockDeviceError> {
        self.check_index(index)?;
        self.inner.write_block(index + 1, data)
    }

    /// Batched read: shifts the whole batch past the header block and
    /// forwards it as one vectored read down the dm-crypt → PDE → thin
    /// pipeline (prefix-then-error on a bad index, like the sequential
    /// loop).
    fn read_blocks(&self, indices: &[BlockIndex]) -> Result<Vec<Vec<u8>>, BlockDeviceError> {
        mobiceal_blockdev::read_blocks_remapped(&self.inner, indices, self.data_blocks, |i| i + 1)
    }

    /// Batched write: shifts the whole batch past the header block and
    /// forwards it as one vectored write down the dm-crypt → PDE → thin
    /// pipeline (prefix-then-error on a bad index, like the sequential
    /// loop).
    fn write_blocks(&self, writes: &[(BlockIndex, &[u8])]) -> Result<(), BlockDeviceError> {
        mobiceal_blockdev::write_blocks_remapped(&self.inner, writes, self.data_blocks, |i| i + 1)
    }

    fn flush(&self) -> Result<(), BlockDeviceError> {
        self.inner.flush()
    }

    fn host_queue_enter(&self) {
        self.inner.host_queue_enter();
    }

    fn host_queue_leave(&self) {
        self.inner.host_queue_leave();
    }
}

/// Builds the encrypted header block proving knowledge of `password`
/// (the "encrypted password at the beginning of Vk", §V-B).
fn header_block(key: &[u8; 32], password: &str, block_size: usize) -> Vec<u8> {
    let mut plain = vec![0u8; block_size];
    plain[..8].copy_from_slice(HEADER_MAGIC);
    let pwd = password.as_bytes();
    let len = pwd.len().min(255);
    plain[8] = len as u8;
    plain[9..9 + len].copy_from_slice(&pwd[..len]);
    let cipher = CbcEssiv::with_essiv_key(Aes256::new(key), &mobiceal_crypto::sha256(key));
    cipher.encrypt_sector_in_place(0, &mut plain);
    plain
}

/// Verifies a candidate password against a volume's header block.
fn verify_header(
    vol: &mobiceal_thinp::ThinVolume,
    key: &[u8; 32],
    password: &str,
    block_size: usize,
) -> Result<(), MobiCealError> {
    let stored = vol.read_block(0)?;
    let expected = header_block(key, password, block_size);
    if mobiceal_crypto::ct_eq(&stored, &expected) {
        Ok(())
    } else {
        Err(MobiCealError::BadPassword)
    }
}

fn write_footer(
    disk: &SharedDevice,
    layout: &DeviceLayout,
    footer: &EncryptionFooter,
) -> Result<(), MobiCealError> {
    let bytes = footer.to_bytes();
    let bs = layout.block_size;
    let blocks: Vec<Vec<u8>> = (0..layout.footer_blocks)
        .map(|i| {
            let mut block = vec![0u8; bs];
            let lo = i as usize * bs;
            if lo < bytes.len() {
                let hi = (lo + bs).min(bytes.len());
                block[..hi - lo].copy_from_slice(&bytes[lo..hi]);
            }
            block
        })
        .collect();
    let writes: Vec<(BlockIndex, &[u8])> = blocks
        .iter()
        .enumerate()
        .map(|(i, block)| (layout.footer_start() + i as u64, block.as_slice()))
        .collect();
    disk.write_blocks(&writes)?;
    Ok(())
}

fn read_footer(
    disk: &SharedDevice,
    layout: &DeviceLayout,
) -> Result<EncryptionFooter, MobiCealError> {
    let indices: Vec<BlockIndex> =
        (0..layout.footer_blocks).map(|i| layout.footer_start() + i).collect();
    let mut bytes = Vec::with_capacity((layout.footer_blocks as usize) * layout.block_size);
    for block in disk.read_blocks(&indices)? {
        bytes.extend_from_slice(&block);
    }
    EncryptionFooter::from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobiceal_blockdev::MemDisk;

    fn fast_config() -> MobiCealConfig {
        MobiCealConfig {
            num_volumes: 5,
            pbkdf2_iterations: 4,
            metadata_blocks: 64,
            ..MobiCealConfig::default()
        }
    }

    fn fresh_device(seed: u64) -> (Arc<MemDisk>, SimClock, MobiCeal) {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(4096, 4096, clock.clone()));
        let mc = MobiCeal::initialize(
            disk.clone(),
            clock.clone(),
            fast_config(),
            "decoy",
            &["hidden-a", "hidden-b"],
            seed,
        )
        .unwrap();
        (disk, clock, mc)
    }

    #[test]
    fn initialize_and_unlock_both_roles() {
        let (_disk, _clock, mc) = fresh_device(1);
        let public = mc.unlock_public("decoy").unwrap();
        assert_eq!(public.role(), VolumeRole::Public);
        assert_eq!(public.volume_id(), 1);
        let hidden = mc.unlock_hidden("hidden-a").unwrap();
        assert_eq!(hidden.role(), VolumeRole::Hidden);
        assert!((2..=5).contains(&hidden.volume_id()));
    }

    #[test]
    fn wrong_passwords_rejected() {
        let (_disk, _clock, mc) = fresh_device(2);
        assert_eq!(mc.unlock_public("wrong").unwrap_err(), MobiCealError::BadPassword);
        assert_eq!(mc.unlock_hidden("wrong").unwrap_err(), MobiCealError::BadPassword);
        // The decoy password is not a hidden password.
        assert_eq!(mc.unlock_hidden("decoy").unwrap_err(), MobiCealError::BadPassword);
        // Hidden passwords do not open the public volume.
        assert_eq!(mc.unlock_public("hidden-a").unwrap_err(), MobiCealError::BadPassword);
    }

    #[test]
    fn public_and_hidden_data_are_isolated_and_durable() {
        let (disk, clock, mc) = fresh_device(3);
        let public = mc.unlock_public("decoy").unwrap();
        public.write_block(10, &vec![0xAA; 4096]).unwrap();
        let hidden = mc.unlock_hidden("hidden-b").unwrap();
        hidden.write_block(10, &vec![0xBB; 4096]).unwrap();
        assert_eq!(public.read_block(10).unwrap(), vec![0xAA; 4096]);
        assert_eq!(hidden.read_block(10).unwrap(), vec![0xBB; 4096]);
        mc.commit().unwrap();
        drop((public, hidden, mc));

        // Reboot.
        let mc2 = MobiCeal::open(disk, clock, fast_config(), 99).unwrap();
        let public = mc2.unlock_public("decoy").unwrap();
        let hidden = mc2.unlock_hidden("hidden-b").unwrap();
        assert_eq!(public.read_block(10).unwrap(), vec![0xAA; 4096]);
        assert_eq!(hidden.read_block(10).unwrap(), vec![0xBB; 4096]);
    }

    #[test]
    fn hidden_passwords_map_to_distinct_volumes() {
        let (_disk, _clock, mc) = fresh_device(4);
        let ka = mc.unlock_hidden("hidden-a").unwrap().volume_id();
        let kb = mc.unlock_hidden("hidden-b").unwrap().volume_id();
        assert_ne!(ka, kb);
    }

    #[test]
    fn all_nonpublic_volumes_have_identical_mapping_footprint_at_init() {
        // Right after initialization every non-public volume has exactly one
        // mapped block (its header/noise), so nothing singles out hidden
        // volumes.
        let (_disk, _clock, mc) = fresh_device(5);
        let view = mc.metadata_view();
        for v in 2..=5 {
            assert_eq!(view.mapped_blocks(v), 1, "volume {v}");
        }
        assert_eq!(view.mapped_blocks(1), 1);
    }

    #[test]
    fn public_writes_generate_dummy_traffic() {
        let (_disk, _clock, mc) = fresh_device(6);
        let public = mc.unlock_public("decoy").unwrap();
        for i in 0..400 {
            public.write_block(i, &vec![1u8; 4096]).unwrap();
        }
        let stats = mc.dummy_stats();
        assert_eq!(stats.trigger_checks, 400);
        assert!(stats.bursts > 0, "with 400 allocations some bursts must fire");
        assert!(stats.blocks_written > 0);
    }

    #[test]
    fn hidden_writes_do_not_trigger_dummies() {
        let (_disk, _clock, mc) = fresh_device(7);
        let hidden = mc.unlock_hidden("hidden-a").unwrap();
        for i in 0..100 {
            hidden.write_block(i, &vec![2u8; 4096]).unwrap();
        }
        assert_eq!(mc.dummy_stats().trigger_checks, 0);
    }

    #[test]
    fn on_disk_blocks_are_ciphertext() {
        let (disk, _clock, mc) = fresh_device(8);
        let public = mc.unlock_public("decoy").unwrap();
        public.write_block(0, &vec![0u8; 4096]).unwrap(); // all-zero plaintext
        let snap = disk.snapshot();
        // Every non-zero block on the device must look like randomness
        // (entropy near 8 bits/byte) — data, headers, and noise alike.
        let mut checked = 0;
        for b in mc.layout().metadata_blocks..mc.layout().footer_start() {
            if !snap.is_zero_block(b) {
                let h = snap.block_entropy(b);
                assert!(h > 7.0, "block {b} entropy {h}");
                checked += 1;
            }
        }
        assert!(checked >= 6, "expected several ciphertext blocks, saw {checked}");
    }

    #[test]
    fn open_uninitialized_disk_fails_cleanly() {
        let clock = SimClock::new();
        let blank: Arc<MemDisk> = Arc::new(MemDisk::new(4096, 4096, clock.clone()));
        assert!(matches!(
            MobiCeal::open(blank, clock, fast_config(), 0),
            Err(MobiCealError::NotInitialized { .. })
        ));
    }

    #[test]
    fn too_small_disk_rejected() {
        let clock = SimClock::new();
        let tiny: Arc<MemDisk> = Arc::new(MemDisk::new(64, 4096, clock.clone()));
        assert!(matches!(
            MobiCeal::initialize(tiny, clock, fast_config(), "d", &[], 0),
            Err(MobiCealError::DiskTooSmall { .. })
        ));
    }

    #[test]
    fn too_many_hidden_passwords_rejected() {
        let clock = SimClock::new();
        let disk: Arc<MemDisk> = Arc::new(MemDisk::new(4096, 4096, clock.clone()));
        let pwds: Vec<&str> = vec!["a", "b", "c", "d"]; // n=5 allows at most 3
        assert!(matches!(
            MobiCeal::initialize(disk, clock, fast_config(), "decoy", &pwds, 0),
            Err(MobiCealError::BadConfig { .. })
        ));
    }

    #[test]
    fn unlocked_volume_respects_geometry() {
        let (_disk, _clock, mc) = fresh_device(9);
        let public = mc.unlock_public("decoy").unwrap();
        assert_eq!(public.block_size(), 4096);
        assert!(public.num_blocks() > 0);
        assert!(public.read_block(public.num_blocks()).is_err());
        assert!(public.flush().is_ok());
    }

    #[test]
    fn batched_unlocked_io_roundtrips_through_the_full_stack() {
        let (_disk, _clock, mc) = fresh_device(11);
        let public = mc.unlock_public("decoy").unwrap();
        let blocks: Vec<(u64, Vec<u8>)> =
            (0..64u64).map(|i| (i * 2, vec![(i % 251) as u8; 4096])).collect();
        let batch: Vec<(u64, &[u8])> = blocks.iter().map(|(b, d)| (*b, d.as_slice())).collect();
        public.write_blocks(&batch).unwrap();
        let indices: Vec<u64> = blocks.iter().map(|(b, _)| *b).collect();
        let bufs = public.read_blocks(&indices).unwrap();
        for ((_, expect), got) in blocks.iter().zip(&bufs) {
            assert_eq!(expect, got);
        }
        // The batch triggered the dummy hook once per fresh allocation.
        assert_eq!(mc.dummy_stats().trigger_checks, 64);
        // Out-of-range mid-batch: prefix persists, error surfaces.
        let end = public.num_blocks();
        let d = vec![9u8; 4096];
        assert!(matches!(
            public.write_blocks(&[(1, d.as_slice()), (end, d.as_slice())]),
            Err(BlockDeviceError::OutOfRange { .. })
        ));
        assert_eq!(public.read_block(1).unwrap(), d);
        // Hidden volumes ride the same vectored pipeline.
        let hidden = mc.unlock_hidden("hidden-a").unwrap();
        hidden.write_blocks(&batch).unwrap();
        assert_eq!(hidden.read_blocks(&[0]).unwrap()[0], blocks[0].1);
    }

    #[test]
    fn crypt_parallelism_knob_round_trips_and_is_output_identical() {
        // The same batched workload through a forced-parallel stack and a
        // forced-sequential stack must leave identical media and identical
        // simulated clocks: the knob only changes host wall-clock behavior.
        let run = |parallelism: Option<(usize, usize)>| {
            let clock = SimClock::new();
            let disk = Arc::new(MemDisk::new(4096, 4096, clock.clone()));
            let config = MobiCealConfig { crypt_parallelism: parallelism, ..fast_config() };
            let mc = MobiCeal::initialize(
                disk.clone(),
                clock.clone(),
                config.clone(),
                "decoy",
                &["hidden-a"],
                77,
            )
            .unwrap();
            assert_eq!(mc.config(), &config, "config round-trips through the device");
            let public = mc.unlock_public("decoy").unwrap();
            let blocks: Vec<(u64, Vec<u8>)> =
                (0..32u64).map(|i| (i, vec![(i % 251) as u8; 4096])).collect();
            let batch: Vec<(u64, &[u8])> = blocks.iter().map(|(b, d)| (*b, d.as_slice())).collect();
            public.write_blocks(&batch).unwrap();
            let indices: Vec<u64> = blocks.iter().map(|(b, _)| *b).collect();
            let plain = public.read_blocks(&indices).unwrap();
            (disk.snapshot(), clock.now(), plain)
        };
        let (snap_par, t_par, plain_par) = run(Some((4, 2)));
        let (snap_seq, t_seq, plain_seq) = run(Some((1, 2)));
        let (snap_dflt, t_dflt, plain_dflt) = run(None);
        assert_eq!(snap_par.as_bytes(), snap_seq.as_bytes(), "media bit-identical");
        assert_eq!(snap_par.as_bytes(), snap_dflt.as_bytes());
        assert_eq!(t_par, t_seq, "simulated clocks identical");
        assert_eq!(t_par, t_dflt);
        assert_eq!(plain_par, plain_seq);
        assert_eq!(plain_par, plain_dflt);
    }

    #[test]
    fn cached_unlocked_volume_matches_uncached_and_flushes_on_commit() {
        // The cache must change *when* data lands, never *what* lands: the
        // plaintext view after a commit is identical with the cache on or
        // off, and commit leaves no dirty blocks behind.
        let run = |cache_blocks: usize| {
            let clock = SimClock::new();
            let disk = Arc::new(MemDisk::new(4096, 4096, clock.clone()));
            let config =
                MobiCealConfig { cache_blocks, cache_shards: 4, copier_depth: 4, ..fast_config() };
            let mc = MobiCeal::initialize(disk, clock, config, "decoy", &["hidden-a"], 21).unwrap();
            let public = mc.unlock_public("decoy").unwrap();
            for i in 0..64u64 {
                public.write_block(i, &vec![(i % 251) as u8; 4096]).unwrap();
            }
            let dirty_before = public.cache_dirty_blocks();
            mc.commit().unwrap();
            let plain: Vec<_> = (0..64u64).map(|i| public.read_block(i).unwrap()).collect();
            (plain, public.is_cached(), dirty_before, public.cache_dirty_blocks())
        };
        let (cached_plain, is_cached, dirty_before, dirty_after) = run(128);
        assert!(is_cached);
        assert_eq!(dirty_before, 64, "foreground writes are absorbed, not forwarded");
        assert_eq!(dirty_after, 0, "commit must flush the cache first");
        let (direct_plain, uncached_flag, _, _) = run(0);
        assert!(!uncached_flag);
        assert_eq!(cached_plain, direct_plain);
    }

    #[test]
    fn no_hidden_passwords_is_plain_encryption_mode() {
        // §IV-B "User Steps": encryption without deniability still creates
        // dummy volumes so the layout is uniform.
        let clock = SimClock::new();
        let disk: Arc<MemDisk> = Arc::new(MemDisk::new(4096, 4096, clock.clone()));
        let mc = MobiCeal::initialize(disk, clock, fast_config(), "only-pwd", &[], 10).unwrap();
        let public = mc.unlock_public("only-pwd").unwrap();
        public.write_block(0, &vec![3u8; 4096]).unwrap();
        assert_eq!(public.read_block(0).unwrap(), vec![3u8; 4096]);
        let view = mc.metadata_view();
        for v in 2..=5 {
            assert!(
                view.mapped_blocks(v) >= 1,
                "dummy volume {v} must keep at least its noise header"
            );
        }
    }
}
