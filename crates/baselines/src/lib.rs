//! Comparator systems the paper evaluates MobiCeal against.
//!
//! Table I, Table II, Fig. 4 and the related-work analysis all compare
//! MobiCeal with running systems, so this crate implements each of them at
//! the block layer:
//!
//! * [`AndroidFde`] — stock Android full-disk encryption (§II-A): dm-crypt
//!   over the whole userdata partition, no deniability. The baseline of
//!   Fig. 4 and the "Android FDE" row of Table II.
//! * [`MobiPluto`] — a MobiPluto/Mobiflage-class *static* hidden-volume
//!   system (§VII-A): disk pre-filled with randomness, sequential public
//!   allocation, hidden data at key-derived offsets. Deniable against one
//!   snapshot; broken by snapshot differencing (§IV-A) — the property the
//!   security-game experiment demonstrates.
//! * [`HiveWoOram`] — HIVE's write-only ORAM (§VII-B): every logical write
//!   rewrites `k = 3` uniformly random physical blocks plus position-map
//!   and stash state, with a sync per write. Multi-snapshot secure but
//!   crushingly slow (the ≥ 99 % overhead row of Table I).
//! * [`DefyLite`] — a DEFY-class log-structured deniable store (§VII-B):
//!   all writes are appends encrypted under per-epoch chained keys, with
//!   log cleaning. Reproduces DEFY's ~94 % overhead regime in its original
//!   (RAM-disk) test environment.
//! * [`worlds`] — adapters plugging MobiCeal and the baselines into the
//!   empirical multi-snapshot security game of `mobiceal-adversary`.

#![forbid(unsafe_code)]

mod defy;
mod fde;
mod hive;
mod mobipluto;
mod persist;
pub mod worlds;

pub use defy::DefyLite;
pub use fde::AndroidFde;
pub use hive::HiveWoOram;
pub use mobipluto::MobiPluto;
pub use persist::StateJournal;
