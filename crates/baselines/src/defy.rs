//! A DEFY-class log-structured deniable store (Peters et al., NDSS 2015).
//!
//! DEFY rides YAFFS's log-structured, all-writes-are-appends design and
//! adds per-write encryption under chained keys with secure deletion. The
//! cost profile Table I captures (≈ 94 % overhead *on a RAM-disk*, where
//! the medium is nearly free) is dominated by the extra cryptography on
//! every page write: key-chain derivation, KDM-style re-encryption, and
//! authenticated metadata.
//!
//! `DefyLite` reproduces that regime: an append-only log with logical→log
//! mapping, per-append key-chain hashing plus a double AES pass, per-append
//! metadata write, and stop-the-world log cleaning when the log fills.
//!
//! The log is driven *vectored*: a `write_blocks` batch lands each
//! contiguous head run as one sequential extent (one multi-block command on
//! an amortizing device), and cleaning reads every live block in one
//! vectored relocation pass before rewriting the compacted front as a
//! second. Reading everything before writing anything also fixes a latent
//! read-after-overwrite hazard of the incremental cleaning loop: when a
//! live block's old log position lay inside the compacted front, the
//! one-block-at-a-time loop could overwrite it under the new epoch key
//! before relocating it, corrupting the block. Log head and mapping commit
//! only after an extent has landed, so a mid-batch device error never
//! advances the head past what is on the medium.

use crate::persist::{map_to_ops, StateJournal};
use mobiceal_blockdev::{BlockDevice, BlockDeviceError, BlockIndex, SharedDevice};
use mobiceal_crypto::{sha256, Aes256, CbcEssiv, SectorCipher};
use mobiceal_sim::{CpuCostModel, SimClock};
use mobiceal_thinp::DeltaOp;
use parking_lot::Mutex;

/// State-journal register ids (see [`DefyLite::commit`]).
const REG_HEAD: u32 = 0;
const REG_EPOCH: u32 = 1;
const REG_CLEANINGS: u32 = 2;

struct DefyState {
    /// logical → log position of the current version.
    map: Vec<Option<u64>>,
    /// log position → logical for live entries.
    inverse: Vec<Option<u64>>,
    /// Next append position.
    head: u64,
    /// Epoch counter (bumped by cleaning; models DEFY's secure-deletion
    /// epochs).
    epoch: u64,
    /// Current epoch key (chained by hashing).
    epoch_key: [u8; 32],
    cleanings: u64,
}

/// The DEFY-like log-structured deniable store. See the module docs.
pub struct DefyLite {
    dev: SharedDevice,
    clock: SimClock,
    cpu: CpuCostModel,
    n_logical: u64,
    log_blocks: u64,
    state: Mutex<DefyState>,
}

impl std::fmt::Debug for DefyLite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DefyLite").field("n_logical", &self.n_logical).finish_non_exhaustive()
    }
}

impl DefyLite {
    /// Builds a store exposing `n_logical` blocks over `dev`, which must be
    /// at least twice as large (cleaning headroom).
    ///
    /// # Errors
    ///
    /// [`BlockDeviceError::OutOfRange`] if the device is too small.
    pub fn new(
        dev: SharedDevice,
        clock: SimClock,
        n_logical: u64,
        root_key: [u8; 32],
    ) -> Result<Self, BlockDeviceError> {
        let log_blocks = dev.num_blocks();
        if log_blocks < 2 * n_logical {
            return Err(BlockDeviceError::OutOfRange {
                index: 2 * n_logical,
                num_blocks: log_blocks,
            });
        }
        Ok(DefyLite {
            dev,
            clock,
            // DEFY's testbed runs the cipher stack synchronously on a
            // single-processor PC (no DMA overlap).
            cpu: CpuCostModel::pc_singlecore(),
            n_logical,
            log_blocks,
            state: Mutex::new(DefyState {
                map: vec![None; n_logical as usize],
                inverse: vec![None; log_blocks as usize],
                head: 0,
                epoch: 0,
                epoch_key: root_key,
                cleanings: 0,
            }),
        })
    }

    /// Log-cleaning passes performed so far.
    pub fn cleanings(&self) -> u64 {
        self.state.lock().cleanings
    }

    /// Fraction of the log consumed so far (`head / log capacity`).
    pub fn log_occupancy(&self) -> f64 {
        self.state.lock().head as f64 / self.log_blocks as f64
    }

    /// Whether the log has filled past `watermark` (a fraction in `[0, 1]`)
    /// — the trigger for scheduling a proactive clean on a background
    /// [`Copier`](mobiceal_blockdev::Copier) before the foreground write
    /// path hits the inline stop-the-world clean in `write_blocks`.
    pub fn needs_cleaning(&self, watermark: f64) -> bool {
        self.log_occupancy() >= watermark
    }

    /// Runs one cleaning pass immediately, returning the number of live
    /// blocks relocated. This is the entry point for background cleaning:
    /// a copier job calls it between foreground bursts so writes never
    /// stall on a full log.
    pub fn clean_now(&self) -> Result<u64, BlockDeviceError> {
        let mut state = self.state.lock();
        let live = state.map.iter().filter(|m| m.is_some()).count() as u64;
        self.clean(&mut state)?;
        Ok(live)
    }

    fn cipher_for(key: &[u8; 32]) -> CbcEssiv<Aes256> {
        CbcEssiv::with_essiv_key(Aes256::new(key), &sha256(key))
    }

    /// DEFY's per-write cryptographic tax: key-chain hash derivations plus
    /// a KDM-style double encryption pass.
    fn charge_crypto(&self, bytes: usize) {
        self.clock.advance(self.cpu.hash_cost() * 3);
        self.clock.advance(self.cpu.aes_cost(bytes) * 2);
    }

    /// Compacts live entries to the front of the log under a fresh epoch
    /// key (secure deletion of stale versions).
    ///
    /// The relocation is fully vectored: one read batch of every live
    /// block, then one sequential write extent for the compacted front.
    /// Reading everything first (instead of interleaving) means a block
    /// whose old position lies inside the new front is relocated from its
    /// pre-compaction content, never from a slot the pass already rewrote.
    /// The epoch key, mapping and head commit only after the extent lands;
    /// a failed cleaning pass leaves the store on the old epoch (blocks
    /// whose old position was inside the landed prefix are lost to the
    /// overwrite, as in any interrupted secure-deletion pass).
    fn clean(&self, state: &mut DefyState) -> Result<(), BlockDeviceError> {
        let old_cipher = Self::cipher_for(&state.epoch_key);
        let new_key = sha256(&state.epoch_key);
        self.clock.advance(self.cpu.hash_cost());
        let new_cipher = Self::cipher_for(&new_key);

        let live: Vec<(u64, u64)> = state
            .map
            .iter()
            .enumerate()
            .filter_map(|(l, pos)| pos.map(|p| (l as u64, p)))
            .collect();
        // One vectored relocation read of every live block.
        let old_positions: Vec<u64> = live.iter().map(|&(_, p)| p).collect();
        let mut bufs = self.dev.read_blocks(&old_positions)?;
        for (new_pos, ((_, old_pos), buf)) in live.iter().zip(bufs.iter_mut()).enumerate() {
            self.charge_crypto(buf.len());
            old_cipher.decrypt_sector_in_place(*old_pos, buf);
            new_cipher.encrypt_sector_in_place(new_pos as u64, buf);
        }
        // One sequential extent for the compacted front.
        let writes: Vec<(u64, &[u8])> =
            bufs.iter().enumerate().map(|(i, b)| (i as u64, b.as_slice())).collect();
        self.dev.write_blocks(&writes)?;

        state.epoch += 1;
        state.epoch_key = new_key;
        state.inverse.fill(None);
        for (new_pos, &(logical, _)) in live.iter().enumerate() {
            state.map[logical as usize] = Some(new_pos as u64);
            state.inverse[new_pos] = Some(logical);
        }
        state.head = live.len() as u64;
        state.cleanings += 1;
        self.dev.flush()
    }

    /// Persists the store's committed state into `journal` as one
    /// [`StateJournal`] transaction: the log head, epoch and cleaning
    /// counters ride [`DeltaOp::Register`]s and the position map rides
    /// run-length [`DeltaOp::SetMapping`] extents. Returns the committed
    /// transaction id.
    ///
    /// The log itself is flushed first, so the journaled state never names
    /// log positions that are not on the medium.
    ///
    /// # Errors
    ///
    /// Device errors from the flush or the journal commit.
    pub fn commit(&self, journal: &StateJournal) -> Result<u64, BlockDeviceError> {
        self.dev.flush()?;
        let state = self.state.lock();
        let mut ops = vec![
            DeltaOp::Register { key: REG_HEAD, value: state.head },
            DeltaOp::Register { key: REG_EPOCH, value: state.epoch },
            DeltaOp::Register { key: REG_CLEANINGS, value: state.cleanings },
        ];
        map_to_ops(&state.map, &mut ops);
        journal.commit(ops)
    }

    /// Remounts a store from the state last committed to `journal`. A fresh
    /// journal (nothing ever committed) yields an empty store, like
    /// [`DefyLite::new`].
    ///
    /// Key-chain rederivation is charged per epoch: recovery replays the
    /// same hash chain regardless of what the log contains, so remount cost
    /// depends only on the committed counters.
    ///
    /// # Errors
    ///
    /// [`BlockDeviceError::CorruptMetadata`] if the journaled state is
    /// internally inconsistent (missing registers, out-of-range or
    /// double-mapped log positions, mappings beyond the head).
    pub fn open(
        dev: SharedDevice,
        journal: &StateJournal,
        clock: SimClock,
        n_logical: u64,
        root_key: [u8; 32],
    ) -> Result<Self, BlockDeviceError> {
        let store = Self::new(dev, clock, n_logical, root_key)?;
        let Some((_txid, ops)) = journal.load()? else {
            return Ok(store);
        };
        let corrupt = |detail: String| BlockDeviceError::CorruptMetadata { detail };
        let mut state = store.state.lock();
        let mut regs: [Option<u64>; 3] = [None; 3];
        for op in ops {
            match op {
                DeltaOp::Register { key, value } if (key as usize) < regs.len() => {
                    regs[key as usize] = Some(value);
                }
                DeltaOp::SetMapping { id: 0, extent } => {
                    let virt_end = extent.virt_begin.checked_add(extent.len);
                    let data_end = extent.data_begin.checked_add(extent.len);
                    if virt_end.is_none_or(|e| e > n_logical)
                        || data_end.is_none_or(|e| e > store.log_blocks)
                    {
                        return Err(corrupt("defy mapping extent out of range".into()));
                    }
                    for i in 0..extent.len {
                        let logical = (extent.virt_begin + i) as usize;
                        let pos = extent.data_begin + i;
                        if state.inverse[pos as usize].is_some() || state.map[logical].is_some() {
                            return Err(corrupt(format!("defy log position {pos} mapped twice")));
                        }
                        state.map[logical] = Some(pos);
                        state.inverse[pos as usize] = Some(logical as u64);
                    }
                }
                other => return Err(corrupt(format!("unexpected defy journal op {other:?}"))),
            }
        }
        let (Some(head), Some(epoch), Some(cleanings)) = (regs[0], regs[1], regs[2]) else {
            return Err(corrupt("defy journal missing a register".into()));
        };
        if head > store.log_blocks {
            return Err(corrupt("defy log head out of range".into()));
        }
        if state.inverse[head as usize..].iter().any(|slot| slot.is_some()) {
            return Err(corrupt("defy mapping beyond the log head".into()));
        }
        state.head = head;
        state.epoch = epoch;
        state.cleanings = cleanings;
        for _ in 0..epoch {
            state.epoch_key = sha256(&state.epoch_key);
            store.clock.advance(store.cpu.hash_cost());
        }
        drop(state);
        Ok(store)
    }

    /// Encrypts and lands `run` as one contiguous extent at the current
    /// head, committing head and mapping only after the extent is on the
    /// medium. The caller guarantees the run fits before the log end.
    fn append_run(
        &self,
        state: &mut DefyState,
        run: &[(BlockIndex, &[u8])],
    ) -> Result<(), BlockDeviceError> {
        let base = state.head;
        let cipher = Self::cipher_for(&state.epoch_key);
        let mut payloads: Vec<(u64, Vec<u8>)> = Vec::with_capacity(run.len());
        for (i, &(_, data)) in run.iter().enumerate() {
            self.charge_crypto(data.len());
            let pos = base + i as u64;
            let mut ct = data.to_vec();
            cipher.encrypt_sector_in_place(pos, &mut ct);
            payloads.push((pos, ct));
        }
        let extent: Vec<(u64, &[u8])> = payloads.iter().map(|(p, d)| (*p, d.as_slice())).collect();
        // Land the whole run before advancing any state: on a mid-extent
        // device error the head and mapping stay put (the landed prefix is
        // on the medium but unreferenced) and the run can be retried.
        self.dev.write_blocks(&extent)?;
        for (i, &(logical, _)) in run.iter().enumerate() {
            let pos = base + i as u64;
            if let Some(old) = state.map[logical as usize].replace(pos) {
                state.inverse[old as usize] = None;
            }
            state.inverse[pos as usize] = Some(logical);
        }
        state.head = base + run.len() as u64;
        Ok(())
    }
}

impl BlockDevice for DefyLite {
    fn num_blocks(&self) -> u64 {
        self.n_logical
    }

    fn block_size(&self) -> usize {
        self.dev.block_size()
    }

    fn read_block(&self, index: BlockIndex) -> Result<Vec<u8>, BlockDeviceError> {
        self.check_index(index)?;
        let (pos, key) = {
            let state = self.state.lock();
            (state.map[index as usize], state.epoch_key)
        };
        match pos {
            Some(p) => {
                let mut buf = self.dev.read_block(p)?;
                self.charge_crypto(buf.len());
                Self::cipher_for(&key).decrypt_sector_in_place(p, &mut buf);
                Ok(buf)
            }
            None => Ok(vec![0u8; self.dev.block_size()]),
        }
    }

    fn write_block(&self, index: BlockIndex, data: &[u8]) -> Result<(), BlockDeviceError> {
        self.write_blocks(&[(index, data)])
    }

    /// Batched write: appends land as contiguous head runs, each one
    /// vectored sequential extent (split only where the log fills and a
    /// cleaning pass compacts it). Mapping tags live inline with the chunk
    /// (YAFFS keeps them in the page's OOB area), so no separate metadata
    /// write is needed. Head and mapping advance per landed extent, never
    /// past a mid-extent device error (see [`DefyLite::append_run`]);
    /// geometry errors fail the whole batch before anything lands.
    fn write_blocks(&self, writes: &[(BlockIndex, &[u8])]) -> Result<(), BlockDeviceError> {
        for &(index, data) in writes {
            self.check_index(index)?;
            self.check_buffer(data)?;
        }
        let mut state = self.state.lock();
        let mut rest = writes;
        while !rest.is_empty() {
            if state.head >= self.log_blocks {
                self.clean(&mut state)?;
                if state.head >= self.log_blocks {
                    return Err(BlockDeviceError::NoSpace);
                }
            }
            let room = (self.log_blocks - state.head) as usize;
            let take = rest.len().min(room);
            let (run, tail) = rest.split_at(take);
            self.append_run(&mut state, run)?;
            rest = tail;
        }
        Ok(())
    }

    /// Batched read: resolves every index through the mapping, then
    /// fetches all mapped log positions in one vectored read (an
    /// out-of-range index fails after the valid prefix is served, like the
    /// sequential loop).
    fn read_blocks(&self, indices: &[BlockIndex]) -> Result<Vec<Vec<u8>>, BlockDeviceError> {
        let bad = indices.iter().position(|&i| i >= self.n_logical);
        let valid = &indices[..bad.unwrap_or(indices.len())];
        let (resolved, key) = {
            let state = self.state.lock();
            let resolved: Vec<Option<u64>> = valid.iter().map(|&i| state.map[i as usize]).collect();
            (resolved, state.epoch_key)
        };
        let fetch: Vec<(usize, u64)> =
            resolved.iter().enumerate().filter_map(|(i, pos)| pos.map(|p| (i, p))).collect();
        let positions: Vec<u64> = fetch.iter().map(|&(_, p)| p).collect();
        let bufs = self.dev.read_blocks(&positions)?;
        let cipher = Self::cipher_for(&key);
        let mut out: Vec<Option<Vec<u8>>> = vec![None; resolved.len()];
        for (&(i, p), mut buf) in fetch.iter().zip(bufs) {
            self.charge_crypto(buf.len());
            cipher.decrypt_sector_in_place(p, &mut buf);
            out[i] = Some(buf);
        }
        // Unmapped blocks read zero; only they allocate a fresh buffer.
        let out: Vec<Vec<u8>> = out
            .into_iter()
            .map(|b| b.unwrap_or_else(|| vec![0u8; self.dev.block_size()]))
            .collect();
        match bad {
            Some(pos) => Err(BlockDeviceError::OutOfRange {
                index: indices[pos],
                num_blocks: self.n_logical,
            }),
            None => Ok(out),
        }
    }

    fn flush(&self) -> Result<(), BlockDeviceError> {
        self.dev.flush()
    }

    fn host_queue_enter(&self) {
        self.dev.host_queue_enter();
    }

    fn host_queue_leave(&self) {
        self.dev.host_queue_leave();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobiceal_blockdev::MemDisk;
    use mobiceal_sim::EmmcCostModel;
    use std::sync::Arc;

    fn store(blocks: u64, logical: u64) -> (Arc<MemDisk>, DefyLite, SimClock) {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::with_cost_model(
            blocks,
            4096,
            clock.clone(),
            Arc::new(EmmcCostModel::nandsim_ramdisk()),
        ));
        let defy = DefyLite::new(disk.clone(), clock.clone(), logical, [5u8; 32]).unwrap();
        (disk, defy, clock)
    }

    #[test]
    fn roundtrip_and_overwrite() {
        let (_disk, defy, _clock) = store(256, 64);
        defy.write_block(3, &vec![1u8; 4096]).unwrap();
        defy.write_block(3, &vec![2u8; 4096]).unwrap();
        assert_eq!(defy.read_block(3).unwrap(), vec![2u8; 4096]);
        assert_eq!(defy.read_block(4).unwrap(), vec![0u8; 4096]);
    }

    #[test]
    fn cleaning_preserves_data_and_rotates_epoch() {
        let (_disk, defy, _clock) = store(256, 64);
        // 256 log slots: enough churn to force cleaning.
        for round in 0..6u64 {
            for l in 0..64u64 {
                defy.write_block(l, &vec![(round * 64 + l) as u8; 4096]).unwrap();
            }
        }
        assert!(defy.cleanings() >= 1, "log must have been cleaned");
        for l in 0..64u64 {
            assert_eq!(defy.read_block(l).unwrap(), vec![(5 * 64 + l) as u8; 4096], "block {l}");
        }
    }

    #[test]
    fn all_writes_are_appends() {
        let (disk, defy, _clock) = store(256, 64);
        disk.reset_stats();
        for l in 0..32u64 {
            defy.write_block(l, &vec![7u8; 4096]).unwrap();
        }
        let s = disk.stats();
        assert!(s.seq_writes.ops >= 31, "appends should be device-sequential: {s:?}");
    }

    #[test]
    fn crypto_tax_dominates_on_ramdisk() {
        // The DEFY regime: on a near-free medium, per-write crypto charges
        // should account for the overwhelming majority of elapsed time.
        let clock = SimClock::new();
        let raw = Arc::new(MemDisk::with_cost_model(
            256,
            4096,
            clock.clone(),
            Arc::new(EmmcCostModel::nandsim_ramdisk()),
        ));
        let t0 = clock.now();
        for i in 0..64u64 {
            raw.write_block(i, &vec![1u8; 4096]).unwrap();
        }
        let raw_time = clock.now() - t0;

        let (_disk, defy, clock2) = store(256, 64);
        let t1 = clock2.now();
        for i in 0..64u64 {
            defy.write_block(i, &vec![1u8; 4096]).unwrap();
        }
        let defy_time = clock2.now() - t1;
        let overhead = 1.0 - raw_time.as_secs_f64() / defy_time.as_secs_f64();
        assert!(
            overhead > 0.85,
            "DEFY-regime overhead should exceed 85%, got {:.1}%",
            overhead * 100.0
        );
    }

    #[test]
    fn cleaning_relocates_before_overwriting_the_front() {
        // Regression: a live block whose old log position lies inside the
        // compacted front must be relocated from its pre-compaction
        // content. The incremental cleaning loop read each block only
        // after rewriting earlier front slots, so this layout (logical 3
        // at log position 0, three later logicals compacting in front of
        // it) corrupted block 3 under the new epoch key.
        let (_disk, defy, _clock) = store(8, 4);
        defy.write_block(3, &vec![0x33; 4096]).unwrap(); // log position 0
        for l in 0..3u64 {
            defy.write_block(l, &vec![l as u8 + 1; 4096]).unwrap(); // positions 1-3
        }
        for _ in 0..4 {
            defy.write_block(0, &vec![0xAA; 4096]).unwrap(); // fills the log
        }
        defy.write_block(1, &vec![0xBB; 4096]).unwrap(); // forces cleaning
        assert!(defy.cleanings() >= 1, "cleaning must have run");
        assert_eq!(defy.read_block(3).unwrap(), vec![0x33; 4096], "relocated, not overwritten");
        assert_eq!(defy.read_block(2).unwrap(), vec![3u8; 4096]);
        assert_eq!(defy.read_block(1).unwrap(), vec![0xBB; 4096]);
        assert_eq!(defy.read_block(0).unwrap(), vec![0xAA; 4096]);
    }

    #[test]
    fn batched_appends_land_as_one_extent() {
        let (disk, defy, _clock) = store(256, 64);
        disk.reset_stats();
        let data = vec![9u8; 4096];
        let batch: Vec<(u64, &[u8])> = (0..32u64).map(|l| (l, data.as_slice())).collect();
        defy.write_blocks(&batch).unwrap();
        let s = disk.stats();
        assert_eq!(s.total_writes(), 32);
        assert!(s.seq_writes.ops >= 31, "one contiguous extent: {s:?}");
        for l in 0..32u64 {
            assert_eq!(defy.read_block(l).unwrap(), data, "block {l}");
        }
        // Batched reads resolve through the same mapping.
        let indices: Vec<u64> = (0..40).collect();
        let bufs = defy.read_blocks(&indices).unwrap();
        for (l, buf) in indices.iter().zip(&bufs) {
            let expect = if *l < 32 { data.clone() } else { vec![0u8; 4096] };
            assert_eq!(*buf, expect, "block {l}");
        }
    }

    #[test]
    fn rejects_undersized_device() {
        let clock = SimClock::new();
        let disk: SharedDevice = Arc::new(MemDisk::new(100, 4096, clock.clone()));
        assert!(DefyLite::new(disk, clock, 64, [0u8; 32]).is_err());
    }

    fn state_journal(clock: &SimClock) -> (Arc<MemDisk>, StateJournal) {
        let meta = Arc::new(MemDisk::with_cost_model(
            64,
            4096,
            clock.clone(),
            Arc::new(EmmcCostModel::nandsim_ramdisk()),
        ));
        let journal = StateJournal::new(meta.clone() as SharedDevice).unwrap();
        (meta, journal)
    }

    #[test]
    fn commit_and_open_roundtrip_survives_cleaning_epochs() {
        let (disk, defy, clock) = store(256, 64);
        let (_meta, journal) = state_journal(&clock);
        for round in 0..6u64 {
            for l in 0..64u64 {
                defy.write_block(l, &vec![(round * 64 + l) as u8; 4096]).unwrap();
            }
        }
        assert!(defy.cleanings() >= 1, "epoch key must have rotated");
        let txid = defy.commit(&journal).unwrap();
        assert_eq!(txid, 1);

        // Remount from the journal alone: mapping, head AND the chained
        // epoch key must come back, or reads decrypt garbage.
        let reopened =
            DefyLite::open(disk.clone(), &journal, clock.clone(), 64, [5u8; 32]).unwrap();
        assert_eq!(reopened.cleanings(), defy.cleanings());
        for l in 0..64u64 {
            assert_eq!(
                reopened.read_block(l).unwrap(),
                vec![(5 * 64 + l) as u8; 4096],
                "block {l}"
            );
        }
        // And the log keeps appending from the committed head.
        reopened.write_block(9, &vec![0xEE; 4096]).unwrap();
        assert_eq!(reopened.read_block(9).unwrap(), vec![0xEE; 4096]);
    }

    #[test]
    fn open_on_fresh_journal_is_an_empty_store() {
        let (disk, _defy, clock) = store(256, 64);
        let (_meta, journal) = state_journal(&clock);
        let reopened =
            DefyLite::open(disk.clone(), &journal, clock.clone(), 64, [5u8; 32]).unwrap();
        assert_eq!(reopened.read_block(0).unwrap(), vec![0u8; 4096]);
    }

    #[test]
    fn open_rejects_mapping_beyond_the_committed_head() {
        let (disk, defy, clock) = store(256, 64);
        let (_meta, journal) = state_journal(&clock);
        defy.write_block(0, &vec![1u8; 4096]).unwrap();
        defy.commit(&journal).unwrap();
        // Forge a state whose map points past its own head.
        let ops = vec![
            DeltaOp::Register { key: REG_HEAD, value: 1 },
            DeltaOp::Register { key: REG_EPOCH, value: 0 },
            DeltaOp::Register { key: REG_CLEANINGS, value: 0 },
            DeltaOp::SetMapping {
                id: 0,
                extent: mobiceal_thinp::Extent { virt_begin: 0, data_begin: 5, len: 1 },
            },
        ];
        journal.commit(ops).unwrap();
        let err = DefyLite::open(disk, &journal, clock, 64, [5u8; 32]).unwrap_err();
        assert!(matches!(err, BlockDeviceError::CorruptMetadata { .. }), "{err:?}");
    }

    #[test]
    fn no_space_when_every_logical_block_live_and_log_full() {
        let (_disk, defy, _clock) = store(128, 64);
        // Fill all 64 logical blocks twice (128 appends = full log) then
        // keep writing: cleaning compacts to 64 live, leaving room again.
        for round in 0..4u64 {
            for l in 0..64u64 {
                defy.write_block(l, &vec![round as u8; 4096]).unwrap();
            }
        }
        assert!(defy.cleanings() >= 2);
    }
}
