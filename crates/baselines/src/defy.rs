//! A DEFY-class log-structured deniable store (Peters et al., NDSS 2015).
//!
//! DEFY rides YAFFS's log-structured, all-writes-are-appends design and
//! adds per-write encryption under chained keys with secure deletion. The
//! cost profile Table I captures (≈ 94 % overhead *on a RAM-disk*, where
//! the medium is nearly free) is dominated by the extra cryptography on
//! every page write: key-chain derivation, KDM-style re-encryption, and
//! authenticated metadata.
//!
//! `DefyLite` reproduces that regime: an append-only log with logical→log
//! mapping, per-append key-chain hashing plus a double AES pass, per-append
//! metadata write, and stop-the-world log cleaning when the log fills.

use mobiceal_blockdev::{BlockDevice, BlockDeviceError, BlockIndex, SharedDevice};
use mobiceal_crypto::{sha256, Aes256, CbcEssiv, SectorCipher};
use mobiceal_sim::{CpuCostModel, SimClock};
use parking_lot::Mutex;

struct DefyState {
    /// logical → log position of the current version.
    map: Vec<Option<u64>>,
    /// log position → logical for live entries.
    inverse: Vec<Option<u64>>,
    /// Next append position.
    head: u64,
    /// Epoch counter (bumped by cleaning; models DEFY's secure-deletion
    /// epochs).
    epoch: u64,
    /// Current epoch key (chained by hashing).
    epoch_key: [u8; 32],
    cleanings: u64,
}

/// The DEFY-like log-structured deniable store. See the module docs.
pub struct DefyLite {
    dev: SharedDevice,
    clock: SimClock,
    cpu: CpuCostModel,
    n_logical: u64,
    log_blocks: u64,
    state: Mutex<DefyState>,
}

impl std::fmt::Debug for DefyLite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DefyLite").field("n_logical", &self.n_logical).finish_non_exhaustive()
    }
}

impl DefyLite {
    /// Builds a store exposing `n_logical` blocks over `dev`, which must be
    /// at least twice as large (cleaning headroom).
    ///
    /// # Errors
    ///
    /// [`BlockDeviceError::OutOfRange`] if the device is too small.
    pub fn new(
        dev: SharedDevice,
        clock: SimClock,
        n_logical: u64,
        root_key: [u8; 32],
    ) -> Result<Self, BlockDeviceError> {
        let log_blocks = dev.num_blocks();
        if log_blocks < 2 * n_logical {
            return Err(BlockDeviceError::OutOfRange {
                index: 2 * n_logical,
                num_blocks: log_blocks,
            });
        }
        Ok(DefyLite {
            dev,
            clock,
            // DEFY's testbed runs the cipher stack synchronously on a
            // single-processor PC (no DMA overlap).
            cpu: CpuCostModel::pc_singlecore(),
            n_logical,
            log_blocks,
            state: Mutex::new(DefyState {
                map: vec![None; n_logical as usize],
                inverse: vec![None; log_blocks as usize],
                head: 0,
                epoch: 0,
                epoch_key: root_key,
                cleanings: 0,
            }),
        })
    }

    /// Log-cleaning passes performed so far.
    pub fn cleanings(&self) -> u64 {
        self.state.lock().cleanings
    }

    fn cipher_for(key: &[u8; 32]) -> CbcEssiv<Aes256> {
        CbcEssiv::with_essiv_key(Aes256::new(key), &sha256(key))
    }

    /// DEFY's per-write cryptographic tax: key-chain hash derivations plus
    /// a KDM-style double encryption pass.
    fn charge_crypto(&self, bytes: usize) {
        self.clock.advance(self.cpu.hash_cost() * 3);
        self.clock.advance(self.cpu.aes_cost(bytes) * 2);
    }

    /// Compacts live entries to the front of the log under a fresh epoch
    /// key (secure deletion of stale versions).
    fn clean(&self, state: &mut DefyState) -> Result<(), BlockDeviceError> {
        let old_cipher = Self::cipher_for(&state.epoch_key);
        state.epoch += 1;
        state.epoch_key = sha256(&state.epoch_key);
        self.clock.advance(self.cpu.hash_cost());
        let new_cipher = Self::cipher_for(&state.epoch_key);

        let live: Vec<(u64, u64)> = state
            .map
            .iter()
            .enumerate()
            .filter_map(|(l, pos)| pos.map(|p| (l as u64, p)))
            .collect();
        state.inverse.fill(None);
        let mut new_head = 0u64;
        for (logical, old_pos) in live {
            let mut buf = self.dev.read_block(old_pos)?;
            self.charge_crypto(buf.len());
            old_cipher.decrypt_sector_in_place(old_pos, &mut buf);
            new_cipher.encrypt_sector_in_place(new_head, &mut buf);
            self.dev.write_block(new_head, &buf)?;
            state.map[logical as usize] = Some(new_head);
            state.inverse[new_head as usize] = Some(logical);
            new_head += 1;
        }
        state.head = new_head;
        state.cleanings += 1;
        self.dev.flush()
    }
}

impl BlockDevice for DefyLite {
    fn num_blocks(&self) -> u64 {
        self.n_logical
    }

    fn block_size(&self) -> usize {
        self.dev.block_size()
    }

    fn read_block(&self, index: BlockIndex) -> Result<Vec<u8>, BlockDeviceError> {
        self.check_index(index)?;
        let (pos, key) = {
            let state = self.state.lock();
            (state.map[index as usize], state.epoch_key)
        };
        match pos {
            Some(p) => {
                let mut buf = self.dev.read_block(p)?;
                self.charge_crypto(buf.len());
                Self::cipher_for(&key).decrypt_sector_in_place(p, &mut buf);
                Ok(buf)
            }
            None => Ok(vec![0u8; self.dev.block_size()]),
        }
    }

    fn write_block(&self, index: BlockIndex, data: &[u8]) -> Result<(), BlockDeviceError> {
        self.check_index(index)?;
        self.check_buffer(data)?;
        let mut state = self.state.lock();
        if state.head >= self.log_blocks {
            self.clean(&mut state)?;
            if state.head >= self.log_blocks {
                return Err(BlockDeviceError::NoSpace);
            }
        }
        let pos = state.head;
        state.head += 1;
        self.charge_crypto(data.len());
        let mut ct = data.to_vec();
        Self::cipher_for(&state.epoch_key).encrypt_sector_in_place(pos, &mut ct);
        self.dev.write_block(pos, &ct)?;
        if let Some(old) = state.map[index as usize].replace(pos) {
            state.inverse[old as usize] = None;
        }
        state.inverse[pos as usize] = Some(index);
        // Mapping tags live inline with the chunk (YAFFS keeps them in the
        // page's OOB area), so no separate metadata write is needed.
        drop(state);
        Ok(())
    }

    fn flush(&self) -> Result<(), BlockDeviceError> {
        self.dev.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobiceal_blockdev::MemDisk;
    use mobiceal_sim::EmmcCostModel;
    use std::sync::Arc;

    fn store(blocks: u64, logical: u64) -> (Arc<MemDisk>, DefyLite, SimClock) {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::with_cost_model(
            blocks,
            4096,
            clock.clone(),
            Arc::new(EmmcCostModel::nandsim_ramdisk()),
        ));
        let defy = DefyLite::new(disk.clone(), clock.clone(), logical, [5u8; 32]).unwrap();
        (disk, defy, clock)
    }

    #[test]
    fn roundtrip_and_overwrite() {
        let (_disk, defy, _clock) = store(256, 64);
        defy.write_block(3, &vec![1u8; 4096]).unwrap();
        defy.write_block(3, &vec![2u8; 4096]).unwrap();
        assert_eq!(defy.read_block(3).unwrap(), vec![2u8; 4096]);
        assert_eq!(defy.read_block(4).unwrap(), vec![0u8; 4096]);
    }

    #[test]
    fn cleaning_preserves_data_and_rotates_epoch() {
        let (_disk, defy, _clock) = store(256, 64);
        // 256 log slots: enough churn to force cleaning.
        for round in 0..6u64 {
            for l in 0..64u64 {
                defy.write_block(l, &vec![(round * 64 + l) as u8; 4096]).unwrap();
            }
        }
        assert!(defy.cleanings() >= 1, "log must have been cleaned");
        for l in 0..64u64 {
            assert_eq!(defy.read_block(l).unwrap(), vec![(5 * 64 + l) as u8; 4096], "block {l}");
        }
    }

    #[test]
    fn all_writes_are_appends() {
        let (disk, defy, _clock) = store(256, 64);
        disk.reset_stats();
        for l in 0..32u64 {
            defy.write_block(l, &vec![7u8; 4096]).unwrap();
        }
        let s = disk.stats();
        assert!(s.seq_writes.ops >= 31, "appends should be device-sequential: {s:?}");
    }

    #[test]
    fn crypto_tax_dominates_on_ramdisk() {
        // The DEFY regime: on a near-free medium, per-write crypto charges
        // should account for the overwhelming majority of elapsed time.
        let clock = SimClock::new();
        let raw = Arc::new(MemDisk::with_cost_model(
            256,
            4096,
            clock.clone(),
            Arc::new(EmmcCostModel::nandsim_ramdisk()),
        ));
        let t0 = clock.now();
        for i in 0..64u64 {
            raw.write_block(i, &vec![1u8; 4096]).unwrap();
        }
        let raw_time = clock.now() - t0;

        let (_disk, defy, clock2) = store(256, 64);
        let t1 = clock2.now();
        for i in 0..64u64 {
            defy.write_block(i, &vec![1u8; 4096]).unwrap();
        }
        let defy_time = clock2.now() - t1;
        let overhead = 1.0 - raw_time.as_secs_f64() / defy_time.as_secs_f64();
        assert!(
            overhead > 0.85,
            "DEFY-regime overhead should exceed 85%, got {:.1}%",
            overhead * 100.0
        );
    }

    #[test]
    fn rejects_undersized_device() {
        let clock = SimClock::new();
        let disk: SharedDevice = Arc::new(MemDisk::new(100, 4096, clock.clone()));
        assert!(DefyLite::new(disk, clock, 64, [0u8; 32]).is_err());
    }

    #[test]
    fn no_space_when_every_logical_block_live_and_log_full() {
        let (_disk, defy, _clock) = store(128, 64);
        // Fill all 64 logical blocks twice (128 appends = full log) then
        // keep writing: cleaning compacts to 64 live, leaving room again.
        for round in 0..4u64 {
            for l in 0..64u64 {
                defy.write_block(l, &vec![round as u8; 4096]).unwrap();
            }
        }
        assert!(defy.cleanings() >= 2);
    }
}
