//! A MobiPluto/Mobiflage-class static hidden-volume system (§II-B, §VII-A).
//!
//! The recipe all pre-MobiCeal mobile PDE systems share:
//!
//! 1. at initialization the whole disk is overwritten with randomness;
//! 2. the public volume allocates **sequentially from the front** (here via
//!    a stock thin pool, as in MobiPluto);
//! 3. hidden data is encrypted and placed at a password-derived secret
//!    offset in the back of the disk, with **no metadata trace**.
//!
//! One snapshot reveals nothing: hidden ciphertext is indistinguishable
//! from the initialization randomness. But any *change* to the randomness
//! between two snapshots is unexplainable — the exact weakness MobiCeal's
//! dummy writes remove (§IV-A).

use mobiceal::{EncryptionFooter, MobiCealError, FOOTER_BYTES};
use mobiceal_blockdev::{BlockDevice, SharedDevice};
use mobiceal_crypto::{Aes256, CbcEssiv, ChaCha20Rng, SectorCipher};
use mobiceal_dm::{DmCrypt, DmLinear};
use mobiceal_sim::{CpuCostModel, SimClock};
use mobiceal_thinp::{AllocStrategy, MetadataView, PoolConfig, ThinPool};
use parking_lot::Mutex;
use std::sync::Arc;

/// Magic prefix of the hidden-region cursor record (slot 0 of the hidden
/// region, encrypted under the hidden key — ciphertext at a password-derived
/// offset, indistinguishable from the initialization randomness).
const CURSOR_MAGIC: &[u8; 8] = b"MPHCUR01";

/// The legacy hidden-volume baseline. See the module docs.
pub struct MobiPluto {
    disk: SharedDevice,
    clock: SimClock,
    pool: Arc<ThinPool>,
    footer: EncryptionFooter,
    cpu: CpuCostModel,
    metadata_blocks: u64,
    data_blocks: u64,
    hidden_cipher: Option<CbcEssiv<Aes256>>,
    hidden_offset: u64,
    hidden_cursor: Mutex<u64>,
}

impl std::fmt::Debug for MobiPluto {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MobiPluto").field("data_blocks", &self.data_blocks).finish_non_exhaustive()
    }
}

impl MobiPluto {
    /// Initializes the device: random-fills the disk, formats the
    /// (sequential) thin pool for the public volume, prepares the hidden
    /// region for `hidden_password` if given.
    ///
    /// # Errors
    ///
    /// Capacity or device errors.
    pub fn initialize(
        disk: SharedDevice,
        clock: SimClock,
        decoy_password: &str,
        hidden_password: Option<&str>,
        seed: u64,
    ) -> Result<Self, MobiCealError> {
        let mut rng = ChaCha20Rng::from_u64_seed(seed);
        let metadata_blocks = 64u64;
        let footer_blocks = (FOOTER_BYTES as u64).div_ceil(disk.block_size() as u64);
        if disk.num_blocks() < metadata_blocks + footer_blocks + 64 {
            return Err(MobiCealError::DiskTooSmall {
                required: metadata_blocks + footer_blocks + 64,
                available: disk.num_blocks(),
            });
        }
        let data_blocks = disk.num_blocks() - metadata_blocks - footer_blocks;

        // Step 1: fill the data region with randomness (the static
        // defence). The fill lands as maximal sequential extents — one
        // multi-block command per chunk, like MemDisk's full-disk fill —
        // instead of one command per block, so initialization is charged
        // what a real `dd if=/dev/urandom` pass costs.
        let data_dev: SharedDevice =
            Arc::new(DmLinear::new(disk.clone(), metadata_blocks, data_blocks)?);
        {
            let mut fill_rng = ChaCha20Rng::from_u64_seed(seed ^ 0xF111);
            let bs = disk.block_size();
            const FILL_EXTENT: u64 = 512;
            let mut b = 0u64;
            while b < data_blocks {
                let take = (data_blocks - b).min(FILL_EXTENT);
                let bufs: Vec<Vec<u8>> = (0..take)
                    .map(|_| {
                        let mut buf = vec![0u8; bs];
                        fill_rng.fill_bytes(&mut buf);
                        buf
                    })
                    .collect();
                let writes: Vec<(u64, &[u8])> =
                    bufs.iter().enumerate().map(|(i, d)| (b + i as u64, d.as_slice())).collect();
                data_dev.write_blocks(&writes)?;
                b += take;
            }
        }

        // Footer (same format as FDE), one vectored write.
        let (footer, master) = EncryptionFooter::create(&mut rng, decoy_password, 64);
        let bytes = footer.to_bytes();
        let bs = disk.block_size();
        let footer_payloads: Vec<Vec<u8>> = (0..footer_blocks)
            .map(|i| {
                let mut block = vec![0u8; bs];
                let lo = i as usize * bs;
                if lo < bytes.len() {
                    let hi = (lo + bs).min(bytes.len());
                    block[..hi - lo].copy_from_slice(&bytes[lo..hi]);
                }
                block
            })
            .collect();
        let footer_writes: Vec<(u64, &[u8])> = footer_payloads
            .iter()
            .enumerate()
            .map(|(i, d)| (metadata_blocks + data_blocks + i as u64, d.as_slice()))
            .collect();
        disk.write_blocks(&footer_writes)?;

        // Step 2: a stock (sequential) thin pool hosting the public volume.
        let meta_dev: SharedDevice = Arc::new(DmLinear::new(disk.clone(), 0, metadata_blocks)?);
        let pool = Arc::new(ThinPool::create_seeded(
            data_dev,
            meta_dev,
            PoolConfig::new(1),
            AllocStrategy::Sequential,
            rng.next_u64(),
        )?);
        pool.set_read_overhead(clock.clone(), mobiceal::THIN_READ_LOOKUP);
        pool.create_volume(1, data_blocks)?;

        let cpu = CpuCostModel::nexus4();
        clock.advance(cpu.pbkdf2_cost());

        // Step 3: the hidden region at a password-derived offset in the
        // back half, with its own cipher. No metadata anywhere.
        let (hidden_cipher, hidden_offset) = match hidden_password {
            Some(pwd) => {
                let key = footer.derive_key(pwd);
                clock.advance(cpu.pbkdf2_cost());
                let back_half = data_blocks / 2;
                let span = data_blocks - back_half - 8;
                let mut digest = [0u8; 8];
                mobiceal_crypto::pbkdf2_hmac_sha256(pwd.as_bytes(), &footer.salt, 64, &mut digest);
                let offset = back_half + (u64::from_le_bytes(digest) % span.max(1));
                let cipher =
                    CbcEssiv::with_essiv_key(Aes256::new(&key), &mobiceal_crypto::sha256(&key));
                (Some(cipher), offset)
            }
            None => (None, 0),
        };

        let mp = MobiPluto {
            disk,
            clock,
            pool,
            footer,
            cpu,
            metadata_blocks,
            data_blocks,
            hidden_cipher,
            hidden_offset,
            hidden_cursor: Mutex::new(0),
        };

        // Public volume password-check header at vblock 0.
        let key = master;
        let vol = mp.pool.open_volume(1)?;
        let crypt = DmCrypt::new_essiv(Arc::new(vol), &key);
        crypt.write_block(0, &public_header(decoy_password, bs))?;
        mp.pool.commit()?;
        Ok(mp)
    }

    /// Unlocks the public volume.
    ///
    /// # Errors
    ///
    /// [`MobiCealError::BadPassword`] on a wrong decoy password.
    pub fn unlock_public(&self, password: &str) -> Result<SharedDevice, MobiCealError> {
        let key = self.footer.derive_key(password);
        self.clock.advance(self.cpu.pbkdf2_cost());
        let vol = self.pool.open_volume(1)?;
        let crypt = DmCrypt::new_essiv(Arc::new(vol), &key)
            .with_timing(self.clock.clone(), self.cpu.clone());
        let header = crypt.read_block(0)?;
        if !mobiceal_crypto::ct_eq(&header, &public_header(password, self.disk.block_size())) {
            return Err(MobiCealError::BadPassword);
        }
        Ok(Arc::new(crypt))
    }

    /// Writes one hidden block (sequentially within the hidden region, as
    /// Mobiflage's FAT-style hidden volume would).
    ///
    /// # Errors
    ///
    /// Fails if no hidden password was configured, or on device errors.
    pub fn hidden_write(&self, data: &[u8]) -> Result<(), MobiCealError> {
        self.hidden_write_blocks(&[data])
    }

    /// Writes a run of hidden blocks as one vectored sequential extent in
    /// the hidden region. The hidden cursor — the region's log head —
    /// advances only after the extent has landed, so a mid-batch device
    /// error leaves it unmoved and the whole run can be retried.
    ///
    /// # Errors
    ///
    /// Fails if no hidden password was configured, or on device errors.
    pub fn hidden_write_blocks(&self, blocks: &[&[u8]]) -> Result<(), MobiCealError> {
        let cipher = self.hidden_cipher.as_ref().ok_or(MobiCealError::BadPassword)?;
        let mut cursor = self.hidden_cursor.lock();
        let mut payloads: Vec<(u64, Vec<u8>)> = Vec::with_capacity(blocks.len());
        for (i, data) in blocks.iter().enumerate() {
            // Slot 0 of the hidden region holds the cursor record; data
            // starts one past the derived offset.
            let sector = self.hidden_offset + 1 + *cursor + i as u64;
            let mut ct = data.to_vec();
            cipher.encrypt_sector_in_place(sector, &mut ct);
            payloads.push((self.metadata_blocks + sector, ct));
        }
        let extent: Vec<(u64, &[u8])> = payloads.iter().map(|(b, d)| (*b, d.as_slice())).collect();
        self.disk.write_blocks(&extent)?;
        for data in blocks {
            self.clock.advance(self.cpu.aes_cost(data.len()));
        }
        *cursor += blocks.len() as u64;
        Ok(())
    }

    /// Pool metadata (public volume only -- hidden data has none).
    pub fn metadata_view(&self) -> MetadataView {
        self.pool.metadata_view()
    }

    /// Start of the data region on the raw disk.
    pub fn data_region_start(&self) -> u64 {
        self.metadata_blocks
    }

    /// Length of the data region in blocks.
    pub fn data_region_blocks(&self) -> u64 {
        self.data_blocks
    }

    /// Commits pool metadata.
    ///
    /// # Errors
    ///
    /// Metadata I/O errors.
    pub fn commit(&self) -> Result<(), MobiCealError> {
        Ok(self.pool.commit()?)
    }

    /// Persists the hidden log head: an encrypted cursor record in the
    /// hidden region's first slot, then a sync. The record is ciphertext
    /// at the password-derived offset — to an adversary without the hidden
    /// password it is indistinguishable from the initialization randomness,
    /// so the single-snapshot deniability argument is unchanged.
    ///
    /// # Errors
    ///
    /// Fails if no hidden password was configured, or on device errors.
    pub fn hidden_commit(&self) -> Result<(), MobiCealError> {
        let cipher = self.hidden_cipher.as_ref().ok_or(MobiCealError::BadPassword)?;
        let cursor = self.hidden_cursor.lock();
        let mut record = vec![0u8; self.disk.block_size()];
        record[..8].copy_from_slice(CURSOR_MAGIC);
        record[8..16].copy_from_slice(&cursor.to_le_bytes());
        let digest = mobiceal_crypto::sha256(&record[..16]);
        record[16..48].copy_from_slice(&digest);
        cipher.encrypt_sector_in_place(self.hidden_offset, &mut record);
        self.clock.advance(self.cpu.aes_cost(record.len()));
        self.disk.write_block(self.metadata_blocks + self.hidden_offset, &record)?;
        self.disk.flush()?;
        Ok(())
    }

    /// Remounts an initialized device: parses the footer, replays the thin
    /// pool's committed metadata journal for the public volume, rederives
    /// the hidden offset/cipher from `hidden_password`, and resumes the
    /// hidden log head from the cursor record if one was ever
    /// [`MobiPluto::hidden_commit`]ted (a slot still holding initialization
    /// randomness fails the record's digest and yields head 0). The decoy
    /// password is verified against the public volume header.
    ///
    /// # Errors
    ///
    /// [`MobiCealError::NotInitialized`] if no footer is present,
    /// [`MobiCealError::BadPassword`] on a wrong decoy password, metadata
    /// corruption or device errors otherwise.
    pub fn open(
        disk: SharedDevice,
        clock: SimClock,
        decoy_password: &str,
        hidden_password: Option<&str>,
        seed: u64,
    ) -> Result<Self, MobiCealError> {
        let metadata_blocks = 64u64;
        let bs = disk.block_size();
        let footer_blocks = (FOOTER_BYTES as u64).div_ceil(bs as u64);
        if disk.num_blocks() < metadata_blocks + footer_blocks + 64 {
            return Err(MobiCealError::DiskTooSmall {
                required: metadata_blocks + footer_blocks + 64,
                available: disk.num_blocks(),
            });
        }
        let data_blocks = disk.num_blocks() - metadata_blocks - footer_blocks;

        let footer_indices: Vec<u64> =
            (0..footer_blocks).map(|i| metadata_blocks + data_blocks + i).collect();
        let mut footer_bytes: Vec<u8> = disk.read_blocks(&footer_indices)?.concat();
        footer_bytes.truncate(FOOTER_BYTES);
        let footer = EncryptionFooter::from_bytes(&footer_bytes)?;

        let data_dev: SharedDevice =
            Arc::new(DmLinear::new(disk.clone(), metadata_blocks, data_blocks)?);
        let meta_dev: SharedDevice = Arc::new(DmLinear::new(disk.clone(), 0, metadata_blocks)?);
        let pool = Arc::new(ThinPool::open(
            data_dev,
            meta_dev,
            PoolConfig::new(1),
            AllocStrategy::Sequential,
            seed,
        )?);
        pool.set_read_overhead(clock.clone(), mobiceal::THIN_READ_LOOKUP);

        let cpu = CpuCostModel::nexus4();
        let (hidden_cipher, hidden_offset) = match hidden_password {
            Some(pwd) => {
                let key = footer.derive_key(pwd);
                clock.advance(cpu.pbkdf2_cost());
                let back_half = data_blocks / 2;
                let span = data_blocks - back_half - 8;
                let mut digest = [0u8; 8];
                mobiceal_crypto::pbkdf2_hmac_sha256(pwd.as_bytes(), &footer.salt, 64, &mut digest);
                let offset = back_half + (u64::from_le_bytes(digest) % span.max(1));
                let cipher =
                    CbcEssiv::with_essiv_key(Aes256::new(&key), &mobiceal_crypto::sha256(&key));
                (Some(cipher), offset)
            }
            None => (None, 0),
        };

        let mp = MobiPluto {
            disk,
            clock,
            pool,
            footer,
            cpu,
            metadata_blocks,
            data_blocks,
            hidden_cipher,
            hidden_offset,
            hidden_cursor: Mutex::new(0),
        };

        if let Some(cipher) = &mp.hidden_cipher {
            let mut buf = mp.disk.read_block(mp.metadata_blocks + mp.hidden_offset)?;
            mp.clock.advance(mp.cpu.aes_cost(buf.len()));
            cipher.decrypt_sector_in_place(mp.hidden_offset, &mut buf);
            if buf.len() >= 48
                && &buf[..8] == CURSOR_MAGIC
                && mobiceal_crypto::sha256(&buf[..16])[..] == buf[16..48]
            {
                *mp.hidden_cursor.lock() = u64::from_le_bytes(buf[8..16].try_into().unwrap());
            }
        }

        mp.unlock_public(decoy_password)?;
        Ok(mp)
    }
}

fn public_header(password: &str, block_size: usize) -> Vec<u8> {
    let mut plain = vec![0u8; block_size];
    plain[..8].copy_from_slice(b"MPVOLHDR");
    let pwd = password.as_bytes();
    let len = pwd.len().min(255);
    plain[8] = len as u8;
    plain[9..9 + len].copy_from_slice(&pwd[..len]);
    plain
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobiceal_blockdev::MemDisk;

    fn device(seed: u64, hidden: bool) -> (Arc<MemDisk>, MobiPluto) {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(2048, 4096, clock.clone()));
        let mp =
            MobiPluto::initialize(disk.clone(), clock, "decoy", hidden.then_some("hidden"), seed)
                .unwrap();
        (disk, mp)
    }

    #[test]
    fn public_volume_roundtrip() {
        let (_disk, mp) = device(1, true);
        let vol = mp.unlock_public("decoy").unwrap();
        vol.write_block(5, &vec![0x12; 4096]).unwrap();
        assert_eq!(vol.read_block(5).unwrap(), vec![0x12; 4096]);
        assert!(mp.unlock_public("bad").is_err());
    }

    #[test]
    fn single_snapshot_reveals_nothing() {
        // With and without hidden data, a single image is all-randomness in
        // the non-public area: per-block entropy is uniformly high.
        let (disk_h, mp_h) = device(2, true);
        for _ in 0..20 {
            mp_h.hidden_write(&vec![0xAB; 4096]).unwrap();
        }
        let (disk_p, _mp_p) = device(2, false);
        for snap in [disk_h.snapshot(), disk_p.snapshot()] {
            for b in 64..1024 {
                assert!(snap.block_entropy(b) > 7.0, "block {b}");
            }
        }
    }

    #[test]
    fn multi_snapshot_exposes_hidden_changes() {
        let (disk, mp) = device(3, true);
        let snap1 = disk.snapshot();
        for _ in 0..10 {
            mp.hidden_write(&vec![0xCD; 4096]).unwrap();
        }
        let snap2 = disk.snapshot();
        let changed = snap1.changed_blocks(&snap2);
        assert_eq!(changed.len(), 10, "hidden writes visibly change 'free' randomness");
        // And none of those blocks belong to the public volume's mappings.
        let view = mp.metadata_view();
        let public: std::collections::HashSet<u64> =
            view.volumes[&1].mappings.values().map(|p| p + mp.data_region_start()).collect();
        assert!(changed.iter().all(|b| !public.contains(b)));
    }

    #[test]
    fn no_hidden_configured_rejects_hidden_write() {
        let (_disk, mp) = device(4, false);
        assert!(mp.hidden_write(&vec![0u8; 4096]).is_err());
        assert!(mp.hidden_write_blocks(&[&vec![0u8; 4096]]).is_err());
    }

    #[test]
    fn hidden_batch_matches_the_single_block_loop_and_amortizes() {
        let build = |seed| {
            let clock = SimClock::new();
            let disk = Arc::new(MemDisk::new(2048, 4096, clock.clone()));
            let mp = MobiPluto::initialize(disk.clone(), clock.clone(), "decoy", Some("h"), seed)
                .unwrap();
            (disk, clock, mp)
        };
        let payloads: Vec<Vec<u8>> = (0..12u8).map(|i| vec![i; 4096]).collect();
        let (disk_a, clock_a, mp_a) = build(9);
        let t0 = clock_a.now();
        let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        mp_a.hidden_write_blocks(&refs).unwrap();
        let batched = clock_a.now() - t0;
        let (disk_b, clock_b, mp_b) = build(9);
        let t1 = clock_b.now();
        for p in &payloads {
            mp_b.hidden_write(p).unwrap();
        }
        let looped = clock_b.now() - t1;
        assert_eq!(disk_a.snapshot().as_bytes(), disk_b.snapshot().as_bytes(), "same ciphertext");
        assert!(batched < looped, "one extent must amortize: {batched} vs {looped}");
    }

    #[test]
    fn format_charges_vectored_fill_time() {
        // The randomness fill rides maximal sequential extents: under the
        // amortized nexus4 profile a 2048-block initialization charges
        // ~433 ms, below the ~457 ms the per-block loop charged at this
        // geometry (the remainder is the fill transfer itself plus the
        // PBKDF2 derivations, which no batching can remove).
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(2048, 4096, clock.clone()));
        let t0 = clock.now();
        let _mp = MobiPluto::initialize(disk as SharedDevice, clock.clone(), "decoy", Some("h"), 3)
            .unwrap();
        let init = (clock.now() - t0).as_secs_f64();
        assert!(
            (0.40..0.45).contains(&init),
            "vectored format should beat the per-block fill while still \
             charging the transfer: {init:.3}s"
        );
    }

    #[test]
    fn open_replays_pool_journal_and_resumes_hidden_cursor() {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(2048, 4096, clock.clone()));
        let mp = MobiPluto::initialize(disk.clone(), clock.clone(), "decoy", Some("hidden"), 11)
            .unwrap();
        let vol = mp.unlock_public("decoy").unwrap();
        vol.write_block(5, &vec![0x12; 4096]).unwrap();
        mp.commit().unwrap();

        let snap0 = disk.snapshot();
        for i in 0..5u8 {
            mp.hidden_write(&vec![i; 4096]).unwrap();
        }
        mp.hidden_commit().unwrap();
        let snap1 = disk.snapshot();
        let first: std::collections::HashSet<u64> =
            snap0.changed_blocks(&snap1).into_iter().collect();
        assert_eq!(first.len(), 6, "5 hidden blocks plus the cursor record");
        drop(vol);
        drop(mp);

        // Remount from the medium alone (fresh seed: the pool RNG stream is
        // not durable state).
        let mp2 =
            MobiPluto::open(disk.clone(), clock.clone(), "decoy", Some("hidden"), 77).unwrap();
        let vol2 = mp2.unlock_public("decoy").unwrap();
        assert_eq!(vol2.read_block(5).unwrap(), vec![0x12; 4096], "public data survives remount");

        // The hidden log head resumed past the committed writes: new hidden
        // data must not overwrite them.
        for _ in 0..3 {
            mp2.hidden_write(&vec![0xEE; 4096]).unwrap();
        }
        let snap2 = disk.snapshot();
        let second = snap1.changed_blocks(&snap2);
        assert_eq!(second.len(), 3);
        assert!(
            second.iter().all(|b| !first.contains(b)),
            "resumed cursor overwrote committed hidden data"
        );
    }

    #[test]
    fn open_without_hidden_commit_restarts_the_hidden_head() {
        // The cursor slot still holds initialization randomness, which
        // fails the record digest: the head restarts at 0 (exactly the
        // data-loss semantics of a volume never cleanly unmounted).
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(2048, 4096, clock.clone()));
        let mp = MobiPluto::initialize(disk.clone(), clock.clone(), "decoy", Some("hidden"), 12)
            .unwrap();
        let snap0 = disk.snapshot();
        mp.hidden_write(&vec![0xAA; 4096]).unwrap();
        drop(mp);
        let mp2 =
            MobiPluto::open(disk.clone(), clock.clone(), "decoy", Some("hidden"), 13).unwrap();
        mp2.hidden_write(&vec![0xBB; 4096]).unwrap();
        let changed = snap0.changed_blocks(&disk.snapshot());
        assert_eq!(changed.len(), 1, "both writes land on the same (restarted) slot");
    }

    #[test]
    fn open_rejects_wrong_decoy_and_uninitialized_disk() {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(2048, 4096, clock.clone()));
        assert!(matches!(
            MobiPluto::open(disk.clone() as SharedDevice, clock.clone(), "decoy", None, 1),
            Err(MobiCealError::NotInitialized { .. })
        ));
        MobiPluto::initialize(disk.clone(), clock.clone(), "decoy", None, 1).unwrap();
        assert!(matches!(
            MobiPluto::open(disk as SharedDevice, clock, "wrong", None, 1),
            Err(MobiCealError::BadPassword)
        ));
    }

    #[test]
    fn public_allocation_is_sequential() {
        let (_disk, mp) = device(5, true);
        let vol = mp.unlock_public("decoy").unwrap();
        for i in 1..=20 {
            vol.write_block(i, &vec![1u8; 4096]).unwrap();
        }
        let view = mp.metadata_view();
        let phys: Vec<u64> = view.volumes[&1].mappings.values().collect();
        let mut sorted = phys.clone();
        sorted.sort_unstable();
        assert_eq!(phys, sorted, "stock thin allocation is front-to-back");
        assert!(*sorted.last().unwrap() < 64, "allocations cluster at the front");
    }
}
